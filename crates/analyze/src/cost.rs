//! Pass 4 — static baggage-cost bounding.
//!
//! The paper's §5 overhead argument: advice may only add bounded state
//! to a request's baggage, and the Table 3 rewrites exist to shrink what
//! crosses each pack boundary. This pass derives a static upper bound on
//! the bytes a query adds to one request's baggage: for every pack
//! boundary, `width × tuple-cardinality × bytes-per-value` plus a fixed
//! per-slot overhead, where the cardinality comes from the pack mode —
//! `First(n)`/`Recent(n)` retain at most `n` tuples, a grouped
//! aggregation retains one fixed-size row per distinct key, and `All`
//! is unbounded (it grows with the request).

use std::fmt;

use pivot_baggage::PackMode;
use pivot_query::plan::{QueryPlan, StageSink};

/// A static upper bound that may be infinite.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Bound {
    /// At most this many bytes (or tuples).
    Finite(u64),
    /// Grows with the number of tuples the request produces.
    Unbounded,
}

impl Bound {
    /// Multiplies by a constant factor.
    pub fn times(self, k: u64) -> Bound {
        match self {
            Bound::Finite(n) => Bound::Finite(n.saturating_mul(k)),
            Bound::Unbounded => Bound::Unbounded,
        }
    }

    /// Adds two bounds.
    pub fn plus(self, other: Bound) -> Bound {
        match (self, other) {
            (Bound::Finite(a), Bound::Finite(b)) => Bound::Finite(a.saturating_add(b)),
            _ => Bound::Unbounded,
        }
    }

    /// Returns `true` when `self` is at most `other` (`Unbounded` is the
    /// top element).
    pub fn le(self, other: Bound) -> bool {
        match (self, other) {
            (_, Bound::Unbounded) => true,
            (Bound::Unbounded, Bound::Finite(_)) => false,
            (Bound::Finite(a), Bound::Finite(b)) => a <= b,
        }
    }

    /// Returns the finite value, if any.
    pub fn as_finite(self) -> Option<u64> {
        match self {
            Bound::Finite(n) => Some(n),
            Bound::Unbounded => None,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::Finite(n) => write!(f, "<= {n}"),
            Bound::Unbounded => write!(f, "unbounded"),
        }
    }
}

/// Constants of the byte-cost model. The model is nominal — values are
/// variable-width on the wire — but consistent across plans, which is
/// what the optimizer cross-check needs: the same model applied to the
/// optimized and unoptimized plan of one query yields comparable bounds.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// Nominal serialized size of one packed value (tag + varint/short
    /// string).
    pub bytes_per_value: u64,
    /// Fixed per-slot overhead (slot id, mode tag, schema framing).
    pub slot_overhead: u64,
    /// Assumed distinct-key count for grouped-aggregation packs: the
    /// per-request group cardinality is not statically knowable, so the
    /// model charges a documented constant per group-aggregated boundary.
    pub assumed_groups: u64,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            bytes_per_value: 12,
            slot_overhead: 16,
            assumed_groups: 16,
        }
    }
}

/// The cost of one pack boundary.
#[derive(Clone, PartialEq, Debug)]
pub struct StageCost {
    /// The packing stage's alias.
    pub alias: String,
    /// Columns per packed tuple.
    pub width: usize,
    /// Upper bound on retained tuples.
    pub tuples: Bound,
    /// Upper bound on serialized bytes.
    pub bytes: Bound,
    /// `true` when the boundary retains every tuple (`PackMode::All`).
    pub unbounded_mode: bool,
}

/// The baggage cost of a whole plan.
#[derive(Clone, PartialEq, Debug)]
pub struct PlanCost {
    /// Per-pack-boundary costs, in causal order (the emit stage packs
    /// nothing and is omitted).
    pub stages: Vec<StageCost>,
    /// Upper bound on total bytes this query adds to one request's
    /// baggage.
    pub total_bytes: Bound,
}

/// Computes the static baggage bound of `plan` under `model`.
pub fn plan_cost(plan: &QueryPlan, model: &CostModel) -> PlanCost {
    let mut stages = Vec::new();
    let mut total = Bound::Finite(0);
    for stage in &plan.stages {
        let StageSink::Pack { mode, names, .. } = &stage.sink else {
            continue;
        };
        let tuples = match mode {
            PackMode::All => Bound::Unbounded,
            PackMode::First(n) | PackMode::Recent(n) => Bound::Finite(*n as u64),
            PackMode::GroupAgg { .. } => Bound::Finite(model.assumed_groups),
        };
        let bytes = tuples
            .times(names.len() as u64)
            .times(model.bytes_per_value)
            .plus(Bound::Finite(model.slot_overhead));
        total = total.plus(bytes);
        stages.push(StageCost {
            alias: stage.alias.clone(),
            width: names.len(),
            tuples,
            bytes,
            unbounded_mode: matches!(mode, PackMode::All),
        });
    }
    PlanCost {
        stages,
        total_bytes: total,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_ordering_and_arithmetic() {
        assert!(Bound::Finite(5).le(Bound::Finite(5)));
        assert!(Bound::Finite(5).le(Bound::Unbounded));
        assert!(!Bound::Unbounded.le(Bound::Finite(u64::MAX)));
        assert!(Bound::Unbounded.le(Bound::Unbounded));
        assert_eq!(
            Bound::Finite(3).times(4).plus(Bound::Finite(8)),
            Bound::Finite(20)
        );
        assert_eq!(
            Bound::Unbounded.times(0).plus(Bound::Finite(1)),
            Bound::Unbounded
        );
    }
}
