//! Pass 5 — query-reference cycle detection.
//!
//! Queries may join the output of previously installed queries (the
//! paper's Q9 joining Q8). The compiler inlines referenced queries
//! recursively, so a cycle in the reference graph would recurse forever.
//! The frontend's append-only installation order cannot create one, but
//! a [`Resolver`] is an open trait — `pivot-lint` resolves from files,
//! and embedders can resolve from anything — so the verifier walks the
//! graph before ever handing the text to the compiler.

use std::collections::HashSet;

use pivot_query::ast::{Query, SourceKind};
use pivot_query::{locate, Resolver};

use crate::diag::{Code, Diagnostic};

/// Checks for reference cycles reachable from `ast` (installed under
/// `name`). Returns `true` when a cycle was reported — the caller must
/// then skip compilation.
pub(crate) fn check(
    name: &str,
    ast: &Query,
    text: &str,
    resolver: &dyn Resolver,
    diags: &mut Vec<Diagnostic>,
) -> bool {
    let mut path = vec![name.to_owned()];
    let mut visited = HashSet::new();
    let mut cycle = None;
    walk(ast, resolver, &mut path, &mut visited, &mut cycle);
    let Some(cycle_path) = cycle else {
        return false;
    };
    let entry = cycle_path.last().cloned().unwrap_or_default();
    diags.push(
        Diagnostic::error(
            Code::QueryCycle,
            format!("query reference cycle: {}", cycle_path.join(" -> ")),
        )
        .with_span(locate(text, &entry))
        .suggest(
            "break the cycle: a query may only join queries installed \
             before it",
        ),
    );
    true
}

fn walk(
    ast: &Query,
    resolver: &dyn Resolver,
    path: &mut Vec<String>,
    visited: &mut HashSet<String>,
    cycle: &mut Option<Vec<String>>,
) {
    if cycle.is_some() {
        return;
    }
    for r in references(ast, resolver) {
        if path.contains(&r) {
            let mut p = path.clone();
            p.push(r);
            *cycle = Some(p);
            return;
        }
        if !visited.insert(r.clone()) {
            continue;
        }
        if let Some(sub) = resolver.query_ast(&r) {
            path.push(r);
            walk(&sub, resolver, path, visited, cycle);
            path.pop();
        }
    }
}

/// Returns the names of installed queries `ast` references as sources —
/// mirroring the compiler's classification: a single-name source whose
/// name resolves to a query.
fn references(ast: &Query, resolver: &dyn Resolver) -> Vec<String> {
    std::iter::once(&ast.from)
        .chain(ast.joins.iter().map(|j| &j.source))
        .filter_map(|s| match &s.kind {
            SourceKind::QueryRef(n) => Some(n.clone()),
            SourceKind::Tracepoints(names)
                if names.len() == 1 && resolver.query_ast(&names[0]).is_some() =>
            {
                Some(names[0].clone())
            }
            SourceKind::Tracepoints(_) => None,
        })
        .collect()
}
