//! Pass 3 — advice dataflow well-formedness, over **lowered bytecode**.
//!
//! Advice programs are straight-line (the paper's §5 safety argument:
//! no jumps, no loops, so termination is structural). This pass checks
//! the *inter*-program structure the runtime relies on at weave time:
//! every `Unpack` must read a slot some causally earlier program packed
//! with the same tuple width, the `Emit` layout must be internally
//! consistent with its `OutputSpec`, and nothing is dead — a pack no
//! later stage consumes never reaches an `Emit` and only bloats baggage.
//!
//! The pass runs on [`CompiledCode`] — the exact artifact agents execute
//! and the bus ships — rather than on the advice-op trees it was lowered
//! from ("verify what you execute"). Two defects are only visible here:
//!
//! - a lowering **note** records a field reference no schema position
//!   satisfies (lowered to an unconditional per-tuple failure), and
//! - a lowered program that fails [`AdviceByteCode::validate`]
//!   (out-of-range register, constant, skip, or pool reference) would be
//!   rejected by every remote decoder and must never leave the frontend.
//!
//! Both are reported as `PT008` errors.
//!
//! [`AdviceByteCode::validate`]: pivot_query::AdviceByteCode::validate

use std::collections::{HashMap, HashSet};

use pivot_baggage::{PackMode, QueryId};
use pivot_query::advice::ColumnRef;
use pivot_query::bytecode::{EInst, Inst};
use pivot_query::{AdviceOp, CompiledCode, CompiledQuery};

use crate::diag::{Code, Diagnostic};

/// Checks the lowered programs of `code`, appending diagnostics.
/// `notes` are the degradation notes produced by lowering.
pub(crate) fn check(code: &CompiledCode, notes: &[String], diags: &mut Vec<Diagnostic>) {
    for note in notes {
        diags.push(Diagnostic::error(
            Code::LoweringError,
            format!("advice lowering degraded: {note}"),
        ));
    }

    // Slot → (pack width, consumed by a later unpack).
    let mut packed: HashMap<QueryId, (usize, bool)> = HashMap::new();
    let mut emits = 0usize;

    for (pi, prog) in code.programs.iter().enumerate() {
        let at = prog
            .tracepoints
            .first()
            .map(String::as_str)
            .unwrap_or("<no tracepoint>");
        if prog.tracepoints.is_empty() {
            diags.push(Diagnostic::error(
                Code::DataflowError,
                format!("advice program {pi} weaves into no tracepoint"),
            ));
        }
        if let Err(e) = prog.validate() {
            diags.push(Diagnostic::error(
                Code::LoweringError,
                format!("advice at `{at}` failed bytecode validation: {e}"),
            ));
        }
        for inst in &prog.insts {
            match inst {
                Inst::Observe { .. } | Inst::Filter { .. } | Inst::Trigger { .. } => {}
                Inst::Unpack { slot, width, .. } => match packed.get_mut(slot) {
                    None => diags.push(Diagnostic::error(
                        Code::DataflowError,
                        format!(
                            "advice at `{at}` unpacks slot {} but no \
                                 causally earlier advice packs it",
                            slot.0
                        ),
                    )),
                    Some((packed_width, consumed)) => {
                        *consumed = true;
                        if *packed_width != usize::from(*width) {
                            diags.push(Diagnostic::error(
                                Code::DataflowError,
                                format!(
                                    "advice at `{at}` unpacks slot \
                                         {} expecting {width} columns but it \
                                         was packed with {packed_width}",
                                    slot.0,
                                ),
                            ));
                        }
                    }
                },
                Inst::Pack {
                    slot, mode, exprs, ..
                } => {
                    let width = (exprs.1 - exprs.0) as usize;
                    if let PackMode::GroupAgg { key_len, aggs } = mode {
                        if key_len + aggs.len() != width {
                            diags.push(Diagnostic::error(
                                Code::DataflowError,
                                format!(
                                    "advice at `{at}`: grouped pack has \
                                     {key_len} keys + {} aggregates but \
                                     {width} columns",
                                    aggs.len(),
                                ),
                            ));
                        }
                    }
                    packed.insert(*slot, (width, false));
                }
                Inst::Emit { spec, .. } => {
                    emits += 1;
                    if spec.key_exprs.len() != spec.key_names.len()
                        || spec.aggs.len() != spec.agg_names.len()
                    {
                        diags.push(Diagnostic::error(
                            Code::DataflowError,
                            format!(
                                "emit at `{at}`: column name count does \
                                 not match expression count"
                            ),
                        ));
                    }
                    for c in &spec.columns {
                        let (label, idx, len) = match c {
                            ColumnRef::Key(i) => ("key", *i, spec.key_exprs.len()),
                            ColumnRef::Agg(i) => ("aggregate", *i, spec.aggs.len()),
                        };
                        if idx >= len {
                            diags.push(Diagnostic::error(
                                Code::DataflowError,
                                format!(
                                    "emit at `{at}` selects {label} \
                                     {idx} but only {len} exist"
                                ),
                            ));
                        }
                    }
                    if spec.streaming && !spec.aggs.is_empty() {
                        diags.push(Diagnostic::error(
                            Code::DataflowError,
                            format!(
                                "emit at `{at}` is marked streaming but \
                                 carries aggregates"
                            ),
                        ));
                    }
                }
            }
        }
        if !prog.packs() && !prog.emits() {
            diags.push(Diagnostic::warning(
                Code::DeadAdvice,
                format!(
                    "advice at `{at}` neither packs nor emits — it \
                     observes tuples and discards them"
                ),
            ));
        }
    }

    if emits == 0 {
        diags.push(Diagnostic::error(
            Code::DataflowError,
            "no advice program emits results; the query can never \
             produce output",
        ));
    }
    for (slot, (_, consumed)) in &packed {
        if !consumed {
            diags.push(Diagnostic::warning(
                Code::DeadAdvice,
                format!(
                    "slot {} is packed but no later advice unpacks it; \
                     the tuples ride the baggage for nothing",
                    slot.0
                ),
            ));
        }
    }
}

/// PT009 — dead output columns.
///
/// A slot can be live (some later stage unpacks it — so PT004 stays
/// quiet) while individual *columns* of its packed tuples are never
/// read: no filter predicate, group key, aggregate argument, or onward
/// pack projection ever loads them. The bytes still ride the baggage of
/// every request. The optimizer's projection pushdown prunes this for
/// plain tracepoint joins, but an inlined sub-query packs its full
/// `Select` output, so joining a multi-column query and consuming only
/// some of its columns leaks the rest into every pack.
///
/// Consumption is judged on the lowered bytecode ("verify what you
/// execute"): an unpacked column is the joined-tuple position
/// `base + i`, where `base` is the schema width ahead of the `Unpack`,
/// and it is consumed iff some `Load` in the same program reads that
/// position. Loads lowered for ops *before* the unpack cannot reach the
/// region (the schema was shorter there), so scanning the whole
/// program's expression pool is safe. Column names come from the advice
/// trees in `compiled`, which lowering maps one-to-one to
/// `code.programs`.
pub(crate) fn check_dead_columns(
    compiled: &CompiledQuery,
    code: &CompiledCode,
    diags: &mut Vec<Diagnostic>,
) {
    // (slot, weave site, packed column names) in advice (causal) order,
    // from the advice trees — each stage packs its own slot exactly once.
    let mut packs: Vec<(QueryId, &str, &[String])> = Vec::new();
    for prog in &compiled.advice {
        let at = prog
            .tracepoints
            .first()
            .map(String::as_str)
            .unwrap_or("<no tracepoint>");
        for op in &prog.ops {
            if let AdviceOp::Pack { slot, names, .. } = op {
                packs.push((*slot, at, names));
            }
        }
    }

    // Slot → set of column positions some consumer loads.
    let mut consumed: HashMap<QueryId, HashSet<usize>> = HashMap::new();
    let mut unpacked: HashSet<QueryId> = HashSet::new();
    for prog in &code.programs {
        // Joined-tuple regions this program's unpacks occupy.
        let mut regions: Vec<(QueryId, usize, usize)> = Vec::new();
        let mut width_so_far = 0usize;
        for inst in &prog.insts {
            match inst {
                Inst::Observe { names: (s, e) } => width_so_far += (e - s) as usize,
                Inst::Unpack { slot, width, .. } => {
                    let w = usize::from(*width);
                    regions.push((*slot, width_so_far, w));
                    unpacked.insert(*slot);
                    width_so_far += w;
                }
                _ => {}
            }
        }
        if regions.is_empty() {
            continue;
        }
        for einst in &prog.einsts {
            if let EInst::Load { col, .. } = einst {
                let col = usize::from(*col);
                for (slot, base, w) in &regions {
                    if col >= *base && col < base + w {
                        consumed.entry(*slot).or_default().insert(col - base);
                    }
                }
            }
        }
    }

    for (slot, at, names) in packs {
        if !unpacked.contains(&slot) {
            continue; // the whole slot is dead — that's PT004, above
        }
        let live = consumed.get(&slot);
        for (i, name) in names.iter().enumerate() {
            if live.is_some_and(|s| s.contains(&i)) {
                continue;
            }
            diags.push(
                Diagnostic::warning(
                    Code::DeadColumn,
                    format!(
                        "the pack at `{at}` carries column `{name}` but no \
                         later filter, group-by, aggregate, or pack ever \
                         reads it; the column rides the baggage of every \
                         request for nothing",
                    ),
                )
                .suggest(format!(
                    "drop `{name}` from the stage's Select, or consume it \
                     in a downstream Where / GroupBy / Select",
                )),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use pivot_query::advice::OutputSpec;
    use pivot_query::bytecode::{AdviceByteCode, EInst, ExprProg};
    use pivot_query::CompiledCode;

    use super::*;

    fn empty_code() -> CompiledCode {
        CompiledCode {
            id: QueryId(1),
            name: "t".into(),
            programs: vec![],
            output: Arc::new(OutputSpec::default()),
        }
    }

    #[test]
    fn lowering_notes_become_pt008_errors() {
        let mut diags = Vec::new();
        let notes = vec!["field `ghost` resolves to no schema position".to_string()];
        check(&empty_code(), &notes, &mut diags);
        let d = diags
            .iter()
            .find(|d| d.code == Code::LoweringError)
            .expect("PT008 reported");
        assert!(d.is_error(), "{d:?}");
        assert!(d.message.contains("ghost"), "{d:?}");
    }

    #[test]
    fn invalid_bytecode_is_pt008() {
        // References register 9 with a 1-register file: structurally
        // invalid, every decoder would reject it, so the verifier must
        // block the install.
        let bad = AdviceByteCode {
            tracepoints: vec!["tp".into()],
            insts: vec![Inst::Filter { pred: 0 }],
            einsts: vec![EInst::Load { dst: 9, col: 0 }],
            exprs: vec![ExprProg {
                start: 0,
                len: 1,
                result: 9,
            }],
            consts: vec![],
            names: vec![],
            num_regs: 1,
        };
        let code = CompiledCode {
            programs: vec![Arc::new(bad)],
            ..empty_code()
        };
        let mut diags = Vec::new();
        check(&code, &[], &mut diags);
        assert!(
            diags
                .iter()
                .any(|d| d.code == Code::LoweringError && d.is_error()),
            "{diags:?}"
        );
    }

    #[test]
    fn unpack_of_unpacked_slot_is_pt003_on_bytecode() {
        let orphan = AdviceByteCode {
            tracepoints: vec!["tp".into()],
            insts: vec![Inst::Unpack {
                slot: QueryId(7),
                width: 2,
                temporal: None,
            }],
            einsts: vec![],
            exprs: vec![],
            consts: vec![],
            names: vec![],
            num_regs: 0,
        };
        let code = CompiledCode {
            programs: vec![Arc::new(orphan)],
            ..empty_code()
        };
        let mut diags = Vec::new();
        check(&code, &[], &mut diags);
        assert!(
            diags
                .iter()
                .any(|d| d.code == Code::DataflowError && d.message.contains("slot 7")),
            "{diags:?}"
        );
    }
}
