//! Pass 3 — advice dataflow well-formedness.
//!
//! Advice programs are straight-line (the paper's §5 safety argument:
//! no jumps, no loops, so termination is structural). This pass checks
//! the *inter*-program structure the compiler relies on at weave time:
//! every `Unpack` must read a slot some causally earlier program packed
//! with the same tuple width, the `Emit` layout must be internally
//! consistent with its `OutputSpec`, and nothing is dead — a pack no
//! later stage consumes never reaches an `Emit` and only bloats baggage.

use std::collections::HashMap;

use pivot_baggage::{PackMode, QueryId};
use pivot_query::advice::ColumnRef;
use pivot_query::{AdviceOp, CompiledQuery};

use crate::diag::{Code, Diagnostic};

/// Checks the advice programs of `cq`, appending diagnostics.
pub(crate) fn check(cq: &CompiledQuery, diags: &mut Vec<Diagnostic>) {
    // Slot → (pack width, consumed by a later unpack).
    let mut packed: HashMap<QueryId, (usize, bool)> = HashMap::new();
    let mut emits = 0usize;

    for (pi, prog) in cq.advice.iter().enumerate() {
        let at = prog
            .tracepoints
            .first()
            .map(String::as_str)
            .unwrap_or("<no tracepoint>");
        if prog.tracepoints.is_empty() {
            diags.push(Diagnostic::error(
                Code::DataflowError,
                format!("advice program {pi} weaves into no tracepoint"),
            ));
        }
        for op in &prog.ops {
            match op {
                AdviceOp::Observe { .. } => {}
                AdviceOp::Unpack { slot, schema, .. } => match packed.get_mut(slot) {
                    None => diags.push(Diagnostic::error(
                        Code::DataflowError,
                        format!(
                            "advice at `{at}` unpacks slot {} but no \
                                 causally earlier advice packs it",
                            slot.0
                        ),
                    )),
                    Some((width, consumed)) => {
                        *consumed = true;
                        if *width != schema.len() {
                            diags.push(Diagnostic::error(
                                Code::DataflowError,
                                format!(
                                    "advice at `{at}` unpacks slot \
                                         {} expecting {} columns but it \
                                         was packed with {width}",
                                    slot.0,
                                    schema.len()
                                ),
                            ));
                        }
                    }
                },
                AdviceOp::Filter { .. } => {}
                AdviceOp::Pack {
                    slot,
                    mode,
                    exprs,
                    names,
                } => {
                    if exprs.len() != names.len() {
                        diags.push(Diagnostic::error(
                            Code::DataflowError,
                            format!(
                                "advice at `{at}` packs {} expressions \
                                 under {} names",
                                exprs.len(),
                                names.len()
                            ),
                        ));
                    }
                    if let PackMode::GroupAgg { key_len, aggs } = mode {
                        if key_len + aggs.len() != names.len() {
                            diags.push(Diagnostic::error(
                                Code::DataflowError,
                                format!(
                                    "advice at `{at}`: grouped pack has \
                                     {key_len} keys + {} aggregates but \
                                     {} columns",
                                    aggs.len(),
                                    names.len()
                                ),
                            ));
                        }
                    }
                    packed.insert(*slot, (names.len(), false));
                }
                AdviceOp::Emit { spec, .. } => {
                    emits += 1;
                    if spec.key_exprs.len() != spec.key_names.len()
                        || spec.aggs.len() != spec.agg_names.len()
                    {
                        diags.push(Diagnostic::error(
                            Code::DataflowError,
                            format!(
                                "emit at `{at}`: column name count does \
                                 not match expression count"
                            ),
                        ));
                    }
                    for c in &spec.columns {
                        let (label, idx, len) = match c {
                            ColumnRef::Key(i) => ("key", *i, spec.key_exprs.len()),
                            ColumnRef::Agg(i) => ("aggregate", *i, spec.aggs.len()),
                        };
                        if idx >= len {
                            diags.push(Diagnostic::error(
                                Code::DataflowError,
                                format!(
                                    "emit at `{at}` selects {label} \
                                     {idx} but only {len} exist"
                                ),
                            ));
                        }
                    }
                    if spec.streaming && !spec.aggs.is_empty() {
                        diags.push(Diagnostic::error(
                            Code::DataflowError,
                            format!(
                                "emit at `{at}` is marked streaming but \
                                 carries aggregates"
                            ),
                        ));
                    }
                }
            }
        }
        if !prog.packs() && !prog.emits() {
            diags.push(Diagnostic::warning(
                Code::DeadAdvice,
                format!(
                    "advice at `{at}` neither packs nor emits — it \
                     observes tuples and discards them"
                ),
            ));
        }
    }

    if emits == 0 {
        diags.push(Diagnostic::error(
            Code::DataflowError,
            "no advice program emits results; the query can never \
             produce output",
        ));
    }
    for (slot, (_, consumed)) in &packed {
        if !consumed {
            diags.push(Diagnostic::warning(
                Code::DeadAdvice,
                format!(
                    "slot {} is packed but no later advice unpacks it; \
                     the tuples ride the baggage for nothing",
                    slot.0
                ),
            ));
        }
    }
}
