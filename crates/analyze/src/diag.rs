//! Structured diagnostics.
//!
//! Every finding of the static verifier is a [`Diagnostic`]: a stable
//! code, a severity, an optional source span, a human-readable message,
//! and — where the fix is mechanical — a suggested rewrite. Codes are
//! stable so tests (and external tooling) can assert on them.

use std::fmt;

use pivot_query::Span;

/// Stable diagnostic codes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Code {
    /// `PT000` — the query text failed to parse.
    ParseError,
    /// `PT001` — an undefined tracepoint, alias, or export.
    UndefinedName,
    /// `PT002` — a type-incoherent expression (non-boolean predicate,
    /// arithmetic on booleans, aggregation over strings, …).
    TypeError,
    /// `PT003` — a dataflow/arity defect: an `Unpack` without a causally
    /// earlier `Pack`, pack/unpack width disagreement, emit columns out of
    /// range, or a multi-column alias used as a scalar.
    DataflowError,
    /// `PT004` — a dead advice operation (a pack no later stage unpacks,
    /// or a program that neither packs nor emits).
    DeadAdvice,
    /// `PT005` — a cycle in the query-reference graph.
    QueryCycle,
    /// `PT006` — an unbounded pack: baggage grows with the number of
    /// tuples per request and no Table 3 rewrite shrinks it.
    UnboundedPack,
    /// `PT007` — a defect the compiler reported that the earlier passes
    /// did not classify more precisely.
    CompileError,
    /// `PT008` — a bytecode-lowering mismatch: the lowered program the
    /// agents will execute degrades from the advice the compiler produced
    /// (a field reference no schema position satisfies, or a lowered
    /// program that fails structural validation). The verifier checks the
    /// executable artifact, not the source ("verify what you execute").
    LoweringError,
    /// `PT009` — a dead output column: a packed column some later stage
    /// unpacks but no filter, group-by, aggregate, pack, or emit ever
    /// reads. The bytes ride the baggage of every request for nothing.
    DeadColumn,
    /// `PT010` — `Trigger` advice riding an unbounded tuple flow: the
    /// query carries a hindsight trigger *and* a pack boundary that
    /// retains every tuple (`PackMode::All` survived optimization). The
    /// trigger then re-evaluates against an unboundedly growing join
    /// input on every event of the request, and a single hot request can
    /// fire retroactive flushes continuously — hindsight is designed for
    /// rare, bounded moments, not a per-event firehose.
    TriggerUnbounded,
}

impl Code {
    /// Returns the stable textual code.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::ParseError => "PT000",
            Code::UndefinedName => "PT001",
            Code::TypeError => "PT002",
            Code::DataflowError => "PT003",
            Code::DeadAdvice => "PT004",
            Code::QueryCycle => "PT005",
            Code::UnboundedPack => "PT006",
            Code::CompileError => "PT007",
            Code::LoweringError => "PT008",
            Code::DeadColumn => "PT009",
            Code::TriggerUnbounded => "PT010",
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// How bad a finding is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Informational observation.
    Note,
    /// Suspicious but installable.
    Warning,
    /// The query must not be woven.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding of the static verifier.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// Stable code (`PT000`…).
    pub code: Code,
    /// Severity.
    pub severity: Severity,
    /// Location within the query text, when one could be attributed.
    pub span: Option<Span>,
    /// Human-readable description of the defect.
    pub message: String,
    /// A suggested rewrite, when the fix is mechanical.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            span: None,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Builds a warning diagnostic.
    pub fn warning(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::error(code, message)
        }
    }

    /// Attaches a source span.
    pub fn with_span(mut self, span: Option<Span>) -> Diagnostic {
        self.span = span;
        self
    }

    /// Attaches a suggested rewrite.
    pub fn suggest(mut self, s: impl Into<String>) -> Diagnostic {
        self.suggestion = Some(s.into());
        self
    }

    /// Returns `true` for error-severity findings.
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }

    /// Renders the diagnostic in a `rustc`-like style, naming `origin`
    /// (usually a file name) in the location line.
    pub fn render(&self, origin: &str) -> String {
        let mut out = format!("{}[{}]: {}", self.severity, self.code, self.message);
        if let Some(s) = self.span {
            out.push_str(&format!("\n  --> {}:{}:{}", origin, s.line, s.col));
        }
        if let Some(sugg) = &self.suggestion {
            out.push_str(&format!("\n  = help: {sugg}"));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.code, self.message)
    }
}

/// Returns the candidate from `options` nearest to `name` (by edit
/// distance), if it is close enough to plausibly be a typo.
pub(crate) fn nearest<'a>(
    name: &str,
    options: impl IntoIterator<Item = &'a str>,
) -> Option<&'a str> {
    let mut best: Option<(usize, &str)> = None;
    for opt in options {
        let d = edit_distance(name, opt);
        if best.is_none_or(|(bd, _)| d < bd) {
            best = Some((d, opt));
        }
    }
    let (d, opt) = best?;
    // A typo shares most of its characters with the intended name.
    (d * 2 <= name.len().max(opt.len())).then_some(opt)
}

fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_finds_typos_but_not_strangers() {
        let opts = ["procName", "delta", "host"];
        assert_eq!(nearest("procNam", opts), Some("procName"));
        assert_eq!(nearest("detla", opts), Some("delta"));
        assert_eq!(nearest("zzzzzzz", opts), None);
    }

    #[test]
    fn render_includes_code_span_and_help() {
        let d = Diagnostic::error(Code::UndefinedName, "no such export")
            .with_span(Some(pivot_query::Span {
                start: 0,
                end: 3,
                line: 2,
                col: 7,
            }))
            .suggest("did you mean `delta`?");
        let r = d.render("q.pt");
        assert!(r.contains("error[PT001]"), "{r}");
        assert!(r.contains("q.pt:2:7"), "{r}");
        assert!(r.contains("help"), "{r}");
    }
}
