//! Static install-time verification of Pivot Tracing queries.
//!
//! The paper's §5 ("Discussion") argues Pivot Tracing is safe to apply
//! to live systems because advice is restricted: straight-line programs,
//! no side effects, bounded baggage growth. This crate turns those
//! informal arguments into a machine-checked gate that runs over every
//! query *before* it is woven into tracepoints:
//!
//! 1. **Name/schema resolution** ([`mod@diag`] code `PT001`) — every
//!    field reference is interpreted against the tracepoint registry's
//!    exports and the output columns of referenced sub-queries, with
//!    spans and nearest-name suggestions.
//! 2. **Type coherence** (`PT002`) — abstract interpretation of every
//!    expression over a small type lattice; non-boolean predicates,
//!    boolean arithmetic, and string aggregation are rejected.
//! 3. **Dataflow well-formedness** (`PT003`/`PT004`) — every `Unpack`
//!    reads a slot a causally earlier `Pack` wrote with the same width,
//!    the `Emit` layout is consistent with its `OutputSpec`, and dead
//!    advice (unconsumed packs, programs that do nothing) is flagged —
//!    as are dead output *columns* (`PT009`): packed columns a later
//!    stage unpacks but nothing ever reads.
//! 4. **Baggage-cost bounding** (`PT006`, [`cost`]) — a static upper
//!    bound on the bytes a query adds to one request's baggage, with
//!    warnings for `PackMode::All` boundaries no Table 3 rewrite shrank —
//!    and `PT010` when such a boundary feeds a `Trigger` clause, turning
//!    the hindsight flush into a per-event firehose.
//! 5. **Reference-cycle detection** (`PT005`, over the
//!    [`SourceKind::QueryRef`](pivot_query::SourceKind) graph) — guards
//!    the compiler's recursive inlining against open-world resolvers.
//! 6. **Lowering fidelity** (`PT008`) — the dataflow pass runs on the
//!    *lowered bytecode* ([`CompiledCode::lower`]), the exact artifact
//!    agents execute and the bus ships, not on the advice-op trees it
//!    came from. Degradation notes from lowering and programs that fail
//!    structural bytecode validation are install-blocking errors:
//!    verify what you execute.
//!
//! The frontend runs this gate in `install_named` and surfaces failures
//! as `InstallError::Rejected`; the standalone `pivot-lint` binary runs
//! it over query files.
//!
//! [`CompiledCode::lower`]: pivot_query::CompiledCode::lower

pub mod cost;
mod cycle;
mod dataflow;
pub mod diag;
mod scope;
mod types;

pub use cost::{plan_cost, Bound, CostModel, PlanCost, StageCost};
pub use diag::{Code, Diagnostic, Severity};

use pivot_baggage::QueryId;
use pivot_query::{
    compile, locate, parse, plan_query, CompileError, CompiledCode, Options, Resolver,
};

/// The verdict of the verifier on one query.
#[derive(Clone, Debug)]
pub struct Analysis {
    /// Every finding, in pass order.
    pub diagnostics: Vec<Diagnostic>,
    /// Baggage cost of the optimized plan (absent when compilation was
    /// not reached).
    pub optimized_cost: Option<PlanCost>,
    /// Baggage cost of the unoptimized plan, for the optimizer
    /// cross-check: the optimized bound must never exceed this.
    pub unoptimized_cost: Option<PlanCost>,
}

impl Analysis {
    /// Returns `true` when any finding is an error (the query must not
    /// be woven).
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(Diagnostic::is_error)
    }

    /// Returns the error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.is_error())
    }

    /// Returns `true` when a diagnostic with `code` was reported.
    pub fn has_code(&self, code: Code) -> bool {
        self.diagnostics.iter().any(|d| d.code == code)
    }
}

/// The static verifier. Construct one per resolver (usually the
/// frontend) and [`Analyzer::analyze`] each query text.
pub struct Analyzer<'r> {
    resolver: &'r dyn Resolver,
    cost_model: CostModel,
}

impl<'r> Analyzer<'r> {
    /// Creates a verifier resolving names through `resolver`.
    pub fn new(resolver: &'r dyn Resolver) -> Analyzer<'r> {
        Analyzer {
            resolver,
            cost_model: CostModel::default(),
        }
    }

    /// Overrides the byte-cost model.
    pub fn with_cost_model(mut self, m: CostModel) -> Analyzer<'r> {
        self.cost_model = m;
        self
    }

    /// Runs every pass over `text` (to be installed under `name`).
    pub fn analyze(&self, text: &str, name: &str) -> Analysis {
        let mut diags = Vec::new();
        let analysis = |diags: Vec<Diagnostic>| Analysis {
            diagnostics: diags,
            optimized_cost: None,
            unoptimized_cost: None,
        };

        // Parse.
        let ast = match parse(text) {
            Ok(ast) => ast,
            Err(e) => {
                diags.push(Diagnostic::error(Code::ParseError, e.to_string()));
                return analysis(diags);
            }
        };

        // Reference cycles guard the recursive passes below.
        if cycle::check(name, &ast, text, self.resolver, &mut diags) {
            return analysis(diags);
        }

        // Names and types work on the AST and recover per-expression, so
        // both always run (more findings per invocation).
        scope::check(&ast, text, self.resolver, &mut diags);
        types::check(&ast, text, &mut diags);
        if diags.iter().any(Diagnostic::is_error) {
            return analysis(diags);
        }

        // Compile both plans. The id is a placeholder — slot derivation
        // is relative, so any id yields the same structure.
        let id = QueryId(1);
        let compiled = compile(text, name, id, self.resolver, Options::default());
        let compiled = match compiled {
            Ok(c) => c,
            Err(e) => {
                diags.push(compile_diag(&e, text));
                return analysis(diags);
            }
        };
        // Dataflow runs over the lowered bytecode — the artifact agents
        // execute — so lowering defects (PT008) surface here too.
        let (code, lowering_notes) = CompiledCode::lower(&compiled);
        dataflow::check(&code, &lowering_notes, &mut diags);
        dataflow::check_dead_columns(&compiled, &code, &mut diags);

        let optimized = plan_query(&ast, self.resolver, Options::default()).ok();
        let unoptimized = plan_query(&ast, self.resolver, Options::unoptimized()).ok();
        let optimized_cost = optimized.map(|p| plan_cost(&p, &self.cost_model));
        let unoptimized_cost = unoptimized.map(|p| plan_cost(&p, &self.cost_model));

        // Unbounded boundaries that survived optimization.
        if let Some(cost) = &optimized_cost {
            for s in cost.stages.iter().filter(|s| s.unbounded_mode) {
                let alias = s.alias.rsplit("::").next().unwrap_or(&s.alias);
                diags.push(
                    Diagnostic::warning(
                        Code::UnboundedPack,
                        format!(
                            "the pack at `{alias}` retains every tuple: \
                             baggage grows with the number of `{alias}` \
                             events in a request",
                        ),
                    )
                    .with_span(locate(text, alias))
                    .suggest(format!(
                        "bound it — `FirstN(n, ...)` / `MostRecentN(n, \
                         ...)` on `{alias}` — or aggregate in Select so \
                         the optimizer can push the aggregation into \
                         the baggage (Table 3)",
                    )),
                );
            }
        }

        // Trigger advice on an unbounded tuple flow (PT010). The
        // detection reuses the cost pass verbatim: a hindsight trigger is
        // only proportionate when the flow feeding it is bounded, so any
        // `PackMode::All` boundary that survived optimization turns a
        // `Trigger` clause into a per-event firehose risk. Checked on the
        // lowered bytecode — the artifact agents execute — so a trigger
        // the compiler elided does not warn.
        let has_trigger = code.programs.iter().any(|p| p.triggers());
        if has_trigger {
            if let Some(unbounded) = optimized_cost
                .as_ref()
                .and_then(|c| c.stages.iter().find(|s| s.unbounded_mode))
            {
                let alias = unbounded.alias.rsplit("::").next().unwrap_or("");
                diags.push(
                    Diagnostic::warning(
                        Code::TriggerUnbounded,
                        format!(
                            "`Trigger` advice rides an unbounded tuple \
                             flow: the pack at `{alias}` retains every \
                             tuple, so one hot request can fire the \
                             hindsight flush on every event",
                        ),
                    )
                    .with_span(locate(text, "Trigger"))
                    .suggest(format!(
                        "bound the flow first — `First(n, ...)` / \
                         `MostRecent(n, ...)` on `{alias}` — so the \
                         trigger fires against a bounded window",
                    )),
                );
            }
        }

        Analysis {
            diagnostics: diags,
            optimized_cost,
            unoptimized_cost,
        }
    }
}

/// One-shot convenience over [`Analyzer`].
pub fn analyze(text: &str, name: &str, resolver: &dyn Resolver) -> Analysis {
    Analyzer::new(resolver).analyze(text, name)
}

/// Maps a compiler error the AST passes did not anticipate onto a
/// diagnostic (defense in depth: the verifier's own passes should catch
/// these first, with better spans).
fn compile_diag(e: &CompileError, text: &str) -> Diagnostic {
    let (code, needle) = match e {
        CompileError::Parse(_) => (Code::ParseError, None),
        CompileError::UnknownTracepoint(t) => (Code::UndefinedName, Some(t.clone())),
        CompileError::UnknownField(f) => (Code::UndefinedName, Some(f.clone())),
        CompileError::UnknownExport { field, .. } => (Code::UndefinedName, Some(field.clone())),
        CompileError::AliasNotScalar(a) => (Code::DataflowError, Some(a.clone())),
        CompileError::BadJoin(a) => (Code::DataflowError, Some(a.clone())),
        CompileError::FromMustBeTracepoints
        | CompileError::DuplicateAlias(_)
        | CompileError::TooManyStages => (Code::CompileError, None),
    };
    Diagnostic::error(code, e.to_string()).with_span(needle.and_then(|n| locate(text, &n)))
}
