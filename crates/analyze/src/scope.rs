//! Pass 1 — name and schema resolution.
//!
//! Builds the alias scope of a parsed query (tracepoint exports from the
//! registry, output columns of referenced sub-queries) and checks every
//! field reference in `Where`, `GroupBy`, and `Select` against it. This
//! anticipates the compiler's resolution rules exactly, but reports with
//! spans and nearest-name suggestions — and it also catches bad exports
//! under unoptimized compilation, where the compiler observes every
//! export and a misspelled field would silently evaluate to null at
//! runtime.

use pivot_model::Expr;
use pivot_query::ast::{Query, SelectItem, Source};
use pivot_query::{locate, Resolver};

use crate::diag::{nearest, Code, Diagnostic};

/// What one alias may be dereferenced into.
pub(crate) struct AliasInfo {
    /// Unqualified column names: tracepoint exports, or sub-query output
    /// column suffixes.
    pub columns: Vec<String>,
    /// `true` when the bare alias is usable as a scalar value
    /// (single-column sub-query reference).
    pub scalar: bool,
}

/// The alias environment of one query level.
pub(crate) struct Scope {
    pub aliases: Vec<(String, AliasInfo)>,
}

impl Scope {
    fn get(&self, alias: &str) -> Option<&AliasInfo> {
        self.aliases
            .iter()
            .find(|(a, _)| a == alias)
            .map(|(_, i)| i)
    }

    fn names(&self) -> impl Iterator<Item = &str> {
        self.aliases.iter().map(|(a, _)| a.as_str())
    }
}

/// Builds the scope and checks every reference, appending diagnostics.
pub(crate) fn check(
    ast: &Query,
    text: &str,
    resolver: &dyn Resolver,
    diags: &mut Vec<Diagnostic>,
) -> Scope {
    let mut scope = Scope {
        aliases: Vec::new(),
    };

    // The From source must name tracepoints (the emit point needs a
    // concrete weave location).
    if single_query_ref(&ast.from, resolver).is_some() {
        diags.push(
            Diagnostic::error(
                Code::CompileError,
                "the From clause must name tracepoints, not a query \
                 reference",
            )
            .with_span(locate(text, &ast.from.alias))
            .suggest(
                "join the referenced query instead: `Join x In <query> \
                 On x -> ...`",
            ),
        );
    }
    bind_source(&ast.from, text, resolver, &mut scope, diags);

    for join in &ast.joins {
        // `On` must relate the new alias (causally earlier) to the rest
        // of the query.
        if join.earlier != join.source.alias {
            diags.push(
                Diagnostic::error(
                    Code::DataflowError,
                    format!(
                        "join `{}`: the left side of `->` must be the \
                         newly declared alias (tuples of a join flow \
                         causally forward)",
                        join.source.alias
                    ),
                )
                .with_span(locate(text, &join.earlier))
                .suggest(format!(
                    "write `On {} -> {}`",
                    join.source.alias, join.later
                )),
            );
        }
        if scope.get(&join.later).is_none() && join.later != ast.from.alias {
            let mut d = Diagnostic::warning(
                Code::UndefinedName,
                format!(
                    "`{}` on the right of `->` is not a declared alias; \
                     the compiler treats it as the From alias `{}`",
                    join.later, ast.from.alias
                ),
            )
            .with_span(locate(text, &join.later));
            d.severity = crate::diag::Severity::Note;
            diags.push(d);
        }
        bind_source(&join.source, text, resolver, &mut scope, diags);
    }

    // Check every expression against the completed scope.
    for w in &ast.wheres {
        check_expr(w, &scope, text, diags);
    }
    for g in &ast.group_by {
        check_expr(&Expr::Field(g.clone()), &scope, text, diags);
    }
    for item in &ast.select {
        let (SelectItem::Expr(e) | SelectItem::Agg(_, e)) = item;
        check_expr(e, &scope, text, diags);
    }
    scope
}

/// Returns the referenced query name when `source` is a single-name
/// reference to an installed query.
fn single_query_ref(source: &Source, resolver: &dyn Resolver) -> Option<String> {
    let pivot_query::SourceKind::Tracepoints(names) = &source.kind else {
        if let pivot_query::SourceKind::QueryRef(n) = &source.kind {
            return Some(n.clone());
        }
        return None;
    };
    (names.len() == 1 && resolver.query_ast(&names[0]).is_some()).then(|| names[0].clone())
}

fn bind_source(
    source: &Source,
    text: &str,
    resolver: &dyn Resolver,
    scope: &mut Scope,
    diags: &mut Vec<Diagnostic>,
) {
    if scope.get(&source.alias).is_some() {
        diags.push(
            Diagnostic::error(
                Code::CompileError,
                format!("alias `{}` declared twice", source.alias),
            )
            .with_span(locate(text, &source.alias)),
        );
    }
    let info = if let Some(qname) = single_query_ref(source, resolver) {
        let sub = resolver.query_ast(&qname).expect("checked");
        query_ref_info(&sub, &source.alias)
    } else {
        let pivot_query::SourceKind::Tracepoints(names) = &source.kind else {
            return;
        };
        let mut columns: Vec<String> = Vec::new();
        for tp in names {
            match resolver.tracepoint_exports(tp) {
                Some(exports) => {
                    for e in exports {
                        if !columns.contains(&e) {
                            columns.push(e);
                        }
                    }
                }
                None => diags.push(
                    Diagnostic::error(Code::UndefinedName, format!("unknown tracepoint `{tp}`"))
                        .with_span(locate(text, tp)),
                ),
            }
        }
        AliasInfo {
            columns,
            scalar: false,
        }
    };
    scope.aliases.push((source.alias.clone(), info));
}

/// Derives the referencable output columns of a sub-query bound to
/// `alias` — mirroring the compiler's inline column naming: a
/// single-column sub-query is addressed by the bare alias; otherwise each
/// select item is addressed by its field's last path segment (or a
/// positional `c<i>` for computed columns).
fn query_ref_info(sub: &Query, alias: &str) -> AliasInfo {
    if sub.select.len() == 1 {
        return AliasInfo {
            columns: vec![alias.to_owned()],
            scalar: true,
        };
    }
    let columns = sub
        .select
        .iter()
        .enumerate()
        .map(|(i, item)| match item {
            SelectItem::Expr(Expr::Field(f)) => f.rsplit('.').next().unwrap_or("c").to_owned(),
            _ => format!("c{i}"),
        })
        .collect();
    AliasInfo {
        columns,
        scalar: false,
    }
}

fn check_expr(e: &Expr, scope: &Scope, text: &str, diags: &mut Vec<Diagnostic>) {
    match e {
        Expr::Field(name) => check_field(name, scope, text, diags),
        Expr::Lit(_) => {}
        Expr::Unary(_, inner) => check_expr(inner, scope, text, diags),
        Expr::Binary(_, l, r) => {
            check_expr(l, scope, text, diags);
            check_expr(r, scope, text, diags);
        }
    }
}

fn check_field(name: &str, scope: &Scope, text: &str, diags: &mut Vec<Diagnostic>) {
    if let Some((alias, field)) = name.split_once('.') {
        let Some(info) = scope.get(alias) else {
            let mut d = Diagnostic::error(
                Code::UndefinedName,
                format!("`{name}`: no alias `{alias}` in scope"),
            )
            .with_span(locate(text, name));
            if let Some(n) = nearest(alias, scope.names()) {
                d = d.suggest(format!("did you mean `{n}.{field}`?"));
            }
            diags.push(d);
            return;
        };
        let found = info
            .columns
            .iter()
            .any(|c| c == field || c.rsplit('.').next() == Some(field));
        if !found {
            let mut d = Diagnostic::error(
                Code::UndefinedName,
                format!(
                    "`{alias}` does not export `{field}` (available: {})",
                    info.columns.join(", ")
                ),
            )
            .with_span(locate(text, name));
            if let Some(n) = nearest(field, info.columns.iter().map(String::as_str)) {
                d = d.suggest(format!("did you mean `{alias}.{n}`?"));
            }
            diags.push(d);
        }
        return;
    }
    // Bare name: only valid as a scalar sub-query alias.
    match scope.get(name) {
        Some(info) if info.scalar => {}
        Some(info) => diags.push(
            Diagnostic::error(
                Code::DataflowError,
                format!(
                    "alias `{name}` used as a value but it has {} \
                     columns",
                    info.columns.len()
                ),
            )
            .with_span(locate(text, name))
            .suggest(format!(
                "reference one column, e.g. `{name}.{}`",
                info.columns.first().map(String::as_str).unwrap_or("field")
            )),
        ),
        None => {
            let mut d = Diagnostic::error(Code::UndefinedName, format!("cannot resolve `{name}`"))
                .with_span(locate(text, name));
            if let Some(n) = nearest(name, scope.names()) {
                d = d.suggest(format!("did you mean `{n}`?"));
            }
            diags.push(d);
        }
    }
}
