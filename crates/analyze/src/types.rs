//! Pass 2 — type coherence by abstract interpretation.
//!
//! Expressions are interpreted over a small type lattice: tracepoint
//! exports are dynamically typed (`Unknown`), literals are concrete, and
//! operators propagate abstract types bottom-up. Only *definite* errors
//! are reported — combinations the runtime evaluator can never execute
//! without a type fault, like `&&` over numbers or `SUM` of a string —
//! so a query that could evaluate cleanly is never rejected.

use pivot_model::{AggFunc, BinOp, Expr, UnOp, Value};
use pivot_query::ast::{Query, SelectItem};
use pivot_query::{locate, Span};

use crate::diag::{Code, Diagnostic};

/// The abstract type of an expression.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Ty {
    /// Statically unknown (field references, error recovery).
    Unknown,
    /// A numeric value (`I64`, `U64`, `F64`, aggregate states).
    Num,
    /// A string.
    Str,
    /// A boolean.
    Bool,
    /// The null literal.
    Null,
}

impl Ty {
    fn name(self) -> &'static str {
        match self {
            Ty::Unknown => "unknown",
            Ty::Num => "a number",
            Ty::Str => "a string",
            Ty::Bool => "a boolean",
            Ty::Null => "null",
        }
    }
}

/// Checks every expression position of `ast`, appending diagnostics.
pub(crate) fn check(ast: &Query, text: &str, diags: &mut Vec<Diagnostic>) {
    for w in &ast.wheres {
        let ty = infer(w, text, diags);
        if matches!(ty, Ty::Num | Ty::Str | Ty::Null) {
            diags.push(
                Diagnostic::error(
                    Code::TypeError,
                    format!("Where predicate is {}, expected a boolean", ty.name()),
                )
                .with_span(span_of(w, text))
                .suggest(
                    "compare the value, e.g. `... != 0` or `... == \
                     \"name\"`",
                ),
            );
        }
    }
    for item in &ast.select {
        match item {
            SelectItem::Expr(e) => {
                infer(e, text, diags);
            }
            SelectItem::Agg(f, e) => check_agg(*f, e, text, diags),
        }
    }
}

fn check_agg(f: AggFunc, arg: &Expr, text: &str, diags: &mut Vec<Diagnostic>) {
    // Bare COUNT carries a null-literal placeholder argument.
    if matches!(arg, Expr::Lit(Value::Null)) {
        return;
    }
    let ty = infer(arg, text, diags);
    let bad = match f {
        AggFunc::Count => false,
        AggFunc::Sum | AggFunc::Average => {
            matches!(ty, Ty::Str | Ty::Bool)
        }
        AggFunc::Min | AggFunc::Max => matches!(ty, Ty::Bool),
    };
    if bad {
        diags.push(
            Diagnostic::error(
                Code::TypeError,
                format!(
                    "{}(...) aggregates numbers, but its argument is {}",
                    f.name(),
                    ty.name()
                ),
            )
            .with_span(span_of(arg, text))
            .suggest("aggregate a numeric export, or use COUNT"),
        );
    }
}

/// Infers the abstract type of `e`, reporting definite faults.
pub(crate) fn infer(e: &Expr, text: &str, diags: &mut Vec<Diagnostic>) -> Ty {
    match e {
        Expr::Field(_) => Ty::Unknown,
        Expr::Lit(v) => match v {
            Value::Null => Ty::Null,
            Value::Bool(_) => Ty::Bool,
            Value::I64(_) | Value::U64(_) | Value::F64(_) => Ty::Num,
            Value::Str(_) => Ty::Str,
            Value::Agg(_) => Ty::Num,
        },
        Expr::Unary(op, inner) => {
            let t = infer(inner, text, diags);
            match op {
                UnOp::Neg => {
                    if matches!(t, Ty::Str | Ty::Bool) {
                        report_unary(e, "-", t, text, diags);
                        Ty::Unknown
                    } else {
                        Ty::Num
                    }
                }
                UnOp::Not => {
                    if matches!(t, Ty::Num | Ty::Str) {
                        report_unary(e, "!", t, text, diags);
                        Ty::Unknown
                    } else {
                        Ty::Bool
                    }
                }
            }
        }
        Expr::Binary(op, l, r) => {
            let lt = infer(l, text, diags);
            let rt = infer(r, text, diags);
            infer_binary(e, *op, lt, rt, text, diags)
        }
    }
}

fn infer_binary(
    e: &Expr,
    op: BinOp,
    lt: Ty,
    rt: Ty,
    text: &str,
    diags: &mut Vec<Diagnostic>,
) -> Ty {
    let both = [lt, rt];
    match op {
        BinOp::Add => {
            if both.contains(&Ty::Bool) {
                report_binary(e, op, lt, rt, text, diags);
                return Ty::Unknown;
            }
            if both.contains(&Ty::Str) {
                Ty::Str
            } else {
                Ty::Num
            }
        }
        BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod => {
            if both.contains(&Ty::Str) || both.contains(&Ty::Bool) {
                report_binary(e, op, lt, rt, text, diags);
                return Ty::Unknown;
            }
            Ty::Num
        }
        BinOp::Eq | BinOp::Ne => Ty::Bool,
        BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let incomparable =
                both.contains(&Ty::Bool) || (both.contains(&Ty::Str) && both.contains(&Ty::Num));
            if incomparable {
                report_binary(e, op, lt, rt, text, diags);
                return Ty::Unknown;
            }
            Ty::Bool
        }
        BinOp::And | BinOp::Or => {
            if both.contains(&Ty::Num) || both.contains(&Ty::Str) {
                report_binary(e, op, lt, rt, text, diags);
                return Ty::Unknown;
            }
            Ty::Bool
        }
    }
}

fn report_unary(e: &Expr, sym: &str, t: Ty, text: &str, diags: &mut Vec<Diagnostic>) {
    diags.push(
        Diagnostic::error(
            Code::TypeError,
            format!("`{sym}` cannot be applied to {}", t.name()),
        )
        .with_span(span_of(e, text)),
    );
}

fn report_binary(e: &Expr, op: BinOp, lt: Ty, rt: Ty, text: &str, diags: &mut Vec<Diagnostic>) {
    diags.push(
        Diagnostic::error(
            Code::TypeError,
            format!(
                "`{}` cannot combine {} and {}",
                op.symbol(),
                lt.name(),
                rt.name()
            ),
        )
        .with_span(span_of(e, text)),
    );
}

/// Best-effort span: the first field reference inside `e` (fields are the
/// only fragments guaranteed to appear verbatim in the source text),
/// falling back to a literal's rendering.
pub(crate) fn span_of(e: &Expr, text: &str) -> Option<Span> {
    if let Some(f) = first_field(e) {
        return locate(text, f);
    }
    locate(text, &e.to_string())
}

fn first_field(e: &Expr) -> Option<&str> {
    match e {
        Expr::Field(f) => Some(f),
        Expr::Lit(_) => None,
        Expr::Unary(_, inner) => first_field(inner),
        Expr::Binary(_, l, r) => first_field(l).or_else(|| first_field(r)),
    }
}
