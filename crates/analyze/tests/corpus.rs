//! Malformed-query corpus: each file under `corpus/` exhibits one defect
//! class, and the verifier must report its exact diagnostic code.

use pivot_analyze::{analyze, Analysis, Code, Severity};
use pivot_query::{parse, Query, Resolver};

/// A registry-backed resolver independent of the frontend, so the corpus
/// exercises the verifier through the public [`Resolver`] seam.
struct TestResolver {
    tracepoints: Vec<(&'static str, Vec<&'static str>)>,
    queries: Vec<(&'static str, Query)>,
}

impl TestResolver {
    fn new() -> TestResolver {
        let parse_q = |t| parse(t).expect("fixture query parses");
        TestResolver {
            tracepoints: vec![
                ("DataNodeMetrics.incrBytesRead", vec!["delta", "host"]),
                ("DN.DataTransferProtocol", vec!["op", "size", "host"]),
                ("StressTest.DoNextOp", vec!["op", "host"]),
                ("RS.SendResponse", vec!["queueNanos", "gcNanos"]),
                ("JobComplete", vec!["id"]),
            ],
            queries: vec![
                // Two output columns: not usable as a scalar.
                (
                    "latency2",
                    parse_q(
                        "From resp In RS.SendResponse
                         Select resp.queueNanos, resp.gcNanos",
                    ),
                ),
                // chicken <-> egg reference cycle.
                ("chicken", parse_q("From e In egg Select COUNT")),
                ("egg", parse_q("From c In chicken Select COUNT")),
            ],
        }
    }
}

impl Resolver for TestResolver {
    fn tracepoint_exports(&self, name: &str) -> Option<Vec<String>> {
        self.tracepoints
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, e)| e.iter().map(|s| s.to_string()).collect())
    }

    fn query_ast(&self, name: &str) -> Option<Query> {
        self.queries
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, q)| q.clone())
    }
}

fn run(text: &str, name: &str) -> Analysis {
    analyze(text, name, &TestResolver::new())
}

/// Asserts `text` yields an error with `code`, carrying a span.
fn expect_error(text: &str, name: &str, code: Code) -> Analysis {
    let a = run(text, name);
    assert!(a.has_errors(), "{name}: expected errors, got {a:?}");
    let d = a
        .diagnostics
        .iter()
        .find(|d| d.code == code)
        .unwrap_or_else(|| panic!("{name}: no {code}: {a:?}"));
    assert_eq!(d.severity, Severity::Error, "{name}: {d:?}");
    a
}

#[test]
fn undefined_export_is_pt001_with_typo_suggestion() {
    let text = include_str!("corpus/undefined_export.pt");
    let a = expect_error(text, "undefined_export", Code::UndefinedName);
    let d = a
        .diagnostics
        .iter()
        .find(|d| d.code == Code::UndefinedName)
        .unwrap();
    assert!(d.span.is_some(), "{d:?}");
    let sugg = d.suggestion.as_deref().unwrap_or_default();
    assert!(sugg.contains("incr.delta"), "{d:?}");
}

#[test]
fn multi_column_alias_as_scalar_is_pt003() {
    let text = include_str!("corpus/alias_not_scalar.pt");
    let a = expect_error(text, "alias_not_scalar", Code::DataflowError);
    let d = a
        .diagnostics
        .iter()
        .find(|d| d.code == Code::DataflowError)
        .unwrap();
    assert!(d.span.is_some(), "{d:?}");
    // The fix-it names a real column of the referenced query.
    assert!(
        d.suggestion.as_deref().unwrap_or_default().contains("lat."),
        "{d:?}"
    );
}

#[test]
fn query_reference_cycle_is_pt005() {
    let text = include_str!("corpus/cycle.pt");
    let a = expect_error(text, "chicken", Code::QueryCycle);
    let d = a
        .diagnostics
        .iter()
        .find(|d| d.code == Code::QueryCycle)
        .unwrap();
    assert!(d.message.contains("chicken -> egg -> chicken"), "{d:?}");
}

#[test]
fn unbounded_pack_is_pt006_warning_not_error() {
    let text = include_str!("corpus/unbounded_pack.pt");
    let a = run(text, "unbounded_pack");
    assert!(!a.has_errors(), "{a:?}");
    let d = a
        .diagnostics
        .iter()
        .find(|d| d.code == Code::UnboundedPack)
        .unwrap_or_else(|| panic!("no PT006: {a:?}"));
    assert_eq!(d.severity, Severity::Warning, "{d:?}");
    // And the cost pass agrees: the optimized bound is infinite.
    assert!(a
        .optimized_cost
        .as_ref()
        .unwrap()
        .total_bytes
        .as_finite()
        .is_none());
}

#[test]
fn dead_output_column_is_pt009_warning_not_error() {
    // `latency2` emits two columns; the outer query consumes only
    // `queueNanos`, so the inlined pack carries `gcNanos` for nothing.
    let text = include_str!("corpus/dead_column.pt");
    let a = run(text, "dead_column");
    assert!(!a.has_errors(), "{a:?}");
    let d = a
        .diagnostics
        .iter()
        .find(|d| d.code == Code::DeadColumn)
        .unwrap_or_else(|| panic!("no PT009: {a:?}"));
    assert_eq!(d.severity, Severity::Warning, "{d:?}");
    assert!(d.message.contains("gcNanos"), "{d:?}");
    assert!(
        d.suggestion
            .as_deref()
            .unwrap_or_default()
            .contains("Select"),
        "{d:?}"
    );
    // The column the outer query does read is not flagged.
    assert!(
        !a.diagnostics
            .iter()
            .any(|d| d.code == Code::DeadColumn && d.message.contains("queueNanos")),
        "{a:?}"
    );
}

#[test]
fn trigger_on_unbounded_flow_is_pt010_warning_not_error() {
    let text = include_str!("corpus/trigger_unbounded.pt");
    let a = run(text, "trigger_unbounded");
    assert!(!a.has_errors(), "{a:?}");
    let d = a
        .diagnostics
        .iter()
        .find(|d| d.code == Code::TriggerUnbounded)
        .unwrap_or_else(|| panic!("no PT010: {a:?}"));
    assert_eq!(d.severity, Severity::Warning, "{d:?}");
    assert!(d.span.is_some(), "{d:?}");
    assert!(d.message.contains("st"), "{d:?}");
    assert!(
        d.suggestion
            .as_deref()
            .unwrap_or_default()
            .contains("First"),
        "{d:?}"
    );
    // The unbounded pack itself still warns on its own account (PT006):
    // PT010 is the trigger-specific escalation, not a replacement.
    assert!(a.has_code(Code::UnboundedPack), "{a:?}");
}

#[test]
fn trigger_on_bounded_flow_is_clean() {
    // A `First(n)` join and a join-free trigger query: both carry
    // `Trigger` advice over a bounded flow, and neither draws PT010 —
    // the lint keys on the flow, not on the trigger's mere presence.
    for text in [
        "From dnop In DN.DataTransferProtocol
         Join st In First(StressTest.DoNextOp) On st -> dnop
         Trigger dnop.size > 1000000
         Select st.host, dnop.host",
        "From incr In DataNodeMetrics.incrBytesRead
         Where incr.delta > 90
         Trigger
         Select incr.delta",
    ] {
        let a = run(text, "trigger_bounded");
        assert!(a.diagnostics.is_empty(), "{a:?}");
    }
}

#[test]
fn type_incoherence_is_pt002() {
    let text = include_str!("corpus/type_error.pt");
    expect_error(text, "type_error", Code::TypeError);
}

#[test]
fn unparseable_text_is_pt000() {
    let text = include_str!("corpus/parse_error.pt");
    expect_error(text, "parse_error", Code::ParseError);
}

#[test]
fn bounded_join_query_is_clean() {
    // The paper's Q2 shape: a First() join aggregated in Select — every
    // pass accepts it and the optimized bound is finite.
    let a = run(
        "From incr In DataNodeMetrics.incrBytesRead
         Join dnop In First(DN.DataTransferProtocol) On dnop -> incr
         GroupBy dnop.op
         Select dnop.op, SUM(incr.delta)",
        "clean",
    );
    assert!(a.diagnostics.is_empty(), "{a:?}");
    let opt = a.optimized_cost.unwrap().total_bytes;
    let unopt = a.unoptimized_cost.unwrap().total_bytes;
    assert!(opt.as_finite().is_some(), "{opt:?}");
    assert!(opt.le(unopt));
}
