//! The baggage container.

use std::sync::Arc;

use pivot_itc::Stamp;
use pivot_model::Tuple;

use crate::entry::{Entry, PackMode};
use crate::instance::Instance;
use crate::wire;
use crate::QueryId;

/// The decoded representation: one active instance per branch plus the
/// inactive instances inherited from earlier branch points.
#[derive(Clone, PartialEq, Debug)]
pub(crate) struct Live {
    pub(crate) active: Instance,
    pub(crate) inactive: Vec<Instance>,
}

impl Live {
    fn new() -> Live {
        Live {
            active: Instance::new(Stamp::seed()),
            inactive: Vec::new(),
        }
    }

    fn is_empty(&self) -> bool {
        self.active.is_empty() && self.inactive.iter().all(Instance::is_empty)
    }
}

/// Pack-side cost counters for one baggage handle.
///
/// The runtime overload governor charges each query for the baggage work
/// its advice performs; the meter is the cheap, always-consistent tally it
/// reads deltas from around each advice program. It is *local state of
/// this handle* — it is not serialized, does not travel on the wire, and
/// never participates in baggage equality.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct PackMeter {
    /// Tuples passed to `pack` on this handle.
    pub tuples: u64,
    /// Values (tuple fields) passed to `pack` on this handle.
    pub values: u64,
    /// Tuples truncated by the `All`-mode hard cap
    /// ([`crate::entry::ALL_TUPLE_CAP`]), on pack or on join-merge.
    pub truncated: u64,
}

/// The result of [`Baggage::unpack_view`]: unpacked tuples, borrowed
/// straight out of the baggage entry when no cross-instance combination
/// was needed. Dereferences to `[Tuple]` either way.
#[derive(Debug)]
pub enum Unpacked<'a> {
    /// A zero-copy view over the entry's stored tuples.
    Borrowed(&'a [Tuple]),
    /// Materialized tuples (grouped merge, multi-instance combination,
    /// or an empty result).
    Owned(Vec<Tuple>),
}

impl std::ops::Deref for Unpacked<'_> {
    type Target = [Tuple];

    fn deref(&self) -> &[Tuple] {
        match self {
            Unpacked::Borrowed(s) => s,
            Unpacked::Owned(v) => v,
        }
    }
}

impl Unpacked<'_> {
    /// Converts into an owned vector (cloning only the borrowed case).
    pub fn into_owned(self) -> Vec<Tuple> {
        match self {
            Unpacked::Borrowed(s) => s.to_vec(),
            Unpacked::Owned(v) => v,
        }
    }

    /// Mutable access, converting a borrowed view into owned storage on
    /// first use (for in-place temporal filtering).
    pub fn to_mut(&mut self) -> &mut Vec<Tuple> {
        if let Unpacked::Borrowed(s) = self {
            *self = Unpacked::Owned(s.to_vec());
        }
        match self {
            Unpacked::Owned(v) => v,
            Unpacked::Borrowed(_) => unreachable!("just converted"),
        }
    }
}

/// A per-request container for packed tuples (paper Table 4).
///
/// See the [crate documentation](crate) for the full model. `Baggage` is
/// **lazy**: constructing it from bytes does not decode, and serializing an
/// unmodified baggage reuses the original bytes, so pure forwarders pay
/// almost nothing.
#[derive(Clone, Debug)]
pub struct Baggage {
    /// Decoded state; `None` until first access after `from_bytes`.
    live: Option<Live>,
    /// Cached serialized form; invalidated by mutation.
    bytes: Option<Arc<[u8]>>,
    /// Pack-cost counters (local to this handle; excluded from equality
    /// and from the wire form).
    meter: PackMeter,
}

impl Default for Baggage {
    fn default() -> Baggage {
        Baggage::new()
    }
}

impl PartialEq for Baggage {
    fn eq(&self, other: &Baggage) -> bool {
        // Compare decoded forms; clone to avoid requiring &mut.
        let mut a = self.clone();
        let mut b = other.clone();
        a.ensure_live() == b.ensure_live()
    }
}

impl Baggage {
    /// Creates an empty baggage for a new request.
    pub fn new() -> Baggage {
        Baggage {
            live: Some(Live::new()),
            bytes: None,
            meter: PackMeter::default(),
        }
    }

    /// Adopts a serialized baggage **without decoding it**.
    ///
    /// Decoding happens lazily on the first [`Baggage::pack`],
    /// [`Baggage::unpack`], [`Baggage::split`], or [`Baggage::join`]. Empty
    /// input yields an empty baggage.
    pub fn from_bytes(bytes: &[u8]) -> Baggage {
        if bytes.is_empty() {
            return Baggage::new();
        }
        Baggage {
            live: None,
            bytes: Some(Arc::from(bytes)),
            meter: PackMeter::default(),
        }
    }

    /// Adopts a serialized baggage, decoding it **eagerly** and rejecting
    /// malformed input.
    ///
    /// [`Baggage::from_bytes`] is the right call on a request path — it is
    /// lazy and degrades corruption to an empty baggage so the carrying
    /// request survives. Transport boundaries that receive baggage from
    /// untrusted peers (the live TCP runtime) instead want corruption
    /// *surfaced*, so the connection can be closed and the fault counted
    /// rather than silently dropping query state.
    pub fn try_from_bytes(bytes: &[u8]) -> Result<Baggage, pivot_itc::DecodeError> {
        if bytes.is_empty() {
            return Ok(Baggage::new());
        }
        let live = wire::decode(bytes)?;
        Ok(Baggage {
            live: Some(live),
            bytes: Some(Arc::from(bytes)),
            meter: PackMeter::default(),
        })
    }

    /// Serializes the baggage, reusing the cached encoding when the baggage
    /// has not been modified since it was last encoded or decoded.
    ///
    /// An empty baggage serializes to zero bytes (paper §6.3: "By default,
    /// Pivot Tracing propagates an empty baggage with a serialized size of
    /// 0 bytes").
    pub fn to_bytes(&mut self) -> Arc<[u8]> {
        if let Some(bytes) = &self.bytes {
            return Arc::clone(bytes);
        }
        let live = self.live.as_ref().expect("live or bytes must be set");
        let bytes: Arc<[u8]> = if live.is_empty() {
            Arc::from(&[][..])
        } else {
            Arc::from(wire::encode(live).into_boxed_slice())
        };
        self.bytes = Some(Arc::clone(&bytes));
        bytes
    }

    /// Returns the serialized size in bytes without caching side effects
    /// beyond the internal encode cache.
    pub fn serialized_len(&mut self) -> usize {
        self.to_bytes().len()
    }

    pub(crate) fn ensure_live(&mut self) -> &mut Live {
        if self.live.is_none() {
            let bytes = self.bytes.as_ref().expect("live or bytes set");
            // A malformed baggage (corruption in transit) degrades to empty
            // rather than failing the carrying request.
            let live = wire::decode(bytes).unwrap_or_else(|_| Live::new());
            self.live = Some(live);
        }
        self.live.as_mut().expect("just set")
    }

    fn touch(&mut self) {
        self.bytes = None;
    }

    /// Returns `true` if nothing is packed anywhere in this baggage.
    pub fn is_empty(&mut self) -> bool {
        self.ensure_live().is_empty()
    }

    /// Packs tuples for `query` into the active instance (paper Table 2's
    /// `Pack` / `FIRST` / `RECENT` semantics are selected by `mode`).
    pub fn pack<I>(&mut self, query: QueryId, mode: &PackMode, tuples: I)
    where
        I: IntoIterator<Item = Tuple>,
    {
        self.ensure_live();
        self.touch();
        let live = self.live.as_mut().expect("ensured");
        // FIRST counts tuples already visible in the causal past (inactive
        // instances) so re-packing on a later branch cannot duplicate it.
        let already_first = match mode {
            PackMode::First(_) => live
                .inactive
                .iter()
                .map(|i| i.count_for(query))
                .sum::<usize>(),
            _ => 0,
        };
        for t in tuples {
            self.meter.tuples += 1;
            self.meter.values += t.len() as u64;
            self.meter.truncated += live.active.pack(query, mode, t, already_first) as u64;
        }
    }

    /// Returns this handle's pack-cost counters (see [`PackMeter`]).
    pub fn meter(&self) -> PackMeter {
        self.meter
    }

    /// Retrieves all tuples packed for `query`, combined across every
    /// visible instance according to the query's pack mode.
    ///
    /// Grouped entries come back as `(key…, Value::Agg(state)…)` rows whose
    /// partial states downstream aggregation must combine.
    pub fn unpack(&mut self, query: QueryId) -> Vec<Tuple> {
        self.unpack_view(query).into_owned()
    }

    /// Like [`Baggage::unpack`], but borrows the stored tuples when it
    /// can instead of materializing a fresh `Vec`.
    ///
    /// The common hot-path shape — one non-grouped entry for the query
    /// (no live branches, single pack site) — returns
    /// [`Unpacked::Borrowed`], a zero-copy slice over the entry's own
    /// storage. Multi-instance combination and grouped merges still
    /// materialize ([`Unpacked::Owned`]); the result is identical to
    /// `unpack` either way.
    pub fn unpack_view(&mut self, query: QueryId) -> Unpacked<'_> {
        let live = self.ensure_live();
        // Instances in causal order: inactive (oldest first), then active.
        // The iterator is consumed lazily so the hot path — zero or one
        // matching entry — never allocates; only the multi-instance slow
        // path collects.
        let mut it = live
            .inactive
            .iter()
            .chain(std::iter::once(&live.active))
            .filter_map(|i| i.entries.get(&query))
            .filter(|e| !e.is_empty());
        let Some(first) = it.next() else {
            return Unpacked::Owned(Vec::new());
        };
        // An empty tail collects without allocating, so the lone-entry
        // case stays heap-free end to end.
        let rest: Vec<&Entry> = it.collect();
        if rest.is_empty() {
            // Packing bounds each entry to its mode's limit, so a lone
            // entry needs no cross-instance truncation: its slice *is*
            // the unpack result.
            if let Some(slice) = first.tuple_slice() {
                return Unpacked::Borrowed(slice);
            }
        }
        let mut found: Vec<&Entry> = Vec::with_capacity(1 + rest.len());
        found.push(first);
        found.extend(rest);
        Unpacked::Owned(match first.mode() {
            PackMode::GroupAgg { .. } => {
                let mut merged = Entry::new(&first.mode());
                for e in &found {
                    merged.merge(e);
                }
                merged.tuples()
            }
            PackMode::First(n) => {
                let mut out: Vec<Tuple> = found.iter().flat_map(|e| e.tuples()).collect();
                out.truncate(n);
                out
            }
            PackMode::Recent(n) => {
                let all: Vec<Tuple> = found.iter().flat_map(|e| e.tuples()).collect();
                let skip = all.len().saturating_sub(n.max(1));
                all[skip..].to_vec()
            }
            PackMode::All => found.iter().flat_map(|e| e.tuples()).collect(),
        })
    }

    /// Returns how many tuples are currently retained for `query`.
    pub fn tuple_count(&mut self, query: QueryId) -> usize {
        let live = self.ensure_live();
        live.inactive
            .iter()
            .chain(std::iter::once(&live.active))
            .map(|i| i.count_for(query))
            .sum()
    }

    /// Returns the total number of retained tuples across all queries.
    pub fn total_tuples(&mut self) -> usize {
        let live = self.ensure_live();
        live.inactive
            .iter()
            .chain(std::iter::once(&live.active))
            .flat_map(|i| i.entries.values())
            .map(Entry::len)
            .sum()
    }

    /// Splits this baggage for a branching execution (paper §5).
    ///
    /// The current active instance is retired to the inactive set (visible
    /// to both branches); each branch gets a fresh active instance whose
    /// interval tree identity is one half of the divided identity. Tuples
    /// packed on one branch are invisible to the sibling until
    /// [`Baggage::join`].
    pub fn split(&mut self) -> Baggage {
        self.ensure_live();
        self.touch();
        let live = self.live.as_mut().expect("ensured");
        let (mut s1, mut s2) = live.active.stamp.fork();
        // Record an event on each half so sibling stamps are distinct from
        // each other and from any ancestor.
        s1.event();
        s2.event();
        let retired = std::mem::replace(&mut live.active, Instance::new(s1));
        let mut other_inactive = live.inactive.clone();
        if !retired.is_empty() {
            let mut retired = retired;
            // Anonymize the retired instance's identity: both copies carry
            // the identical peek stamp, making post-join dedup exact.
            retired.stamp = retired.stamp.peek();
            live.inactive.push(retired.clone());
            other_inactive.push(retired);
        }
        Baggage {
            live: Some(Live {
                active: Instance::new(s2),
                inactive: other_inactive,
            }),
            bytes: None,
            meter: PackMeter::default(),
        }
    }

    /// Merges baggage from two joining executions (paper §5).
    ///
    /// The active instances merge (entry-wise, honouring pack modes) under
    /// the joined identity; inactive instances from both sides are unioned
    /// with duplicates discarded.
    pub fn join(&mut self, mut other: Baggage) {
        self.ensure_live();
        self.touch();
        let other_live = other.ensure_live().clone();
        // Fold the joining branch's pack costs into this handle so the
        // request's total is preserved across joins, and count any tuples
        // the All-cap truncates while the actives merge.
        self.meter.tuples += other.meter.tuples;
        self.meter.values += other.meter.values;
        self.meter.truncated += other.meter.truncated;
        let live = self.live.as_mut().expect("ensured");
        live.active.stamp = live.active.stamp.join(&other_live.active.stamp);
        self.meter.truncated += live.active.merge_entries(&other_live.active) as u64;
        for inst in other_live.inactive {
            if !live.inactive.contains(&inst) {
                live.inactive.push(inst);
            }
        }
    }

    /// Drops every tuple packed for `query` (used on query uninstall).
    pub fn clear_query(&mut self, query: QueryId) {
        self.ensure_live();
        self.touch();
        let live = self.live.as_mut().expect("ensured");
        live.active.entries.remove(&query);
        for i in &mut live.inactive {
            i.entries.remove(&query);
        }
        live.inactive.retain(|i| !i.is_empty());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_model::{AggFunc, Value};

    fn t(v: i64) -> Tuple {
        Tuple::from_iter([Value::I64(v)])
    }

    const Q: QueryId = QueryId(1);

    #[test]
    fn empty_serializes_to_zero_bytes() {
        let mut bag = Baggage::new();
        assert_eq!(bag.to_bytes().len(), 0);
    }

    #[test]
    fn pack_unpack_round_trip() {
        let mut bag = Baggage::new();
        bag.pack(Q, &PackMode::All, [t(1), t(2)]);
        assert_eq!(bag.unpack(Q), vec![t(1), t(2)]);
    }

    #[test]
    fn serialize_deserialize_preserves_contents() {
        let mut bag = Baggage::new();
        bag.pack(Q, &PackMode::First(1), [t(7)]);
        let bytes = bag.to_bytes();
        assert!(!bytes.is_empty());
        let mut back = Baggage::from_bytes(&bytes);
        assert_eq!(back.unpack(Q), vec![t(7)]);
    }

    #[test]
    fn lazy_from_bytes_does_not_decode() {
        let mut bag = Baggage::new();
        bag.pack(Q, &PackMode::All, [t(1)]);
        let bytes = bag.to_bytes();
        let mut fwd = Baggage::from_bytes(&bytes);
        // Forwarding without access keeps the bytes cached verbatim.
        assert!(fwd.live.is_none());
        assert_eq!(fwd.to_bytes(), bytes);
        assert!(fwd.live.is_none());
    }

    #[test]
    fn mutation_invalidates_byte_cache() {
        let mut bag = Baggage::new();
        bag.pack(Q, &PackMode::All, [t(1)]);
        let a = bag.to_bytes();
        bag.pack(Q, &PackMode::All, [t(2)]);
        let b = bag.to_bytes();
        assert_ne!(a, b);
    }

    #[test]
    fn branch_isolation_until_join() {
        let mut main = Baggage::new();
        main.pack(Q, &PackMode::All, [t(0)]);
        let mut side = main.split();
        main.pack(Q, &PackMode::All, [t(1)]);
        side.pack(Q, &PackMode::All, [t(2)]);
        // Each branch sees the pre-branch tuple plus only its own.
        assert_eq!(main.unpack(Q), vec![t(0), t(1)]);
        assert_eq!(side.unpack(Q), vec![t(0), t(2)]);
        main.join(side);
        let mut all = main.unpack(Q);
        all.sort_by_key(|x| x.get(0).as_i64());
        assert_eq!(all, vec![t(0), t(1), t(2)]);
    }

    #[test]
    fn join_dedups_shared_ancestors() {
        let mut main = Baggage::new();
        main.pack(Q, &PackMode::All, [t(0)]);
        let side = main.split();
        main.join(side);
        // The pre-branch tuple must appear exactly once.
        assert_eq!(main.unpack(Q), vec![t(0)]);
    }

    #[test]
    fn nested_branches() {
        let mut root = Baggage::new();
        root.pack(Q, &PackMode::All, [t(0)]);
        let mut b1 = root.split();
        let mut b1a = b1.split();
        b1.pack(Q, &PackMode::All, [t(1)]);
        b1a.pack(Q, &PackMode::All, [t(2)]);
        b1.join(b1a);
        root.join(b1);
        let mut all = root.unpack(Q);
        all.sort_by_key(|x| x.get(0).as_i64());
        assert_eq!(all, vec![t(0), t(1), t(2)]);
    }

    #[test]
    fn first_across_branch_is_single() {
        let mut main = Baggage::new();
        main.pack(Q, &PackMode::First(1), [t(1)]);
        let mut side = main.split();
        // The branch packs FIRST again; the causal past already has one.
        side.pack(Q, &PackMode::First(1), [t(2)]);
        assert_eq!(side.unpack(Q), vec![t(1)]);
        main.join(side);
        assert_eq!(main.unpack(Q), vec![t(1)]);
    }

    #[test]
    fn recent_prefers_latest() {
        let mut bag = Baggage::new();
        bag.pack(Q, &PackMode::Recent(1), [t(1)]);
        let bytes = bag.to_bytes();
        let mut hop = Baggage::from_bytes(&bytes);
        hop.pack(Q, &PackMode::Recent(1), [t(2)]);
        assert_eq!(hop.unpack(Q), vec![t(2)]);
    }

    #[test]
    fn grouped_pack_merges_across_hops() {
        let mode = PackMode::GroupAgg {
            key_len: 1,
            aggs: vec![AggFunc::Count],
        };
        let row = |k: &str| Tuple::from_iter([Value::str(k), Value::Null]);
        let mut main = Baggage::new();
        main.pack(Q, &mode, [row("x")]);
        let mut side = main.split();
        side.pack(Q, &mode, [row("x"), row("y")]);
        main.join(side);
        let out = main.unpack(Q);
        assert_eq!(out.len(), 2);
        let x = out
            .iter()
            .find(|t| t.get(0) == &Value::str("x"))
            .expect("group x");
        assert_eq!(x.get(1).as_agg().unwrap().finish(), Value::U64(2));
    }

    #[test]
    fn multiple_queries_coexist() {
        let q2 = QueryId(2);
        let mut bag = Baggage::new();
        bag.pack(Q, &PackMode::All, [t(1)]);
        bag.pack(q2, &PackMode::All, [t(9)]);
        assert_eq!(bag.unpack(Q), vec![t(1)]);
        assert_eq!(bag.unpack(q2), vec![t(9)]);
        bag.clear_query(Q);
        assert!(bag.unpack(Q).is_empty());
        assert_eq!(bag.unpack(q2), vec![t(9)]);
    }

    #[test]
    fn corrupt_bytes_degrade_to_empty() {
        let mut bag = Baggage::from_bytes(&[0xff, 0x01, 0x02]);
        assert!(bag.unpack(Q).is_empty());
    }

    #[test]
    fn unpack_missing_query_is_empty() {
        let mut bag = Baggage::new();
        assert!(bag.unpack(QueryId(99)).is_empty());
    }

    #[test]
    fn meter_counts_packs_and_survives_join() {
        let mut main = Baggage::new();
        main.pack(Q, &PackMode::All, [t(1), t(2)]);
        assert_eq!(
            main.meter(),
            PackMeter {
                tuples: 2,
                values: 2,
                truncated: 0
            }
        );
        let mut side = main.split();
        side.pack(
            Q,
            &PackMode::All,
            [Tuple::from_iter([Value::I64(3), Value::I64(4)])],
        );
        assert_eq!(side.meter().tuples, 1);
        assert_eq!(side.meter().values, 2);
        main.join(side);
        assert_eq!(main.meter().tuples, 3);
        assert_eq!(main.meter().values, 4);
    }

    #[test]
    fn unpack_view_borrows_single_entry() {
        let mut bag = Baggage::new();
        bag.pack(Q, &PackMode::All, [t(1), t(2)]);
        let view = bag.unpack_view(Q);
        assert!(matches!(view, Unpacked::Borrowed(_)));
        assert_eq!(&*view, &[t(1), t(2)][..]);
    }

    #[test]
    fn unpack_view_matches_unpack_across_branches() {
        // Multi-instance and grouped cases fall back to owned, and every
        // case agrees with `unpack` exactly.
        let mut main = Baggage::new();
        main.pack(Q, &PackMode::All, [t(0)]);
        let mut side = main.split();
        side.pack(Q, &PackMode::All, [t(2)]);
        main.join(side);
        let owned = main.unpack(Q);
        let view = main.unpack_view(Q);
        assert!(matches!(view, Unpacked::Owned(_)));
        assert_eq!(&*view, &owned[..]);

        let mode = PackMode::GroupAgg {
            key_len: 1,
            aggs: vec![AggFunc::Count],
        };
        let q2 = QueryId(2);
        let mut bag = Baggage::new();
        bag.pack(
            q2,
            &mode,
            [Tuple::from_iter([Value::str("x"), Value::Null])],
        );
        assert!(matches!(bag.unpack_view(q2), Unpacked::Owned(_)));
        let a = bag.unpack(q2);
        assert_eq!(&*bag.unpack_view(q2), &a[..]);
    }

    #[test]
    fn unpack_view_to_mut_converts_without_changing_contents() {
        let mut bag = Baggage::new();
        bag.pack(Q, &PackMode::All, [t(5), t(6)]);
        let mut view = bag.unpack_view(Q);
        view.to_mut().retain(|x| x.get(0).as_i64() == Some(6));
        assert_eq!(&*view, &[t(6)][..]);
        // The underlying baggage is untouched by view mutation.
        assert_eq!(bag.unpack(Q), vec![t(5), t(6)]);
    }

    #[test]
    fn meter_counts_all_cap_truncation() {
        use crate::entry::ALL_TUPLE_CAP;
        let mut bag = Baggage::new();
        bag.pack(Q, &PackMode::All, (0..ALL_TUPLE_CAP as i64 + 5).map(t));
        assert_eq!(bag.meter().truncated, 5);
        assert_eq!(bag.tuple_count(Q), ALL_TUPLE_CAP);
        // The meter is handle-local: it never reaches the wire.
        let bytes = bag.to_bytes();
        let hop = Baggage::from_bytes(&bytes);
        assert_eq!(hop.meter(), PackMeter::default());
    }
}
