//! Per-query baggage entries and pack modes.

use pivot_itc::{DecodeError, Decoder, Encoder};
use pivot_model::codec;
use pivot_model::{AggFunc, AggState, GroupKey, Tuple, Value};

/// Hard runtime cap on tuples retained by one [`PackMode::All`] entry.
///
/// The static verifier warns (PT006) when a query packs `All`, but the
/// warning alone does not keep a hot tracepoint from growing a request's
/// baggage without limit. This cap is the runtime backstop: packing past
/// it drops the *oldest* retained tuple (deterministic drop-oldest, the
/// same policy `Recent(n)` uses), and the drop is reported to the caller
/// so the governor can account it as truncation. Bounded modes
/// (`First(n)` / `Recent(n)` / `GroupAgg`) are never truncated below
/// their declared size — their bound is part of the query's semantics.
pub const ALL_TUPLE_CAP: usize = 256;

/// How tuples are retained when packed (paper §3, `Pack` special cases).
#[derive(Clone, PartialEq, Debug)]
pub enum PackMode {
    /// Keep every packed tuple.
    All,
    /// Keep only the first `n` tuples ever packed (`FIRST` / `FIRSTN`).
    First(usize),
    /// Keep only the most recent `n` tuples (`RECENT` / `RECENTN`).
    Recent(usize),
    /// Group tuples by their first `key_len` fields and fold the remaining
    /// fields with `aggs` (pushed-down `GroupBy` + aggregation, paper
    /// Table 3).
    GroupAgg {
        /// Number of leading group-key fields.
        key_len: usize,
        /// One aggregator per trailing value field.
        aggs: Vec<AggFunc>,
    },
}

impl PackMode {
    fn tag(&self) -> u8 {
        match self {
            PackMode::All => 0,
            PackMode::First(_) => 1,
            PackMode::Recent(_) => 2,
            PackMode::GroupAgg { .. } => 3,
        }
    }

    /// Encodes the mode.
    pub fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(self.tag());
        match self {
            PackMode::All => {}
            PackMode::First(n) | PackMode::Recent(n) => enc.put_varint(*n as u64),
            PackMode::GroupAgg { key_len, aggs } => {
                enc.put_varint(*key_len as u64);
                enc.put_varint(aggs.len() as u64);
                for a in aggs {
                    enc.put_u8(match a {
                        AggFunc::Count => 0,
                        AggFunc::Sum => 1,
                        AggFunc::Min => 2,
                        AggFunc::Max => 3,
                        AggFunc::Average => 4,
                    });
                }
            }
        }
    }

    /// Decodes a mode.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<PackMode, DecodeError> {
        Ok(match dec.take_u8()? {
            0 => PackMode::All,
            1 => PackMode::First(dec.take_varint()? as usize),
            2 => PackMode::Recent(dec.take_varint()? as usize),
            3 => {
                let key_len = dec.take_varint()? as usize;
                let n = dec.take_varint()? as usize;
                let mut aggs = Vec::with_capacity(n.min(64));
                for _ in 0..n {
                    aggs.push(match dec.take_u8()? {
                        0 => AggFunc::Count,
                        1 => AggFunc::Sum,
                        2 => AggFunc::Min,
                        3 => AggFunc::Max,
                        4 => AggFunc::Average,
                        t => return Err(DecodeError::BadTag("agg func", t)),
                    });
                }
                PackMode::GroupAgg { key_len, aggs }
            }
            t => return Err(DecodeError::BadTag("pack mode", t)),
        })
    }
}

/// The stored tuples for one query inside one baggage instance.
#[derive(Clone, PartialEq, Debug)]
pub enum Entry {
    /// Raw tuples retained under [`PackMode::All`], [`PackMode::First`], or
    /// [`PackMode::Recent`].
    Tuples {
        /// The retention mode.
        mode: PackMode,
        /// Retained tuples in pack order.
        tuples: Vec<Tuple>,
    },
    /// Grouped partial aggregates under [`PackMode::GroupAgg`].
    Grouped {
        /// Number of leading group-key fields.
        key_len: usize,
        /// One aggregator per value column.
        aggs: Vec<AggFunc>,
        /// Insertion-ordered groups: key → per-column states.
        groups: Vec<(GroupKey, Vec<AggState>)>,
    },
}

impl Entry {
    /// Creates an empty entry for `mode`.
    pub fn new(mode: &PackMode) -> Entry {
        match mode {
            PackMode::GroupAgg { key_len, aggs } => Entry::Grouped {
                key_len: *key_len,
                aggs: aggs.clone(),
                groups: Vec::new(),
            },
            other => Entry::Tuples {
                mode: other.clone(),
                tuples: Vec::new(),
            },
        }
    }

    /// Returns `true` if nothing has been packed.
    pub fn is_empty(&self) -> bool {
        match self {
            Entry::Tuples { tuples, .. } => tuples.is_empty(),
            Entry::Grouped { groups, .. } => groups.is_empty(),
        }
    }

    /// Returns the number of retained tuples / groups.
    pub fn len(&self) -> usize {
        match self {
            Entry::Tuples { tuples, .. } => tuples.len(),
            Entry::Grouped { groups, .. } => groups.len(),
        }
    }

    /// Packs one tuple, honouring the retention mode. Returns the number
    /// of tuples *truncated* by the [`ALL_TUPLE_CAP`] backstop (0 or 1);
    /// bounded-mode refusals (`First` past `n`, `Recent` rotation) are the
    /// mode's declared semantics and are not counted.
    ///
    /// `already_first` tells `First(n)` packing how many tuples for this
    /// query are already visible in causally-preceding instances, so that
    /// `FIRST` means "first in the causal past", not "first per instance".
    pub fn pack(&mut self, tuple: Tuple, already_first: usize) -> usize {
        match self {
            Entry::Tuples {
                mode: PackMode::All,
                tuples,
            } => {
                tuples.push(tuple);
                let dropped = tuples.len().saturating_sub(ALL_TUPLE_CAP);
                tuples.drain(..dropped);
                debug_assert!(
                    tuples.len() <= ALL_TUPLE_CAP,
                    "PackMode::All entry exceeded ALL_TUPLE_CAP"
                );
                return dropped;
            }
            Entry::Tuples {
                mode: PackMode::First(n),
                tuples,
            } => {
                if tuples.len() + already_first < *n {
                    tuples.push(tuple);
                }
            }
            Entry::Tuples {
                mode: PackMode::Recent(n),
                tuples,
            } => {
                tuples.push(tuple);
                let n = (*n).max(1);
                if tuples.len() > n {
                    let excess = tuples.len() - n;
                    tuples.drain(..excess);
                }
            }
            Entry::Tuples { .. } => unreachable!("grouped mode in Tuples"),
            Entry::Grouped {
                key_len,
                aggs,
                groups,
            } => {
                let key = GroupKey::project(&tuple, &(0..*key_len).collect::<Vec<_>>());
                let states = match groups.iter_mut().find(|(k, _)| *k == key) {
                    Some((_, states)) => states,
                    None => {
                        groups.push((key, aggs.iter().map(|a| a.init()).collect()));
                        &mut groups.last_mut().expect("just pushed").1
                    }
                };
                for (i, st) in states.iter_mut().enumerate() {
                    st.update(tuple.get(*key_len + i));
                }
            }
        }
        0
    }

    /// Merges another entry for the same query (used when two branches
    /// rejoin and their active instances combine). Returns the number of
    /// tuples truncated by the [`ALL_TUPLE_CAP`] backstop.
    pub fn merge(&mut self, other: &Entry) -> usize {
        match (self, other) {
            (
                Entry::Tuples { mode, tuples },
                Entry::Tuples {
                    tuples: other_tuples,
                    ..
                },
            ) => {
                tuples.extend(other_tuples.iter().cloned());
                match mode {
                    PackMode::First(n) => tuples.truncate(*n),
                    PackMode::Recent(n) => {
                        let n = (*n).max(1);
                        if tuples.len() > n {
                            let excess = tuples.len() - n;
                            tuples.drain(..excess);
                        }
                    }
                    PackMode::All => {
                        let dropped = tuples.len().saturating_sub(ALL_TUPLE_CAP);
                        tuples.drain(..dropped);
                        return dropped;
                    }
                    _ => {}
                }
            }
            (
                Entry::Grouped {
                    key_len: _,
                    aggs,
                    groups,
                },
                Entry::Grouped {
                    groups: other_groups,
                    ..
                },
            ) => {
                for (key, states) in other_groups {
                    match groups.iter_mut().find(|(k, _)| k == key) {
                        Some((_, mine)) => {
                            for (m, s) in mine.iter_mut().zip(states) {
                                m.merge(s);
                            }
                        }
                        None => {
                            let fresh: Vec<AggState> = aggs
                                .iter()
                                .zip(states)
                                .map(|(a, s)| {
                                    let mut st = a.init();
                                    st.merge(s);
                                    st
                                })
                                .collect();
                            groups.push((key.clone(), fresh));
                        }
                    }
                }
            }
            // Mode mismatch for the same query id indicates corruption;
            // keep our side.
            _ => {}
        }
        0
    }

    /// Materializes this entry's contents as tuples for `Unpack`.
    ///
    /// Grouped entries yield `(key fields…, Value::Agg(state)…)` so that a
    /// downstream aggregation *combines* the partial states (paper Table 3).
    pub fn tuples(&self) -> Vec<Tuple> {
        match self {
            Entry::Tuples { tuples, .. } => tuples.clone(),
            Entry::Grouped { groups, .. } => groups
                .iter()
                .map(|(key, states)| {
                    key.0
                        .values()
                        .iter()
                        .cloned()
                        .chain(
                            states
                                .iter()
                                .map(|s| Value::Agg(std::sync::Arc::new(s.clone()))),
                        )
                        .collect()
                })
                .collect(),
        }
    }

    /// The retained tuples as a borrowed slice, when this entry stores
    /// plain tuples (`All` / `First` / `Recent`). Grouped entries return
    /// `None` — their unpack form is materialized, not stored.
    ///
    /// Because packing already enforces each bounded mode's limit per
    /// entry, a *single* entry's slice is exactly its unpack result; this
    /// is the zero-copy fast path behind [`crate::Baggage::unpack_view`].
    pub fn tuple_slice(&self) -> Option<&[Tuple]> {
        match self {
            Entry::Tuples { tuples, .. } => Some(tuples),
            Entry::Grouped { .. } => None,
        }
    }

    /// Returns the entry's pack mode.
    pub fn mode(&self) -> PackMode {
        match self {
            Entry::Tuples { mode, .. } => mode.clone(),
            Entry::Grouped { key_len, aggs, .. } => PackMode::GroupAgg {
                key_len: *key_len,
                aggs: aggs.clone(),
            },
        }
    }

    /// Encodes the entry.
    pub fn encode(&self, enc: &mut Encoder) {
        self.mode().encode(enc);
        match self {
            Entry::Tuples { tuples, .. } => {
                enc.put_varint(tuples.len() as u64);
                for t in tuples {
                    codec::encode_tuple(t, enc);
                }
            }
            Entry::Grouped { groups, .. } => {
                enc.put_varint(groups.len() as u64);
                for (key, states) in groups {
                    codec::encode_tuple(&key.0, enc);
                    enc.put_varint(states.len() as u64);
                    for s in states {
                        s.encode(enc);
                    }
                }
            }
        }
    }

    /// Decodes an entry.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Entry, DecodeError> {
        let mode = PackMode::decode(dec)?;
        match mode {
            PackMode::GroupAgg { key_len, aggs } => {
                let n = dec.take_varint()? as usize;
                let mut groups = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    let key = GroupKey(codec::decode_tuple(dec)?);
                    let k = dec.take_varint()? as usize;
                    let mut states = Vec::with_capacity(k.min(64));
                    for _ in 0..k {
                        states.push(AggState::decode(dec)?);
                    }
                    groups.push((key, states));
                }
                Ok(Entry::Grouped {
                    key_len,
                    aggs,
                    groups,
                })
            }
            mode => {
                let n = dec.take_varint()? as usize;
                let mut tuples = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    tuples.push(codec::decode_tuple(dec)?);
                }
                // Trust boundary: a peer (or corruption) may claim an
                // over-cap `All` entry; clamp it on the way in so the cap
                // is an invariant, not a local courtesy.
                if mode == PackMode::All {
                    let excess = tuples.len().saturating_sub(ALL_TUPLE_CAP);
                    tuples.drain(..excess);
                }
                Ok(Entry::Tuples { mode, tuples })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: i64) -> Tuple {
        Tuple::from_iter([Value::I64(v)])
    }

    #[test]
    fn first_keeps_only_first() {
        let mut e = Entry::new(&PackMode::First(1));
        e.pack(t(1), 0);
        e.pack(t(2), 0);
        assert_eq!(e.tuples(), vec![t(1)]);
    }

    #[test]
    fn first_respects_causally_prior_tuples() {
        let mut e = Entry::new(&PackMode::First(1));
        e.pack(t(9), 1); // one tuple already visible upstream
        assert!(e.is_empty());
    }

    #[test]
    fn recent_overwrites() {
        let mut e = Entry::new(&PackMode::Recent(2));
        for i in 0..5 {
            e.pack(t(i), 0);
        }
        assert_eq!(e.tuples(), vec![t(3), t(4)]);
    }

    #[test]
    fn all_keeps_everything_under_the_cap() {
        let mut e = Entry::new(&PackMode::All);
        for i in 0..4 {
            assert_eq!(e.pack(t(i), 0), 0);
        }
        assert_eq!(e.len(), 4);
    }

    #[test]
    fn all_cap_drops_oldest_and_reports_it() {
        let mut e = Entry::new(&PackMode::All);
        let mut dropped = 0;
        for i in 0..(ALL_TUPLE_CAP as i64 + 10) {
            dropped += e.pack(t(i), 0);
        }
        assert_eq!(e.len(), ALL_TUPLE_CAP);
        assert_eq!(dropped, 10);
        // Drop-oldest: the survivors are the most recent CAP tuples.
        assert_eq!(e.tuples().first(), Some(&t(10)));
        assert_eq!(e.tuples().last(), Some(&t(ALL_TUPLE_CAP as i64 + 9)));
    }

    #[test]
    fn all_cap_holds_across_merge_and_decode() {
        let mut a = Entry::new(&PackMode::All);
        let mut b = Entry::new(&PackMode::All);
        for i in 0..ALL_TUPLE_CAP as i64 {
            a.pack(t(i), 0);
            b.pack(t(i + 1000), 0);
        }
        let dropped = a.merge(&b);
        assert_eq!(a.len(), ALL_TUPLE_CAP);
        assert_eq!(dropped, ALL_TUPLE_CAP);

        let mut enc = Encoder::new();
        a.encode(&mut enc);
        let bytes = enc.finish();
        let back = Entry::decode(&mut Decoder::new(&bytes)).unwrap();
        assert!(back.len() <= ALL_TUPLE_CAP);
        assert_eq!(back, a);
    }

    #[test]
    fn bounded_modes_are_never_truncated_below_n() {
        // First(n)/Recent(n) past the cap would be a semantics change;
        // verify a bound larger than ALL_TUPLE_CAP is honoured in full.
        let n = ALL_TUPLE_CAP + 64;
        let mut first = Entry::new(&PackMode::First(n));
        let mut recent = Entry::new(&PackMode::Recent(n));
        for i in 0..(n as i64 + 50) {
            assert_eq!(first.pack(t(i), 0), 0);
            assert_eq!(recent.pack(t(i), 0), 0);
        }
        assert_eq!(first.len(), n);
        assert_eq!(recent.len(), n);
    }

    #[test]
    fn group_agg_folds() {
        let mode = PackMode::GroupAgg {
            key_len: 1,
            aggs: vec![AggFunc::Sum],
        };
        let mut e = Entry::new(&mode);
        let row = |k: &str, v: i64| Tuple::from_iter([Value::str(k), Value::I64(v)]);
        e.pack(row("a", 2), 0);
        e.pack(row("b", 5), 0);
        e.pack(row("a", 3), 0);
        let out = e.tuples();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get(0), &Value::str("a"));
        assert_eq!(out[0].get(1).as_agg().unwrap().finish(), Value::I64(5));
    }

    #[test]
    fn merge_tuples_respects_mode() {
        let mut a = Entry::new(&PackMode::Recent(1));
        a.pack(t(1), 0);
        let mut b = Entry::new(&PackMode::Recent(1));
        b.pack(t(2), 0);
        a.merge(&b);
        assert_eq!(a.tuples(), vec![t(2)]);
    }

    #[test]
    fn merge_grouped_combines_states() {
        let mode = PackMode::GroupAgg {
            key_len: 1,
            aggs: vec![AggFunc::Count],
        };
        let row = |k: &str| Tuple::from_iter([Value::str(k), Value::Null]);
        let mut a = Entry::new(&mode);
        a.pack(row("x"), 0);
        let mut b = Entry::new(&mode);
        b.pack(row("x"), 0);
        b.pack(row("y"), 0);
        a.merge(&b);
        let out = a.tuples();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].get(1).as_agg().unwrap().finish(), Value::U64(2));
    }

    #[test]
    fn encode_round_trip() {
        let mode = PackMode::GroupAgg {
            key_len: 1,
            aggs: vec![AggFunc::Sum, AggFunc::Count],
        };
        let mut e = Entry::new(&mode);
        e.pack(
            Tuple::from_iter([Value::str("a"), Value::I64(3), Value::Null]),
            0,
        );
        let mut enc = Encoder::new();
        e.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(Entry::decode(&mut dec).unwrap(), e);

        let mut e2 = Entry::new(&PackMode::Recent(3));
        e2.pack(t(1), 0);
        e2.pack(t(2), 0);
        let mut enc = Encoder::new();
        e2.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(Entry::decode(&mut dec).unwrap(), e2);
    }
}
