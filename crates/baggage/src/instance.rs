//! Versioned baggage instances.

use std::collections::BTreeMap;

use pivot_itc::Stamp;

use crate::entry::{Entry, PackMode};
use crate::QueryId;

/// One versioned instance of a request's baggage.
///
/// Baggage holds one *active* instance per execution branch plus zero or
/// more *inactive* instances inherited from before the most recent branch
/// points (paper §5). Each instance is identified by an interval tree clock
/// stamp; sibling copies of the same inactive instance carry identical
/// stamps and contents, which is what makes post-join deduplication exact.
#[derive(Clone, PartialEq, Debug)]
pub struct Instance {
    /// The instance's version identity.
    pub stamp: Stamp,
    /// Per-query packed tuples, ordered by query ID for determinism.
    pub entries: BTreeMap<QueryId, Entry>,
}

impl Instance {
    /// Creates an empty instance with the given stamp.
    pub fn new(stamp: Stamp) -> Instance {
        Instance {
            stamp,
            entries: BTreeMap::new(),
        }
    }

    /// Returns `true` if no query has packed anything here.
    pub fn is_empty(&self) -> bool {
        self.entries.values().all(Entry::is_empty)
    }

    /// Packs one tuple for `query` under `mode`. Returns the number of
    /// tuples truncated by the `All`-mode hard cap.
    pub fn pack(
        &mut self,
        query: QueryId,
        mode: &PackMode,
        tuple: pivot_model::Tuple,
        already_first: usize,
    ) -> usize {
        self.entries
            .entry(query)
            .or_insert_with(|| Entry::new(mode))
            .pack(tuple, already_first)
    }

    /// Returns the number of tuples visible for `query` in this instance.
    pub fn count_for(&self, query: QueryId) -> usize {
        self.entries.get(&query).map_or(0, Entry::len)
    }

    /// Merges the entries of `other` into `self` (rejoining branches).
    /// Returns the number of tuples truncated by the `All`-mode hard cap.
    pub fn merge_entries(&mut self, other: &Instance) -> usize {
        let mut truncated = 0;
        for (q, entry) in &other.entries {
            match self.entries.get_mut(q) {
                Some(mine) => truncated += mine.merge(entry),
                None => {
                    self.entries.insert(*q, entry.clone());
                }
            }
        }
        truncated
    }
}
