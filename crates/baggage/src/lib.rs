//! The **baggage** abstraction (Pivot Tracing, SOSP 2015 §4–§5).
//!
//! Baggage is a per-request container for tuples that travels alongside a
//! request as it traverses thread, application, and machine boundaries.
//! `Pack` and `Unpack` advice operations store and retrieve tuples from the
//! current request's baggage; because tuples follow the request's execution
//! path they explicitly capture the happened-before relationship, which is
//! what lets Pivot Tracing evaluate the happened-before join **inline**
//! during request execution instead of globally (paper Figure 6).
//!
//! This crate implements the full baggage API from the paper's Table 4:
//!
//! | Method | Description |
//! |---|---|
//! | [`Baggage::pack`] | Pack tuples into the baggage for a query |
//! | [`Baggage::unpack`] | Retrieve all tuples for a query |
//! | [`Baggage::to_bytes`] | Serialize the baggage to bytes |
//! | [`Baggage::from_bytes`] | Set the baggage by deserializing from bytes |
//! | [`Baggage::split`] | Split the baggage for a branching execution |
//! | [`Baggage::join`] | Merge baggage from two joining executions |
//!
//! # Branching and versioning
//!
//! To preserve the happened-before relation within a request, tuples packed
//! by one branch of a parallel execution must be invisible to sibling
//! branches until the branches rejoin (paper §5). Baggage therefore holds
//! one or more *versioned instances*, each identified by an interval tree
//! clock stamp ([`pivot_itc::Stamp`]); exactly one instance is *active* per
//! branch. [`Baggage::split`] forks the active stamp and gives each side a
//! fresh active instance; [`Baggage::join`] merges the two active instances
//! and deduplicates the copied inactive ones.
//!
//! # Laziness
//!
//! An empty baggage serializes to **0 bytes**, and [`Baggage::from_bytes`]
//! does not decode: deserialization happens on first access, so processes
//! that merely forward baggage (without packing or unpacking) never pay the
//! decode cost — matching the prototype described in the paper's §5.
//!
//! # Examples
//!
//! ```
//! use pivot_baggage::{Baggage, PackMode, QueryId};
//! use pivot_model::{Tuple, Value};
//!
//! let q = QueryId(7);
//! let mut bag = Baggage::new();
//! bag.pack(
//!     q,
//!     &PackMode::First(1),
//!     [Tuple::from_iter([Value::str("FSread4m")])],
//! );
//! // ... the request crosses a process boundary ...
//! let bytes = bag.to_bytes();
//! let mut remote = Baggage::from_bytes(&bytes);
//! let tuples = remote.unpack(q);
//! assert_eq!(tuples[0].get(0), &Value::str("FSread4m"));
//! ```

mod bag;
mod entry;
mod instance;
mod wire;

pub use bag::{Baggage, PackMeter, Unpacked};
pub use entry::{Entry, PackMode, ALL_TUPLE_CAP};
pub use instance::Instance;

/// Identifies an installed query across the whole system.
///
/// Tuples are packed and unpacked by query ID so several queries can share
/// one request's baggage simultaneously (paper §5).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct QueryId(pub u64);

impl std::fmt::Display for QueryId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "q{}", self.0)
    }
}
