//! Baggage wire format.
//!
//! Layout (all integers LEB128):
//!
//! ```text
//! baggage  := version:u8 count:varint instance*        (active first)
//! instance := stamp entry_count:varint (query_id:varint entry)*
//! ```
//!
//! The format is versioned so future layouts can coexist; decoding a
//! malformed buffer returns an error and the caller degrades to an empty
//! baggage rather than failing the request.

use pivot_itc::{DecodeError, Decoder, Encoder, Stamp};

use crate::bag::Live;
use crate::entry::Entry;
use crate::instance::Instance;
use crate::QueryId;

const VERSION: u8 = 1;

pub(crate) fn encode(live: &Live) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(64);
    enc.put_u8(VERSION);
    enc.put_varint(1 + live.inactive.len() as u64);
    encode_instance(&live.active, &mut enc);
    for inst in &live.inactive {
        encode_instance(inst, &mut enc);
    }
    enc.finish()
}

fn encode_instance(inst: &Instance, enc: &mut Encoder) {
    inst.stamp.encode(enc);
    enc.put_varint(inst.entries.len() as u64);
    for (q, entry) in &inst.entries {
        enc.put_varint(q.0);
        entry.encode(enc);
    }
}

pub(crate) fn decode(bytes: &[u8]) -> Result<Live, DecodeError> {
    let mut dec = Decoder::new(bytes);
    let version = dec.take_u8()?;
    if version != VERSION {
        return Err(DecodeError::BadTag("baggage version", version));
    }
    let count = dec.take_varint()? as usize;
    if count == 0 {
        return Err(DecodeError::Truncated);
    }
    let active = decode_instance(&mut dec)?;
    let mut inactive = Vec::with_capacity((count - 1).min(64));
    for _ in 1..count {
        inactive.push(decode_instance(&mut dec)?);
    }
    Ok(Live { active, inactive })
}

fn decode_instance(dec: &mut Decoder<'_>) -> Result<Instance, DecodeError> {
    let stamp = Stamp::decode(dec)?;
    let n = dec.take_varint()? as usize;
    let mut inst = Instance::new(stamp);
    for _ in 0..n {
        let q = QueryId(dec.take_varint()?);
        let entry = Entry::decode(dec)?;
        inst.entries.insert(q, entry);
    }
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::entry::PackMode;
    use pivot_model::{Tuple, Value};

    #[test]
    fn live_round_trip_with_branches() {
        let mut live = Live {
            active: Instance::new(Stamp::seed()),
            inactive: vec![Instance::new(Stamp::seed().peek())],
        };
        live.active.pack(
            QueryId(3),
            &PackMode::All,
            Tuple::from_iter([Value::str("x"), Value::I64(1)]),
            0,
        );
        live.inactive[0].pack(
            QueryId(9),
            &PackMode::Recent(2),
            Tuple::from_iter([Value::U64(42)]),
            0,
        );
        let bytes = encode(&live);
        let back = decode(&bytes).unwrap();
        assert_eq!(back, live);
    }

    #[test]
    fn wrong_version_rejected() {
        let mut live = Live {
            active: Instance::new(Stamp::seed()),
            inactive: vec![],
        };
        live.active.pack(
            QueryId(1),
            &PackMode::All,
            Tuple::from_iter([Value::I64(1)]),
            0,
        );
        let mut bytes = encode(&live);
        bytes[0] = 99;
        assert!(decode(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let mut live = Live {
            active: Instance::new(Stamp::seed()),
            inactive: vec![],
        };
        live.active.pack(
            QueryId(1),
            &PackMode::All,
            Tuple::from_iter([Value::str("abcdefgh")]),
            0,
        );
        let bytes = encode(&live);
        for cut in [1, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
