//! Property-based tests for baggage invariants.
//!
//! The central invariant (paper §5): tuples packed by one branch of an
//! execution are invisible to sibling branches until the branches rejoin,
//! and after rejoining every tuple is visible exactly once.

use pivot_baggage::{Baggage, PackMode, QueryId};
use pivot_model::{Tuple, Value};
use proptest::prelude::*;

const Q: QueryId = QueryId(1);

fn t(v: i64) -> Tuple {
    Tuple::from_iter([Value::I64(v)])
}

/// A script of actions over a stack of execution branches.
#[derive(Debug, Clone)]
enum Act {
    /// Pack a fresh uniquely-numbered tuple on branch `i`.
    Pack(usize),
    /// Split branch `i`, pushing the new branch.
    Split(usize),
    /// Join the last branch into branch `i` (if distinct).
    Join(usize),
    /// Serialize + deserialize branch `i` (a process hop).
    Hop(usize),
}

fn act_strategy() -> impl Strategy<Value = Act> {
    prop_oneof![
        (0usize..6).prop_map(Act::Pack),
        (0usize..6).prop_map(Act::Split),
        (0usize..6).prop_map(Act::Join),
        (0usize..6).prop_map(Act::Hop),
    ]
}

/// Runs a script, returning the final branches and, per branch, the set of
/// tuple ids that *should* be visible there (its causal past).
fn run(acts: &[Act]) -> (Vec<Baggage>, Vec<Vec<i64>>) {
    let mut bags = vec![Baggage::new()];
    let mut visible: Vec<Vec<i64>> = vec![vec![]];
    let mut next = 0i64;
    for act in acts {
        match *act {
            Act::Pack(i) => {
                let i = i % bags.len();
                bags[i].pack(Q, &PackMode::All, [t(next)]);
                visible[i].push(next);
                next += 1;
            }
            Act::Split(i) => {
                if bags.len() >= 8 {
                    continue;
                }
                let i = i % bags.len();
                let side = bags[i].split();
                bags.push(side);
                let vis = visible[i].clone();
                visible.push(vis);
            }
            Act::Join(i) => {
                if bags.len() < 2 {
                    continue;
                }
                let i = i % (bags.len() - 1);
                let side = bags.pop().expect("len >= 2");
                let vis = visible.pop().expect("len >= 2");
                bags[i].join(side);
                for v in vis {
                    if !visible[i].contains(&v) {
                        visible[i].push(v);
                    }
                }
            }
            Act::Hop(i) => {
                let i = i % bags.len();
                let bytes = bags[i].to_bytes();
                bags[i] = Baggage::from_bytes(&bytes);
            }
        }
    }
    (bags, visible)
}

proptest! {
    /// Every branch sees exactly its causal past: no sibling leakage, no
    /// duplication, no loss — across arbitrary split/join/hop interleavings.
    #[test]
    fn visibility_matches_causal_past(
        acts in prop::collection::vec(act_strategy(), 0..60)
    ) {
        let (mut bags, visible) = run(&acts);
        for (bag, expect) in bags.iter_mut().zip(&visible) {
            let mut got: Vec<i64> = bag
                .unpack(Q)
                .iter()
                .map(|t| t.get(0).as_i64().expect("i64 tuple"))
                .collect();
            got.sort_unstable();
            let mut expect = expect.clone();
            expect.sort_unstable();
            prop_assert_eq!(got, expect);
        }
    }

    /// Serialization round trips: a hop never changes what a branch sees.
    #[test]
    fn hops_are_transparent(
        acts in prop::collection::vec(act_strategy(), 0..40)
    ) {
        let (mut bags, _) = run(&acts);
        for bag in bags.iter_mut() {
            let before = bag.unpack(Q);
            let bytes = bag.to_bytes();
            let mut back = Baggage::from_bytes(&bytes);
            prop_assert_eq!(back.unpack(Q), before);
        }
    }

    /// FIRST(1) yields exactly one tuple (the causally earliest) no matter
    /// how the execution branches.
    #[test]
    fn first_is_globally_first(
        acts in prop::collection::vec(act_strategy(), 0..40)
    ) {
        // Replay the same script but pack with FIRST(1) everywhere.
        let mut bags = vec![Baggage::new()];
        let mut packed_any = false;
        let mut first_packed = false;
        for act in &acts {
            match *act {
                Act::Pack(i) => {
                    let i = i % bags.len();
                    bags[i].pack(Q, &PackMode::First(1), [t(7)]);
                    // Only packs on the root lineage are guaranteed globally
                    // first; we just check the count invariant below.
                    packed_any = true;
                    if i == 0 {
                        first_packed = true;
                    }
                }
                Act::Split(i) => {
                    if bags.len() >= 8 { continue; }
                    let i = i % bags.len();
                    let side = bags[i].split();
                    bags.push(side);
                }
                Act::Join(i) => {
                    if bags.len() < 2 { continue; }
                    let i = i % (bags.len() - 1);
                    let side = bags.pop().expect("len >= 2");
                    bags[i].join(side);
                }
                Act::Hop(i) => {
                    let i = i % bags.len();
                    let bytes = bags[i].to_bytes();
                    bags[i] = Baggage::from_bytes(&bytes);
                }
            }
        }
        // Join everything into one and check at most 1 tuple survives.
        let mut root = bags.remove(0);
        for b in bags {
            root.join(b);
        }
        let n = root.unpack(Q).len();
        prop_assert!(n <= 1, "FIRST(1) produced {n} tuples");
        if packed_any && first_packed {
            prop_assert_eq!(n, 1);
        }
    }
}
