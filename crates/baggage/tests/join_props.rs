//! Property tests for `Baggage::join`, executed on real OS threads.
//!
//! The live runtime (`pivot-live`) joins baggage at real `thread::join`
//! and channel-receive merge points, concurrently with packs on sibling
//! threads. These tests pin down the algebra that makes that sound:
//!
//! - `join` is commutative and associative **up to observable state**
//!   (what `unpack` returns, as a multiset) for order-insensitive pack
//!   modes (`All`, grouped aggregation),
//! - `split` followed by `join` is lossless and duplicate-free,
//! - the whole API is usable from many threads at once (`Baggage: Send`),
//!   which is what the live runtime's instrumented `spawn` relies on.
//!
//! Cases are hand-rolled with a deterministic xorshift generator rather
//! than proptest so the same scripts replay identically on every thread.

use std::collections::BTreeMap;

use pivot_baggage::{Baggage, PackMode, QueryId};
use pivot_model::{AggFunc, Tuple, Value};

/// Deterministic xorshift64* generator: the same seed yields the same
/// random pack/split/join script on every platform.
struct XorShift(u64);

impl XorShift {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const QUERIES: [QueryId; 3] = [QueryId(1), QueryId(2), QueryId(300)];

fn tuple(tag: u64) -> Tuple {
    Tuple::from_iter([Value::U64(tag), Value::str(format!("t{tag}"))])
}

/// Builds a random baggage by splitting/joining/packing per the script
/// seeded by `seed`. Only `All`-mode packs, so observable state is a
/// multiset.
fn random_baggage(seed: u64, packs: &mut Vec<(QueryId, u64)>) -> Baggage {
    let mut rng = XorShift(seed | 1);
    let mut bag = Baggage::new();
    let mut branches: Vec<Baggage> = Vec::new();
    for step in 0..24u64 {
        match rng.below(4) {
            0 | 1 => {
                let q = QUERIES[rng.below(QUERIES.len() as u64) as usize];
                let tag = seed.wrapping_mul(1000) + step;
                let target = if branches.is_empty() {
                    &mut bag
                } else {
                    let i = rng.below(branches.len() as u64 + 1) as usize;
                    if i == branches.len() {
                        &mut bag
                    } else {
                        &mut branches[i]
                    }
                };
                target.pack(q, &PackMode::All, [tuple(tag)]);
                packs.push((q, tag));
            }
            2 => branches.push(bag.split()),
            _ => {
                if let Some(b) = branches.pop() {
                    bag.join(b);
                }
            }
        }
    }
    for b in branches {
        bag.join(b);
    }
    bag
}

/// The observable state of a baggage: per-query sorted tag multisets.
fn observe(bag: &Baggage) -> BTreeMap<QueryId, Vec<u64>> {
    let mut bag = bag.clone();
    QUERIES
        .iter()
        .map(|q| {
            let mut tags: Vec<u64> = bag
                .unpack(*q)
                .iter()
                .map(|t| match t.get(0) {
                    Value::U64(x) => *x,
                    other => panic!("unexpected value {other:?}"),
                })
                .collect();
            tags.sort_unstable();
            (*q, tags)
        })
        .collect()
}

fn check_algebra(seed: u64) {
    // Build three independent requests' baggage. Joining baggage from
    // *separate* requests is not meaningful causally, so instead derive
    // a, b, c as branches of one request — exactly what thread fan-out
    // produces.
    let mut packs = Vec::new();
    let mut root = random_baggage(seed, &mut packs);
    let mut a = root.split();
    let mut b = root.split();
    let mut c = root.split();
    for (i, branch) in [&mut a, &mut b, &mut c].into_iter().enumerate() {
        let q = QUERIES[i % QUERIES.len()];
        branch.pack(q, &PackMode::All, [tuple(seed * 10 + i as u64)]);
    }

    // Commutativity: a ⋈ b ~ b ⋈ a.
    let mut ab = a.clone();
    ab.join(b.clone());
    let mut ba = b.clone();
    ba.join(a.clone());
    assert_eq!(
        observe(&ab),
        observe(&ba),
        "join not commutative, seed {seed}"
    );

    // Associativity: (a ⋈ b) ⋈ c ~ a ⋈ (b ⋈ c).
    let mut ab_c = ab.clone();
    ab_c.join(c.clone());
    let mut bc = b;
    bc.join(c);
    let mut a_bc = a;
    a_bc.join(bc);
    assert_eq!(
        observe(&ab_c),
        observe(&a_bc),
        "join not associative, seed {seed}"
    );

    // Idempotence of rejoining a split: root ⋈ split(root) ~ root.
    let before = observe(&root);
    let side = root.split();
    root.join(side);
    assert_eq!(
        observe(&root),
        before,
        "split-join not lossless, seed {seed}"
    );
}

fn check_split_join_lossless(seed: u64) {
    let mut packs = Vec::new();
    let bag = random_baggage(seed, &mut packs);
    // Every pack that ever happened must be visible exactly once after all
    // branches rejoined (All mode retains everything; split/join must
    // neither drop nor duplicate).
    let mut expect: BTreeMap<QueryId, Vec<u64>> =
        QUERIES.iter().map(|q| (*q, Vec::new())).collect();
    for (q, tag) in packs {
        expect.get_mut(&q).expect("known query").push(tag);
    }
    for tags in expect.values_mut() {
        tags.sort_unstable();
    }
    assert_eq!(
        observe(&bag),
        expect,
        "lost or duplicated tuples, seed {seed}"
    );
}

#[test]
fn join_algebra_holds_across_threads() {
    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..50 {
                    check_algebra(t * 1000 + i + 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
}

#[test]
fn split_then_join_is_lossless_across_threads() {
    let handles: Vec<_> = (0..8u64)
        .map(|t| {
            std::thread::spawn(move || {
                for i in 0..50 {
                    check_split_join_lossless(t * 7777 + i + 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
}

#[test]
fn grouped_pack_join_is_commutative() {
    let mode = PackMode::GroupAgg {
        key_len: 1,
        aggs: vec![AggFunc::Count],
    };
    let row = |k: &str| Tuple::from_iter([Value::str(k), Value::Null]);
    let finish = |bag: &Baggage| -> BTreeMap<String, Value> {
        let mut bag = bag.clone();
        bag.unpack(QueryId(1))
            .iter()
            .map(|t| {
                let key = match t.get(0) {
                    Value::Str(s) => s.to_string(),
                    other => panic!("unexpected key {other:?}"),
                };
                (key, t.get(1).as_agg().expect("agg state").finish())
            })
            .collect()
    };

    let mut root = Baggage::new();
    root.pack(QueryId(1), &mode, [row("x")]);
    let mut a = root.split();
    let mut b = root.split();
    a.pack(QueryId(1), &mode, [row("x"), row("y")]);
    b.pack(QueryId(1), &mode, [row("y"), row("z")]);

    let mut ab = a.clone();
    ab.join(b.clone());
    let mut ba = b;
    ba.join(a);
    assert_eq!(finish(&ab), finish(&ba));
    assert_eq!(finish(&ab)["x"], Value::U64(2));
    assert_eq!(finish(&ab)["y"], Value::U64(2));
    assert_eq!(finish(&ab)["z"], Value::U64(1));
}

/// `Baggage` values cross real thread boundaries in the live runtime;
/// compile-time proof they are `Send`.
#[test]
fn baggage_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<Baggage>();
}
