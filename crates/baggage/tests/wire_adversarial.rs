//! Adversarial round-trip tests for the baggage wire codec.
//!
//! The live TCP runtime (`pivot-live`) puts serialized baggage in message
//! headers received from real peers, so malformed input is no longer a
//! hypothetical: truncated or bit-flipped buffers must decode to an
//! `Err`, never panic or mis-decode, and well-formed extremes (empty
//! bags, maximum-arity tuples) must round-trip exactly.

use pivot_baggage::{Baggage, PackMode, QueryId};
use pivot_model::{Tuple, Value};

fn wide_tuple(arity: usize, salt: u64) -> Tuple {
    (0..arity)
        .map(|i| match i % 6 {
            0 => Value::Null,
            1 => Value::Bool(i % 2 == 0),
            2 => Value::I64(-(i as i64) * salt as i64),
            3 => Value::U64(u64::MAX - i as u64),
            4 => Value::F64(i as f64 * 1.5 + salt as f64),
            _ => Value::str(format!("field-{salt}-{i}-{}", "x".repeat(i % 32))),
        })
        .collect()
}

#[test]
fn empty_bag_is_zero_bytes_and_strict_decodes() {
    let mut bag = Baggage::new();
    let bytes = bag.to_bytes();
    assert_eq!(bytes.len(), 0);
    let mut back = Baggage::try_from_bytes(&bytes).expect("empty is valid");
    assert!(back.is_empty());
}

#[test]
fn max_arity_tuples_round_trip() {
    let mut bag = Baggage::new();
    // Several queries sharing the bag, one with a pathologically wide row.
    bag.pack(QueryId(1), &PackMode::All, [wide_tuple(512, 7)]);
    bag.pack(
        QueryId(u64::MAX / 256),
        &PackMode::Recent(3),
        (0..5).map(|i| wide_tuple(64, i)),
    );
    bag.pack(QueryId(2), &PackMode::First(2), [wide_tuple(1, 0)]);
    let bytes = bag.to_bytes();
    let mut back = Baggage::try_from_bytes(&bytes).expect("valid encoding");
    assert_eq!(back.unpack(QueryId(1)), vec![wide_tuple(512, 7)]);
    assert_eq!(back.unpack(QueryId(u64::MAX / 256)).len(), 3);
    assert_eq!(back.unpack(QueryId(2)), vec![wide_tuple(1, 0)]);
}

#[test]
fn branched_bag_round_trips_through_strict_decode() {
    let mut main = Baggage::new();
    main.pack(QueryId(4), &PackMode::All, [wide_tuple(8, 1)]);
    let mut side = main.split();
    side.pack(QueryId(4), &PackMode::All, [wide_tuple(8, 2)]);
    main.join(side);
    let bytes = main.to_bytes();
    let mut back = Baggage::try_from_bytes(&bytes).expect("valid encoding");
    assert_eq!(back.unpack(QueryId(4)).len(), 2);
}

#[test]
fn every_truncation_errors_not_panics() {
    let mut bag = Baggage::new();
    bag.pack(QueryId(9), &PackMode::All, [wide_tuple(24, 3)]);
    let mut side = bag.split();
    side.pack(QueryId(10), &PackMode::Recent(2), [wide_tuple(6, 4)]);
    bag.join(side);
    let bytes = bag.to_bytes();
    assert!(bytes.len() > 16, "want a non-trivial encoding");
    // Every strict prefix is missing declared content.
    for cut in 1..bytes.len() {
        assert!(
            Baggage::try_from_bytes(&bytes[..cut]).is_err(),
            "cut at {cut} of {} decoded successfully",
            bytes.len()
        );
    }
}

#[test]
fn bit_flips_never_panic() {
    let mut bag = Baggage::new();
    bag.pack(
        QueryId(3),
        &PackMode::All,
        (0..4).map(|i| wide_tuple(12, i)),
    );
    let bytes = bag.to_bytes().to_vec();
    for pos in 0..bytes.len() {
        for bit in 0..8 {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 1 << bit;
            // Either outcome is legal; what matters is no panic and that a
            // successful decode stays internally consistent.
            if let Ok(mut b) = Baggage::try_from_bytes(&mutated) {
                let _ = b.unpack(QueryId(3));
                let _ = b.total_tuples();
            }
        }
    }
}

#[test]
fn lazy_path_degrades_where_strict_path_errors() {
    let garbage = [0x01u8, 0xff, 0xff, 0xff];
    assert!(Baggage::try_from_bytes(&garbage).is_err());
    // The request-path constructor must keep the request alive instead.
    let mut lazy = Baggage::from_bytes(&garbage);
    assert!(lazy.unpack(QueryId(1)).is_empty());
}
