//! Criterion benches for Figure 10: baggage pack / unpack / serialize /
//! deserialize versus the number of 8-byte tuples in the baggage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pivot_baggage::{Baggage, PackMode, QueryId};
use pivot_model::{Tuple, Value};

const Q: QueryId = QueryId(1);
const SIZES: [usize; 9] = [1, 2, 4, 8, 16, 32, 64, 128, 256];

fn tuple(i: u64) -> Tuple {
    Tuple::from_iter([Value::U64(i)])
}

fn filled(n: usize) -> Baggage {
    let mut bag = Baggage::new();
    bag.pack(Q, &PackMode::All, (0..n as u64).map(tuple));
    bag
}

fn bench_pack(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10a_pack_one_tuple");
    for n in SIZES {
        let base = filled(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || base.clone(),
                |mut bag| {
                    bag.pack(Q, &PackMode::All, [tuple(999)]);
                    bag
                },
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_unpack(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10b_unpack_all");
    for n in SIZES {
        let mut bag = filled(n);
        // Force-decode once so we measure unpack, not lazy decode.
        let _ = bag.unpack(Q);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| bag.unpack(Q))
        });
    }
    g.finish();
}

fn bench_serialize(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10c_serialize");
    for n in SIZES {
        let base = filled(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter_batched(
                || {
                    // Fresh baggage with a cold encode cache.
                    let mut bag = base.clone();
                    bag.pack(Q, &PackMode::All, std::iter::empty::<Tuple>());
                    bag
                },
                |mut bag| bag.to_bytes(),
                criterion::BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_deserialize(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig10d_deserialize");
    for n in SIZES {
        let mut src = filled(n);
        let bytes = src.to_bytes();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut bag = Baggage::from_bytes(&bytes);
                bag.unpack(Q).len()
            })
        });
    }
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_pack, bench_unpack, bench_serialize, bench_deserialize
);
criterion_main!(benches);
