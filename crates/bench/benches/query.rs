//! Criterion benches for the query pipeline: parsing, compilation (with
//! and without the Table 3 optimizer), and ITC fork/join — the control
//! plane costs of installing queries at runtime.

use criterion::{criterion_group, criterion_main, Criterion};
use pivot_baggage::QueryId;
use pivot_itc::Stamp;
use pivot_query::{compile, parse, Options, Query, Resolver};

const Q7: &str = "From DNop In DN.DataTransferProtocol
Join getloc In NN.GetBlockLocations On getloc -> DNop
Join st In StressTest.DoNextOp On st -> getloc
Where st.host != DNop.host
GroupBy DNop.host, getloc.replicas
Select DNop.host, getloc.replicas, COUNT";

struct R;

impl Resolver for R {
    fn tracepoint_exports(&self, _: &str) -> Option<Vec<String>> {
        Some(
            [
                "host",
                "timestamp",
                "procid",
                "procname",
                "tracepoint",
                "src",
                "replicas",
                "op",
                "size",
            ]
            .iter()
            .map(|s| (*s).to_owned())
            .collect(),
        )
    }

    fn query_ast(&self, _: &str) -> Option<Query> {
        None
    }
}

fn bench_parse(c: &mut Criterion) {
    c.bench_function("parse_q7", |b| b.iter(|| parse(Q7).unwrap()));
}

fn bench_compile(c: &mut Criterion) {
    c.bench_function("compile_q7_optimized", |b| {
        b.iter(|| compile(Q7, "q7", QueryId(1), &R, Options::default()).unwrap())
    });
    c.bench_function("compile_q7_unoptimized", |b| {
        b.iter(|| compile(Q7, "q7", QueryId(1), &R, Options::unoptimized()).unwrap())
    });
}

fn bench_itc(c: &mut Criterion) {
    c.bench_function("itc_fork_event_join", |b| {
        b.iter(|| {
            let (mut x, mut y) = Stamp::seed().fork();
            x.event();
            y.event();
            x.join(&y)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_parse, bench_compile, bench_itc
);
criterion_main!(benches);
