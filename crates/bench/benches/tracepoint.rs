//! Criterion benches for the tracepoint fast path: the "zero probe
//! effect" claim (paper §5 — inactive tracepoints must cost next to
//! nothing) and the cost of running woven Q2 advice.

use criterion::{criterion_group, criterion_main, Criterion};
use pivot_baggage::Baggage;
use pivot_core::{Agent, Frontend, ProcessInfo};
use pivot_model::Value;
use std::sync::Arc;

fn agent() -> Arc<Agent> {
    Arc::new(Agent::new(ProcessInfo {
        host: "host-A".into(),
        procid: 1,
        procname: "DataNode".into(),
    }))
}

fn frontend() -> Frontend {
    let mut fe = Frontend::new();
    fe.define("ClientProtocols", ["procName"]);
    fe.define("DataNodeMetrics.incrBytesRead", ["delta"]);
    fe
}

fn bench_unwoven(c: &mut Criterion) {
    let a = agent();
    let mut bag = Baggage::new();
    c.bench_function("invoke_unwoven_tracepoint", |b| {
        b.iter(|| {
            a.invoke(
                "DataNodeMetrics.incrBytesRead",
                &mut bag,
                0,
                &[("delta", Value::I64(4096))],
            )
        })
    });
}

fn bench_other_woven(c: &mut Criterion) {
    // Advice exists elsewhere, but not at this tracepoint: one map lookup.
    let mut fe = frontend();
    let a = agent();
    fe.install(
        "From cl In ClientProtocols GroupBy cl.procName \
         Select cl.procName, COUNT",
    )
    .expect("query compiles");
    for cmd in fe.drain_commands() {
        a.apply(&cmd);
    }
    let mut bag = Baggage::new();
    c.bench_function("invoke_tracepoint_with_unrelated_advice", |b| {
        b.iter(|| {
            a.invoke(
                "DataNodeMetrics.incrBytesRead",
                &mut bag,
                0,
                &[("delta", Value::I64(4096))],
            )
        })
    });
}

fn bench_q2_advice(c: &mut Criterion) {
    let mut fe = frontend();
    let a = agent();
    fe.install(
        "From incr In DataNodeMetrics.incrBytesRead
         Join cl In First(ClientProtocols) On cl -> incr
         GroupBy cl.procName
         Select cl.procName, SUM(incr.delta)",
    )
    .expect("Q2 compiles");
    for cmd in fe.drain_commands() {
        a.apply(&cmd);
    }
    let mut bag = Baggage::new();
    a.invoke(
        "ClientProtocols",
        &mut bag,
        0,
        &[("procName", Value::str("FSread4m"))],
    );
    c.bench_function("invoke_q2_emit_advice", |b| {
        b.iter(|| {
            a.invoke(
                "DataNodeMetrics.incrBytesRead",
                &mut bag,
                1,
                &[("delta", Value::I64(4096))],
            )
        })
    });
    c.bench_function("invoke_q2_pack_advice", |b| {
        b.iter_batched(
            Baggage::new,
            |mut bag| {
                a.invoke(
                    "ClientProtocols",
                    &mut bag,
                    0,
                    &[("procName", Value::str("FSread4m"))],
                );
                bag
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(50);
    targets = bench_unwoven, bench_other_woven, bench_q2_advice
);
criterion_main!(benches);
