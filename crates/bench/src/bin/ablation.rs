//! Regenerates the design-choice ablations (paper §4 / Figure 6):
//! optimizer on vs. off, and the effect of process-local aggregation.
//!
//! ```text
//! cargo run -p pivot-bench --bin ablation --release -- [--secs 30]
//! ```

use pivot_bench::{f, flag_f64, flag_u64, print_table};
use pivot_workloads::experiments::ablation;

fn main() {
    let cfg = ablation::Config {
        seed: flag_u64("--seed", 42),
        duration_secs: flag_f64("--secs", 30.0),
        ..ablation::Config::default()
    };
    eprintln!(
        "running Q2 over a read-heavy mix for {}s, optimizer on and off ...",
        cfg.duration_secs
    );
    let r = ablation::run(&cfg);

    let row = |label: &str, s: &ablation::Side| -> Vec<String> {
        vec![
            label.to_owned(),
            s.tuples_packed.to_string(),
            s.tuples_emitted.to_string(),
            s.rows_reported.to_string(),
            f(s.mean_baggage_bytes, 1),
            s.envelopes.to_string(),
        ]
    };
    print_table(
        "Ablation: Table 3 query optimization (inline ->< evaluation)",
        &[
            "mode",
            "tuples packed",
            "tuples emitted",
            "rows reported",
            "mean baggage B",
            "rpc envelopes",
        ],
        &[
            row("optimized", &r.optimized),
            row("unoptimized", &r.unoptimized),
        ],
    );
    let shrink = r.unoptimized.mean_baggage_bytes / r.optimized.mean_baggage_bytes.max(1e-9);
    let agg = r.optimized.tuples_emitted as f64 / r.optimized.rows_reported.max(1) as f64;
    println!(
        "\noptimizer shrinks mean baggage {shrink:.1}x; \
         local aggregation collapses {agg:.0} emitted tuples per reported row\n\
         (the paper reports Q2 dropping from ~600 to ~6 tuples/s per DataNode)."
    );
}
