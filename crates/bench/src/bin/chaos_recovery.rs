//! Crash-recovery latency on the live runtime, written to
//! `BENCH_chaos.json`.
//!
//! Two recovery paths, both measured wall-clock from fault injection to
//! the agent being fully re-synced (status `Connected` *and* install
//! epoch caught up, i.e. the whole query set re-installed):
//!
//! | scenario         | what one trial is                                  |
//! |------------------|----------------------------------------------------|
//! | `sever_reconnect`| server cuts every socket (no `Goodbye`); the same agent reconnects with backoff and re-syncs |
//! | `abort_restart`  | agent process "crashes" (no flush, no `Goodbye`) and a replacement connects and re-syncs |
//!
//! Plus a deterministic fault-injection summary over the scripted KV
//! workload (`pivot-chaos`), recording how much the injector destroyed
//! and that the loss accounting balanced for every seed.
//!
//! ```text
//! cargo run -p pivot-bench --bin chaos_recovery --release -- \
//!     [--trials 20] [--quick] [--enforce] [--out BENCH_chaos.json]
//! ```
//!
//! `--enforce` exits non-zero if either median recovery exceeds the 2 s
//! budget (the CI gate for "recovery is fast").

use std::time::{Duration, Instant};

use pivot_bench::{flag, flag_usize, print_table};
use pivot_chaos::sim::run_kv;
use pivot_chaos::FaultConfig;
use pivot_core::ProcessInfo;
use pivot_live::service::define_kv_tracepoints;
use pivot_live::{ConnStatus, LiveAgent, LiveFrontend, ReconnectPolicy};

/// CI budget for median recovery (acceptance criterion).
const RECOVERY_BUDGET_MS: f64 = 2000.0;

const QUERY: &str = "From exec In KvShard.execute \
     Join req In First(KvClient.issueRequest) On req -> exec \
     GroupBy req.client \
     Select req.client, COUNT, SUM(exec.bytes)";

fn main() {
    let trials = flag_usize("--trials", 20);
    let quick = std::env::args().any(|a| a == "--quick");
    let enforce = std::env::args().any(|a| a == "--enforce");
    let out = flag("--out").unwrap_or_else(|| "BENCH_chaos.json".to_owned());
    let trials = if quick { trials.min(5) } else { trials };
    let seeds: u64 = if quick { 8 } else { 32 };

    eprintln!("chaos recovery bench: {trials} trials per scenario (quick={quick})");

    let sever_ms = bench_sever_reconnect(trials);
    let restart_ms = bench_abort_restart(trials);
    let sim = sim_summary(seeds);

    let sever_med = median(&sever_ms);
    let restart_med = median(&restart_ms);
    let ok = sever_med <= RECOVERY_BUDGET_MS && restart_med <= RECOVERY_BUDGET_MS;

    print_table(
        "Crash recovery (wall clock, fault to fully re-synced)",
        &["scenario", "median ms", "min ms", "max ms", "trials"],
        &[
            row("sever_reconnect", &sever_ms),
            row("abort_restart", &restart_ms),
        ],
    );
    println!(
        "\nsim sweep: {seeds} seeds, {} reports dropped, {} duplicated, {} crashes, all balanced: {}",
        sim.dropped, sim.duplicated, sim.crashes, sim.balanced
    );
    println!(
        "recovery budget: median <= {RECOVERY_BUDGET_MS} ms: {}",
        if ok { "PASS" } else { "FAIL" }
    );

    let json = render_json(trials, quick, &sever_ms, &restart_ms, &sim, ok);
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");

    if enforce && (!ok || !sim.balanced) {
        eprintln!("--enforce: recovery budget exceeded or accounting imbalance");
        std::process::exit(2);
    }
}

fn row(name: &str, ms: &[f64]) -> Vec<String> {
    let min = ms.iter().copied().fold(f64::INFINITY, f64::min);
    let max = ms.iter().copied().fold(0.0, f64::max);
    vec![
        name.to_owned(),
        format!("{:.1}", median(ms)),
        format!("{min:.1}"),
        format!("{max:.1}"),
        ms.len().to_string(),
    ]
}

fn median(ms: &[f64]) -> f64 {
    let mut v = ms.to_vec();
    v.sort_by(f64::total_cmp);
    v[v.len() / 2]
}

fn info(procid: u64) -> ProcessInfo {
    ProcessInfo {
        host: "bench".into(),
        procid,
        procname: "kvserver".into(),
    }
}

fn wait_synced(agent: &LiveAgent, epoch: u64) {
    assert!(
        agent.wait_for_epoch(epoch, Duration::from_secs(30)),
        "agent re-synced (status {:?})",
        agent.status()
    );
}

/// One long-lived agent; each trial severs every server-side socket and
/// times the agent's own reconnect + epoch re-sync.
fn bench_sever_reconnect(trials: usize) -> Vec<f64> {
    let mut fe = LiveFrontend::start().expect("frontend starts");
    define_kv_tracepoints(fe.frontend_mut());
    fe.install(QUERY).expect("query installs");
    let epoch = fe.bus().epoch();

    let agent = LiveAgent::connect_with(
        fe.addr(),
        info(1),
        Duration::from_millis(50),
        ReconnectPolicy::new(0xbe7c),
    )
    .expect("agent connects");
    wait_synced(&agent, epoch);

    let mut ms = Vec::with_capacity(trials);
    for trial in 0..trials {
        // The agent's epoch check is satisfied by its previous session, so
        // explicitly wait for the server side to have (re)registered the
        // peer — otherwise a sever can race the accept and cut nothing.
        assert!(
            fe.bus().wait_for_agents(1, Duration::from_secs(30)),
            "peer registered before sever"
        );
        let start = Instant::now();
        fe.bus().sever();
        let target = (trial + 1) as u64;
        while agent.reconnects() < target || agent.status() != ConnStatus::Connected {
            assert!(
                start.elapsed() < Duration::from_secs(30),
                "reconnect stalled (status {:?})",
                agent.status()
            );
            std::thread::sleep(Duration::from_micros(200));
        }
        wait_synced(&agent, epoch);
        ms.push(start.elapsed().as_secs_f64() * 1e3);
    }
    agent.shutdown();
    ms
}

/// Each trial kills a connected agent the way a crashing process would
/// and times a fresh replacement (same host/procid, new incarnation)
/// connecting and re-installing the full query set.
fn bench_abort_restart(trials: usize) -> Vec<f64> {
    let mut fe = LiveFrontend::start().expect("frontend starts");
    define_kv_tracepoints(fe.frontend_mut());
    fe.install(QUERY).expect("query installs");
    let epoch = fe.bus().epoch();

    let mut ms = Vec::with_capacity(trials);
    for _ in 0..trials {
        let victim = LiveAgent::connect(fe.addr(), info(1), Duration::from_millis(50))
            .expect("victim connects");
        wait_synced(&victim, epoch);

        let start = Instant::now();
        victim.abort();
        let replacement = LiveAgent::connect(fe.addr(), info(1), Duration::from_millis(50))
            .expect("replacement connects");
        wait_synced(&replacement, epoch);
        ms.push(start.elapsed().as_secs_f64() * 1e3);
        replacement.shutdown();
    }
    ms
}

struct SimSummary {
    seeds: u64,
    dropped: u64,
    duplicated: u64,
    delayed: u64,
    crashes: u64,
    emitted: u64,
    delivered: u64,
    balanced: bool,
}

/// Deterministic fault-injection sweep: aggregate injector activity over
/// `seeds` seed-derived schedules and check the accounting identity
/// `emitted == delivered + dropped + crash_lost` held for all of them.
fn sim_summary(seeds: u64) -> SimSummary {
    let mut s = SimSummary {
        seeds,
        dropped: 0,
        duplicated: 0,
        delayed: 0,
        crashes: 0,
        emitted: 0,
        delivered: 0,
        balanced: true,
    };
    for seed in 0..seeds {
        let out = run_kv(seed, FaultConfig::for_seed(seed), 128);
        s.dropped += out.chaos.reports_dropped;
        s.duplicated += out.chaos.reports_duplicated;
        s.delayed += out.chaos.reports_delayed;
        s.crashes += out.crashes;
        s.emitted += out.emitted;
        s.delivered += out.loss.tuples_delivered;
        s.balanced &= out.balanced();
    }
    s
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    trials: usize,
    quick: bool,
    sever_ms: &[f64],
    restart_ms: &[f64],
    sim: &SimSummary,
    ok: bool,
) -> String {
    let list = |ms: &[f64]| {
        ms.iter()
            .map(|m| format!("{m:.2}"))
            .collect::<Vec<_>>()
            .join(", ")
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"chaos_recovery\",\n");
    s.push_str("  \"units\": \"ms_wall_clock\",\n");
    s.push_str(&format!("  \"trials\": {trials},\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"unix_nanos\": {},\n", pivot_live::now_nanos()));
    s.push_str(&format!(
        "  \"recovery_budget_ms\": {RECOVERY_BUDGET_MS},\n  \"budget_ok\": {ok},\n"
    ));
    s.push_str("  \"scenarios\": [\n");
    s.push_str(&format!(
        "    {{\"name\": \"sever_reconnect\", \"median_ms\": {:.3}, \"trials_ms\": [{}]}},\n",
        median(sever_ms),
        list(sever_ms)
    ));
    s.push_str(&format!(
        "    {{\"name\": \"abort_restart\", \"median_ms\": {:.3}, \"trials_ms\": [{}]}}\n",
        median(restart_ms),
        list(restart_ms)
    ));
    s.push_str("  ],\n");
    s.push_str(&format!(
        "  \"sim_sweep\": {{\"seeds\": {}, \"reports_dropped\": {}, \"reports_duplicated\": {}, \
         \"reports_delayed\": {}, \"crashes\": {}, \"tuples_emitted\": {}, \
         \"tuples_delivered\": {}, \"all_balanced\": {}}}\n",
        sim.seeds,
        sim.dropped,
        sim.duplicated,
        sim.delayed,
        sim.crashes,
        sim.emitted,
        sim.delivered,
        sim.balanced
    ));
    s.push_str("}\n");
    s
}
