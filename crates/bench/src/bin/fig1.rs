//! Regenerates Figure 1: HDFS throughput per machine (1a), per client
//! application (1b), and the MRsort10g disk-IO pivot table (1c).
//!
//! ```text
//! cargo run -p pivot-bench --bin fig1 --release -- [--secs 120] [--seed 42]
//! ```

use pivot_bench::{downsample, f, flag_f64, flag_u64, print_table, sparkline};
use pivot_workloads::experiments::{fig1, Series};

fn main() {
    let cfg = fig1::Config {
        seed: flag_u64("--seed", 42),
        duration_secs: flag_f64("--secs", 120.0),
        ..fig1::Config::default()
    };
    eprintln!(
        "running figure 1 workload mix for {}s of virtual time ...",
        cfg.duration_secs
    );
    let r = fig1::run(&cfg);

    let series_rows = |series: &[Series]| -> Vec<Vec<String>> {
        series
            .iter()
            .map(|s| {
                let avg = s.points.iter().sum::<f64>() / s.points.len().max(1) as f64;
                let peak = s.points.iter().cloned().fold(0.0, f64::max);
                vec![
                    s.label.clone(),
                    f(avg, 1),
                    f(peak, 1),
                    sparkline(&downsample(&s.points, 40)),
                ]
            })
            .collect()
    };

    print_table(
        "Figure 1a: HDFS DataNode throughput per machine (MB/s)",
        &["host", "avg", "peak", "over time"],
        &series_rows(&r.per_host),
    );
    print_table(
        "Figure 1b: HDFS throughput grouped by client application (MB/s)",
        &["client", "avg", "peak", "over time"],
        &series_rows(&r.per_client),
    );

    // Figure 1c pivot table: rows = hosts, columns = phases.
    let phases = ["HDFS", "Map", "Shuffle", "Reduce"];
    let mut hosts: Vec<String> = r.pivot.iter().map(|c| c.host.clone()).collect();
    hosts.sort();
    hosts.dedup();
    let mut rows = Vec::new();
    let mut col_total = vec![0.0f64; phases.len()];
    for host in &hosts {
        let mut row = vec![host.clone()];
        let mut total = 0.0;
        for (i, phase) in phases.iter().enumerate() {
            let cell = r
                .pivot
                .iter()
                .find(|c| &c.host == host && c.phase == *phase);
            let (rd, wr) = cell.map_or((0.0, 0.0), |c| (c.read_mb, c.write_mb));
            row.push(format!("{}r/{}w", f(rd, 0), f(wr, 0)));
            total += rd + wr;
            col_total[i] += rd + wr;
        }
        row.push(f(total, 0));
        rows.push(row);
    }
    let mut totals = vec!["Σcluster".to_owned()];
    let mut grand = 0.0;
    for t in &col_total {
        totals.push(f(*t, 0));
        grand += t;
    }
    totals.push(f(grand, 0));
    rows.push(totals);
    print_table(
        "Figure 1c: MRsort10g disk IO pivot (MB read/written, host x phase)",
        &["host", "HDFS", "Map", "Shuffle", "Reduce", "Σmachine"],
        &rows,
    );
}
