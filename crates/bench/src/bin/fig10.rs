//! Regenerates Figure 10: baggage API microbenchmarks — pack one tuple,
//! unpack all, serialize, and deserialize, as a function of the number of
//! 8-byte tuples already in the baggage (1–256).
//!
//! This binary prints quick timing-loop results; for statistically robust
//! numbers run the criterion bench: `cargo bench -p pivot-bench --bench
//! baggage`.
//!
//! ```text
//! cargo run -p pivot-bench --bin fig10 --release -- [--iters 2000]
//! ```

use std::time::Instant;

use pivot_baggage::{Baggage, PackMode, QueryId};
use pivot_bench::{f, flag_usize, print_table};
use pivot_model::{Tuple, Value};

const Q: QueryId = QueryId(1);

fn tuple(i: u64) -> Tuple {
    Tuple::from_iter([Value::U64(i)])
}

fn filled(n: usize) -> Baggage {
    let mut bag = Baggage::new();
    bag.pack(Q, &PackMode::All, (0..n as u64).map(tuple));
    bag
}

fn time_ns(iters: usize, mut op: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

fn main() {
    let iters = flag_usize("--iters", 2000);
    let sizes = [1usize, 2, 4, 8, 16, 32, 64, 128, 256];
    let mut rows = Vec::new();
    for &n in &sizes {
        // (a) pack one more tuple into a baggage of n tuples.
        let base = filled(n);
        let pack = time_ns(iters, || {
            let mut bag = base.clone();
            bag.pack(Q, &PackMode::All, [tuple(999)]);
            std::hint::black_box(&bag);
        });
        // Subtract the clone cost measured separately.
        let clone_cost = time_ns(iters, || {
            std::hint::black_box(base.clone());
        });

        // (b) unpack all tuples.
        let mut bag = filled(n);
        let unpack = time_ns(iters, || {
            std::hint::black_box(bag.unpack(Q));
        });

        // (c) serialize.
        let serialize = time_ns(iters, || {
            let mut bag = base.clone();
            // Invalidate the cache so encoding actually happens.
            bag.pack(Q, &PackMode::All, std::iter::empty::<Tuple>());
            std::hint::black_box(bag.to_bytes());
        });

        // (d) deserialize (decode happens on first access).
        let mut src = filled(n);
        let bytes = src.to_bytes();
        let deserialize = time_ns(iters, || {
            let mut bag = Baggage::from_bytes(&bytes);
            std::hint::black_box(bag.unpack(Q).len());
        });

        rows.push(vec![
            n.to_string(),
            f((pack - clone_cost).max(0.0) / 1000.0, 3),
            f(unpack / 1000.0, 3),
            f((serialize - clone_cost).max(0.0) / 1000.0, 3),
            f(deserialize / 1000.0, 3),
        ]);
    }
    print_table(
        "Figure 10: baggage microbenchmarks (µs per op, 8-byte tuples)",
        &[
            "tuples",
            "(a) pack 1",
            "(b) unpack all",
            "(c) serialize",
            "(d) deserialize",
        ],
        &rows,
    );
    println!(
        "\npaper shape: all four grow roughly linearly in the tuple count,\n\
         with pack cheapest and deserialize most expensive."
    );
}
