//! Regenerates Figure 3: happened-before join semantics on the paper's
//! example execution (tracepoints A, B, C across two branches).
//!
//! ```text
//! cargo run -p pivot-bench --bin fig3
//! ```

use pivot_bench::print_table;
use pivot_core::global::{evaluate, TraceLog, TracedCtx};
use pivot_core::Frontend;
use pivot_model::Value;

fn main() {
    let mut fe = Frontend::new();
    for tp in ["A", "B", "C"] {
        fe.define(tp, ["x"]);
    }

    // The execution graph of Figure 3.
    let mut log = TraceLog::new();
    let mut ctx = TracedCtx::new(&mut log, 0);
    ctx.record("A", &[("x", Value::str("a1"))]);
    let mut branch = ctx.split();
    ctx.record("B", &[("x", Value::str("b1"))]);
    ctx.record("C", &[("x", Value::str("c1"))]);
    ctx.record_on(&mut branch, "A", &[("x", Value::str("a2"))]);
    ctx.record_on(&mut branch, "B", &[("x", Value::str("b2"))]);
    ctx.join(branch);
    ctx.record("C", &[("x", Value::str("c2"))]);
    ctx.record("A", &[("x", Value::str("a3"))]);

    let show = |title: &str, text: &str| {
        let ast = pivot_query::parse(text).expect("query parses");
        let rows: Vec<Vec<String>> = evaluate(&ast, &fe, &log)
            .into_iter()
            .map(|r| vec![r.iter().map(Value::to_string).collect::<Vec<_>>().join(" ")])
            .collect();
        print_table(title, &["result tuples"], &rows);
    };

    println!("Execution: a1 -> [ b1 -> c1 | a2 -> b2 ] -> c2 -> a3");
    show("Query: A", "From a In A Select a.x");
    show(
        "Query: A ->< B",
        "From b In B Join a In A On a -> b Select a.x, b.x",
    );
    show(
        "Query: B ->< C",
        "From c In C Join b In B On b -> c Select b.x, c.x",
    );
    show(
        "Query: (A ->< B) ->< C",
        "From c In C Join b In B On b -> c Join a In A On a -> b \
         Select a.x, b.x, c.x",
    );
}
