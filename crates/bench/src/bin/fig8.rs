//! Regenerates Figure 8: the HDFS-6268 replica-selection diagnosis.
//!
//! ```text
//! cargo run -p pivot-bench --bin fig8 --release -- \
//!     [--secs 60] [--seed 42] [--clients 12] [--fixed 1]
//! ```
//!
//! Pass `--fixed 1` to run with the bug repaired (uniform load).

use pivot_bench::{f, flag, flag_f64, flag_u64, flag_usize, print_table};
use pivot_workloads::experiments::fig8;

fn main() {
    let cfg = fig8::Config {
        seed: flag_u64("--seed", 42),
        duration_secs: flag_f64("--secs", 60.0),
        clients_per_host: flag_usize("--clients", 12),
        bug: flag("--fixed").is_none(),
        ..fig8::Config::default()
    };
    eprintln!(
        "running {} stress clients for {}s (HDFS-6268 bug {}) ...",
        cfg.clients_per_host * cfg.workers,
        cfg.duration_secs,
        if cfg.bug { "PRESENT" } else { "fixed" }
    );
    let r = fig8::run(&cfg);

    print_table(
        "Figure 8a: stress client request throughput (req/s per client)",
        &["client host", "req/s"],
        &r.client_rate
            .iter()
            .map(|(h, v)| vec![h.clone(), f(*v, 1)])
            .collect::<Vec<_>>(),
    );
    print_table(
        "Figure 8b: network transmit per host (MB/s)",
        &["host", "MB/s"],
        &r.network_mbps
            .iter()
            .map(|(h, v)| vec![h.clone(), f(*v, 2)])
            .collect::<Vec<_>>(),
    );
    print_table(
        "Figure 8c: DataNode request throughput (ops/s), query Q3",
        &["host", "ops/s"],
        &r.dn_ops
            .iter()
            .map(|(h, v)| vec![h.clone(), f(*v, 1)])
            .collect::<Vec<_>>(),
    );
    print_table(
        "Figure 8d: per-client file read distribution, query Q4",
        &["client host", "files", "mean reads", "cv"],
        &r.read_dist
            .iter()
            .map(|d| {
                vec![
                    d.host.clone(),
                    d.files.to_string(),
                    f(d.mean, 2),
                    f(d.cv, 2),
                ]
            })
            .collect::<Vec<_>>(),
    );

    let matrix = |m: &[Vec<f64>]| -> Vec<Vec<String>> {
        m.iter()
            .enumerate()
            .map(|(i, row)| {
                let mut out = vec![format!("client {}", (b'A' + i as u8) as char)];
                out.extend(
                    row.iter()
                        .map(|v| if v.is_nan() { "-".to_owned() } else { f(*v, 2) }),
                );
                out
            })
            .collect()
    };
    let dn_headers: Vec<String> = std::iter::once("".to_owned())
        .chain((0..cfg.workers).map(|i| format!("DN {}", (b'A' + i as u8) as char)))
        .collect();
    let dn_headers: Vec<&str> = dn_headers.iter().map(String::as_str).collect();

    print_table(
        "Figure 8e: replica-location frequency (row-normalized), query Q5",
        &dn_headers,
        &matrix(&r.replica_freq),
    );
    print_table(
        "Figure 8f: DataNode selection frequency (row-normalized), query Q6",
        &dn_headers,
        &matrix(&r.selection_freq),
    );
    print_table(
        "Figure 8g: P(row chosen over column | both non-local), query Q7",
        &dn_headers,
        &matrix(&r.preference),
    );
}
