//! Regenerates Figure 9: end-to-end latency diagnosis (network limplock),
//! plus the other §6.2 case studies (rogue GC, NameNode lock overload).
//!
//! ```text
//! cargo run -p pivot-bench --bin fig9 --release -- \
//!     [--secs 90] [--seed 42] [--case limplock|gc|nnlock]
//! ```

use pivot_bench::{downsample, f, flag, flag_f64, flag_u64, print_table, sparkline};
use pivot_workloads::experiments::fig9::{self, Case, Decomposition};

fn main() {
    let case = match flag("--case").as_deref() {
        Some("gc") => Case::RogueGc,
        Some("nnlock") => Case::NnLock,
        _ => Case::Limplock,
    };
    let cfg = fig9::Config {
        seed: flag_u64("--seed", 42),
        duration_secs: flag_f64("--secs", 90.0),
        case,
        ..fig9::Config::default()
    };
    eprintln!(
        "running HBase scan workload with {case:?} injected for {}s ...",
        cfg.duration_secs
    );
    let r = fig9::run(&cfg);

    // 9a: latency over time.
    let buckets = 50usize;
    let max_t = r
        .latencies
        .iter()
        .map(|(t, _)| *t)
        .fold(0.0f64, f64::max)
        .max(1.0);
    let mut lat_max = vec![0.0f64; buckets];
    for (t, l) in &r.latencies {
        let idx = (((t / max_t) * buckets as f64) as usize).min(buckets - 1);
        lat_max[idx] = lat_max[idx].max(*l);
    }
    println!("\n== Figure 9a: request latencies over time ==");
    println!("max latency per window (s): {}", sparkline(&lat_max));
    let peak = r.latencies.iter().map(|(_, l)| *l).fold(0.0f64, f64::max);
    println!(
        "requests: {}   peak latency: {:.2}s   slow threshold: {:.2}s",
        r.latencies.len(),
        peak,
        r.slow_threshold_secs
    );

    // 9b: decomposition, average vs slow.
    let row = |label: &str, d: &Decomposition| -> Vec<String> {
        vec![
            label.to_owned(),
            d.count.to_string(),
            f(d.rs_queue, 3),
            f(d.rs_process, 3),
            f(d.dn_transfer, 3),
            f(d.dn_blocked, 3),
            f(d.gc, 3),
            f(d.nn_lock, 3),
        ]
    };
    print_table(
        "Figure 9b: per-component latency decomposition (seconds)",
        &[
            "bucket",
            "requests",
            "RS queue",
            "RS process",
            "DN transfer",
            "DN blocked",
            "GC",
            "NN lock",
        ],
        &[row("average", &r.avg), row("slow", &r.slow)],
    );

    // 9c: per-machine network throughput.
    print_table(
        "Figure 9c: per-machine network transmit (MB/s)",
        &["host", "MB/s"],
        &r.network_mbps
            .iter()
            .map(|(h, v)| vec![h.clone(), f(*v, 2)])
            .collect::<Vec<_>>(),
    );
    let _ = downsample(&lat_max, 1);
}
