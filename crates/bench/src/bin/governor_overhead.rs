//! Governor accounting cost on the woven hot path, written to
//! `BENCH_governor.json`.
//!
//! Every scenario drives the *real* agent invoke path (registry lookup,
//! VM execution, sink aggregation) on a woven aggregation query; the only
//! variable is the governor:
//!
//! | scenario          | governor | what one "op" is                      |
//! |-------------------|----------|---------------------------------------|
//! | `ungoverned_agg`  | off      | one woven `Agent::invoke`, no budget  |
//! | `governed_agg`    | charging | same invoke under a generous finite budget (charged, never trips) |
//! | `p99_fault_free`  | off      | per-invoke latency samples, no storm  |
//! | `p99_storm`       | tripping | same, under a sustained storm with a tight budget: the breaker trips, backs off, re-arms on flush |
//!
//! ```text
//! cargo run -p pivot-bench --bin governor_overhead --release -- \
//!     [--threads 1] [--quick] [--enforce] [--out BENCH_governor.json]
//! ```
//!
//! `--enforce` exits non-zero unless both gates hold: per-query cost
//! accounting adds at most 5% (plus a small absolute grace) to the woven
//! hot path, and storm-time p99 latency with the governor stays within
//! 2× the fault-free p99 — i.e. tripping the breaker actually protects
//! the application instead of adding a new overload mode.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use pivot_baggage::{Baggage, QueryId};
use pivot_bench::{flag, flag_usize, print_table};
use pivot_core::{Agent, Frontend, ProcessInfo, QueryBudget};
use pivot_live::service::define_kv_tracepoints;
use pivot_model::Value;
use pivot_query::CompiledCode;

/// Gate 1: governed mean cost <= ungoverned mean × this …
const GATE_ACCOUNTING_RATIO: f64 = 1.05;
/// … plus this absolute grace (sub-100ns ops make a pure ratio noisy).
const GATE_ACCOUNTING_GRACE_NS: f64 = 15.0;
/// Gate 2: storm p99 (governed) <= fault-free p99 × this.
const GATE_STORM_P99_RATIO: f64 = 2.0;

const AGG_QUERY: &str =
    "From exec In KvShard.execute GroupBy exec.shard Select exec.shard, COUNT, SUM(exec.bytes)";

struct Scenario {
    name: &'static str,
    detail: &'static str,
    iters: u64,
    ns_per_op: f64,
}

fn main() {
    let threads = flag_usize("--threads", 1);
    let quick = std::env::args().any(|a| a == "--quick");
    let enforce = std::env::args().any(|a| a == "--enforce");
    let out = flag("--out").unwrap_or_else(|| "BENCH_governor.json".to_owned());
    let scale = if quick { 20 } else { 1 };

    eprintln!("governor overhead bench: {threads} thread(s) per scenario (quick={quick})");

    let iters = 1_000_000 / scale;
    let p99_iters = 200_000 / scale;

    let (code, qid) = install(AGG_QUERY);

    let (ungoverned, governed) = bench_accounting_pair(&code, threads, iters);
    // Best-of-2 for the tail scenarios too: a one-off scheduler stall in
    // either run would otherwise dominate p99 at --quick sample counts.
    let p99_fault_free = f64::min(
        bench_p99(&code, qid, None, p99_iters).0,
        bench_p99(&code, qid, None, p99_iters).0,
    );
    let (storm_a, trips_a) = bench_p99(&code, qid, Some(storm_budget()), p99_iters);
    let (storm_b, trips_b) = bench_p99(&code, qid, Some(storm_budget()), p99_iters);
    let (p99_storm, storm_trips) = (f64::min(storm_a, storm_b), trips_a.max(trips_b));

    let scenarios = vec![
        Scenario {
            name: "ungoverned_agg",
            detail: "woven invoke, no budget set (governed flag off)",
            iters,
            ns_per_op: ungoverned,
        },
        Scenario {
            name: "governed_agg",
            detail: "woven invoke charged against a generous finite budget",
            iters,
            ns_per_op: governed,
        },
        Scenario {
            name: "p99_fault_free",
            detail: "p99 of per-invoke latency, no storm, no governor (1 thread)",
            iters: p99_iters,
            ns_per_op: p99_fault_free,
        },
        Scenario {
            name: "p99_storm",
            detail: "p99 under a sustained storm with a tight budget (trip/re-arm cycles)",
            iters: p99_iters,
            ns_per_op: p99_storm,
        },
    ];

    let gate_accounting = governed <= ungoverned * GATE_ACCOUNTING_RATIO + GATE_ACCOUNTING_GRACE_NS;
    let gate_storm = p99_storm <= p99_fault_free * GATE_STORM_P99_RATIO;
    let gate_ok = gate_accounting && gate_storm && storm_trips > 0;

    print_table(
        "Overload governor on the woven hot path (wall clock)",
        &["scenario", "ns/op", "iters/thread", "what one op is"],
        &scenarios
            .iter()
            .map(|s| {
                vec![
                    s.name.to_owned(),
                    format!("{:.1}", s.ns_per_op),
                    s.iters.to_string(),
                    s.detail.to_owned(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\naccounting overhead: {:.1}% (gate <= {:.0}% + {GATE_ACCOUNTING_GRACE_NS}ns grace: {})",
        (governed / ungoverned - 1.0) * 100.0,
        (GATE_ACCOUNTING_RATIO - 1.0) * 100.0,
        if gate_accounting { "PASS" } else { "FAIL" }
    );
    println!(
        "storm p99 {:.1}ns vs fault-free p99 {:.1}ns, {storm_trips} trips \
         (gate <= x{GATE_STORM_P99_RATIO}: {})",
        p99_storm,
        p99_fault_free,
        if gate_storm { "PASS" } else { "FAIL" }
    );

    let json = render_json(
        &scenarios,
        threads,
        quick,
        governed / ungoverned,
        p99_storm / p99_fault_free,
        storm_trips,
        gate_accounting,
        gate_storm,
        gate_ok,
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");

    if enforce && !gate_ok {
        eprintln!(
            "--enforce: governor gates failed \
             (accounting {gate_accounting}, storm {gate_storm}, trips {storm_trips})"
        );
        std::process::exit(2);
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scenarios: &[Scenario],
    threads: usize,
    quick: bool,
    accounting_ratio: f64,
    storm_p99_ratio: f64,
    storm_trips: u32,
    gate_accounting: bool,
    gate_storm: bool,
    gate_ok: bool,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"governor_overhead\",\n");
    s.push_str("  \"units\": \"ns_per_op_wall_clock\",\n");
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"unix_nanos\": {},\n", pivot_live::now_nanos()));
    s.push_str(&format!(
        "  \"gate_accounting_ratio\": {GATE_ACCOUNTING_RATIO},\n"
    ));
    s.push_str(&format!(
        "  \"gate_storm_p99_ratio\": {GATE_STORM_P99_RATIO},\n"
    ));
    s.push_str(&format!("  \"accounting_ratio\": {accounting_ratio:.4},\n"));
    s.push_str(&format!("  \"storm_p99_ratio\": {storm_p99_ratio:.4},\n"));
    s.push_str(&format!("  \"storm_trips\": {storm_trips},\n"));
    s.push_str(&format!("  \"gate_accounting\": {gate_accounting},\n"));
    s.push_str(&format!("  \"gate_storm\": {gate_storm},\n"));
    s.push_str(&format!("  \"gate_ok\": {gate_ok},\n"));
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.3}, \"iters_per_thread\": {}, \"detail\": \"{}\"}}{}\n",
            sc.name,
            sc.ns_per_op,
            sc.iters,
            sc.detail,
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Compiles `query` through the real frontend (verifier included).
fn install(query: &str) -> (Arc<CompiledCode>, QueryId) {
    let mut fe = Frontend::new();
    define_kv_tracepoints(&mut fe);
    let handle = fe.install(query).expect("bench query installs");
    (fe.code(&handle).expect("lowered form"), handle.id)
}

fn bench_agent(code: &Arc<CompiledCode>) -> Agent {
    let agent = Agent::new(ProcessInfo {
        host: "bench".into(),
        procid: 7,
        procname: "kvserver".into(),
    });
    agent.install(code);
    agent
}

/// A finite budget no workload here can exhaust: the charging path runs
/// on every invoke, the breaker never trips.
fn generous_budget() -> QueryBudget {
    QueryBudget {
        tuples_per_window: 1 << 40,
        ops_per_window: 1 << 50,
        bytes_per_window: 1 << 50,
        window_ns: 1_000_000_000,
        backoff_base_windows: 1,
        max_backoff_doublings: 0,
    }
}

/// A budget a storm exhausts within one window: 500 tuples per 1000
/// virtual-time ops, short backoff so trip/re-arm cycles repeat.
fn storm_budget() -> QueryBudget {
    QueryBudget {
        tuples_per_window: 500,
        ops_per_window: u64::MAX,
        bytes_per_window: u64::MAX,
        window_ns: 1_000_000,
        backoff_base_windows: 1,
        max_backoff_doublings: 2,
    }
}

fn shard_exports() -> [(&'static str, Value); 4] {
    [
        ("shard", Value::U64(3)),
        ("op", Value::str("get")),
        ("bytes", Value::U64(128)),
        ("hit", Value::Bool(true)),
    ]
}

/// Mean ns per woven invoke, ungoverned vs governed-and-charging, across
/// `threads` OS threads.
///
/// The two sides are *interleaved* — round-robin passes, best pass per
/// side — because they differ by tens of nanoseconds while ambient noise
/// (turbo, scheduler, neighbors) drifts by far more between back-to-back
/// runs. Interleaving exposes both sides to the same noise, and the
/// per-side minimum picks each side's quiet window.
fn bench_accounting_pair(code: &Arc<CompiledCode>, threads: usize, iters: u64) -> (f64, f64) {
    let plain = bench_agent(code);
    let governed = bench_agent(code);
    governed.set_budget(code.id, generous_budget());
    let exports = shard_exports();
    let pass = |agent: &Agent, n: u64| {
        let mut bag = Baggage::new();
        let start = Instant::now();
        for i in 0..n {
            agent.invoke("KvShard.execute", &mut bag, i, black_box(&exports));
        }
        start.elapsed().as_nanos() as u64
    };
    let timed = |agent: &Agent| {
        let total: u64 = std::thread::scope(|s| {
            (0..threads)
                .map(|_| s.spawn(|| pass(agent, iters)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("bench thread panicked"))
                .sum()
        });
        total as f64 / (threads as f64 * iters as f64)
    };
    // Untimed warmup to fault in code and allocators.
    pass(&plain, iters / 20 + 1);
    pass(&governed, iters / 20 + 1);
    let (mut best_plain, mut best_governed) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        best_plain = best_plain.min(timed(&plain));
        best_governed = best_governed.min(timed(&governed));
    }
    (best_plain, best_governed)
}

/// p99 of individually-timed invokes on one thread, on a virtual clock
/// (1000 ns per op). With a tight budget the run storms straight through
/// trip → backoff → flush-driven re-arm cycles; returns the trip count
/// alongside so callers can reject a vacuous run.
fn bench_p99(
    code: &Arc<CompiledCode>,
    qid: QueryId,
    budget: Option<QueryBudget>,
    iters: u64,
) -> (f64, u32) {
    let agent = bench_agent(code);
    if let Some(b) = budget {
        agent.set_budget(code.id, b);
    }
    let exports = shard_exports();
    let mut bag = Baggage::new();
    let mut samples = Vec::with_capacity(iters as usize);
    for i in 0..iters {
        let now = i * 1_000;
        let start = Instant::now();
        agent.invoke("KvShard.execute", &mut bag, now, black_box(&exports));
        samples.push(start.elapsed().as_nanos() as u64);
        // Reporting interval: every 2000 ops. The flush is where tripped
        // breakers re-arm; its cost is amortized, not per-op, so it is
        // deliberately outside the sample timer.
        if i % 2_000 == 1_999 {
            black_box(agent.flush(now));
        }
    }
    samples.sort_unstable();
    let idx = ((samples.len() - 1) as f64 * 0.99) as usize;
    (samples[idx] as f64, agent.trips_for(qid))
}
