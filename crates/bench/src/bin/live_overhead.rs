//! Wall-clock Table-5 analog on the live runtime: per-operation cost of
//! the Pivot Tracing machinery on real OS threads, written to
//! `BENCH_live.json`.
//!
//! Unlike `table5` (virtual time inside the simulator), every number here
//! is measured with `Instant` on concurrently running threads, each with
//! its own thread-local baggage:
//!
//! | scenario    | what one "op" is                                        |
//! |-------------|---------------------------------------------------------|
//! | `unwoven`   | tracepoint call with **no query woven** (one atomic load)|
//! | `disabled`  | tracepoint call, query woven but the agent switched off  |
//! | `woven_agg` | tracepoint running Observe→Emit advice into a local agg  |
//! | `woven_join`| a Q1-style request: pack at the client tracepoint, unpack + emit at the shard tracepoint, fresh baggage scope |
//! | `pack`      | one `Baggage::pack` (FIRST mode, bounded)                |
//! | `serialize` | one pack + full wire encode (`Baggage::to_bytes`)        |
//!
//! ```text
//! cargo run -p pivot-bench --bin live_overhead --release -- \
//!     [--threads 4] [--quick] [--enforce] [--out BENCH_live.json]
//! ```
//!
//! `--enforce` exits non-zero if the unwoven cost exceeds the 50 ns/op
//! budget (the CI gate for "inactive tracepoints are free").

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use pivot_baggage::{Baggage, PackMode, QueryId};
use pivot_bench::{flag, flag_usize, print_table};
use pivot_core::{Agent, Frontend, ProcessInfo};
use pivot_live::service::define_kv_tracepoints;
use pivot_live::{ctx, tracepoint};
use pivot_model::{Tuple, Value};

/// CI budget for an inactive tracepoint (acceptance criterion).
const UNWOVEN_BUDGET_NS: f64 = 50.0;

struct Scenario {
    name: &'static str,
    detail: &'static str,
    iters: u64,
    ns_per_op: f64,
}

fn main() {
    let threads = flag_usize("--threads", 4);
    let quick = std::env::args().any(|a| a == "--quick");
    let enforce = std::env::args().any(|a| a == "--enforce");
    let out = flag("--out").unwrap_or_else(|| "BENCH_live.json".to_owned());
    let scale = if quick { 50 } else { 1 };

    eprintln!("live overhead bench: {threads} threads per scenario (quick={quick})");

    let fast_iters = 5_000_000 / scale;
    let slow_iters = 500_000 / scale;

    let scenarios = vec![
        Scenario {
            name: "unwoven",
            detail: "tracepoint with no query woven anywhere",
            iters: fast_iters,
            ns_per_op: bench_unwoven(threads, fast_iters),
        },
        Scenario {
            name: "disabled",
            detail: "query woven but agent disabled",
            iters: fast_iters,
            ns_per_op: bench_disabled(threads, fast_iters),
        },
        Scenario {
            name: "woven_agg",
            detail: "Observe -> Emit advice into the local aggregator",
            iters: slow_iters,
            ns_per_op: bench_woven_agg(threads, slow_iters),
        },
        Scenario {
            name: "woven_join",
            detail: "Q1-style request: pack at client, unpack+emit at shard, fresh scope",
            iters: slow_iters,
            ns_per_op: bench_woven_join(threads, slow_iters),
        },
        Scenario {
            name: "pack",
            detail: "Baggage::pack, FIRST mode",
            iters: slow_iters,
            ns_per_op: bench_pack(threads, slow_iters),
        },
        Scenario {
            name: "serialize",
            detail: "pack + full wire encode (to_bytes)",
            iters: slow_iters,
            ns_per_op: bench_serialize(threads, slow_iters),
        },
    ];

    let unwoven_ns = scenarios[0].ns_per_op;
    let unwoven_ok = unwoven_ns <= UNWOVEN_BUDGET_NS;

    print_table(
        "Live overhead (wall clock, per op, mean across threads)",
        &["scenario", "ns/op", "iters/thread", "what one op is"],
        &scenarios
            .iter()
            .map(|s| {
                vec![
                    s.name.to_owned(),
                    format!("{:.1}", s.ns_per_op),
                    s.iters.to_string(),
                    s.detail.to_owned(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nunwoven budget: {:.1} ns/op <= {UNWOVEN_BUDGET_NS} ns/op: {}",
        unwoven_ns,
        if unwoven_ok { "PASS" } else { "FAIL" }
    );

    let json = render_json(&scenarios, threads, quick, unwoven_ok);
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");

    if enforce && !unwoven_ok {
        eprintln!("--enforce: unwoven tracepoint cost exceeds budget");
        std::process::exit(2);
    }
}

fn render_json(scenarios: &[Scenario], threads: usize, quick: bool, unwoven_ok: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"live_overhead\",\n");
    s.push_str("  \"units\": \"ns_per_op_wall_clock\",\n");
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"unix_nanos\": {},\n", pivot_live::now_nanos()));
    s.push_str(&format!(
        "  \"unwoven_budget_ns\": {UNWOVEN_BUDGET_NS},\n  \"unwoven_ok\": {unwoven_ok},\n"
    ));
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.3}, \"iters_per_thread\": {}, \"detail\": \"{}\"}}{}\n",
            sc.name,
            sc.ns_per_op,
            sc.iters,
            sc.detail,
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Runs `f(iters)` (which returns its own timed nanoseconds) on `threads`
/// OS threads concurrently; returns mean ns/op.
fn run_threads(threads: usize, iters: u64, f: impl Fn(u64) -> u64 + Sync) -> f64 {
    // Untimed warmup pass on one thread to fault in code and allocators.
    f(iters / 20 + 1);
    let total: u64 = std::thread::scope(|s| {
        (0..threads)
            .map(|_| s.spawn(|| f(iters)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("bench thread panicked"))
            .sum()
    });
    total as f64 / (threads as f64 * iters as f64)
}

fn kv_agent(name: &str) -> Arc<Agent> {
    Arc::new(Agent::new(ProcessInfo {
        host: "bench".into(),
        procid: 7,
        procname: name.into(),
    }))
}

/// Weaves `query` into a fresh agent via the real frontend pipeline
/// (verifier included) so the bench measures exactly what deployment runs.
fn woven_agent(query: &str) -> Arc<Agent> {
    let agent = kv_agent("kvserver");
    let mut fe = Frontend::new();
    define_kv_tracepoints(&mut fe);
    fe.install(query).expect("bench query installs");
    for cmd in fe.drain_commands() {
        agent.apply(&cmd);
    }
    agent
}

fn shard_exports() -> [(&'static str, Value); 4] {
    [
        ("shard", Value::U64(3)),
        ("op", Value::str("get")),
        ("bytes", Value::U64(128)),
        ("hit", Value::Bool(true)),
    ]
}

fn bench_unwoven(threads: usize, iters: u64) -> f64 {
    let agent = kv_agent("kvserver");
    let exports = shard_exports();
    run_threads(threads, iters, |n| {
        let _scope = ctx::attach(Baggage::new());
        let start = Instant::now();
        for _ in 0..n {
            tracepoint(black_box(&agent), "KvShard.execute", black_box(&exports));
        }
        start.elapsed().as_nanos() as u64
    })
}

fn bench_disabled(threads: usize, iters: u64) -> f64 {
    let agent = woven_agent(
        "From exec In KvShard.execute GroupBy exec.shard Select exec.shard, COUNT, SUM(exec.bytes)",
    );
    agent.set_enabled(false);
    let exports = shard_exports();
    run_threads(threads, iters, |n| {
        let _scope = ctx::attach(Baggage::new());
        let start = Instant::now();
        for _ in 0..n {
            tracepoint(black_box(&agent), "KvShard.execute", black_box(&exports));
        }
        start.elapsed().as_nanos() as u64
    })
}

fn bench_woven_agg(threads: usize, iters: u64) -> f64 {
    let agent = woven_agent(
        "From exec In KvShard.execute GroupBy exec.shard Select exec.shard, COUNT, SUM(exec.bytes)",
    );
    let exports = shard_exports();
    run_threads(threads, iters, |n| {
        let _scope = ctx::attach(Baggage::new());
        let start = Instant::now();
        for _ in 0..n {
            tracepoint(black_box(&agent), "KvShard.execute", black_box(&exports));
        }
        start.elapsed().as_nanos() as u64
    })
}

fn bench_woven_join(threads: usize, iters: u64) -> f64 {
    let agent = woven_agent(
        "From exec In KvShard.execute \
         Join req In First(KvClient.issueRequest) On req -> exec \
         GroupBy req.client \
         Select req.client, COUNT, SUM(exec.bytes)",
    );
    let client_exports = [
        ("client", Value::str("client-0")),
        ("op", Value::str("get")),
        ("key", Value::str("key-1")),
    ];
    let exec_exports = shard_exports();
    run_threads(threads, iters, |n| {
        let start = Instant::now();
        for _ in 0..n {
            // One op = one request's causal path on a single thread:
            // client-side pack, shard-side unpack + emit.
            let scope = ctx::attach(Baggage::new());
            tracepoint(
                black_box(&agent),
                "KvClient.issueRequest",
                black_box(&client_exports),
            );
            tracepoint(
                black_box(&agent),
                "KvShard.execute",
                black_box(&exec_exports),
            );
            drop(scope);
        }
        start.elapsed().as_nanos() as u64
    })
}

fn bench_pack(threads: usize, iters: u64) -> f64 {
    const Q: QueryId = QueryId(99);
    run_threads(threads, iters, |n| {
        let mut bag = Baggage::new();
        let tuple = Tuple::from_iter([Value::str("client-0"), Value::U64(128)]);
        let start = Instant::now();
        for _ in 0..n {
            bag.pack(Q, &PackMode::First(1), [black_box(tuple.clone())]);
        }
        black_box(bag.tuple_count(Q));
        start.elapsed().as_nanos() as u64
    })
}

fn bench_serialize(threads: usize, iters: u64) -> f64 {
    const Q: QueryId = QueryId(99);
    run_threads(threads, iters, |n| {
        let mut bag = Baggage::new();
        let tuple = Tuple::from_iter([Value::str("client-0"), Value::U64(128)]);
        let start = Instant::now();
        for _ in 0..n {
            // pack invalidates the encode cache, so to_bytes re-encodes.
            bag.pack(Q, &PackMode::First(1), [black_box(tuple.clone())]);
            black_box(bag.to_bytes());
        }
        start.elapsed().as_nanos() as u64
    })
}
