//! Hindsight ring-recording cost on the tracepoint hot path, written to
//! `BENCH_retro.json`.
//!
//! The retro ring records the raw export set of **every** invocation
//! while enabled, so its hot-path cost is the price of the "benefit of
//! hindsight". Every scenario drives the real `Agent::invoke` path; the
//! variables are what advice is woven and whether retro is on:
//!
//! | scenario            | woven    | retro | what one "op" is                 |
//! |---------------------|----------|-------|----------------------------------|
//! | `woven_retro_off`   | 5 queries| off   | concurrent-query invoke, ring disabled |
//! | `woven_retro_on`    | 5 queries| on    | same invoke + one ring record    |
//! | `woven1_retro_off`  | 1 query  | off   | minimal woven invoke, ring disabled (ungated floor) |
//! | `woven1_retro_on`   | 1 query  | on    | minimal woven invoke + one ring record (ungated floor) |
//! | `unwoven_retro_off` | no       | off   | inactive tracepoint, ring disabled (one relaxed load each) |
//! | `unwoven_retro_on`  | no       | on    | inactive tracepoint + one ring record |
//!
//! The *gated* woven pair weaves five concurrent aggregation queries on
//! the tracepoint, mirroring the paper's evaluation (§6 runs its query
//! set simultaneously; Pivot Tracing's stated overhead numbers are
//! against that concurrent load, not a single minimal query). The
//! single-query pair is reported ungated as a floor: it shows the same
//! absolute recording cost against the cheapest possible woven invoke.
//!
//! ```text
//! cargo run -p pivot-bench --bin retro_overhead --release -- \
//!     [--threads 1] [--quick] [--enforce] [--out BENCH_retro.json]
//! ```
//!
//! `--enforce` exits non-zero unless both gates hold: ring recording adds
//! at most 5% (plus a small absolute grace) to the woven invoke path, and
//! with retro *off* — the default — an unwoven tracepoint stays inside
//! the inactive-tracepoint budget, i.e. the hindsight machinery costs ~0
//! until an operator turns it on. The `unwoven_retro_on` row is reported
//! ungated: it is the documented per-event sampling price of hindsight
//! recording, bounded by the ring, not an accidental regression.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use pivot_baggage::Baggage;
use pivot_bench::{flag, flag_usize, print_table};
use pivot_core::{set_trace, Agent, Frontend, ProcessInfo};
use pivot_live::service::define_kv_tracepoints;
use pivot_model::Value;
use pivot_query::CompiledCode;

/// Gate 1: woven retro-on mean cost <= retro-off mean × this …
const GATE_WOVEN_RATIO: f64 = 1.05;
/// … plus this absolute grace (one ring record is tens of nanoseconds;
/// a pure ratio on a sub-microsecond op punishes fast baselines with
/// what is really timer and scheduler noise).
const GATE_WOVEN_GRACE_NS: f64 = 40.0;
/// Gate 2: unwoven invoke with retro off (the default) stays inside the
/// inactive-tracepoint budget — the same 50 ns ceiling the live-overhead
/// bench enforces, now with the retro gate check on the path.
const GATE_UNWOVEN_OFF_NS: f64 = 50.0;

/// The paper-style concurrent query load: five aggregation queries woven
/// on the same tracepoint, the shape §6's evaluation runs its query set
/// under.
const CONCURRENT_QUERIES: [&str; 5] = [
    "From exec In KvShard.execute GroupBy exec.shard Select exec.shard, COUNT, SUM(exec.bytes)",
    "From exec In KvShard.execute GroupBy exec.op Select exec.op, COUNT, MAX(exec.bytes)",
    "From exec In KvShard.execute Where exec.bytes > 64 GroupBy exec.shard Select exec.shard, COUNT",
    "From exec In KvShard.execute GroupBy exec.hit Select exec.hit, COUNT, AVG(exec.bytes)",
    "From exec In KvShard.execute GroupBy exec.shard, exec.op Select exec.shard, exec.op, SUM(exec.bytes)",
];

struct Scenario {
    name: &'static str,
    detail: &'static str,
    iters: u64,
    ns_per_op: f64,
}

fn main() {
    let threads = flag_usize("--threads", 1);
    let quick = std::env::args().any(|a| a == "--quick");
    let enforce = std::env::args().any(|a| a == "--enforce");
    let out = flag("--out").unwrap_or_else(|| "BENCH_retro.json".to_owned());
    let scale = if quick { 20 } else { 1 };

    eprintln!("retro overhead bench: {threads} thread(s) per scenario (quick={quick})");

    let iters = 1_000_000 / scale;

    let concurrent = install(&CONCURRENT_QUERIES);
    let single = install(&CONCURRENT_QUERIES[..1]);
    let (woven_off, woven_on) = bench_pair(&concurrent, threads, iters);
    let (woven1_off, woven1_on) = bench_pair(&single, threads, iters);
    let (unwoven_off, unwoven_on) = bench_pair(&[], threads, iters);

    let scenarios = vec![
        Scenario {
            name: "woven_retro_off",
            detail: "5 concurrent aggregation queries woven, hindsight ring disabled",
            iters,
            ns_per_op: woven_off,
        },
        Scenario {
            name: "woven_retro_on",
            detail: "same concurrent-query invoke recording into the hindsight ring",
            iters,
            ns_per_op: woven_on,
        },
        Scenario {
            name: "woven1_retro_off",
            detail: "single minimal query woven, ring disabled (ungated floor)",
            iters,
            ns_per_op: woven1_off,
        },
        Scenario {
            name: "woven1_retro_on",
            detail: "single minimal query woven plus one ring record (ungated floor)",
            iters,
            ns_per_op: woven1_on,
        },
        Scenario {
            name: "unwoven_retro_off",
            detail: "inactive tracepoint, ring disabled (the default)",
            iters,
            ns_per_op: unwoven_off,
        },
        Scenario {
            name: "unwoven_retro_on",
            detail: "inactive tracepoint recording into the hindsight ring (ungated: the sampling price of hindsight)",
            iters,
            ns_per_op: unwoven_on,
        },
    ];

    let gate_woven = woven_on <= woven_off * GATE_WOVEN_RATIO + GATE_WOVEN_GRACE_NS;
    let gate_unwoven_off = unwoven_off <= GATE_UNWOVEN_OFF_NS;
    let gate_ok = gate_woven && gate_unwoven_off;

    print_table(
        "Hindsight ring recording on the tracepoint hot path (wall clock)",
        &["scenario", "ns/op", "iters/thread", "what one op is"],
        &scenarios
            .iter()
            .map(|s| {
                vec![
                    s.name.to_owned(),
                    format!("{:.1}", s.ns_per_op),
                    s.iters.to_string(),
                    s.detail.to_owned(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nwoven recording overhead: {:.1}% (gate <= {:.0}% + {GATE_WOVEN_GRACE_NS}ns grace: {})",
        (woven_on / woven_off - 1.0) * 100.0,
        (GATE_WOVEN_RATIO - 1.0) * 100.0,
        if gate_woven { "PASS" } else { "FAIL" }
    );
    println!(
        "single-query floor: {:.1}% ({:.1} -> {:.1} ns/op, ungated)",
        (woven1_on / woven1_off - 1.0) * 100.0,
        woven1_off,
        woven1_on
    );
    println!(
        "unwoven with retro off: {:.1} ns/op (gate <= {GATE_UNWOVEN_OFF_NS} ns: {})",
        unwoven_off,
        if gate_unwoven_off { "PASS" } else { "FAIL" }
    );
    println!(
        "unwoven with retro on: {:.1} ns/op (ungated sampling cost)",
        unwoven_on
    );

    let json = render_json(
        &scenarios,
        threads,
        quick,
        woven_on / woven_off,
        gate_woven,
        gate_unwoven_off,
        gate_ok,
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");

    if enforce && !gate_ok {
        eprintln!(
            "--enforce: retro gates failed (woven {gate_woven}, unwoven-off {gate_unwoven_off})"
        );
        std::process::exit(2);
    }
}

fn render_json(
    scenarios: &[Scenario],
    threads: usize,
    quick: bool,
    woven_ratio: f64,
    gate_woven: bool,
    gate_unwoven_off: bool,
    gate_ok: bool,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"retro_overhead\",\n");
    s.push_str("  \"units\": \"ns_per_op_wall_clock\",\n");
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"unix_nanos\": {},\n", pivot_live::now_nanos()));
    s.push_str(&format!("  \"gate_woven_ratio\": {GATE_WOVEN_RATIO},\n"));
    s.push_str(&format!(
        "  \"gate_woven_grace_ns\": {GATE_WOVEN_GRACE_NS},\n"
    ));
    s.push_str(&format!(
        "  \"gate_unwoven_off_ns\": {GATE_UNWOVEN_OFF_NS},\n"
    ));
    s.push_str(&format!("  \"woven_ratio\": {woven_ratio:.4},\n"));
    s.push_str(&format!("  \"gate_woven\": {gate_woven},\n"));
    s.push_str(&format!("  \"gate_unwoven_off\": {gate_unwoven_off},\n"));
    s.push_str(&format!("  \"gate_ok\": {gate_ok},\n"));
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.3}, \"iters_per_thread\": {}, \"detail\": \"{}\"}}{}\n",
            sc.name,
            sc.ns_per_op,
            sc.iters,
            sc.detail,
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Compiles `queries` through the real frontend (verifier included).
fn install(queries: &[&str]) -> Vec<Arc<CompiledCode>> {
    let mut fe = Frontend::new();
    define_kv_tracepoints(&mut fe);
    queries
        .iter()
        .map(|q| {
            let handle = fe.install(q).expect("bench query installs");
            fe.code(&handle).expect("lowered form")
        })
        .collect()
}

/// An agent with `codes` woven and retro configured but off; the bench
/// toggles recording per pass.
fn bench_agent(codes: &[Arc<CompiledCode>]) -> Agent {
    let agent = Agent::new(ProcessInfo {
        host: "bench".into(),
        procid: 7,
        procname: "kvserver".into(),
    });
    for code in codes {
        agent.install(code);
    }
    // Installing trigger-free advice leaves retro off; pin it off
    // explicitly so the pairing below controls the only variable.
    agent.set_retro(false);
    agent
}

fn shard_exports() -> [(&'static str, Value); 4] {
    [
        ("shard", Value::U64(3)),
        ("op", Value::str("get")),
        ("bytes", Value::U64(128)),
        ("hit", Value::Bool(true)),
    ]
}

/// Mean ns per invoke with the ring off vs on, across `threads` OS
/// threads, against a woven (non-empty `codes`) or inactive (empty)
/// tracepoint.
///
/// The two sides are *interleaved* — round-robin passes, best pass per
/// side — because they differ by tens of nanoseconds while ambient noise
/// (turbo, scheduler, neighbors) drifts by far more between back-to-back
/// runs; the per-side minimum picks each side's quiet window. Baggage
/// carries a trace id, as every retro-correlated request would, so the
/// recording side pays its real `trace_of` lookup. No trigger ever
/// fires: steady-state recording is pure ring traffic (overwrite in
/// place), which is exactly the cost the gate bounds.
fn bench_pair(codes: &[Arc<CompiledCode>], threads: usize, iters: u64) -> (f64, f64) {
    let off = bench_agent(codes);
    let on = bench_agent(codes);
    on.set_retro(true);
    let exports = shard_exports();
    let pass = |agent: &Agent, n: u64| {
        let mut bag = Baggage::new();
        set_trace(&mut bag, 42);
        let start = Instant::now();
        for i in 0..n {
            agent.invoke("KvShard.execute", &mut bag, i, black_box(&exports));
        }
        start.elapsed().as_nanos() as u64
    };
    let timed = |agent: &Agent| {
        let total: u64 = std::thread::scope(|s| {
            (0..threads)
                .map(|_| s.spawn(|| pass(agent, iters)))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().expect("bench thread panicked"))
                .sum()
        });
        total as f64 / (threads as f64 * iters as f64)
    };
    // Untimed warmup to fault in code, allocators, and the ring's slot
    // allocations (steady state overwrites in place; first-lap growth is
    // not the cost under test).
    pass(&off, iters / 20 + 1);
    pass(&on, iters / 20 + 1);
    let (mut best_off, mut best_on) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..5 {
        best_off = best_off.min(timed(&off));
        best_on = best_on.min(timed(&on));
    }
    (best_off, best_on)
}
