//! Relay-tier scale sweep: 1000 agents reporting direct-to-frontend vs
//! through a two-hop relay tree, written to `BENCH_scale.json`.
//!
//! Both scenarios drive the identical workload — every agent invokes the
//! same woven aggregation query, then the transport is drained into the
//! frontend — so the only variable is the topology:
//!
//! | scenario | topology                                   | fe inbound frames/round |
//! |----------|--------------------------------------------|-------------------------|
//! | `direct` | 1000 agents → frontend                     | 1000                    |
//! | `tree`   | 1000 agents → 10 leaf relays → root relay  | ~1                      |
//!
//! ```text
//! cargo run -p pivot-bench --bin scale --release -- \
//!     [--agents 1000] [--rounds 40] [--quick] [--enforce] [--out BENCH_scale.json]
//! ```
//!
//! `--enforce` exits non-zero unless both gates hold: the tree's
//! end-to-end cost (invoke + drain + frontend accept) stays within 10% of
//! direct — the in-flight partial merge pays for itself by shrinking the
//! frontend's merge work — and the frontend sees at least 5× fewer
//! inbound report frames. Totals are also cross-checked: both topologies
//! must deliver exactly the same tuple count with balanced loss books, so
//! a merge bug fails the bench rather than flattering it.

use std::sync::Arc;
use std::time::Instant;

use pivot_baggage::Baggage;
use pivot_bench::{flag, flag_usize, print_table};
use pivot_core::{Agent, Bus, Frontend, LocalBus, ProcessInfo, QueryHandle};
use pivot_model::Value;
use pivot_relay::{FanIn, Relay};

/// Gate 1: tree end-to-end time <= direct × this (merge overhead ≤ 10%).
const GATE_OVERHEAD_RATIO: f64 = 1.10;
/// Gate 2: fe inbound frames (direct) >= frames (tree) × this.
const GATE_FRAME_REDUCTION: f64 = 5.0;

const QUERY: &str = "From e In Exec GroupBy e.k Select e.k, COUNT, SUM(e.v)";
const MS: u64 = 1_000_000;
const KEYS: [&str; 4] = ["api", "scan", "compact", "gc"];

struct Outcome {
    elapsed_ns: u64,
    fe_frames: u64,
    tuples: u64,
}

fn main() {
    let agents = flag_usize("--agents", 1_000);
    let rounds = flag_usize("--rounds", 40);
    let quick = std::env::args().any(|a| a == "--quick");
    let enforce = std::env::args().any(|a| a == "--enforce");
    let out = flag("--out").unwrap_or_else(|| "BENCH_scale.json".to_owned());
    let rounds = if quick { rounds.min(4) } else { rounds };

    eprintln!("scale bench: {agents} agents, {rounds} rounds (quick={quick})");

    // Interleaved best-of-N: each side's minimum comes from the same
    // ambient-noise exposure, so the ratio gate compares quiet windows.
    let passes = if quick { 2 } else { 3 };
    let mut direct = run_direct(agents, rounds);
    let mut tree = run_tree(agents, rounds);
    for _ in 1..passes {
        direct = min_outcome(direct, run_direct(agents, rounds));
        tree = min_outcome(tree, run_tree(agents, rounds));
    }

    assert_eq!(
        direct.tuples, tree.tuples,
        "both topologies must deliver identical tuple totals"
    );

    let overhead_ratio = tree.elapsed_ns as f64 / direct.elapsed_ns as f64;
    let frame_reduction = direct.fe_frames as f64 / tree.fe_frames as f64;
    let gate_overhead = overhead_ratio <= GATE_OVERHEAD_RATIO;
    let gate_frames = frame_reduction >= GATE_FRAME_REDUCTION;
    let gate_ok = gate_overhead && gate_frames;

    let row = |name: &str, o: &Outcome| {
        let secs = o.elapsed_ns as f64 / 1e9;
        vec![
            name.to_owned(),
            format!("{:.1}", secs * 1e3),
            o.fe_frames.to_string(),
            format!("{:.0}", o.fe_frames as f64 / secs),
            format!("{:.0}", o.tuples as f64 / secs),
        ]
    };
    print_table(
        "Relay fan-in at scale (wall clock, best pass)",
        &["scenario", "ms", "fe frames", "fe frames/s", "tuples/s"],
        &[row("direct", &direct), row("tree", &tree)],
    );
    println!(
        "\nmerge overhead: x{overhead_ratio:.3} (gate <= x{GATE_OVERHEAD_RATIO}: {})",
        if gate_overhead { "PASS" } else { "FAIL" }
    );
    println!(
        "fe frame reduction: x{frame_reduction:.1} (gate >= x{GATE_FRAME_REDUCTION}: {})",
        if gate_frames { "PASS" } else { "FAIL" }
    );

    let json = render_json(
        agents,
        rounds,
        quick,
        &direct,
        &tree,
        overhead_ratio,
        frame_reduction,
        gate_overhead,
        gate_frames,
        gate_ok,
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");

    if enforce && !gate_ok {
        eprintln!("--enforce: scale gates failed (overhead {gate_overhead}, frames {gate_frames})");
        std::process::exit(2);
    }
}

fn min_outcome(a: Outcome, b: Outcome) -> Outcome {
    assert_eq!(a.fe_frames, b.fe_frames, "the workload is deterministic");
    assert_eq!(a.tuples, b.tuples);
    if b.elapsed_ns < a.elapsed_ns {
        b
    } else {
        a
    }
}

fn frontend() -> (Frontend, QueryHandle) {
    let mut fe = Frontend::new();
    fe.define("Exec", ["k", "v"]);
    let handle = fe.install_named("Q", QUERY).expect("bench query installs");
    (fe, handle)
}

fn mk_agent(slot: u64) -> Arc<Agent> {
    Arc::new(Agent::new(ProcessInfo {
        host: format!("host-{slot}"),
        procid: slot,
        procname: "worker".into(),
    }))
}

fn relay_info(slot: u64) -> ProcessInfo {
    ProcessInfo {
        host: format!("relay-{slot}"),
        procid: slot,
        procname: "pivot-relay".into(),
    }
}

fn drive_round(agents: &[Arc<Agent>], now: u64) {
    for (i, agent) in agents.iter().enumerate() {
        let mut bag = Baggage::new();
        agent.invoke(
            "Exec",
            &mut bag,
            now,
            &[
                ("k", Value::str(KEYS[i % KEYS.len()])),
                ("v", Value::I64(1)),
            ],
        );
    }
}

/// Runs `rounds` of (invoke everywhere, drain `bus` into the frontend),
/// timing the whole pipeline; checks the loss books balance at the end.
fn run_on<B: Bus>(
    fe: &mut Frontend,
    handle: &QueryHandle,
    agents: &[Arc<Agent>],
    bus: &B,
    rounds: usize,
) -> Outcome {
    let mut fe_frames = 0u64;
    let start = Instant::now();
    for round in 0..rounds {
        let now = (round as u64 + 1) * MS;
        drive_round(agents, now);
        for r in bus.drain_reports(now) {
            fe_frames += 1;
            fe.accept(r);
        }
    }
    let elapsed_ns = start.elapsed().as_nanos() as u64;
    let loss = fe.results(handle).loss();
    assert_eq!(
        loss.tuples_dropped, 0,
        "a lossless transport stays lossless"
    );
    assert_eq!(
        loss.tuples_delivered,
        (agents.len() * rounds) as u64,
        "every invoke is delivered"
    );
    Outcome {
        elapsed_ns,
        fe_frames,
        tuples: loss.tuples_delivered,
    }
}

fn run_direct(n: usize, rounds: usize) -> Outcome {
    let (mut fe, handle) = frontend();
    let mut bus = LocalBus::new();
    let mut agents = Vec::with_capacity(n);
    for slot in 0..n as u64 {
        let agent = mk_agent(slot);
        agent.sync(&fe.installed());
        agents.push(Arc::clone(&agent));
        bus.register(agent);
    }
    run_on(&mut fe, &handle, &agents, &bus, rounds)
}

fn run_tree(n: usize, rounds: usize) -> Outcome {
    let (mut fe, handle) = frontend();
    let leaves = 10.min(n);
    let mut agents = Vec::with_capacity(n);
    let mut relays = Vec::with_capacity(leaves);
    for li in 0..leaves {
        let mut bus = LocalBus::new();
        let (lo, hi) = (n * li / leaves, n * (li + 1) / leaves);
        for slot in lo..hi {
            let agent = mk_agent(slot as u64);
            agent.sync(&fe.installed());
            agents.push(Arc::clone(&agent));
            bus.register(agent);
        }
        relays.push(Relay::new(bus, relay_info(li as u64)));
    }
    let root = Relay::new(FanIn::new(relays), relay_info(99));
    for cmd in fe.drain_commands() {
        root.broadcast(&cmd);
    }
    run_on(&mut fe, &handle, &agents, &root, rounds)
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    agents: usize,
    rounds: usize,
    quick: bool,
    direct: &Outcome,
    tree: &Outcome,
    overhead_ratio: f64,
    frame_reduction: f64,
    gate_overhead: bool,
    gate_frames: bool,
    gate_ok: bool,
) -> String {
    let scenario = |name: &str, o: &Outcome| {
        let secs = o.elapsed_ns as f64 / 1e9;
        format!(
            "    {{\"name\": \"{name}\", \"elapsed_ns\": {}, \"fe_frames\": {}, \
             \"fe_frames_per_sec\": {:.0}, \"tuples\": {}, \"tuples_per_sec\": {:.0}}}",
            o.elapsed_ns,
            o.fe_frames,
            o.fe_frames as f64 / secs,
            o.tuples,
            o.tuples as f64 / secs,
        )
    };
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"scale\",\n");
    s.push_str(&format!("  \"agents\": {agents},\n"));
    s.push_str(&format!("  \"rounds\": {rounds},\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"unix_nanos\": {},\n", pivot_live::now_nanos()));
    s.push_str(&format!(
        "  \"gate_overhead_ratio\": {GATE_OVERHEAD_RATIO},\n"
    ));
    s.push_str(&format!(
        "  \"gate_frame_reduction\": {GATE_FRAME_REDUCTION},\n"
    ));
    s.push_str(&format!(
        "  \"merge_overhead_ratio\": {overhead_ratio:.4},\n"
    ));
    s.push_str(&format!("  \"frame_reduction\": {frame_reduction:.2},\n"));
    s.push_str(&format!("  \"gate_overhead\": {gate_overhead},\n"));
    s.push_str(&format!("  \"gate_frames\": {gate_frames},\n"));
    s.push_str(&format!("  \"gate_ok\": {gate_ok},\n"));
    s.push_str("  \"scenarios\": [\n");
    s.push_str(&scenario("direct", direct));
    s.push_str(",\n");
    s.push_str(&scenario("tree", tree));
    s.push_str("\n  ]\n}\n");
    s
}
