//! Regenerates Table 5: application-level overhead of Pivot Tracing on
//! NNBench-derived HDFS requests under six configurations.
//!
//! ```text
//! cargo run -p pivot-bench --bin table5 --release -- [--requests 400]
//! ```

use pivot_bench::{f, flag_u64, flag_usize, print_table};
use pivot_workloads::clients::NnOp;
use pivot_workloads::experiments::table5::{self, Setup};

fn main() {
    let cfg = table5::Config {
        seed: flag_u64("--seed", 42),
        requests: flag_usize("--requests", 400),
        ..table5::Config::default()
    };
    eprintln!(
        "measuring {} requests per cell across 6 setups x 4 ops ...",
        cfg.requests
    );
    let r = table5::run(&cfg);

    let headers: Vec<&str> = std::iter::once("setup")
        .chain(NnOp::ALL.iter().map(|op| op.name()))
        .collect();

    let pct = |v: f64| -> String {
        if v.abs() < 0.05 {
            "0%".to_owned()
        } else {
            format!("{v:.1}%")
        }
    };

    print_table(
        "Table 5: wall-clock overhead of the Pivot Tracing machinery \
         (vs. unmodified)",
        &headers,
        &Setup::ALL
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut row = vec![s.name().to_owned()];
                row.extend(r.overhead_pct[i].iter().map(|v| pct(*v)));
                row
            })
            .collect::<Vec<_>>(),
    );

    print_table(
        "Table 5 (auxiliary): virtual request latency (µs) — captures \
         baggage bytes on the wire",
        &headers,
        &Setup::ALL
            .iter()
            .enumerate()
            .map(|(i, s)| {
                let mut row = vec![s.name().to_owned()];
                row.extend(
                    r.cells[i]
                        .iter()
                        .map(|c| f(c.virtual_ns_per_req / 1000.0, 1)),
                );
                row
            })
            .collect::<Vec<_>>(),
    );
}
