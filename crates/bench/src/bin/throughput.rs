//! Batched vs scalar woven-invoke throughput plus report-wire density,
//! written to `BENCH_throughput.json`.
//!
//! Two halves, matching the two hot paths the batched/columnar work
//! targets:
//!
//! | scenario        | what one "op" is                                     |
//! |-----------------|------------------------------------------------------|
//! | `agg_scalar`    | one plain-aggregation invocation via [`Agent::invoke`] |
//! | `agg_batched`   | its share of an [`Agent::invoke_batch`] call         |
//! | `join_scalar`   | one happened-before-join invocation via [`Agent::invoke`] |
//! | `join_batched`  | its share of an [`Agent::invoke_batch`] call         |
//! | `wire_v5`       | one streaming tuple encoded as a plain v5 report row |
//! | `wire_v6`       | one streaming tuple inside a v6 columnar block       |
//!
//! The **join** pair is the CI-gated one: it runs the paper's canonical
//! query shape — group keys unpacked from baggage, aggregates computed
//! from the observed event — which the batched Vm executes through the
//! factorized join path (fold the batch once, merge per packed tuple)
//! instead of materializing the per-row cross product. Both invoke
//! scenarios install the *same compiled query* through the real frontend
//! pipeline (verifier included) and consume the identical event stream
//! end-to-end through the governed agent entry points — the only
//! variable is per-event dispatch vs one batched call. The wire
//! scenarios encode the *same tuples* through the real protocol encoder
//! at each version.
//!
//! ```text
//! cargo run -p pivot-bench --bin throughput --release -- \
//!     [--threads 1] [--batch 256] [--rows 4096] [--quick] [--enforce] \
//!     [--out BENCH_throughput.json]
//! ```
//!
//! `--enforce` exits non-zero unless batched execution sustains >=2x the
//! scalar invokes/sec on the join workload AND the v6 wire carries a
//! streaming tuple in <=1/2 the v5 bytes (the CI gates for this
//! subsystem).

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use pivot_baggage::{Baggage, QueryId};
use pivot_bench::{flag, flag_usize, print_table};
use pivot_core::{Agent, Frontend, ProcessInfo, Report, ReportRows};
use pivot_live::proto::{decode_message_versioned, encode_message_v, Message};
use pivot_live::service::define_kv_tracepoints;
use pivot_model::{EncodedBlock, Tuple, Value};
use pivot_query::CompiledCode;

/// CI gate: batched join invokes/sec must be at least this multiple of
/// scalar.
const BATCH_GATE: f64 = 2.0;
/// CI gate: v5 bytes/tuple must be at least this multiple of v6.
const WIRE_GATE: f64 = 2.0;

const AGG_QUERY: &str =
    "From exec In KvShard.execute GroupBy exec.shard Select exec.shard, COUNT, SUM(exec.bytes)";

/// The paper's canonical shape: join the observed server event against a
/// client identity carried in baggage, group by the unpacked key,
/// aggregate the observed column.
const JOIN_QUERY: &str = "From exec In KvShard.execute \
     Join req In First(KvClient.issueRequest) On req -> exec \
     GroupBy req.client \
     Select req.client, COUNT, SUM(exec.bytes)";

fn main() {
    let threads = flag_usize("--threads", 1);
    let batch_size = flag_usize("--batch", 256);
    let wire_rows = flag_usize("--rows", 4096);
    let quick = std::env::args().any(|a| a == "--quick");
    let enforce = std::env::args().any(|a| a == "--enforce");
    let out = flag("--out").unwrap_or_else(|| "BENCH_throughput.json".to_owned());
    let scale = if quick { 50 } else { 1 };

    eprintln!("throughput bench: {threads} thread(s), batch={batch_size}, quick={quick}");

    let iters = (2_000_000 / scale) as u64;
    let events = event_stream(batch_size.max(64));

    let agg_agent = install(AGG_QUERY);
    let no_seed = |_: &Agent, _: &mut Baggage| {};
    let agg_scalar_ns = bench_scalar(&agg_agent, &events, &no_seed, threads, iters);
    let agg_batched_ns = bench_batched(&agg_agent, &events, &no_seed, batch_size, threads, iters);
    let agg_speedup = agg_scalar_ns / agg_batched_ns;

    let join_agent = install(JOIN_QUERY);
    let join_seed = |agent: &Agent, bag: &mut Baggage| {
        agent.invoke(
            "KvClient.issueRequest",
            bag,
            0,
            &[
                ("client", Value::str("client-0")),
                ("op", Value::str("get")),
                ("key", Value::str("key-1")),
            ],
        );
    };
    let scalar_ns = bench_scalar(&join_agent, &events, &join_seed, threads, iters);
    let batched_ns = bench_batched(&join_agent, &events, &join_seed, batch_size, threads, iters);
    let batch_speedup = scalar_ns / batched_ns;
    let batch_ok = batch_speedup >= BATCH_GATE;

    let rows = wire_tuples(wire_rows);
    let v5_bytes = encode_report_bytes(&rows, 5);
    let v6_bytes = encode_report_bytes(&rows, 6);
    let v5_per_tuple = v5_bytes as f64 / rows.len() as f64;
    let v6_per_tuple = v6_bytes as f64 / rows.len() as f64;
    let wire_ratio = v5_per_tuple / v6_per_tuple;
    let wire_ok = wire_ratio >= WIRE_GATE;
    let gate_ok = batch_ok && wire_ok;

    print_table(
        "Woven invoke throughput (wall clock, mean across threads)",
        &["scenario", "ns/invoke", "invokes/sec", "detail"],
        &[
            vec![
                "agg_scalar".to_owned(),
                format!("{agg_scalar_ns:.1}"),
                format!("{:.0}", 1e9 / agg_scalar_ns),
                "Agent::invoke per event, plain GroupBy".to_owned(),
            ],
            vec![
                "agg_batched".to_owned(),
                format!("{agg_batched_ns:.1}"),
                format!("{:.0}", 1e9 / agg_batched_ns),
                format!("Agent::invoke_batch, {batch_size} events/call"),
            ],
            vec![
                "join_scalar".to_owned(),
                format!("{scalar_ns:.1}"),
                format!("{:.0}", 1e9 / scalar_ns),
                "Agent::invoke per event, baggage join".to_owned(),
            ],
            vec![
                "join_batched".to_owned(),
                format!("{batched_ns:.1}"),
                format!("{:.0}", 1e9 / batched_ns),
                format!("Agent::invoke_batch, {batch_size} events/call (gated)"),
            ],
        ],
    );
    print_table(
        "Streaming report wire density (real protocol encoder)",
        &["scenario", "bytes/tuple", "frame bytes", "detail"],
        &[
            vec![
                "wire_v5".to_owned(),
                format!("{v5_per_tuple:.2}"),
                v5_bytes.to_string(),
                format!("{} rows, tag-0 row-major", rows.len()),
            ],
            vec![
                "wire_v6".to_owned(),
                format!("{v6_per_tuple:.2}"),
                v6_bytes.to_string(),
                format!("{} rows, tag-2 columnar blocks", rows.len()),
            ],
        ],
    );
    println!("\nplain-agg batched/scalar speedup: {agg_speedup:.2}x (reported, not gated)");
    println!(
        "join batched/scalar invoke speedup: {batch_speedup:.2}x (gate >={BATCH_GATE}x: {})",
        pass(batch_ok)
    );
    println!(
        "v5/v6 wire bytes-per-tuple ratio: {wire_ratio:.2}x (gate >={WIRE_GATE}x: {})",
        pass(wire_ok)
    );

    let json = render_json(&JsonInputs {
        threads,
        quick,
        batch_size,
        iters,
        agg_scalar_ns,
        agg_batched_ns,
        agg_speedup,
        scalar_ns,
        batched_ns,
        batch_speedup,
        batch_ok,
        wire_rows: rows.len(),
        v5_bytes,
        v6_bytes,
        v5_per_tuple,
        v6_per_tuple,
        wire_ratio,
        wire_ok,
        gate_ok,
    });
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");

    if enforce && !gate_ok {
        eprintln!(
            "--enforce: throughput gates failed \
             (join batch {batch_speedup:.2}x vs >={BATCH_GATE}x, wire {wire_ratio:.2}x vs >={WIRE_GATE}x)"
        );
        std::process::exit(2);
    }
}

fn pass(ok: bool) -> &'static str {
    if ok {
        "PASS"
    } else {
        "FAIL"
    }
}

struct JsonInputs {
    threads: usize,
    quick: bool,
    batch_size: usize,
    iters: u64,
    agg_scalar_ns: f64,
    agg_batched_ns: f64,
    agg_speedup: f64,
    scalar_ns: f64,
    batched_ns: f64,
    batch_speedup: f64,
    batch_ok: bool,
    wire_rows: usize,
    v5_bytes: usize,
    v6_bytes: usize,
    v5_per_tuple: f64,
    v6_per_tuple: f64,
    wire_ratio: f64,
    wire_ok: bool,
    gate_ok: bool,
}

fn render_json(j: &JsonInputs) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"throughput\",\n");
    s.push_str(&format!("  \"threads\": {},\n", j.threads));
    s.push_str(&format!("  \"quick\": {},\n", j.quick));
    s.push_str(&format!("  \"unix_nanos\": {},\n", pivot_live::now_nanos()));
    s.push_str(&format!("  \"batch_size\": {},\n", j.batch_size));
    s.push_str(&format!("  \"iters_per_thread\": {},\n", j.iters));
    s.push_str(&format!(
        "  \"agg_scalar_ns_per_invoke\": {:.3},\n",
        j.agg_scalar_ns
    ));
    s.push_str(&format!(
        "  \"agg_batched_ns_per_invoke\": {:.3},\n",
        j.agg_batched_ns
    ));
    s.push_str(&format!("  \"agg_speedup\": {:.3},\n", j.agg_speedup));
    s.push_str(&format!(
        "  \"scalar_ns_per_invoke\": {:.3},\n",
        j.scalar_ns
    ));
    s.push_str(&format!(
        "  \"batched_ns_per_invoke\": {:.3},\n",
        j.batched_ns
    ));
    s.push_str(&format!("  \"batch_speedup\": {:.3},\n", j.batch_speedup));
    s.push_str(&format!("  \"batch_gate\": {BATCH_GATE},\n"));
    s.push_str(&format!("  \"batch_2x_ok\": {},\n", j.batch_ok));
    s.push_str(&format!("  \"wire_rows\": {},\n", j.wire_rows));
    s.push_str(&format!("  \"wire_v5_frame_bytes\": {},\n", j.v5_bytes));
    s.push_str(&format!("  \"wire_v6_frame_bytes\": {},\n", j.v6_bytes));
    s.push_str(&format!(
        "  \"wire_v5_bytes_per_tuple\": {:.3},\n",
        j.v5_per_tuple
    ));
    s.push_str(&format!(
        "  \"wire_v6_bytes_per_tuple\": {:.3},\n",
        j.v6_per_tuple
    ));
    s.push_str(&format!("  \"wire_ratio\": {:.3},\n", j.wire_ratio));
    s.push_str(&format!("  \"wire_gate\": {WIRE_GATE},\n"));
    s.push_str(&format!("  \"wire_2x_ok\": {},\n", j.wire_ok));
    s.push_str(&format!("  \"gate_ok\": {}\n", j.gate_ok));
    s.push_str("}\n");
    s
}

/// Compiles `query` through the real frontend (verifier included) and
/// returns an agent with the woven advice installed.
fn install(query: &str) -> Agent {
    let mut fe = Frontend::new();
    define_kv_tracepoints(&mut fe);
    let handle = fe.install(query).expect("bench query installs");
    let code: Arc<CompiledCode> = fe.code(&handle).expect("lowered form");
    let agent = Agent::new(ProcessInfo {
        host: "bench".into(),
        procid: 7,
        procname: "kvserver".into(),
    });
    agent.install(&code);
    agent
}

/// A cycle of distinct shard events — the identical stream both invoke
/// scenarios consume. Only tracepoint exports: the agent adds the
/// default host/timestamp/procid/procname/tracepoint exports itself.
fn event_stream(n: usize) -> Vec<[(&'static str, Value); 4]> {
    (0..n)
        .map(|i| {
            [
                ("shard", Value::U64((i % 8) as u64)),
                ("op", Value::str(if i % 3 == 0 { "put" } else { "get" })),
                ("bytes", Value::U64(64 + (i % 512) as u64)),
                ("hit", Value::Bool(i % 5 != 0)),
            ]
        })
        .collect()
}

/// Runs `f(iters)` (which returns its own timed nanoseconds) on `threads`
/// OS threads concurrently; returns mean ns/op.
fn run_threads(threads: usize, iters: u64, f: impl Fn(u64) -> u64 + Sync) -> f64 {
    // Untimed warmup pass on one thread to fault in code and allocators.
    f(iters / 20 + 1);
    let total: u64 = std::thread::scope(|s| {
        (0..threads)
            .map(|_| s.spawn(|| f(iters)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("bench thread panicked"))
            .sum()
    });
    total as f64 / (threads as f64 * iters as f64)
}

fn bench_scalar(
    agent: &Agent,
    events: &[[(&'static str, Value); 4]],
    seed: &(dyn Fn(&Agent, &mut Baggage) + Sync),
    threads: usize,
    iters: u64,
) -> f64 {
    run_threads(threads, iters, |n| {
        let mut bag = Baggage::new();
        seed(agent, &mut bag);
        let start = Instant::now();
        for i in 0..n {
            let exports = &events[i as usize % events.len()];
            agent.invoke("KvShard.execute", &mut bag, i, black_box(exports));
        }
        start.elapsed().as_nanos() as u64
    })
}

fn bench_batched(
    agent: &Agent,
    events: &[[(&'static str, Value); 4]],
    seed: &(dyn Fn(&Agent, &mut Baggage) + Sync),
    batch_size: usize,
    threads: usize,
    iters: u64,
) -> f64 {
    // The borrowed batch view is built once outside the timed loop: a
    // real instrumented process accumulates (timestamp, exports) pairs
    // and hands the same kind of slice to `invoke_batch`.
    let batch: Vec<(u64, &[(&str, Value)])> = events
        .iter()
        .map(|e| e.as_slice())
        .cycle()
        .take(batch_size)
        .enumerate()
        .map(|(i, e)| (i as u64, e))
        .collect();
    run_threads(threads, iters, |n| {
        let mut bag = Baggage::new();
        seed(agent, &mut bag);
        let calls = n.div_ceil(batch_size as u64);
        let start = Instant::now();
        for _ in 0..calls {
            agent.invoke_batch("KvShard.execute", &mut bag, black_box(&batch));
        }
        start.elapsed().as_nanos() as u64 * n / (calls * batch_size as u64)
    })
}

/// Realistic streaming rows: a mostly-repeating op column, monotonically
/// increasing timestamps, small varying sizes — the shape RLE and delta
/// tracks exist for.
fn wire_tuples(n: usize) -> Vec<Tuple> {
    (0..n)
        .map(|i| {
            Tuple::from_iter([
                Value::str(if i % 19 == 0 { "PUT" } else { "GET" }),
                Value::U64(1_722_000_000_000_000_000 + (i as u64) * 1_379),
                Value::U64(64 + (i % 512) as u64),
            ])
        })
        .collect()
}

/// Encodes one streaming report carrying `rows` at protocol `version`
/// through the real encoder and returns the frame payload size. The v6
/// path ships columnar blocks; asking for v5 transcodes to plain rows —
/// exactly what a live agent does per peer. Decodes the frame back to
/// prove the bytes are real.
fn encode_report_bytes(rows: &[Tuple], version: u8) -> usize {
    let report = Report {
        query: QueryId(1),
        host: "bench".into(),
        procid: 7,
        procname: "kvserver".into(),
        incarnation: 0,
        time: 1,
        seq: 0,
        tuples: rows.len() as u64,
        emitted_cum: rows.len() as u64,
        shed_cum: 0,
        truncated_cum: 0,
        throttled: None,
        rows: ReportRows::RawEncoded(vec![EncodedBlock::encode(rows)]),
    };
    let payload = encode_message_v(&Message::Report(report), version);
    let (v, msg) = decode_message_versioned(&payload).expect("bench frame decodes");
    assert_eq!(v, version.min(pivot_live::proto::PROTO_VERSION));
    let Message::Report(r) = msg else {
        panic!("bench frame is a report");
    };
    assert_eq!(r.rows.len(), rows.len(), "no tuples lost in transcoding");
    payload.len()
}
