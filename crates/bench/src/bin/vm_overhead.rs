//! Tree-walk vs register-VM per-event advice cost, written to
//! `BENCH_vm.json`.
//!
//! Both engines execute the *same compiled queries* (installed through the
//! real frontend pipeline, verifier included) on identical exports and
//! baggage, so the only variable is the execution engine:
//!
//! | scenario        | engine     | what one "op" is                       |
//! |-----------------|------------|----------------------------------------|
//! | `treewalk_agg`  | interp     | Observe → grouped Emit, fold into aggs |
//! | `vm_agg`        | VM         | same advice, lowered bytecode          |
//! | `treewalk_join` | interp     | Q1 request: pack advice + unpack/emit advice, fresh baggage |
//! | `vm_join`       | VM         | same two programs, lowered bytecode    |
//! | `lower`         | (compiler) | one `CompiledCode::lower` (per-install, not per-event) |
//!
//! The tree-walk side folds emitted rows into a mutex-guarded group map,
//! mirroring what the pre-VM agent did per invocation; the VM side runs
//! through [`Agent::run_code`], i.e. the real sink the agent uses.
//!
//! ```text
//! cargo run -p pivot-bench --bin vm_overhead --release -- \
//!     [--threads 1] [--quick] [--enforce] [--out BENCH_vm.json]
//! ```
//!
//! `--enforce` exits non-zero if either woven VM cost exceeds its
//! tree-walk baseline ×1.5 (the CI regression gate: the VM must never
//! be meaningfully slower than the engine it replaced). The `agg`
//! scenarios additionally carry the ≥2× advice-cost reduction target
//! (`vm_2x_ok` in the JSON); the `join` op includes baggage allocation,
//! pack, and unpack — identical in both engines — so its ratio
//! understates the engine difference and is gated but not targeted.

use std::collections::HashMap;
use std::hint::black_box;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use pivot_baggage::Baggage;
use pivot_bench::{flag, flag_usize, print_table};
use pivot_core::interp::{self, EmitRows};
use pivot_core::{Agent, Frontend, ProcessInfo};
use pivot_live::service::define_kv_tracepoints;
use pivot_model::{AggState, GroupKey, Value};
use pivot_query::{CompiledCode, CompiledQuery};

/// CI regression gate: woven VM cost must stay within baseline × this.
const GATE_RATIO: f64 = 1.5;

struct Scenario {
    name: &'static str,
    detail: &'static str,
    iters: u64,
    ns_per_op: f64,
}

fn main() {
    let threads = flag_usize("--threads", 1);
    let quick = std::env::args().any(|a| a == "--quick");
    let enforce = std::env::args().any(|a| a == "--enforce");
    let out = flag("--out").unwrap_or_else(|| "BENCH_vm.json".to_owned());
    let scale = if quick { 50 } else { 1 };

    eprintln!("vm overhead bench: {threads} thread(s) per scenario (quick={quick})");

    let iters = 1_000_000 / scale;
    let lower_iters = 100_000 / scale;

    let (agg_compiled, agg_code) = install(AGG_QUERY);
    let (join_compiled, join_code) = install(JOIN_QUERY);

    let scenarios = vec![
        Scenario {
            name: "treewalk_agg",
            detail: "interp: Observe -> grouped Emit, fold into agg states",
            iters,
            ns_per_op: bench_treewalk_agg(&agg_compiled, threads, iters),
        },
        Scenario {
            name: "vm_agg",
            detail: "VM: same advice as lowered bytecode",
            iters,
            ns_per_op: bench_vm_agg(&agg_code, threads, iters),
        },
        Scenario {
            name: "treewalk_join",
            detail: "interp: Q1 pack at client + unpack/emit at shard, fresh baggage",
            iters,
            ns_per_op: bench_treewalk_join(&join_compiled, threads, iters),
        },
        Scenario {
            name: "vm_join",
            detail: "VM: same two programs as lowered bytecode",
            iters,
            ns_per_op: bench_vm_join(&join_code, threads, iters),
        },
        Scenario {
            name: "lower",
            detail: "CompiledCode::lower (paid once per install, not per event)",
            iters: lower_iters,
            ns_per_op: bench_lower(&join_compiled, threads, lower_iters),
        },
    ];

    let ns = |name: &str| {
        scenarios
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.ns_per_op)
            .unwrap()
    };
    let speedup_agg = ns("treewalk_agg") / ns("vm_agg");
    let speedup_join = ns("treewalk_join") / ns("vm_join");
    let gate_ok = ns("vm_agg") <= ns("treewalk_agg") * GATE_RATIO
        && ns("vm_join") <= ns("treewalk_join") * GATE_RATIO;
    // The ≥2× target is on per-event *advice* cost (the agg scenario,
    // which is pure advice execution). The join op also pays baggage
    // allocation, pack, and unpack — identical machinery in both engines
    // — so its ratio understates the engine difference; it is gated at
    // ×1.5 but not part of the 2× target.
    let vm_2x_ok = speedup_agg >= 2.0;

    print_table(
        "Advice execution engines (wall clock, per op, mean across threads)",
        &["scenario", "ns/op", "iters/thread", "what one op is"],
        &scenarios
            .iter()
            .map(|s| {
                vec![
                    s.name.to_owned(),
                    format!("{:.1}", s.ns_per_op),
                    s.iters.to_string(),
                    s.detail.to_owned(),
                ]
            })
            .collect::<Vec<_>>(),
    );
    println!(
        "\nspeedup (treewalk/vm): agg {speedup_agg:.2}x, join {speedup_join:.2}x \
         (advice cost >=2x target, agg: {})",
        if vm_2x_ok { "PASS" } else { "MISS" }
    );
    println!(
        "regression gate: vm <= treewalk x{GATE_RATIO}: {}",
        if gate_ok { "PASS" } else { "FAIL" }
    );

    let json = render_json(
        &scenarios,
        threads,
        quick,
        speedup_agg,
        speedup_join,
        gate_ok,
        vm_2x_ok,
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    println!("wrote {out}");

    if enforce && !gate_ok {
        eprintln!("--enforce: VM per-op cost exceeds tree-walk baseline x{GATE_RATIO}");
        std::process::exit(2);
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scenarios: &[Scenario],
    threads: usize,
    quick: bool,
    speedup_agg: f64,
    speedup_join: f64,
    gate_ok: bool,
    vm_2x_ok: bool,
) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"bench\": \"vm_overhead\",\n");
    s.push_str("  \"units\": \"ns_per_op_wall_clock\",\n");
    s.push_str(&format!("  \"threads\": {threads},\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str(&format!("  \"unix_nanos\": {},\n", pivot_live::now_nanos()));
    s.push_str(&format!("  \"gate_ratio\": {GATE_RATIO},\n"));
    s.push_str(&format!("  \"gate_ok\": {gate_ok},\n"));
    s.push_str(&format!("  \"speedup_agg\": {speedup_agg:.3},\n"));
    s.push_str(&format!("  \"speedup_join\": {speedup_join:.3},\n"));
    s.push_str(&format!("  \"vm_2x_ok\": {vm_2x_ok},\n"));
    s.push_str("  \"scenarios\": [\n");
    for (i, sc) in scenarios.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.3}, \"iters_per_thread\": {}, \"detail\": \"{}\"}}{}\n",
            sc.name,
            sc.ns_per_op,
            sc.iters,
            sc.detail,
            if i + 1 < scenarios.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

const AGG_QUERY: &str =
    "From exec In KvShard.execute GroupBy exec.shard Select exec.shard, COUNT, SUM(exec.bytes)";

const JOIN_QUERY: &str = "From exec In KvShard.execute \
     Join req In First(KvClient.issueRequest) On req -> exec \
     GroupBy req.client \
     Select req.client, COUNT, SUM(exec.bytes)";

/// Compiles `query` through the real frontend (verifier included) and
/// returns both engine inputs: the advice-op trees and the lowered code.
fn install(query: &str) -> (Arc<CompiledQuery>, Arc<CompiledCode>) {
    let mut fe = Frontend::new();
    define_kv_tracepoints(&mut fe);
    let handle = fe.install(query).expect("bench query installs");
    (
        fe.compiled(&handle).expect("compiled form"),
        fe.code(&handle).expect("lowered form"),
    )
}

fn bench_agent() -> Agent {
    Agent::new(ProcessInfo {
        host: "bench".into(),
        procid: 7,
        procname: "kvserver".into(),
    })
}

/// Exports at the shard tracepoint, default exports included (both
/// engines see the identical slice).
fn shard_exports() -> [(&'static str, Value); 7] {
    [
        ("shard", Value::U64(3)),
        ("op", Value::str("get")),
        ("bytes", Value::U64(128)),
        ("hit", Value::Bool(true)),
        ("host", Value::str("bench")),
        ("procname", Value::str("kvserver")),
        ("tracepoint", Value::str("KvShard.execute")),
    ]
}

fn client_exports() -> [(&'static str, Value); 6] {
    [
        ("client", Value::str("client-0")),
        ("op", Value::str("get")),
        ("key", Value::str("key-1")),
        ("host", Value::str("bench")),
        ("procname", Value::str("kvserver")),
        ("tracepoint", Value::str("KvClient.issueRequest")),
    ]
}

/// Runs `f(iters)` (which returns its own timed nanoseconds) on `threads`
/// OS threads concurrently; returns mean ns/op.
fn run_threads(threads: usize, iters: u64, f: impl Fn(u64) -> u64 + Sync) -> f64 {
    // Untimed warmup pass on one thread to fault in code and allocators.
    f(iters / 20 + 1);
    let total: u64 = std::thread::scope(|s| {
        (0..threads)
            .map(|_| s.spawn(|| f(iters)))
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("bench thread panicked"))
            .sum()
    });
    total as f64 / (threads as f64 * iters as f64)
}

/// Folds an interp emit batch into the shared group map — the same
/// lock-then-aggregate step the pre-VM agent performed per invocation.
fn fold(buffers: &Mutex<HashMap<GroupKey, Vec<AggState>>>, emits: &[interp::Emitted]) -> usize {
    let mut n = 0;
    for e in emits {
        match interp::emit_rows(e) {
            EmitRows::Grouped(rows) => {
                let mut groups = buffers.lock().unwrap();
                for (key, args) in rows {
                    let states = groups
                        .entry(key)
                        .or_insert_with(|| e.spec.aggs.iter().map(|(f, _)| f.init()).collect());
                    for (st, arg) in states.iter_mut().zip(&args) {
                        st.update(arg);
                    }
                    n += 1;
                }
            }
            EmitRows::Raw(rows) => n += rows.len(),
        }
    }
    n
}

fn bench_treewalk_agg(cq: &CompiledQuery, threads: usize, iters: u64) -> f64 {
    assert_eq!(cq.advice.len(), 1, "agg query is a single program");
    let prog = &cq.advice[0];
    let exports = shard_exports();
    let buffers = Mutex::new(HashMap::new());
    run_threads(threads, iters, |n| {
        let mut bag = Baggage::new();
        let start = Instant::now();
        for _ in 0..n {
            let (emits, stats) = interp::run(prog, black_box(&exports), &mut bag);
            black_box(fold(&buffers, &emits));
            black_box(stats);
        }
        start.elapsed().as_nanos() as u64
    })
}

fn bench_vm_agg(code: &CompiledCode, threads: usize, iters: u64) -> f64 {
    assert_eq!(code.programs.len(), 1, "agg query is a single program");
    let agent = bench_agent();
    agent.install(code);
    let prog = &code.programs[0];
    let exports = shard_exports();
    run_threads(threads, iters, |n| {
        let mut bag = Baggage::new();
        let start = Instant::now();
        for _ in 0..n {
            black_box(agent.run_code(prog, black_box(&exports), &mut bag));
        }
        start.elapsed().as_nanos() as u64
    })
}

fn bench_treewalk_join(cq: &CompiledQuery, threads: usize, iters: u64) -> f64 {
    assert_eq!(cq.advice.len(), 2, "join query packs then emits");
    let (pack, emit) = (&cq.advice[0], &cq.advice[1]);
    let client = client_exports();
    let shard = shard_exports();
    let buffers = Mutex::new(HashMap::new());
    run_threads(threads, iters, |n| {
        let start = Instant::now();
        for _ in 0..n {
            // One op = one request's causal path: client-side pack,
            // shard-side unpack + emit, fresh baggage per request.
            let mut bag = Baggage::new();
            let (_, s1) = interp::run(pack, black_box(&client), &mut bag);
            let (emits, s2) = interp::run(emit, black_box(&shard), &mut bag);
            black_box(fold(&buffers, &emits));
            black_box((s1, s2));
        }
        start.elapsed().as_nanos() as u64
    })
}

fn bench_vm_join(code: &CompiledCode, threads: usize, iters: u64) -> f64 {
    assert_eq!(code.programs.len(), 2, "join query packs then emits");
    let agent = bench_agent();
    agent.install(code);
    let (pack, emit) = (&code.programs[0], &code.programs[1]);
    let client = client_exports();
    let shard = shard_exports();
    run_threads(threads, iters, |n| {
        let start = Instant::now();
        for _ in 0..n {
            let mut bag = Baggage::new();
            black_box(agent.run_code(pack, black_box(&client), &mut bag));
            black_box(agent.run_code(emit, black_box(&shard), &mut bag));
        }
        start.elapsed().as_nanos() as u64
    })
}

fn bench_lower(cq: &CompiledQuery, threads: usize, iters: u64) -> f64 {
    run_threads(threads, iters, |n| {
        let start = Instant::now();
        for _ in 0..n {
            black_box(CompiledCode::lower(black_box(cq)));
        }
        start.elapsed().as_nanos() as u64
    })
}
