//! Shared output helpers for the figure/table harness binaries.
//!
//! Each binary under `src/bin/` regenerates one of the paper's figures or
//! tables (see DESIGN.md §4 for the index) and prints the same rows or
//! series the paper reports. Criterion microbenches live under
//! `benches/`.

/// Prints an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(c.len());
            let pad = w.saturating_sub(c.chars().count());
            out.push_str(&" ".repeat(pad));
            out.push_str(c);
            out.push_str("  ");
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| (*h).to_owned()).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Formats a float with `digits` decimals.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Renders a series as a compact sparkline (for throughput-over-time
/// figures in a terminal).
pub fn sparkline(points: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = points.iter().cloned().fold(0.0_f64, f64::max);
    if max <= 0.0 {
        return "▁".repeat(points.len());
    }
    points
        .iter()
        .map(|p| {
            let idx = ((p / max) * 7.0).round() as usize;
            BARS[idx.min(7)]
        })
        .collect()
}

/// Downsamples a series to at most `n` points by averaging buckets.
pub fn downsample(points: &[f64], n: usize) -> Vec<f64> {
    if points.len() <= n || n == 0 {
        return points.to_vec();
    }
    let per = points.len() as f64 / n as f64;
    (0..n)
        .map(|i| {
            let lo = (i as f64 * per) as usize;
            let hi = (((i + 1) as f64 * per) as usize).min(points.len());
            let slice = &points[lo..hi.max(lo + 1)];
            slice.iter().sum::<f64>() / slice.len() as f64
        })
        .collect()
}

/// Parses `--key value` style flags from the command line.
pub fn flag(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

/// Parses a numeric flag with a default.
pub fn flag_f64(name: &str, default: f64) -> f64 {
    flag(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Parses an integer flag with a default.
pub fn flag_usize(name: &str, default: usize) -> usize {
    flag(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

/// Parses a u64 flag with a default.
pub fn flag_u64(name: &str, default: u64) -> u64 {
    flag(name).and_then(|v| v.parse().ok()).unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales() {
        let s = sparkline(&[0.0, 1.0, 2.0, 4.0]);
        assert_eq!(s.chars().count(), 4);
        assert!(s.ends_with('█'));
    }

    #[test]
    fn downsample_averages() {
        let d = downsample(&[1.0, 3.0, 5.0, 7.0], 2);
        assert_eq!(d, vec![2.0, 6.0]);
        assert_eq!(downsample(&[1.0], 4), vec![1.0]);
    }
}
