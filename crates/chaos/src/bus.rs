//! Fault-injecting bus middleware.
//!
//! [`ChaosBus`] wraps any [`Bus`] and applies a [`FaultPlan`] to the
//! frames crossing it: report frames can be dropped, duplicated, or held
//! for later (delays double as partitions and limplock); command frames
//! can be duplicated or held, never dropped. Everything the injector does
//! is tallied in [`ChaosStats`], whose `tuples_dropped` is the ground
//! truth the frontend's per-query loss accounting is checked against.
//!
//! The delivery *mechanics* — pending frames, release deadlines, the
//! tallies themselves — live in [`pivot_core::SchedBus`]; this module
//! only contributes the policy: [`PlanScheduler`] turns the seeded fault
//! PRF into a [`pivot_core::Scheduler`].

use pivot_core::{Bus, Command, Frontend, Report, RetroReport, SchedBus, Scheduler, Verdict};

use crate::plan::FaultPlan;

/// What the injector did, cumulatively (the chaos-facing name for the
/// shared [`pivot_core::DeliveryStats`] tallies).
pub use pivot_core::DeliveryStats as ChaosStats;

/// Stable identity of a reporting process for fault-schedule keying:
/// a hash of `(host, procid)`. Deliberately excludes the agent
/// incarnation so restarts keep the same schedule (see `plan.rs`).
pub fn source_key(host: &str, procid: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in host.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ pivot_simrt::mix64(procid)
}

/// The fault PRF as a delivery policy: every verdict comes from the
/// stateless [`FaultPlan`], keyed by frame identity.
pub struct PlanScheduler {
    plan: FaultPlan,
}

impl Scheduler for PlanScheduler {
    fn command_verdict(&self, index: u64, _cmd: &Command) -> Verdict {
        match self.plan.command_verdict(index) {
            // Commands are never dropped — a permanently lost install is
            // indistinguishable from "not installed", which the epoch
            // re-sync path covers instead.
            Verdict::Drop => Verdict::Deliver,
            v => v,
        }
    }

    fn report_verdict(&self, r: &Report, now: u64) -> Verdict {
        self.plan
            .report_verdict(source_key(&r.host, r.procid), r.query.0, r.seq, now)
    }

    fn retro_verdict(&self, r: &RetroReport, now: u64) -> Verdict {
        self.plan
            .retro_verdict(source_key(&r.host, r.procid), r.seq, now)
    }
}

/// A [`Bus`] wrapper that injects the faults a [`FaultPlan`] schedules.
///
/// Works over any transport — [`pivot_core::LocalBus`], the simulated
/// cluster's `Rc<Cluster>`, or a live `Arc<TcpBusServer>` — because it
/// only touches the `Bus` trait surface.
pub struct ChaosBus<B> {
    bus: SchedBus<B, PlanScheduler>,
}

impl<B> ChaosBus<B> {
    /// Wraps `inner`, scheduling faults from `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> ChaosBus<B> {
        ChaosBus {
            bus: SchedBus::new(inner, PlanScheduler { plan }),
        }
    }

    /// The wrapped bus.
    pub fn inner(&self) -> &B {
        self.bus.inner()
    }

    /// The wrapped bus, mutably (e.g. to register/unregister agents on a
    /// `LocalBus` when the harness crashes and restarts them).
    pub fn inner_mut(&mut self) -> &mut B {
        self.bus.inner_mut()
    }

    /// The fault schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.bus.scheduler().plan
    }

    /// A snapshot of the injection tallies.
    pub fn stats(&self) -> ChaosStats {
        self.bus.stats()
    }

    /// Turns injection on or off. While disabled the bus is a transparent
    /// pass-through (pending frames still release on drain).
    pub fn set_enabled(&self, enabled: bool) {
        self.bus.set_enabled(enabled);
    }

    /// Marks every held frame due immediately, so the next drain delivers
    /// it regardless of the clock.
    pub fn release_pending(&self) {
        self.bus.release_pending();
    }

    /// Frames currently held for later delivery (reports, commands).
    pub fn pending(&self) -> (usize, usize) {
        self.bus.pending()
    }
}

impl<B: Bus> ChaosBus<B> {
    /// End-of-run convergence: stop injecting, release every held frame,
    /// and pump the final reports into `frontend`. After this, everything
    /// the plan did not *drop* has been delivered.
    pub fn settle_into(&self, now: u64, frontend: &mut Frontend) {
        self.bus.settle_into(now, frontend);
    }
}

impl<B: Bus> Bus for ChaosBus<B> {
    fn broadcast(&self, cmd: &Command) {
        self.bus.broadcast(cmd);
    }

    fn drain_reports(&self, now: u64) -> Vec<Report> {
        self.bus.drain_reports(now)
    }

    fn drain_retro(&self, now: u64) -> Vec<RetroReport> {
        self.bus.drain_retro(now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultConfig;
    use pivot_core::LocalBus;

    #[test]
    fn disabled_bus_is_transparent() {
        let chaos = ChaosBus::new(LocalBus::new(), FaultPlan::from_seed(3));
        chaos.set_enabled(false);
        assert!(chaos.drain_reports(0).is_empty());
        assert_eq!(chaos.stats(), ChaosStats::default());
    }

    #[test]
    fn source_key_is_stable_and_separates_hosts() {
        assert_eq!(source_key("host-A", 1), source_key("host-A", 1));
        assert_ne!(source_key("host-A", 1), source_key("host-B", 1));
        assert_ne!(source_key("host-A", 1), source_key("host-A", 2));
    }

    #[test]
    fn off_plan_passes_everything_but_counts_frames() {
        let chaos = ChaosBus::new(LocalBus::new(), FaultPlan::new(1, FaultConfig::off()));
        chaos.broadcast(&Command::Uninstall(pivot_baggage::QueryId(9)));
        let st = chaos.stats();
        assert_eq!(st.commands_seen, 1);
        assert_eq!(st.commands_duplicated + st.commands_delayed, 0);
    }
}
