//! Fault-injecting bus middleware.
//!
//! [`ChaosBus`] wraps any [`Bus`] and applies a [`FaultPlan`] to the
//! frames crossing it: report frames can be dropped, duplicated, or held
//! for later (delays double as partitions and limplock); command frames
//! can be duplicated or held, never dropped. Everything the injector does
//! is tallied in [`ChaosStats`], whose `tuples_dropped` is the ground
//! truth the frontend's per-query loss accounting is checked against.

use parking_lot::Mutex;
use pivot_core::{Bus, Command, Frontend, Report};

use crate::plan::{FaultPlan, Verdict};

/// Stable identity of a reporting process for fault-schedule keying:
/// a hash of `(host, procid)`. Deliberately excludes the agent
/// incarnation so restarts keep the same schedule (see `plan.rs`).
pub fn source_key(host: &str, procid: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in host.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ pivot_simrt::mix64(procid)
}

/// What the injector did, cumulatively.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct ChaosStats {
    /// Report frames that crossed the bus.
    pub reports_seen: u64,
    /// Report frames discarded.
    pub reports_dropped: u64,
    /// Report frames delivered twice.
    pub reports_duplicated: u64,
    /// Report frames held for later delivery.
    pub reports_delayed: u64,
    /// Tuples carried by dropped report frames (the injector-side ground
    /// truth for the frontend's `tuples_dropped`).
    pub tuples_dropped: u64,
    /// Command frames that crossed the bus.
    pub commands_seen: u64,
    /// Command frames delivered twice.
    pub commands_duplicated: u64,
    /// Command frames held for later delivery.
    pub commands_delayed: u64,
}

struct PendingReport {
    release: u64,
    report: Report,
}

struct PendingCommand {
    delay: u64,
    /// Set on the first drain after the broadcast (the bus has no clock of
    /// its own; commands age relative to the next observed `now`).
    release: Option<u64>,
    cmd: Command,
}

#[derive(Default)]
struct Shared {
    pending_reports: Vec<PendingReport>,
    pending_cmds: Vec<PendingCommand>,
    stats: ChaosStats,
    cmd_index: u64,
    disabled: bool,
}

/// A [`Bus`] wrapper that injects the faults a [`FaultPlan`] schedules.
///
/// Works over any transport — [`pivot_core::LocalBus`], the simulated
/// cluster's `Rc<Cluster>`, or a live `Arc<TcpBusServer>` — because it
/// only touches the `Bus` trait surface.
pub struct ChaosBus<B> {
    inner: B,
    plan: FaultPlan,
    shared: Mutex<Shared>,
}

impl<B> ChaosBus<B> {
    /// Wraps `inner`, scheduling faults from `plan`.
    pub fn new(inner: B, plan: FaultPlan) -> ChaosBus<B> {
        ChaosBus {
            inner,
            plan,
            shared: Mutex::new(Shared::default()),
        }
    }

    /// The wrapped bus.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The wrapped bus, mutably (e.g. to register/unregister agents on a
    /// `LocalBus` when the harness crashes and restarts them).
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// The fault schedule.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// A snapshot of the injection tallies.
    pub fn stats(&self) -> ChaosStats {
        self.shared.lock().stats
    }

    /// Turns injection on or off. While disabled the bus is a transparent
    /// pass-through (pending frames still release on drain).
    pub fn set_enabled(&self, enabled: bool) {
        self.shared.lock().disabled = !enabled;
    }

    /// Marks every held frame due immediately, so the next drain delivers
    /// it regardless of the clock.
    pub fn release_pending(&self) {
        let mut sh = self.shared.lock();
        for p in &mut sh.pending_reports {
            p.release = 0;
        }
        for p in &mut sh.pending_cmds {
            p.release = Some(0);
        }
    }

    /// Frames currently held for later delivery (reports, commands).
    pub fn pending(&self) -> (usize, usize) {
        let sh = self.shared.lock();
        (sh.pending_reports.len(), sh.pending_cmds.len())
    }
}

impl<B: Bus> ChaosBus<B> {
    /// End-of-run convergence: stop injecting, release every held frame,
    /// and pump the final reports into `frontend`. After this, everything
    /// the plan did not *drop* has been delivered.
    pub fn settle_into(&self, now: u64, frontend: &mut Frontend) {
        self.set_enabled(false);
        self.release_pending();
        self.pump_into(now, frontend);
    }
}

impl<B: Bus> Bus for ChaosBus<B> {
    fn broadcast(&self, cmd: &Command) {
        let mut sh = self.shared.lock();
        if sh.disabled {
            drop(sh);
            self.inner.broadcast(cmd);
            return;
        }
        sh.stats.commands_seen += 1;
        let idx = sh.cmd_index;
        sh.cmd_index += 1;
        match self.plan.command_verdict(idx) {
            Verdict::Deliver | Verdict::Drop => {
                drop(sh);
                self.inner.broadcast(cmd);
            }
            Verdict::Duplicate => {
                sh.stats.commands_duplicated += 1;
                drop(sh);
                self.inner.broadcast(cmd);
                self.inner.broadcast(cmd);
            }
            Verdict::Delay(d) => {
                sh.stats.commands_delayed += 1;
                sh.pending_cmds.push(PendingCommand {
                    delay: d,
                    release: None,
                    cmd: cmd.clone(),
                });
            }
        }
    }

    fn drain_reports(&self, now: u64) -> Vec<Report> {
        let mut sh = self.shared.lock();
        // Release due commands before draining, so a late install weaves
        // before this round's flush rather than after it.
        let mut due_cmds = Vec::new();
        sh.pending_cmds.retain_mut(|p| {
            let rel = *p.release.get_or_insert_with(|| now.saturating_add(p.delay));
            if rel <= now {
                due_cmds.push(p.cmd.clone());
                false
            } else {
                true
            }
        });
        for cmd in &due_cmds {
            self.inner.broadcast(cmd);
        }

        let mut out = Vec::new();
        let mut i = 0;
        while i < sh.pending_reports.len() {
            if sh.pending_reports[i].release <= now {
                out.push(sh.pending_reports.swap_remove(i).report);
            } else {
                i += 1;
            }
        }

        let fresh = self.inner.drain_reports(now);
        if sh.disabled {
            out.extend(fresh);
            return out;
        }
        for r in fresh {
            sh.stats.reports_seen += 1;
            let src = source_key(&r.host, r.procid);
            match self.plan.report_verdict(src, r.query.0, r.seq, now) {
                Verdict::Deliver => out.push(r),
                Verdict::Drop => {
                    sh.stats.reports_dropped += 1;
                    sh.stats.tuples_dropped += r.tuples;
                }
                Verdict::Duplicate => {
                    sh.stats.reports_duplicated += 1;
                    out.push(r.clone());
                    out.push(r);
                }
                Verdict::Delay(d) => {
                    sh.stats.reports_delayed += 1;
                    sh.pending_reports.push(PendingReport {
                        release: now.saturating_add(d),
                        report: r,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultConfig;
    use pivot_core::LocalBus;

    #[test]
    fn disabled_bus_is_transparent() {
        let chaos = ChaosBus::new(LocalBus::new(), FaultPlan::from_seed(3));
        chaos.set_enabled(false);
        assert!(chaos.drain_reports(0).is_empty());
        assert_eq!(chaos.stats(), ChaosStats::default());
    }

    #[test]
    fn source_key_is_stable_and_separates_hosts() {
        assert_eq!(source_key("host-A", 1), source_key("host-A", 1));
        assert_ne!(source_key("host-A", 1), source_key("host-B", 1));
        assert_ne!(source_key("host-A", 1), source_key("host-A", 2));
    }

    #[test]
    fn off_plan_passes_everything_but_counts_frames() {
        let chaos = ChaosBus::new(LocalBus::new(), FaultPlan::new(1, FaultConfig::off()));
        chaos.broadcast(&Command::Uninstall(pivot_baggage::QueryId(9)));
        let st = chaos.stats();
        assert_eq!(st.commands_seen, 1);
        assert_eq!(st.commands_duplicated + st.commands_delayed, 0);
    }
}
