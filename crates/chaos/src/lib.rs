//! Seeded, deterministic fault injection for the Pivot Tracing bus.
//!
//! Distributed monitoring has to stay *honest* under the faults it is
//! meant to observe: report frames get dropped, duplicated, delayed, and
//! reordered; agents crash mid-interval and come back with empty weave
//! registries; partitions and limplocked nodes starve the report path.
//! This crate provides the machinery to test all of that reproducibly:
//!
//! - [`FaultPlan`] / [`FaultConfig`] — a *stateless* fault schedule: a
//!   pure function from `(seed, frame identity)` to a [`Verdict`], so the
//!   same seed yields a byte-identical schedule regardless of thread
//!   interleaving or draw order. `CHAOS_SEED=<n>` reproduces any failure.
//! - [`ChaosBus`] — bus middleware applying the plan to any
//!   [`pivot_core::Bus`] (local, simulated cluster, or live TCP), with
//!   [`ChaosStats`] tallying exactly what was injected.
//! - [`sim`] — a scripted two-process KV workload with crash/restart and
//!   epoch re-sync, returning a [`sim::RunOutcome`] whose loss-accounting
//!   identity must balance exactly.
//!
//! The recovery machinery this crate exercises lives in `pivot-core`
//! (report sequence numbers, incarnations, `Agent::sync`, the frontend's
//! [`pivot_core::LossStats`]) and `pivot-live` (reconnect with backoff,
//! epoch re-sync over TCP); see DESIGN.md §5e.

mod bus;
mod plan;
pub mod sim;

pub use bus::{source_key, ChaosBus, ChaosStats, PlanScheduler};
pub use plan::{FaultConfig, FaultPlan, Verdict};
