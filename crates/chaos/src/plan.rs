//! Deterministic fault schedules.
//!
//! A [`FaultPlan`] is a *pure function* from `(seed, decision keys)` to a
//! fault [`Verdict`]: it holds no mutable state, so the verdict for a given
//! report never depends on how many other decisions were drawn before it,
//! in what order threads interleaved, or how many times the plan was
//! consulted. Two runs with the same seed produce byte-identical fault
//! schedules even when everything else about their execution differs —
//! the property the determinism regression test pins down.
//!
//! Decisions are keyed by `(source, query, seq)` where `source` is a
//! stable hash of `(host, procid)` (see [`crate::source_key`]). Agent
//! *incarnation* is deliberately excluded: incarnation numbers come from a
//! process-global counter, so a second run inside the same process would
//! see different incarnations and a different schedule.

use pivot_simrt::mix64;

// Domain-separation tags: each decision family draws from its own stream
// so e.g. the drop roll for seq 3 never correlates with the crash roll for
// step 3.
const STREAM_REPORT: u64 = 0x5245_504f_5254_0001;
const STREAM_PARTITION: u64 = 0x5041_5254_0000_0002;
const STREAM_LIMP: u64 = 0x4c49_4d50_0000_0003;
const STREAM_CRASH: u64 = 0x4352_4153_4800_0004;
const STREAM_COMMAND: u64 = 0x434f_4d4d_4144_0005;
const STREAM_STORM: u64 = 0x5354_4f52_4d00_0006;
const STREAM_LINK: u64 = 0x4c49_4e4b_0000_0007;
const STREAM_RETRO: u64 = 0x5245_5452_4f00_0008;

/// Per-fault-class injection rates and magnitudes.
///
/// Rates are per-mille (0..=1000) rather than floats so configurations
/// hash and compare exactly.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FaultConfig {
    /// Per-mille chance a report frame is dropped.
    pub drop_per_mille: u32,
    /// Per-mille chance a report frame is duplicated (delivered twice).
    pub dup_per_mille: u32,
    /// Per-mille chance a report frame is delayed (reordering arises when
    /// later frames overtake it).
    pub delay_per_mille: u32,
    /// Base delay for delayed report frames (scaled 1–4x by the roll).
    pub delay_ns: u64,
    /// Per-mille chance a partition window is active for a source.
    pub partition_per_mille: u32,
    /// Width of a partition window; during an active window every frame
    /// from the partitioned source is held until the window closes.
    pub partition_window_ns: u64,
    /// Per-mille chance a source is a limplock victim for the whole run
    /// (every delivered frame pays `limp_delay_ns` extra).
    pub limp_per_mille: u32,
    /// Extra delay paid by every frame from a limping source.
    pub limp_delay_ns: u64,
    /// Per-mille chance an agent crashes at a given flush boundary.
    pub crash_per_mille: u32,
    /// Per-mille chance a command frame is duplicated.
    pub cmd_dup_per_mille: u32,
    /// Per-mille chance a command frame is delayed.
    pub cmd_delay_per_mille: u32,
    /// Delay applied to delayed command frames.
    pub cmd_delay_ns: u64,
    /// Per-mille chance a request step is a *tracepoint storm*: the
    /// workload invokes its tracepoints `storm_burst`× (scaled 1–4x by
    /// the roll) instead of once, flooding the governor's tuple and ops
    /// budgets. The overload fault family (zero in [`FaultConfig::off`]
    /// and [`FaultConfig::for_seed`]; see
    /// [`FaultConfig::overload_for_seed`]).
    pub storm_per_mille: u32,
    /// Base invocation multiplier of a storm step.
    pub storm_burst: u32,
    /// Per-mille chance a request step is a *group-key explosion*: the
    /// workload emits under a unique-per-invocation group key, flooding
    /// grouped buffers past the row cap.
    pub explode_per_mille: u32,
}

impl FaultConfig {
    /// No faults at all: every verdict is `Deliver`, no source limps,
    /// nothing crashes. The baseline configuration for differential runs.
    pub fn off() -> FaultConfig {
        FaultConfig {
            drop_per_mille: 0,
            dup_per_mille: 0,
            delay_per_mille: 0,
            delay_ns: 0,
            partition_per_mille: 0,
            partition_window_ns: 0,
            limp_per_mille: 0,
            limp_delay_ns: 0,
            crash_per_mille: 0,
            cmd_dup_per_mille: 0,
            cmd_delay_per_mille: 0,
            cmd_delay_ns: 0,
            storm_per_mille: 0,
            storm_burst: 0,
            explode_per_mille: 0,
        }
    }

    /// Derives a fault mix from `seed` so a single integer reproduces both
    /// the schedule *and* the severity profile. Roughly one seed in four
    /// gets partitions, one in four gets a limping source, one in three
    /// gets crash-restart cycles; drop/dup/delay rates vary smoothly.
    pub fn for_seed(seed: u64) -> FaultConfig {
        let r = |i: u64| mix64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        FaultConfig {
            drop_per_mille: (r(1) % 150) as u32,
            dup_per_mille: (r(2) % 100) as u32,
            delay_per_mille: (r(3) % 200) as u32,
            delay_ns: (1 + r(4) % 8) * 10_000_000,
            partition_per_mille: if r(5) % 4 == 0 { 150 } else { 0 },
            partition_window_ns: 50_000_000,
            limp_per_mille: if r(6) % 4 == 0 { 400 } else { 0 },
            limp_delay_ns: 30_000_000,
            crash_per_mille: if r(7) % 3 == 0 { 60 } else { 0 },
            cmd_dup_per_mille: 50,
            cmd_delay_per_mille: 30,
            cmd_delay_ns: 5_000_000,
            // The overload family stays off in the general mix so the
            // long-standing differential-subset property (chaotic rows ⊆
            // fault-free rows) keeps holding; overload runs opt in via
            // `overload_for_seed`.
            storm_per_mille: 0,
            storm_burst: 0,
            explode_per_mille: 0,
        }
    }

    /// Derives an *overload* fault mix from `seed`: tracepoint storms and
    /// group-key explosions layered on a mild transport mix, so governor
    /// runs still see drops/dups/crashes but the dominant pressure is
    /// workload volume, not frame loss.
    pub fn overload_for_seed(seed: u64) -> FaultConfig {
        let r = |i: u64| mix64(seed ^ i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        FaultConfig {
            drop_per_mille: (r(8) % 60) as u32,
            dup_per_mille: (r(9) % 40) as u32,
            delay_per_mille: 0,
            partition_per_mille: 0,
            limp_per_mille: 0,
            crash_per_mille: if r(10) % 3 == 0 { 40 } else { 0 },
            storm_per_mille: 150 + (r(11) % 250) as u32,
            storm_burst: 32 + (r(12) % 96) as u32,
            explode_per_mille: 100 + (r(13) % 200) as u32,
            ..FaultConfig::for_seed(seed)
        }
    }
}

/// The fate of one frame. The enum itself lives in `pivot_core::bus`
/// (delivery mechanics are shared with every scheduled transport); this
/// crate's plans are one way of *producing* verdicts.
pub use pivot_core::Verdict;

/// A seeded, stateless fault schedule (see the module docs for the
/// determinism contract).
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    seed: u64,
    cfg: FaultConfig,
}

impl FaultPlan {
    /// A plan drawing from `seed` with an explicit fault mix.
    pub fn new(seed: u64, cfg: FaultConfig) -> FaultPlan {
        FaultPlan { seed, cfg }
    }

    /// A plan whose fault mix is itself derived from the seed
    /// ([`FaultConfig::for_seed`]).
    pub fn from_seed(seed: u64) -> FaultPlan {
        FaultPlan::new(seed, FaultConfig::for_seed(seed))
    }

    /// The seed (echo it in failure messages: `CHAOS_SEED=<n>` reproduces
    /// the run).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The fault mix.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Derives an independent plan for link `link`: the same fault mix,
    /// but decision streams re-seeded per link, so every edge of a relay
    /// tree (agent→leaf, leaf→root, root→frontend) draws its own
    /// schedule from one root seed. Pure like everything else here:
    /// deriving the same link twice yields behaviourally identical
    /// plans, and one integer still reproduces the whole tree's faults.
    pub fn derive(&self, link: u64) -> FaultPlan {
        FaultPlan {
            seed: mix64(mix64(self.seed ^ STREAM_LINK) ^ link),
            cfg: self.cfg,
        }
    }

    /// One PRF draw, domain-separated by `stream` and keyed by `(a, b, c)`.
    fn roll(&self, stream: u64, a: u64, b: u64, c: u64) -> u64 {
        mix64(mix64(mix64(mix64(self.seed ^ stream) ^ a) ^ b) ^ c)
    }

    /// The fate of report frame `(source, query, seq)` flushed at `now`.
    ///
    /// Partition and limplock compose with the per-frame roll: a partition
    /// holds everything until its window closes (so `Drop` stays `Drop`
    /// but deliveries become delays), and a limping source pays a constant
    /// extra delay on every delivered frame.
    pub fn report_verdict(&self, source: u64, query: u64, seq: u64, now: u64) -> Verdict {
        let r = self.roll(STREAM_REPORT, source, query, seq);
        let pick = (r % 1000) as u32;
        let c = &self.cfg;
        let mut verdict = if pick < c.drop_per_mille {
            Verdict::Drop
        } else if pick < c.drop_per_mille + c.dup_per_mille {
            Verdict::Duplicate
        } else if pick < c.drop_per_mille + c.dup_per_mille + c.delay_per_mille {
            Verdict::Delay(c.delay_ns * (1 + (r >> 32) % 4))
        } else {
            Verdict::Deliver
        };
        if let Some(hold) = self.partitioned(source, now) {
            verdict = match verdict {
                Verdict::Drop => Verdict::Drop,
                Verdict::Delay(d) => Verdict::Delay(d.max(hold)),
                Verdict::Deliver | Verdict::Duplicate => Verdict::Delay(hold),
            };
        }
        if self.limping(source) {
            verdict = match verdict {
                Verdict::Deliver => Verdict::Delay(c.limp_delay_ns),
                Verdict::Delay(d) => Verdict::Delay(d + c.limp_delay_ns),
                v => v,
            };
        }
        verdict
    }

    /// The fate of retro-flush frame `(source, seq)` crossing the bus at
    /// `now`. Draws from its own PRF stream (so adding retro traffic
    /// never perturbs the report schedule) but composes with the same
    /// partition and limplock state — a partitioned source's retro
    /// frames are held with everything else.
    pub fn retro_verdict(&self, source: u64, seq: u64, now: u64) -> Verdict {
        let r = self.roll(STREAM_RETRO, source, seq, 0);
        let pick = (r % 1000) as u32;
        let c = &self.cfg;
        let mut verdict = if pick < c.drop_per_mille {
            Verdict::Drop
        } else if pick < c.drop_per_mille + c.dup_per_mille {
            Verdict::Duplicate
        } else if pick < c.drop_per_mille + c.dup_per_mille + c.delay_per_mille {
            Verdict::Delay(c.delay_ns * (1 + (r >> 32) % 4))
        } else {
            Verdict::Deliver
        };
        if let Some(hold) = self.partitioned(source, now) {
            verdict = match verdict {
                Verdict::Drop => Verdict::Drop,
                Verdict::Delay(d) => Verdict::Delay(d.max(hold)),
                Verdict::Deliver | Verdict::Duplicate => Verdict::Delay(hold),
            };
        }
        if self.limping(source) {
            verdict = match verdict {
                Verdict::Deliver => Verdict::Delay(c.limp_delay_ns),
                Verdict::Delay(d) => Verdict::Delay(d + c.limp_delay_ns),
                v => v,
            };
        }
        verdict
    }

    /// Nanoseconds until the current partition window for `source` closes,
    /// or `None` when the source is not partitioned at `now`.
    pub fn partitioned(&self, source: u64, now: u64) -> Option<u64> {
        let w = self.cfg.partition_window_ns;
        if w == 0 || self.cfg.partition_per_mille == 0 {
            return None;
        }
        let window = now / w;
        let roll = (self.roll(STREAM_PARTITION, source, window, 0) % 1000) as u32;
        (roll < self.cfg.partition_per_mille).then(|| (window + 1) * w - now)
    }

    /// Whether `source` is a limplock victim (decided once per run, not per
    /// frame — a limping node is slow for its whole life).
    pub fn limping(&self, source: u64) -> bool {
        ((self.roll(STREAM_LIMP, source, 0, 0) % 1000) as u32) < self.cfg.limp_per_mille
    }

    /// Whether the agent behind `source` crashes at flush boundary `step`.
    pub fn should_crash(&self, source: u64, step: u64) -> bool {
        ((self.roll(STREAM_CRASH, source, step, 0) % 1000) as u32) < self.cfg.crash_per_mille
    }

    /// Invocation multiplier for request step `step` issued by `source`:
    /// `1` on an ordinary step, `>1` on a tracepoint-storm step (the base
    /// burst scaled 1–4x by the roll). Pure function of the keys, like
    /// every other verdict.
    pub fn storm_burst(&self, source: u64, step: u64) -> u32 {
        let r = self.roll(STREAM_STORM, source, step, 0);
        if ((r % 1000) as u32) < self.cfg.storm_per_mille {
            self.cfg.storm_burst.max(1) * (1 + ((r >> 32) % 4) as u32)
        } else {
            1
        }
    }

    /// Whether request step `step` from `source` is a group-key explosion
    /// (the workload emits under unique-per-invocation group keys).
    pub fn explodes(&self, source: u64, step: u64) -> bool {
        ((self.roll(STREAM_STORM, source, step, 1) % 1000) as u32) < self.cfg.explode_per_mille
    }

    /// The fate of the `index`-th broadcast command frame. Commands are
    /// never dropped — a permanently lost install is indistinguishable
    /// from "not installed", which the epoch re-sync path covers instead —
    /// but they can be duplicated (exercising install idempotence) or
    /// delayed (exercising late weaves).
    pub fn command_verdict(&self, index: u64) -> Verdict {
        let r = self.roll(STREAM_COMMAND, index, 0, 0);
        let pick = (r % 1000) as u32;
        let c = &self.cfg;
        if pick < c.cmd_dup_per_mille {
            Verdict::Duplicate
        } else if pick < c.cmd_dup_per_mille + c.cmd_delay_per_mille {
            Verdict::Delay(c.cmd_delay_ns)
        } else {
            Verdict::Deliver
        }
    }

    /// A canonical byte encoding of the schedule this plan would produce
    /// for `sources` × `queries` over `events` sequence numbers (probing
    /// time at a fixed cadence), plus the command and crash schedules.
    /// Two plans are behaviourally identical iff their fingerprints match;
    /// the determinism test compares fingerprints across runs.
    pub fn fingerprint(&self, sources: &[u64], queries: &[u64], events: u64) -> Vec<u8> {
        const PROBE_STEP: u64 = 16_000_000; // harness flush cadence
        let mut out = Vec::new();
        let push_verdict = |out: &mut Vec<u8>, v: Verdict| match v {
            Verdict::Deliver => out.push(0),
            Verdict::Drop => out.push(1),
            Verdict::Duplicate => out.push(2),
            Verdict::Delay(d) => {
                out.push(3);
                out.extend_from_slice(&d.to_le_bytes());
            }
        };
        for &s in sources {
            out.push(u8::from(self.limping(s)));
            for &q in queries {
                for seq in 0..events {
                    let v = self.report_verdict(s, q, seq, seq * PROBE_STEP);
                    push_verdict(&mut out, v);
                }
            }
            for step in 0..events {
                out.push(u8::from(self.should_crash(s, step)));
                out.extend_from_slice(&self.storm_burst(s, step).to_le_bytes());
                out.push(u8::from(self.explodes(s, step)));
            }
        }
        for idx in 0..events {
            push_verdict(&mut out, self.command_verdict(idx));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_delivers_everything() {
        let plan = FaultPlan::new(42, FaultConfig::off());
        for seq in 0..1000 {
            assert_eq!(plan.report_verdict(7, 1, seq, seq * 1000), Verdict::Deliver);
            assert_eq!(plan.command_verdict(seq), Verdict::Deliver);
            assert!(!plan.should_crash(7, seq));
        }
        assert!(!plan.limping(7));
        assert!(plan.partitioned(7, 12345).is_none());
        for step in 0..1000 {
            assert_eq!(plan.storm_burst(7, step), 1);
            assert!(!plan.explodes(7, step));
        }
    }

    #[test]
    fn overload_mix_storms_and_explodes_at_configured_rates() {
        let cfg = FaultConfig::overload_for_seed(3);
        assert!(cfg.storm_per_mille > 0 && cfg.storm_burst > 0 && cfg.explode_per_mille > 0);
        let plan = FaultPlan::new(3, cfg);
        let storms = (0..10_000u64)
            .filter(|&s| plan.storm_burst(5, s) > 1)
            .count() as u32;
        // Expected ~ storm_per_mille per mille, generous slack.
        let expect = cfg.storm_per_mille * 10;
        assert!(
            (expect / 2..=expect * 2).contains(&storms),
            "storms = {storms}, expected ≈ {expect}"
        );
        assert!((0..10_000u64).any(|s| plan.explodes(5, s)));
        // Burst magnitudes stay within the 1–4x scaling of the base.
        for s in 0..10_000u64 {
            let b = plan.storm_burst(5, s);
            assert!(b == 1 || (b >= cfg.storm_burst && b <= cfg.storm_burst * 4));
        }
        // The general per-seed mix keeps the overload family off.
        for seed in 0..32 {
            let general = FaultConfig::for_seed(seed);
            assert_eq!(general.storm_per_mille, 0);
            assert_eq!(general.explode_per_mille, 0);
        }
    }

    #[test]
    fn verdicts_are_pure_functions_of_keys() {
        let plan = FaultPlan::from_seed(0xdead_beef);
        // Same keys, any draw order, any repetition: same verdict.
        let a = plan.report_verdict(1, 2, 3, 4_000);
        for _ in 0..10 {
            plan.report_verdict(9, 9, 9, 9); // unrelated draws in between
            assert_eq!(plan.report_verdict(1, 2, 3, 4_000), a);
        }
    }

    #[test]
    fn derived_link_plans_are_pure_and_independent() {
        let root = FaultPlan::from_seed(11);
        // Same link → byte-identical schedule; sibling links → distinct.
        let a = root.derive(0).fingerprint(&[1, 2], &[1], 64);
        let a2 = root.derive(0).fingerprint(&[1, 2], &[1], 64);
        let b = root.derive(1).fingerprint(&[1, 2], &[1], 64);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        // A derived plan keeps the parent's fault mix.
        assert_eq!(root.derive(3).config(), root.config());
        // And none of them equals the parent's own stream.
        assert_ne!(a, root.fingerprint(&[1, 2], &[1], 64));
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::from_seed(1).fingerprint(&[1, 2], &[1], 64);
        let b = FaultPlan::from_seed(2).fingerprint(&[1, 2], &[1], 64);
        assert_ne!(a, b);
        // And the same seed gives the same bytes.
        let a2 = FaultPlan::from_seed(1).fingerprint(&[1, 2], &[1], 64);
        assert_eq!(a, a2);
    }

    #[test]
    fn rates_land_in_the_right_ballpark() {
        let cfg = FaultConfig {
            drop_per_mille: 100,
            ..FaultConfig::off()
        };
        let plan = FaultPlan::new(7, cfg);
        let drops = (0..10_000)
            .filter(|&seq| plan.report_verdict(3, 1, seq, 0) == Verdict::Drop)
            .count();
        // 10% ± generous slack.
        assert!((600..=1400).contains(&drops), "drops = {drops}");
    }
}
