//! A deterministic, scripted KV-store workload for chaos testing.
//!
//! [`run_kv`] drives the repo's canonical two-process KV scenario — a
//! client packs a request tuple into baggage, a shard executes it and
//! emits — over a [`crate::ChaosBus`]-wrapped `LocalBus`, on a virtual
//! step clock (no wall time anywhere). The shard agent can crash at flush
//! boundaries per the plan's crash schedule; the harness restarts it and
//! re-syncs the installed-query set through [`pivot_core::Agent::sync`],
//! exactly mirroring the live runtime's epoch re-sync after reconnect.
//!
//! Every run returns a [`RunOutcome`] whose accounting identity
//!
//! ```text
//! emitted == loss.tuples_delivered + chaos.tuples_dropped + crash_lost
//! ```
//!
//! must balance exactly: each emitted tuple was either delivered to the
//! frontend, dropped on the report path (and tallied by the injector), or
//! died unflushed in a crash (and tallied by the harness).
//!
//! [`run_kv_overload`] extends the scenario with the overload fault
//! family — tracepoint storms and group-key explosions from
//! [`FaultConfig::overload_for_seed`] — under tight explicit
//! [`QueryBudget`]s and small row caps, and its [`OverloadOutcome`]
//! extends the identity with the governor's ledger:
//!
//! ```text
//! emitted == delivered + chaos.tuples_dropped + crash_lost + governor_shed
//! ```

use std::sync::Arc;

use pivot_baggage::{Baggage, QueryId};
use pivot_core::{
    set_trace, Agent, Bus, Frontend, LocalBus, LossStats, ProcessInfo, QueryBudget, ResultRow,
    RetroLossStats, Throttled, TriggerKind,
};
use pivot_model::Value;

use crate::bus::{source_key, ChaosBus, ChaosStats};
use crate::plan::{FaultConfig, FaultPlan};

/// The workload query: per-request execution counts and bytes, joined
/// across the client → shard causal edge (a Q2-shaped query from the
/// paper, grouped by a per-request key so differential runs can be joined
/// on surviving request ids).
pub const KV_QUERY: &str = "From exec In KvShard.execute \
     Join req In First(KvClient.issueRequest) On req -> exec \
     GroupBy req.key \
     Select req.key, COUNT, SUM(exec.bytes)";

/// Virtual nanoseconds between requests.
pub const STEP_NS: u64 = 1_000_000;

/// Requests per flush interval (a flush boundary is also a crash
/// opportunity).
pub const FLUSH_EVERY: u64 = 16;

/// Everything observable about one harness run. Two runs of the same
/// `(seed, config, requests)` must compare equal — the determinism
/// regression test relies on `PartialEq` here.
#[derive(Clone, PartialEq, Debug)]
pub struct RunOutcome {
    /// Final cumulative result rows (sorted by key).
    pub rows: Vec<ResultRow>,
    /// The frontend's per-query loss accounting.
    pub loss: LossStats,
    /// The injector's tallies.
    pub chaos: ChaosStats,
    /// Ground-truth tuples emitted, summed over every shard/client agent
    /// incarnation.
    pub emitted: u64,
    /// Tuples that died unflushed when an agent crashed.
    pub crash_lost: u64,
    /// Agent crash/restart cycles the schedule triggered.
    pub crashes: u64,
}

impl RunOutcome {
    /// Whether the loss-accounting identity balances exactly (see the
    /// module docs).
    pub fn balanced(&self) -> bool {
        self.emitted == self.loss.tuples_delivered + self.chaos.tuples_dropped + self.crash_lost
    }
}

fn shard_info() -> ProcessInfo {
    ProcessInfo {
        host: "kv-server".into(),
        procid: 2,
        procname: "KvShard".into(),
    }
}

/// The fault-schedule source keys of the harness's two processes
/// `(client, shard)` — exposed so tests can fingerprint plans over the
/// exact sources the workload uses.
pub fn kv_sources() -> (u64, u64) {
    (source_key("kv-client", 1), source_key("kv-server", 2))
}

/// Runs `requests` KV operations under the fault schedule `(seed, cfg)`
/// and returns the converged outcome. Deterministic: no wall clock, no
/// stateful RNG, no thread interleaving.
pub fn run_kv(seed: u64, cfg: FaultConfig, requests: u64) -> RunOutcome {
    run_kv_burst(seed, cfg, requests, 1, false)
}

/// Like [`run_kv`], but each request's shard-side work is a burst of
/// `burst` execute events sharing that request's baggage — handed to the
/// agent through [`Agent::invoke_batch`] when `batched` is true, or the
/// equivalent per-event `invoke` loop when false. The loss identity and
/// the converged outcome must be identical either way (pinned by
/// `tests/batch_loss.rs`): batching changes how advice executes and
/// flushes, never what is emitted, delivered, dropped, or lost.
pub fn run_kv_burst(
    seed: u64,
    cfg: FaultConfig,
    requests: u64,
    burst: u64,
    batched: bool,
) -> RunOutcome {
    let plan = FaultPlan::new(seed, cfg);
    let mut fe = Frontend::new();
    fe.define("KvClient.issueRequest", ["client", "op", "key"]);
    fe.define("KvShard.execute", ["shard", "op", "bytes"]);
    let handle = fe.install(KV_QUERY).expect("chaos harness query compiles");
    let qid = handle.id;

    let client = Arc::new(Agent::new(ProcessInfo {
        host: "kv-client".into(),
        procid: 1,
        procname: "KvClient".into(),
    }));
    let mut shard = Arc::new(Agent::new(shard_info()));
    let (_, shard_src) = kv_sources();

    let mut bus = LocalBus::new();
    bus.register(Arc::clone(&client));
    bus.register(Arc::clone(&shard));
    let mut chaos = ChaosBus::new(bus, plan);
    for cmd in fe.drain_commands() {
        Bus::broadcast(&chaos, &cmd);
    }

    let mut emitted = 0u64;
    let mut crash_lost = 0u64;
    let mut crashes = 0u64;

    for i in 0..requests {
        let now = (i + 1) * STEP_NS;
        let key = format!("req-{i:05}");
        let mut bag = Baggage::new();
        client.invoke(
            "KvClient.issueRequest",
            &mut bag,
            now,
            &[
                ("client", Value::str("client-0")),
                ("op", Value::str("put")),
                ("key", Value::str(&key)),
            ],
        );
        // "RPC" to the shard: baggage crosses the process boundary by
        // serialization, as it would on a real wire.
        let bytes = bag.to_bytes();
        let mut remote = Baggage::from_bytes(&bytes);
        let events: Vec<[(&str, Value); 3]> = (0..burst)
            .map(|j| {
                let k = i * burst + j;
                [
                    ("shard", Value::U64(k % 4)),
                    ("op", Value::str("put")),
                    ("bytes", Value::I64((k % 97) as i64 + 1)),
                ]
            })
            .collect();
        if batched {
            let ev: Vec<(u64, &[(&str, Value)])> =
                events.iter().map(|e| (now, e.as_slice())).collect();
            shard.invoke_batch("KvShard.execute", &mut remote, &ev);
        } else {
            for e in &events {
                shard.invoke("KvShard.execute", &mut remote, now, e);
            }
        }

        if (i + 1) % FLUSH_EVERY == 0 {
            let step = (i + 1) / FLUSH_EVERY;
            if chaos.plan().should_crash(shard_src, step) {
                // The shard process dies mid-interval: its cumulative
                // emission counter is the last word of this incarnation,
                // and whatever it had not flushed is lost for good.
                crashes += 1;
                emitted += shard.emitted_for(qid);
                for report in shard.flush(now) {
                    crash_lost += report.tuples;
                }
                chaos.inner_mut().unregister(&shard);
                // Restart: fresh incarnation, same process identity. The
                // replacement re-syncs the full installed-query set from
                // the frontend (the epoch re-sync path).
                let fresh = Arc::new(Agent::new(shard_info()));
                fresh.sync(&fe.installed());
                chaos.inner_mut().register(Arc::clone(&fresh));
                shard = fresh;
            }
            chaos.pump_into(now, &mut fe);
        }
    }

    // Convergence: stop injecting, release held frames, final flush.
    chaos.settle_into((requests + 2) * STEP_NS, &mut fe);
    emitted += shard.emitted_for(qid) + client.emitted_for(qid);

    let res = fe.results(&handle);
    RunOutcome {
        rows: res.rows(),
        loss: res.loss(),
        chaos: chaos.stats(),
        emitted,
        crash_lost,
        crashes,
    }
}

/// Streaming companion query for the overload harness: an unaggregated
/// all-packs join, so tracepoint storms exercise the `PackMode::All` hard
/// cap on the baggage side and the streaming row cap on the buffer side.
pub const KV_STREAM_QUERY: &str = "From exec In KvShard.execute \
     Join req In KvClient.issueRequest On req -> exec \
     Select req.key, exec.bytes";

/// Row cap installed on the overload harness's agents — small enough
/// that group-key explosions and storm floods hit it within one flush
/// interval.
pub const OVERLOAD_ROW_CAP: usize = 64;

/// Everything observable about one overload-harness run. Derives
/// `PartialEq` so determinism tests can compare two replays of the same
/// `(seed, config, requests)` structurally, trip sequence included.
#[derive(Clone, PartialEq, Debug)]
pub struct OverloadOutcome {
    /// Final grouped-query result rows (sorted by key).
    pub grouped_rows: Vec<ResultRow>,
    /// Per-query loss accounting: `(grouped, streaming)`.
    pub loss: (LossStats, LossStats),
    /// Throttle notifications that reached the frontend: `(grouped,
    /// streaming)`. Ground-truth trips are in [`OverloadOutcome::trips`];
    /// these are only the ones whose report frames survived the chaos.
    pub throttles: (Vec<Throttled>, Vec<Throttled>),
    /// The injector's tallies.
    pub chaos: ChaosStats,
    /// Ground-truth tuples emitted, summed over both queries and every
    /// agent incarnation.
    pub emitted: u64,
    /// Tuples that died unflushed when an agent crashed.
    pub crash_lost: u64,
    /// Tuples the governor shed at the row-capped buffers, ground truth
    /// summed over agents, queries, and incarnations.
    pub governor_shed: u64,
    /// Packed tuples dropped by the `PackMode::All` hard cap.
    pub truncated: u64,
    /// Circuit-breaker trips, ground truth summed over agents, queries,
    /// and incarnations.
    pub trips: u64,
    /// Agent crash/restart cycles the schedule triggered.
    pub crashes: u64,
    /// Largest per-query row buffer observed on the shard at any step —
    /// bounded-buffering means this never exceeds [`OVERLOAD_ROW_CAP`].
    pub max_buffered: usize,
}

impl OverloadOutcome {
    /// The extended loss identity: every emitted tuple was either
    /// delivered to the frontend, dropped in transit (injector tally),
    /// lost unflushed in a crash, or shed by the governor's row caps.
    pub fn balanced(&self) -> bool {
        self.emitted
            == self.loss.0.tuples_delivered
                + self.loss.1.tuples_delivered
                + self.chaos.tuples_dropped
                + self.crash_lost
                + self.governor_shed
    }
}

/// Runs `requests` steps of the overload workload — tracepoint storms,
/// group-key explosions, tight explicit budgets, small row caps — under
/// the fault schedule `(seed, cfg)` and returns the converged outcome.
/// Pair with [`FaultConfig::overload_for_seed`] for a schedule that
/// actually storms; with [`FaultConfig::off`] the run is a plain (if
/// tightly budgeted) KV workload.
pub fn run_kv_overload(seed: u64, cfg: FaultConfig, requests: u64) -> OverloadOutcome {
    let plan = FaultPlan::new(seed, cfg);
    let mut fe = Frontend::new();
    fe.define("KvClient.issueRequest", ["client", "op", "key"]);
    fe.define("KvShard.execute", ["shard", "op", "bytes"]);
    let grouped = fe
        .install(KV_QUERY)
        .expect("overload grouped query compiles");
    let stream = fe
        .install(KV_STREAM_QUERY)
        .expect("overload stream query compiles");
    // Tight explicit budgets, windowed at a quarter of the flush
    // interval so trip → backoff → re-arm cycles complete within a run:
    // the grouped query trips on tuple floods (group-key explosions),
    // the streaming one on storm bursts. Ops/bytes rails are set high —
    // they are exercised by unit tests; here tuples are the story.
    fe.set_budget(
        &grouped,
        QueryBudget {
            tuples_per_window: 24,
            ops_per_window: 1_000_000,
            bytes_per_window: 1_000_000,
            window_ns: 4 * STEP_NS,
            backoff_base_windows: 1,
            max_backoff_doublings: 3,
        },
    );
    fe.set_budget(
        &stream,
        QueryBudget {
            tuples_per_window: 400,
            ops_per_window: 4_000_000,
            bytes_per_window: 4_000_000,
            window_ns: 4 * STEP_NS,
            backoff_base_windows: 1,
            max_backoff_doublings: 3,
        },
    );
    let queries: [QueryId; 2] = [grouped.id, stream.id];

    let client = Arc::new(Agent::new(ProcessInfo {
        host: "kv-client".into(),
        procid: 1,
        procname: "KvClient".into(),
    }));
    client.set_row_cap(OVERLOAD_ROW_CAP);
    let mut shard = Arc::new(Agent::new(shard_info()));
    shard.set_row_cap(OVERLOAD_ROW_CAP);
    let (_, shard_src) = kv_sources();

    let mut bus = LocalBus::new();
    bus.register(Arc::clone(&client));
    bus.register(Arc::clone(&shard));
    let mut chaos = ChaosBus::new(bus, plan);
    for cmd in fe.drain_commands() {
        Bus::broadcast(&chaos, &cmd);
    }

    let mut emitted = 0u64;
    let mut crash_lost = 0u64;
    let mut governor_shed = 0u64;
    let mut truncated = 0u64;
    let mut trips = 0u64;
    let mut crashes = 0u64;
    let mut max_buffered = 0usize;

    for i in 0..requests {
        let now = (i + 1) * STEP_NS;
        let burst = chaos.plan().storm_burst(shard_src, i);
        if chaos.plan().explodes(shard_src, i) {
            // Group-key explosion: a flood of one-shot requests with
            // distinct keys. The floor keeps every explosion wider than
            // [`OVERLOAD_ROW_CAP`], so each one both trips the grouped
            // budget and forces the grouped buffer to refuse new groups.
            let width = u64::from(burst.max(80));
            for j in 0..width {
                let key = format!("xk-{i:05}-{j:03}");
                let mut bag = Baggage::new();
                client.invoke(
                    "KvClient.issueRequest",
                    &mut bag,
                    now,
                    &[
                        ("client", Value::str("client-0")),
                        ("op", Value::str("put")),
                        ("key", Value::str(&key)),
                    ],
                );
                let bytes = bag.to_bytes();
                let mut remote = Baggage::from_bytes(&bytes);
                shard.invoke(
                    "KvShard.execute",
                    &mut remote,
                    now,
                    &[
                        ("shard", Value::U64(j % 4)),
                        ("op", Value::str("put")),
                        ("bytes", Value::I64((j % 97) as i64 + 1)),
                    ],
                );
            }
        } else {
            // Ordinary request — or a tracepoint storm when `burst > 1`:
            // the client tracepoint fires `burst` times on one request,
            // every firing packing into the same baggage, so the
            // `PackMode::All` hard cap engages past its limit.
            let key = format!("req-{i:05}");
            let mut bag = Baggage::new();
            for _ in 0..burst {
                client.invoke(
                    "KvClient.issueRequest",
                    &mut bag,
                    now,
                    &[
                        ("client", Value::str("client-0")),
                        ("op", Value::str("put")),
                        ("key", Value::str(&key)),
                    ],
                );
            }
            let bytes = bag.to_bytes();
            let mut remote = Baggage::from_bytes(&bytes);
            shard.invoke(
                "KvShard.execute",
                &mut remote,
                now,
                &[
                    ("shard", Value::U64(i % 4)),
                    ("op", Value::str("put")),
                    ("bytes", Value::I64((i % 97) as i64 + 1)),
                ],
            );
        }
        for q in queries {
            max_buffered = max_buffered.max(shard.buffered_rows(q));
        }

        if (i + 1) % FLUSH_EVERY == 0 {
            let step = (i + 1) / FLUSH_EVERY;
            if chaos.plan().should_crash(shard_src, step) {
                // The dying incarnation's governor tallies are its last
                // word — fold them into the ground truth before the
                // restart resets every counter.
                crashes += 1;
                for q in queries {
                    emitted += shard.emitted_for(q);
                    governor_shed += shard.shed_for(q);
                    truncated += shard.truncated_for(q);
                    trips += u64::from(shard.trips_for(q));
                }
                for report in shard.flush(now) {
                    crash_lost += report.tuples;
                }
                chaos.inner_mut().unregister(&shard);
                // Restart: the replacement re-syncs the query set *and*
                // the budget set, mirroring the live epoch re-sync.
                let fresh = Arc::new(Agent::new(shard_info()));
                fresh.set_row_cap(OVERLOAD_ROW_CAP);
                fresh.sync(&fe.installed());
                fresh.sync_budgets(&fe.budgets());
                chaos.inner_mut().register(Arc::clone(&fresh));
                shard = fresh;
            }
            chaos.pump_into(now, &mut fe);
        }
    }

    chaos.settle_into((requests + 2) * STEP_NS, &mut fe);
    for q in queries {
        emitted += shard.emitted_for(q) + client.emitted_for(q);
        governor_shed += shard.shed_for(q) + client.shed_for(q);
        truncated += shard.truncated_for(q) + client.truncated_for(q);
        trips += u64::from(shard.trips_for(q)) + u64::from(client.trips_for(q));
    }

    let gres = fe.results(&grouped);
    let sres = fe.results(&stream);
    OverloadOutcome {
        grouped_rows: gres.rows(),
        loss: (gres.loss(), sres.loss()),
        throttles: (gres.throttles(), sres.throttles()),
        chaos: chaos.stats(),
        emitted,
        crash_lost,
        governor_shed,
        truncated,
        trips,
        crashes,
        max_buffered,
    }
}

/// Hindsight companion query for the retro harness: large writes fire an
/// explicit `Trigger` advice op, draining the triggering request's
/// buffered raw events into a [`pivot_core::RetroReport`] routed to this
/// query's results.
pub const KV_TRIGGER_QUERY: &str = "From exec In KvShard.execute \
     Where exec.bytes > 90 \
     Trigger \
     Select exec.shard, exec.bytes";

/// Ring capacity installed on the retro harness's agents — small enough
/// that steady recording wraps the ring within a couple of flush
/// intervals, so `sampled_out` is exercised on every run.
pub const RETRO_RING_CAP: usize = 32;

/// Latency-outlier threshold for the retro harness (virtual ns). The
/// scripted workload exports `latency_ns` above it on a fixed cadence,
/// so every run also exercises the uncorrelated-orphan trigger path.
pub const RETRO_LATENCY_THRESHOLD: u64 = 1_000_000;

/// Everything observable about one retro-harness run. Derives `PartialEq`
/// so determinism tests can compare two replays of the same
/// `(seed, config, requests)` structurally, hindsight ledger included.
#[derive(Clone, PartialEq, Debug)]
pub struct RetroOutcome {
    /// Final grouped-query result rows (sorted by key).
    pub rows: Vec<ResultRow>,
    /// Per-query tuple loss accounting: `(grouped, trigger)`.
    pub loss: (LossStats, LossStats),
    /// The frontend's retro-flush loss accounting.
    pub retro: RetroLossStats,
    /// The injector's tallies (retro frames included).
    pub chaos: ChaosStats,
    /// Ground-truth tuples emitted, summed over both queries and every
    /// agent incarnation.
    pub emitted: u64,
    /// Tuples that died unflushed when an agent crashed.
    pub crash_lost: u64,
    /// Agent crash/restart cycles the schedule triggered.
    pub crashes: u64,
    /// Ground-truth raw events recorded into retro rings, summed over
    /// every agent incarnation.
    pub retro_recorded: u64,
    /// Ground-truth events overwritten (or sealed) in rings before any
    /// trigger claimed them.
    pub retro_sampled_out: u64,
    /// Ground-truth events shed from bounded pending-report queues.
    pub retro_shed: u64,
    /// Ground-truth events (ring-resident or flushed-but-undrained) that
    /// died with a crashing agent incarnation.
    pub retro_crash_lost: u64,
    /// Retro reports that reached the trigger query's results.
    pub advice_reports: usize,
    /// Retro reports from non-query triggers (latency outliers, fault
    /// sites) that landed in the frontend's orphan pool.
    pub orphan_reports: usize,
    /// Largest ring occupancy observed on any agent at any step —
    /// bounded recording means this never exceeds [`RETRO_RING_CAP`].
    pub max_ring: usize,
}

impl RetroOutcome {
    /// The ordinary tuple identity, summed over both installed queries.
    pub fn balanced(&self) -> bool {
        self.emitted
            == self.loss.0.tuples_delivered
                + self.loss.1.tuples_delivered
                + self.chaos.tuples_dropped
                + self.crash_lost
    }

    /// The extended hindsight identity: every raw event recorded into any
    /// ring was either delivered to the frontend inside a retro report,
    /// dropped in transit (injector tally), overwritten before a trigger
    /// wanted it, shed from a bounded pending queue, or died with a
    /// crashing incarnation. Exact — no slack term.
    pub fn retro_balanced(&self) -> bool {
        self.retro_recorded
            == self.retro.events_delivered
                + self.chaos.retro_events_dropped
                + self.retro_sampled_out
                + self.retro_shed
                + self.retro_crash_lost
    }
}

/// Runs `requests` KV operations with hindsight recording on — a
/// `Trigger`-bearing query woven on the shard, a latency-outlier
/// threshold armed, and a fault-site trigger fired at every scheduled
/// crash — under the fault schedule `(seed, cfg)`, and returns the
/// converged outcome. Deterministic, like [`run_kv`].
///
/// The crash choreography is deliberately adversarial to the retro path:
/// the harness fires the fault trigger first and *then* kills the shard,
/// so the flushed report dies in the pending queue and its events must
/// come back out of `retro_crash_lost`, not vanish.
pub fn run_kv_retro(seed: u64, cfg: FaultConfig, requests: u64) -> RetroOutcome {
    let plan = FaultPlan::new(seed, cfg);
    let mut fe = Frontend::new();
    fe.define("KvClient.issueRequest", ["client", "op", "key"]);
    fe.define("KvShard.execute", ["shard", "op", "bytes"]);
    let grouped = fe.install(KV_QUERY).expect("retro harness query compiles");
    let trigger = fe
        .install(KV_TRIGGER_QUERY)
        .expect("retro trigger query compiles");
    let queries: [QueryId; 2] = [grouped.id, trigger.id];

    let client = Arc::new(Agent::new(ProcessInfo {
        host: "kv-client".into(),
        procid: 1,
        procname: "KvClient".into(),
    }));
    let mut shard = Arc::new(Agent::new(shard_info()));
    let (_, shard_src) = kv_sources();

    let mut bus = LocalBus::new();
    bus.register(Arc::clone(&client));
    bus.register(Arc::clone(&shard));
    let mut chaos = ChaosBus::new(bus, plan);
    for cmd in fe.drain_commands() {
        Bus::broadcast(&chaos, &cmd);
    }
    // Installing KV_TRIGGER_QUERY switched retro on; tighten the rings so
    // wraparound (`sampled_out`) happens within a run.
    for a in [&client, &shard] {
        a.set_retro_cap(RETRO_RING_CAP);
        a.set_retro_latency_threshold(RETRO_LATENCY_THRESHOLD);
    }

    let mut emitted = 0u64;
    let mut crash_lost = 0u64;
    let mut crashes = 0u64;
    let mut retro_recorded = 0u64;
    let mut retro_sampled_out = 0u64;
    let mut retro_shed = 0u64;
    let mut retro_crash_lost = 0u64;
    let mut max_ring = 0usize;

    for i in 0..requests {
        let now = (i + 1) * STEP_NS;
        let key = format!("req-{i:05}");
        let mut bag = Baggage::new();
        // Request ingress: stamp the trace id the rings correlate on.
        set_trace(&mut bag, i + 1);
        client.invoke(
            "KvClient.issueRequest",
            &mut bag,
            now,
            &[
                ("client", Value::str("client-0")),
                ("op", Value::str("put")),
                ("key", Value::str(&key)),
            ],
        );
        let bytes = bag.to_bytes();
        let mut remote = Baggage::from_bytes(&bytes);
        // A fixed cadence of latency spikes drives the outlier trigger;
        // bytes > 90 (seven residues mod 97) drives the advice trigger.
        let latency = if i % 29 == 11 {
            4 * RETRO_LATENCY_THRESHOLD
        } else {
            RETRO_LATENCY_THRESHOLD / 100
        };
        shard.invoke(
            "KvShard.execute",
            &mut remote,
            now,
            &[
                ("shard", Value::U64(i % 4)),
                ("op", Value::str("put")),
                ("bytes", Value::I64((i % 97) as i64 + 1)),
                ("latency_ns", Value::U64(latency)),
            ],
        );
        max_ring = max_ring
            .max(shard.retro_buffered())
            .max(client.retro_buffered());

        if (i + 1) % FLUSH_EVERY == 0 {
            let step = (i + 1) / FLUSH_EVERY;
            if chaos.plan().should_crash(shard_src, step) {
                crashes += 1;
                // The fault site asks for hindsight, then the process dies
                // before the report drains: those events are crash loss.
                shard.trigger_retro(TriggerKind::Fault, 0, now);
                for q in queries {
                    emitted += shard.emitted_for(q);
                }
                for report in shard.flush(now) {
                    crash_lost += report.tuples;
                }
                let rc = shard.retro_counters();
                retro_recorded += rc.recorded;
                retro_sampled_out += rc.sampled_out;
                retro_shed += rc.shed;
                retro_crash_lost += shard.retro_unflushed();
                chaos.inner_mut().unregister(&shard);
                let fresh = Arc::new(Agent::new(shard_info()));
                // The epoch re-sync re-arms retro (the trigger query is
                // still installed); ring tuning is harness config and is
                // re-applied the way a supervisor would.
                fresh.sync(&fe.installed());
                fresh.set_retro_cap(RETRO_RING_CAP);
                fresh.set_retro_latency_threshold(RETRO_LATENCY_THRESHOLD);
                chaos.inner_mut().register(Arc::clone(&fresh));
                shard = fresh;
            }
            chaos.pump_into(now, &mut fe);
        }
    }

    chaos.settle_into((requests + 2) * STEP_NS, &mut fe);
    for q in queries {
        emitted += shard.emitted_for(q) + client.emitted_for(q);
    }
    // Graceful end-of-life for the surviving incarnations: everything
    // deliverable has drained through `settle_into`; sealing accounts the
    // leftovers (unclaimed ring events become `sampled_out`).
    for a in [&shard, &client] {
        let rc = a.retro_seal();
        retro_recorded += rc.recorded;
        retro_sampled_out += rc.sampled_out;
        retro_shed += rc.shed;
    }

    let gres = fe.results(&grouped);
    let tres = fe.results(&trigger);
    RetroOutcome {
        rows: gres.rows(),
        loss: (gres.loss(), tres.loss()),
        retro: fe.retro_loss(),
        chaos: chaos.stats(),
        emitted,
        crash_lost,
        crashes,
        retro_recorded,
        retro_sampled_out,
        retro_shed,
        retro_crash_lost,
        advice_reports: tres.retro().len(),
        orphan_reports: fe.retro_orphans().len(),
        max_ring,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_is_exact() {
        let out = run_kv(0, FaultConfig::off(), 128);
        assert_eq!(out.rows.len(), 128);
        assert_eq!(out.emitted, 128);
        assert_eq!(out.loss.tuples_delivered, 128);
        assert_eq!(out.loss.tuples_dropped, 0);
        assert_eq!(out.loss.reports_missed, 0);
        assert_eq!(out.crashes, 0);
        assert!(out.balanced());
        // COUNT == 1 and SUM(bytes) == the scripted value for each request.
        for (i, row) in out.rows.iter().enumerate() {
            assert_eq!(row.values[0], Value::str(format!("req-{i:05}")));
            assert_eq!(row.values[1], Value::U64(1));
            assert_eq!(row.values[2], Value::I64((i as i64 % 97) + 1));
        }
    }

    #[test]
    fn overload_off_run_is_exact_and_bounded() {
        let out = run_kv_overload(0, FaultConfig::off(), 128);
        assert!(out.balanced(), "identity violated: {out:?}");
        // No storms, no explosions, no crashes: one request per step
        // never reaches a budget rail or a row cap, so the governor is
        // pure observation and the run is exact.
        assert_eq!(out.crashes, 0);
        assert_eq!(out.crash_lost, 0);
        assert_eq!(out.chaos.tuples_dropped, 0);
        assert_eq!(out.trips, 0);
        assert_eq!(out.truncated, 0);
        assert_eq!(out.governor_shed, 0);
        // One grouped + one streaming tuple per request.
        assert_eq!(out.emitted, 256);
        assert_eq!(out.grouped_rows.len(), 128);
        // Buffers drain every flush, so at most one interval's rows are
        // ever resident — far below the cap without a storm.
        assert_eq!(out.max_buffered, FLUSH_EVERY as usize);
        assert_eq!(out.loss.0.tuples_shed, 0);
        assert_eq!(out.loss.0.tuples_delivered, 128);
        assert_eq!(out.loss.1.tuples_shed, 0);
        assert_eq!(out.loss.1.tuples_delivered, 128);
        assert!(out.throttles.0.is_empty() && out.throttles.1.is_empty());
    }

    #[test]
    fn retro_fault_free_run_is_exact() {
        let out = run_kv_retro(0, FaultConfig::off(), 256);
        assert!(out.balanced(), "tuple identity violated: {out:?}");
        assert!(out.retro_balanced(), "retro identity violated: {out:?}");
        assert_eq!(out.crashes, 0);
        assert_eq!(out.retro_crash_lost, 0);
        assert_eq!(out.chaos.retro_events_dropped, 0);
        // Two agents, one recorded raw event each per request.
        assert_eq!(out.retro_recorded, 2 * 256);
        // Both trigger families fired and their reports arrived: advice
        // triggers route to the trigger query, latency outliers are
        // query-unscoped and land in the orphan pool.
        assert!(out.advice_reports > 0, "{out:?}");
        assert!(out.orphan_reports > 0, "{out:?}");
        assert!(out.retro.events_delivered > 0);
        assert_eq!(out.retro.reports_duplicate, 0);
        // Bounded recording: the ring never outgrew its cap, and the
        // overwritten remainder is accounted as sampled_out, not lost.
        assert!(out.max_ring <= RETRO_RING_CAP, "{out:?}");
        assert!(out.retro_sampled_out > 0);
        assert_eq!(
            out.retro_recorded,
            out.retro.events_delivered + out.retro_sampled_out + out.retro_shed
        );
    }

    #[test]
    fn retro_chaotic_run_balances() {
        let out = run_kv_retro(7, FaultConfig::for_seed(7), 256);
        assert!(out.balanced(), "tuple identity violated: {out:?}");
        assert!(out.retro_balanced(), "retro identity violated: {out:?}");
        assert!(out.max_ring <= RETRO_RING_CAP);
    }

    #[test]
    fn chaotic_run_balances_and_is_a_subset() {
        let baseline = run_kv(11, FaultConfig::off(), 256);
        let out = run_kv(11, FaultConfig::for_seed(11), 256);
        assert!(out.balanced(), "accounting identity violated: {out:?}");
        for row in &out.rows {
            assert!(
                baseline.rows.contains(row),
                "row {row:?} not in fault-free baseline"
            );
        }
    }
}
