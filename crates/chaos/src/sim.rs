//! A deterministic, scripted KV-store workload for chaos testing.
//!
//! [`run_kv`] drives the repo's canonical two-process KV scenario — a
//! client packs a request tuple into baggage, a shard executes it and
//! emits — over a [`crate::ChaosBus`]-wrapped `LocalBus`, on a virtual
//! step clock (no wall time anywhere). The shard agent can crash at flush
//! boundaries per the plan's crash schedule; the harness restarts it and
//! re-syncs the installed-query set through [`pivot_core::Agent::sync`],
//! exactly mirroring the live runtime's epoch re-sync after reconnect.
//!
//! Every run returns a [`RunOutcome`] whose accounting identity
//!
//! ```text
//! emitted == loss.tuples_delivered + chaos.tuples_dropped + crash_lost
//! ```
//!
//! must balance exactly: each emitted tuple was either delivered to the
//! frontend, dropped on the report path (and tallied by the injector), or
//! died unflushed in a crash (and tallied by the harness).

use std::sync::Arc;

use pivot_baggage::Baggage;
use pivot_core::{Agent, Bus, Frontend, LocalBus, LossStats, ProcessInfo, ResultRow};
use pivot_model::Value;

use crate::bus::{source_key, ChaosBus, ChaosStats};
use crate::plan::{FaultConfig, FaultPlan};

/// The workload query: per-request execution counts and bytes, joined
/// across the client → shard causal edge (a Q2-shaped query from the
/// paper, grouped by a per-request key so differential runs can be joined
/// on surviving request ids).
pub const KV_QUERY: &str = "From exec In KvShard.execute \
     Join req In First(KvClient.issueRequest) On req -> exec \
     GroupBy req.key \
     Select req.key, COUNT, SUM(exec.bytes)";

/// Virtual nanoseconds between requests.
pub const STEP_NS: u64 = 1_000_000;

/// Requests per flush interval (a flush boundary is also a crash
/// opportunity).
pub const FLUSH_EVERY: u64 = 16;

/// Everything observable about one harness run. Two runs of the same
/// `(seed, config, requests)` must compare equal — the determinism
/// regression test relies on `PartialEq` here.
#[derive(Clone, PartialEq, Debug)]
pub struct RunOutcome {
    /// Final cumulative result rows (sorted by key).
    pub rows: Vec<ResultRow>,
    /// The frontend's per-query loss accounting.
    pub loss: LossStats,
    /// The injector's tallies.
    pub chaos: ChaosStats,
    /// Ground-truth tuples emitted, summed over every shard/client agent
    /// incarnation.
    pub emitted: u64,
    /// Tuples that died unflushed when an agent crashed.
    pub crash_lost: u64,
    /// Agent crash/restart cycles the schedule triggered.
    pub crashes: u64,
}

impl RunOutcome {
    /// Whether the loss-accounting identity balances exactly (see the
    /// module docs).
    pub fn balanced(&self) -> bool {
        self.emitted == self.loss.tuples_delivered + self.chaos.tuples_dropped + self.crash_lost
    }
}

fn shard_info() -> ProcessInfo {
    ProcessInfo {
        host: "kv-server".into(),
        procid: 2,
        procname: "KvShard".into(),
    }
}

/// The fault-schedule source keys of the harness's two processes
/// `(client, shard)` — exposed so tests can fingerprint plans over the
/// exact sources the workload uses.
pub fn kv_sources() -> (u64, u64) {
    (source_key("kv-client", 1), source_key("kv-server", 2))
}

/// Runs `requests` KV operations under the fault schedule `(seed, cfg)`
/// and returns the converged outcome. Deterministic: no wall clock, no
/// stateful RNG, no thread interleaving.
pub fn run_kv(seed: u64, cfg: FaultConfig, requests: u64) -> RunOutcome {
    let plan = FaultPlan::new(seed, cfg);
    let mut fe = Frontend::new();
    fe.define("KvClient.issueRequest", ["client", "op", "key"]);
    fe.define("KvShard.execute", ["shard", "op", "bytes"]);
    let handle = fe.install(KV_QUERY).expect("chaos harness query compiles");
    let qid = handle.id;

    let client = Arc::new(Agent::new(ProcessInfo {
        host: "kv-client".into(),
        procid: 1,
        procname: "KvClient".into(),
    }));
    let mut shard = Arc::new(Agent::new(shard_info()));
    let (_, shard_src) = kv_sources();

    let mut bus = LocalBus::new();
    bus.register(Arc::clone(&client));
    bus.register(Arc::clone(&shard));
    let mut chaos = ChaosBus::new(bus, plan);
    for cmd in fe.drain_commands() {
        Bus::broadcast(&chaos, &cmd);
    }

    let mut emitted = 0u64;
    let mut crash_lost = 0u64;
    let mut crashes = 0u64;

    for i in 0..requests {
        let now = (i + 1) * STEP_NS;
        let key = format!("req-{i:05}");
        let mut bag = Baggage::new();
        client.invoke(
            "KvClient.issueRequest",
            &mut bag,
            now,
            &[
                ("client", Value::str("client-0")),
                ("op", Value::str("put")),
                ("key", Value::str(&key)),
            ],
        );
        // "RPC" to the shard: baggage crosses the process boundary by
        // serialization, as it would on a real wire.
        let bytes = bag.to_bytes();
        let mut remote = Baggage::from_bytes(&bytes);
        shard.invoke(
            "KvShard.execute",
            &mut remote,
            now,
            &[
                ("shard", Value::U64(i % 4)),
                ("op", Value::str("put")),
                ("bytes", Value::I64((i % 97) as i64 + 1)),
            ],
        );

        if (i + 1) % FLUSH_EVERY == 0 {
            let step = (i + 1) / FLUSH_EVERY;
            if chaos.plan().should_crash(shard_src, step) {
                // The shard process dies mid-interval: its cumulative
                // emission counter is the last word of this incarnation,
                // and whatever it had not flushed is lost for good.
                crashes += 1;
                emitted += shard.emitted_for(qid);
                for report in shard.flush(now) {
                    crash_lost += report.tuples;
                }
                chaos.inner_mut().unregister(&shard);
                // Restart: fresh incarnation, same process identity. The
                // replacement re-syncs the full installed-query set from
                // the frontend (the epoch re-sync path).
                let fresh = Arc::new(Agent::new(shard_info()));
                fresh.sync(&fe.installed());
                chaos.inner_mut().register(Arc::clone(&fresh));
                shard = fresh;
            }
            chaos.pump_into(now, &mut fe);
        }
    }

    // Convergence: stop injecting, release held frames, final flush.
    chaos.settle_into((requests + 2) * STEP_NS, &mut fe);
    emitted += shard.emitted_for(qid) + client.emitted_for(qid);

    let res = fe.results(&handle);
    RunOutcome {
        rows: res.rows(),
        loss: res.loss(),
        chaos: chaos.stats(),
        emitted,
        crash_lost,
        crashes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_run_is_exact() {
        let out = run_kv(0, FaultConfig::off(), 128);
        assert_eq!(out.rows.len(), 128);
        assert_eq!(out.emitted, 128);
        assert_eq!(out.loss.tuples_delivered, 128);
        assert_eq!(out.loss.tuples_dropped, 0);
        assert_eq!(out.loss.reports_missed, 0);
        assert_eq!(out.crashes, 0);
        assert!(out.balanced());
        // COUNT == 1 and SUM(bytes) == the scripted value for each request.
        for (i, row) in out.rows.iter().enumerate() {
            assert_eq!(row.values[0], Value::str(format!("req-{i:05}")));
            assert_eq!(row.values[1], Value::U64(1));
            assert_eq!(row.values[2], Value::I64((i as i64 % 97) + 1));
        }
    }

    #[test]
    fn chaotic_run_balances_and_is_a_subset() {
        let baseline = run_kv(11, FaultConfig::off(), 256);
        let out = run_kv(11, FaultConfig::for_seed(11), 256);
        assert!(out.balanced(), "accounting identity violated: {out:?}");
        for row in &out.rows {
            assert!(
                baseline.rows.contains(row),
                "row {row:?} not in fault-free baseline"
            );
        }
    }
}
