//! Loss identity under batched advice flushing.
//!
//! The batched Vm path changes *how* woven advice executes and when the
//! agent's buffers fold — never what is emitted, delivered, dropped, or
//! lost. This sweep re-proves the accounting identity
//!
//! ```text
//! emitted == delivered + chaos.tuples_dropped + crash_lost
//! ```
//!
//! with each request's shard burst driven through `Agent::invoke_batch`,
//! and pins the stronger property that the batched run's *entire
//! converged outcome* — surviving rows, loss books, injector tallies,
//! crash counts — equals the per-event `invoke` run of the identical
//! fault schedule.
//!
//! Reproduce any failure with `CHAOS_SEED=<n> cargo test -p pivot-chaos
//! --test batch_loss`; CI derives fresh seeds from the commit SHA via
//! `CHAOS_SEED_BASE` / `CHAOS_SEEDS`.

use pivot_chaos::sim::run_kv_burst;
use pivot_chaos::FaultConfig;

const REQUESTS: u64 = 192;
/// Shard events per request — comfortably past single-event bursts so
/// the fold scratch and batch arena actually engage.
const BURST: u64 = 5;

fn seed_list() -> Vec<u64> {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        let one = s.parse().expect("CHAOS_SEED must be a u64");
        return vec![one];
    }
    let base: u64 = std::env::var("CHAOS_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xba7c_4000);
    let count: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);
    (0..count).map(|i| base.wrapping_add(i)).collect()
}

#[test]
fn batched_fault_free_baseline_matches_scalar() {
    let scalar = run_kv_burst(0, FaultConfig::off(), REQUESTS, BURST, false);
    let batched = run_kv_burst(0, FaultConfig::off(), REQUESTS, BURST, true);
    assert!(scalar.balanced() && batched.balanced());
    assert_eq!(scalar.emitted, REQUESTS * BURST);
    assert_eq!(scalar, batched, "fault-free outcomes diverge");
}

#[test]
fn batched_sweep_balances_and_matches_scalar() {
    let seeds = seed_list();
    let mut faulty_runs = 0u64;
    for &seed in &seeds {
        let cfg = FaultConfig::for_seed(seed);
        let batched = run_kv_burst(seed, cfg, REQUESTS, BURST, true);
        assert!(
            batched.balanced(),
            "CHAOS_SEED={seed}: batched identity violated: emitted={} delivered={} \
             dropped={} crash_lost={}",
            batched.emitted,
            batched.loss.tuples_delivered,
            batched.chaos.tuples_dropped,
            batched.crash_lost
        );

        let scalar = run_kv_burst(seed, cfg, REQUESTS, BURST, false);
        assert_eq!(
            scalar, batched,
            "CHAOS_SEED={seed}: batched outcome diverges from per-event invoke"
        );
        if batched.chaos.tuples_dropped > 0 || batched.crashes > 0 {
            faulty_runs += 1;
        }
    }
    assert!(
        faulty_runs * 2 > seeds.len() as u64,
        "only {faulty_runs}/{} seeds injected faults — schedule generator is broken",
        seeds.len()
    );
}
