//! Seeded chaos property sweep.
//!
//! Runs the scripted KV workload under a few hundred seed-derived fault
//! mixes and checks the invariants that make monitoring-under-faults
//! *honest* rather than silently wrong:
//!
//! 1. No panic, ever, under any schedule.
//! 2. Differential correctness: every row that survives the faults equals
//!    the fault-free baseline row for the same request id (faults may lose
//!    results, never corrupt them).
//! 3. The loss-accounting identity balances exactly:
//!    `emitted == delivered + dropped_by_injector + lost_in_crashes`.
//! 4. Duplicate suppression and gap detection agree with what the
//!    injector actually did.
//!
//! Reproduce any failure with `CHAOS_SEED=<n> cargo test -p pivot-chaos`;
//! CI derives fresh seeds from the commit SHA via `CHAOS_SEED_BASE` /
//! `CHAOS_SEEDS`.

use pivot_chaos::sim::run_kv;
use pivot_chaos::FaultConfig;

const REQUESTS: u64 = 256;

fn seed_list() -> Vec<u64> {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        let one = s.parse().expect("CHAOS_SEED must be a u64");
        return vec![one];
    }
    let base: u64 = std::env::var("CHAOS_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5eed_0000);
    let count: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    (0..count).map(|i| base.wrapping_add(i)).collect()
}

#[test]
fn chaos_sweep_holds_all_invariants() {
    let baseline = run_kv(0, FaultConfig::off(), REQUESTS);
    assert_eq!(baseline.rows.len(), REQUESTS as usize);
    assert!(baseline.balanced());

    let seeds = seed_list();
    let mut faulty_runs = 0u64;
    for &seed in &seeds {
        let out = run_kv(seed, FaultConfig::for_seed(seed), REQUESTS);

        // (3) Exact tuple conservation.
        assert!(
            out.balanced(),
            "CHAOS_SEED={seed}: accounting identity violated: emitted={} delivered={} \
             injector_dropped={} crash_lost={}",
            out.emitted,
            out.loss.tuples_delivered,
            out.chaos.tuples_dropped,
            out.crash_lost,
        );

        // (2) Surviving rows match the fault-free run, joined on request id.
        for row in &out.rows {
            let matching = baseline.rows.iter().find(|b| b.values[0] == row.values[0]);
            assert_eq!(
                matching,
                Some(row),
                "CHAOS_SEED={seed}: surviving row diverges from the fault-free baseline"
            );
        }

        // (4a) Every injected duplicate — and nothing else — is suppressed.
        assert_eq!(
            out.loss.reports_duplicate, out.chaos.reports_duplicated,
            "CHAOS_SEED={seed}: duplicate suppression disagrees with the injector"
        );
        // (4b) A sequence gap can only come from a frame the injector
        // destroyed (delays are all released before the run converges).
        assert!(
            out.loss.reports_missed <= out.chaos.reports_dropped,
            "CHAOS_SEED={seed}: {} reports missed but only {} dropped",
            out.loss.reports_missed,
            out.chaos.reports_dropped,
        );
        // (4c) Degradation flags fire iff something was actually lost.
        if out.chaos.reports_dropped == 0 && out.crashes == 0 {
            assert_eq!(
                out.loss.tuples_delivered, out.emitted,
                "CHAOS_SEED={seed}: lossless schedule lost tuples"
            );
        }
        if out.loss.is_degraded() {
            assert!(
                out.chaos.reports_dropped > 0 || out.crashes > 0,
                "CHAOS_SEED={seed}: degraded without any destructive fault"
            );
        }

        if out.chaos.reports_dropped + out.chaos.reports_delayed + out.crashes > 0 {
            faulty_runs += 1;
        }
    }
    // The sweep must actually exercise faults, not vacuously pass.
    assert!(
        faulty_runs * 2 > seeds.len() as u64,
        "only {faulty_runs}/{} seeds injected faults — schedule generator is broken",
        seeds.len()
    );
}

#[test]
fn heavy_loss_still_balances() {
    // A deliberately brutal mix: 40% drops, 20% dups, long delays, crashes.
    let cfg = FaultConfig {
        drop_per_mille: 400,
        dup_per_mille: 200,
        delay_per_mille: 200,
        delay_ns: 80_000_000,
        crash_per_mille: 150,
        ..FaultConfig::for_seed(99)
    };
    let mut detected = 0;
    for seed in 0..32u64 {
        let out = run_kv(seed, cfg, REQUESTS);
        assert!(out.balanced(), "CHAOS_SEED={seed}: {out:?}");
        detected += u64::from(out.loss.is_degraded());
    }
    // The frontend's loss view is a lower bound: an incarnation whose
    // *trailing* reports are all dropped leaves no observable gap. Under
    // 40% drops that stays rare — detection must be the overwhelming norm.
    assert!(
        detected >= 24,
        "only {detected}/32 heavy-loss runs detected"
    );
}
