//! Determinism regression: the same seed must reproduce the same faults
//! and the same final state, byte for byte, run after run.
//!
//! This is the property that makes every other chaos failure debuggable:
//! a CI failure log prints `CHAOS_SEED=<n>` and that seed replays the
//! identical schedule locally. The test runs everything twice in one
//! process — so anything leaking global state (the process-wide
//! incarnation counter, interning tables, thread-local VM scratch) into
//! the schedule or the outcome shows up as a diff here.

use pivot_chaos::sim::{kv_sources, run_kv};
use pivot_chaos::{FaultConfig, FaultPlan};

fn seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        return vec![s.parse().expect("CHAOS_SEED must be a u64")];
    }
    (0..24u64).map(|i| 0xd1ce_0000 + i * 7).collect()
}

#[test]
fn same_seed_identical_fault_schedule() {
    let (client, shard) = kv_sources();
    for seed in seeds() {
        let a = FaultPlan::from_seed(seed).fingerprint(&[client, shard], &[1], 128);
        let b = FaultPlan::from_seed(seed).fingerprint(&[client, shard], &[1], 128);
        assert_eq!(
            a, b,
            "CHAOS_SEED={seed}: two plans from one seed produced different schedules"
        );
        assert!(!a.is_empty());
    }
}

#[test]
fn same_seed_identical_outcome() {
    for seed in seeds() {
        let cfg = FaultConfig::for_seed(seed);
        let first = run_kv(seed, cfg, 256);
        let second = run_kv(seed, cfg, 256);
        assert_eq!(
            first, second,
            "CHAOS_SEED={seed}: same seed, different outcome — determinism regression"
        );
    }
}

#[test]
fn different_seeds_diverge() {
    // Sanity that the equality above is not vacuous: some pair of seeds
    // must produce different outcomes.
    let outs: Vec<_> = (0..8u64)
        .map(|s| run_kv(s, FaultConfig::for_seed(s), 256))
        .collect();
    assert!(
        outs.windows(2).any(|w| w[0] != w[1]),
        "eight different seeds produced identical outcomes"
    );
}
