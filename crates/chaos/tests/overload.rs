//! Seeded overload sweep: the governor under storms and explosions.
//!
//! Runs the overload KV workload — tracepoint storms, group-key
//! explosions, tight explicit budgets, small row caps, plus the usual
//! drop/dup/crash chaos — under seed-derived schedules and checks the
//! properties that make overload protection *honest*:
//!
//! 1. No panic, ever, under any schedule.
//! 2. The extended loss identity balances exactly:
//!    `emitted == delivered + dropped_by_injector + crash_lost +
//!    governor_shed` — shedding is accounted, never silent.
//! 3. Bounded buffering: no per-query row buffer ever exceeds its cap,
//!    no matter how hard the storm blows.
//! 4. The frontend's view of shedding, truncation, and throttling is a
//!    lower bound on the agents' ground truth (chaos can hide loss
//!    reports, never invent them).
//! 5. The whole thing is deterministic: replaying a seed reproduces the
//!    outcome structurally, trip sequence and all.
//!
//! Reproduce any failure with `CHAOS_SEED=<n> cargo test -p pivot-chaos`;
//! CI derives fresh seeds from the commit SHA via `CHAOS_SEED_BASE` /
//! `CHAOS_SEEDS`.

use pivot_chaos::sim::{run_kv_overload, OVERLOAD_ROW_CAP};
use pivot_chaos::FaultConfig;

/// Fewer steps than the plain chaos sweep: storm and explosion steps
/// multiply each one into dozens-to-hundreds of invocations.
const REQUESTS: u64 = 96;

fn seed_list() -> Vec<u64> {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        let one = s.parse().expect("CHAOS_SEED must be a u64");
        return vec![one];
    }
    let base: u64 = std::env::var("CHAOS_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x5eed_0000);
    let count: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    (0..count).map(|i| base.wrapping_add(i)).collect()
}

#[test]
fn overload_sweep_balances_and_stays_bounded() {
    let seeds = seed_list();
    let mut tripped_runs = 0u64;
    let mut shed_runs = 0u64;
    let mut truncated_runs = 0u64;
    for &seed in &seeds {
        let out = run_kv_overload(seed, FaultConfig::overload_for_seed(seed), REQUESTS);

        // (2) Exact tuple conservation, shedding included.
        assert!(
            out.balanced(),
            "CHAOS_SEED={seed}: extended identity violated: emitted={} delivered=({}, {}) \
             injector_dropped={} crash_lost={} governor_shed={}",
            out.emitted,
            out.loss.0.tuples_delivered,
            out.loss.1.tuples_delivered,
            out.chaos.tuples_dropped,
            out.crash_lost,
            out.governor_shed,
        );

        // (3) Bounded buffering under arbitrary storm pressure.
        assert!(
            out.max_buffered <= OVERLOAD_ROW_CAP,
            "CHAOS_SEED={seed}: buffer grew to {} rows past the {OVERLOAD_ROW_CAP}-row cap",
            out.max_buffered,
        );

        // (4) Frontend-visible tallies never exceed agent ground truth.
        let fe_shed = out.loss.0.tuples_shed + out.loss.1.tuples_shed;
        assert!(
            fe_shed <= out.governor_shed,
            "CHAOS_SEED={seed}: frontend saw {fe_shed} shed tuples, agents shed {}",
            out.governor_shed,
        );
        let fe_truncated = out.loss.0.tuples_truncated + out.loss.1.tuples_truncated;
        assert!(
            fe_truncated <= out.truncated,
            "CHAOS_SEED={seed}: frontend saw {fe_truncated} truncations, agents count {}",
            out.truncated,
        );
        let fe_throttles = (out.throttles.0.len() + out.throttles.1.len()) as u64;
        assert!(
            fe_throttles <= out.trips,
            "CHAOS_SEED={seed}: {fe_throttles} throttle frames arrived for {} trips",
            out.trips,
        );
        // A throttle frame can only exist if the breaker actually tripped.
        if out.trips == 0 {
            assert!(out.throttles.0.is_empty() && out.throttles.1.is_empty());
        }

        tripped_runs += u64::from(out.trips > 0);
        shed_runs += u64::from(out.governor_shed > 0);
        truncated_runs += u64::from(out.truncated > 0);
    }

    // (anti-vacuity) The schedules must actually overload: storms wide
    // enough to truncate, explosions wide enough to shed and trip, on
    // the clear majority of seeds — else the generator regressed.
    let n = seeds.len() as u64;
    assert!(
        tripped_runs * 2 > n,
        "only {tripped_runs}/{n} seeds tripped a breaker"
    );
    assert!(
        shed_runs * 2 > n,
        "only {shed_runs}/{n} seeds shed at a row cap"
    );
    assert!(
        truncated_runs * 2 > n,
        "only {truncated_runs}/{n} seeds hit the PackMode::All hard cap"
    );
}

#[test]
fn overload_replay_is_deterministic() {
    // (5) Byte-for-byte replay, including the trip/re-arm sequence and
    // every loss tally, across a handful of schedules.
    for &seed in seed_list().iter().take(6) {
        let a = run_kv_overload(seed, FaultConfig::overload_for_seed(seed), REQUESTS);
        let b = run_kv_overload(seed, FaultConfig::overload_for_seed(seed), REQUESTS);
        assert_eq!(a, b, "CHAOS_SEED={seed}: replay diverged");
    }
}
