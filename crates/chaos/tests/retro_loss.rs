//! Seeded chaos sweep for the retroactive-tracing path.
//!
//! Runs the scripted KV workload with hindsight recording on — a
//! `Trigger`-bearing query woven on the shard, a latency-outlier
//! threshold armed, and a fault-site trigger fired at every scheduled
//! crash — under a few hundred seed-derived fault mixes, and checks that
//! hindsight data stays as honest as the report path it rides:
//!
//! 1. No panic, ever, under any schedule.
//! 2. The extended identity balances *exactly*, crash and partition
//!    included: every raw event recorded into any ring is delivered,
//!    dropped-by-injector, sampled out of the ring, shed from a pending
//!    queue, or crash-lost — with no slack term.
//! 3. The ordinary tuple identity still balances with retro on: the
//!    hindsight path must not perturb report accounting.
//! 4. Frontend retro dedup agrees with what the injector duplicated, and
//!    accepted reports equal exactly the frames the injector let through.
//! 5. Rings stay bounded: occupancy never exceeds the configured cap.
//!
//! Reproduce any failure with `CHAOS_SEED=<n> cargo test -p pivot-chaos
//! --test retro_loss`; CI derives fresh seeds from the commit SHA via
//! `CHAOS_SEED_BASE` / `CHAOS_SEEDS`.

use pivot_chaos::sim::{run_kv_retro, RETRO_RING_CAP};
use pivot_chaos::FaultConfig;

const REQUESTS: u64 = 256;

fn seed_list() -> Vec<u64> {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        let one = s.parse().expect("CHAOS_SEED must be a u64");
        return vec![one];
    }
    let base: u64 = std::env::var("CHAOS_SEED_BASE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0x6e1d_0000);
    let count: u64 = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);
    (0..count).map(|i| base.wrapping_add(i)).collect()
}

#[test]
fn retro_sweep_identity_is_exact() {
    let baseline = run_kv_retro(0, FaultConfig::off(), REQUESTS);
    assert!(baseline.balanced() && baseline.retro_balanced());

    let seeds = seed_list();
    let mut faulty_runs = 0u64;
    let mut crashed_runs = 0u64;
    let mut retro_faulted_runs = 0u64;
    let mut retro_crash_lost_runs = 0u64;
    for &seed in &seeds {
        let out = run_kv_retro(seed, FaultConfig::for_seed(seed), REQUESTS);

        // (2) Exact event conservation across the hindsight path.
        assert!(
            out.retro_balanced(),
            "CHAOS_SEED={seed}: retro identity violated: recorded={} delivered={} \
             injector_dropped={} sampled_out={} shed={} crash_lost={}",
            out.retro_recorded,
            out.retro.events_delivered,
            out.chaos.retro_events_dropped,
            out.retro_sampled_out,
            out.retro_shed,
            out.retro_crash_lost,
        );

        // (3) The ordinary tuple identity survives retro being on.
        assert!(
            out.balanced(),
            "CHAOS_SEED={seed}: tuple identity violated with retro on: {out:?}"
        );

        // (4) Cross-ledger agreement, frame by frame: the frontend
        // suppressed exactly the duplicates the injector created, and
        // accepted exactly the frames the injector did not destroy.
        assert_eq!(
            out.retro.reports_duplicate, out.chaos.retro_duplicated,
            "CHAOS_SEED={seed}: retro dedup disagrees with the injector"
        );
        assert_eq!(
            out.retro.reports_accepted,
            out.chaos.retro_seen - out.chaos.retro_dropped,
            "CHAOS_SEED={seed}: accepted retro reports != frames the injector let through"
        );

        // (5) Bounded recording, whatever the schedule does.
        assert!(
            out.max_ring <= RETRO_RING_CAP,
            "CHAOS_SEED={seed}: ring occupancy {} exceeded cap {RETRO_RING_CAP}",
            out.max_ring
        );

        // Surviving grouped rows still match the fault-free baseline:
        // hindsight machinery must not corrupt ordinary results.
        for row in &out.rows {
            let matching = baseline.rows.iter().find(|b| b.values[0] == row.values[0]);
            assert_eq!(
                matching,
                Some(row),
                "CHAOS_SEED={seed}: surviving row diverges from the fault-free baseline"
            );
        }

        faulty_runs +=
            u64::from(out.chaos.reports_dropped + out.chaos.reports_delayed + out.crashes > 0);
        crashed_runs += u64::from(out.crashes > 0);
        retro_faulted_runs += u64::from(
            out.chaos.retro_dropped + out.chaos.retro_delayed + out.chaos.retro_duplicated > 0,
        );
        retro_crash_lost_runs += u64::from(out.retro_crash_lost > 0);
    }
    // The sweep must actually exercise the interesting regimes, not
    // vacuously pass: most seeds inject faults, and a healthy share hit
    // the retro path mid-transport and mid-crash specifically.
    assert!(
        faulty_runs * 2 > seeds.len() as u64,
        "only {faulty_runs}/{} seeds injected faults — schedule generator is broken",
        seeds.len()
    );
    if seeds.len() >= 100 {
        assert!(
            retro_faulted_runs >= 20,
            "only {retro_faulted_runs}/{} seeds faulted retro frames in transit",
            seeds.len()
        );
        assert!(
            crashed_runs >= 20 && retro_crash_lost_runs >= 10,
            "crash coverage too thin: {crashed_runs} crashed, \
             {retro_crash_lost_runs} lost retro events in crashes"
        );
    }
}

#[test]
fn retro_heavy_loss_still_balances() {
    // A deliberately brutal mix aimed at the retro path's worst cases:
    // heavy drops and duplicates, long partition windows (flushes land
    // mid-partition and are held), and frequent crashes (triggered
    // reports die pending).
    let cfg = FaultConfig {
        drop_per_mille: 400,
        dup_per_mille: 200,
        delay_per_mille: 200,
        delay_ns: 80_000_000,
        partition_per_mille: 300,
        partition_window_ns: 40_000_000,
        crash_per_mille: 150,
        ..FaultConfig::for_seed(99)
    };
    let mut retro_dropped_somewhere = false;
    let mut retro_crash_lost_somewhere = false;
    for seed in 0..32u64 {
        let out = run_kv_retro(seed, cfg, REQUESTS);
        assert!(out.balanced(), "CHAOS_SEED={seed}: {out:?}");
        assert!(out.retro_balanced(), "CHAOS_SEED={seed}: {out:?}");
        retro_dropped_somewhere |= out.chaos.retro_events_dropped > 0;
        retro_crash_lost_somewhere |= out.retro_crash_lost > 0;
    }
    assert!(
        retro_dropped_somewhere && retro_crash_lost_somewhere,
        "heavy-loss mix never exercised retro transport drops or retro crash loss"
    );
}

#[test]
fn retro_same_seed_identical_outcome() {
    // Determinism replay: the entire RetroOutcome — rows, both loss
    // ledgers, the hindsight ground truth, report routing counts —
    // must be byte-identical across two runs of the same seed.
    for seed in (0..16u64).map(|i| 0xbeef_0000 + i * 13) {
        let cfg = FaultConfig::for_seed(seed);
        let first = run_kv_retro(seed, cfg, REQUESTS);
        let second = run_kv_retro(seed, cfg, REQUESTS);
        assert_eq!(
            first, second,
            "CHAOS_SEED={seed}: same seed, different retro outcome — determinism regression"
        );
    }
}

#[test]
fn retro_different_seeds_diverge() {
    // Sanity that the replay equality is not vacuous.
    let outs: Vec<_> = (0..8u64)
        .map(|s| run_kv_retro(s, FaultConfig::for_seed(s), REQUESTS))
        .collect();
    assert!(
        outs.windows(2).any(|w| w[0] != w[1]),
        "eight different seeds produced identical retro outcomes"
    );
}
