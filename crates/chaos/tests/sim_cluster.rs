//! `ChaosBus` composes with the simulated-cluster transport: the injector
//! only touches the `Bus` trait, so an `Rc<Cluster>` wraps exactly like a
//! `LocalBus`.

use std::rc::Rc;

use pivot_baggage::Baggage;
use pivot_chaos::{ChaosBus, FaultConfig, FaultPlan};
use pivot_core::Bus;
use pivot_hadoop::{Cluster, ClusterConfig};
use pivot_model::Value;

#[test]
fn chaos_wraps_the_simulated_cluster() {
    let cluster = Cluster::new(ClusterConfig::small(7));
    let host = Rc::clone(&cluster.workers()[0]);
    let agent = cluster.new_agent(&host, "DataNode");

    let handle = cluster
        .frontend
        .borrow_mut()
        .install_named(
            "QC",
            "From incr In DataNodeMetrics.incrBytesRead
             GroupBy incr.host
             Select incr.host, SUM(incr.delta)",
        )
        .expect("query installs");

    // Route the install through a fault-free chaos wrapper around the
    // cluster itself, then pump reports back out through the same wrapper.
    let chaos = ChaosBus::new(Rc::clone(&cluster), FaultPlan::new(7, FaultConfig::off()));
    let cmds = cluster.frontend.borrow_mut().drain_commands();
    for cmd in &cmds {
        Bus::broadcast(&chaos, cmd);
    }

    let mut bag = Baggage::new();
    agent.invoke(
        "DataNodeMetrics.incrBytesRead",
        &mut bag,
        10,
        &[("delta", Value::I64(7))],
    );
    chaos.pump_into(1_000_000_000, &mut cluster.frontend.borrow_mut());

    let fe = cluster.frontend.borrow();
    let res = fe.results(&handle);
    let rows = res.rows();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].values[1], Value::I64(7));
    assert_eq!(res.loss().tuples_delivered, 1);
    assert!(!res.loss().is_degraded());
}
