//! The per-process Pivot Tracing agent.
//!
//! One [`Agent`] lives in every Pivot Tracing-enabled process (paper §5).
//! It owns the process's weave [`Registry`], runs woven advice on every
//! tracepoint invocation, accumulates emitted tuples with process-local
//! aggregation, and publishes partial query results at a configurable
//! interval (by default one second of simulated time).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use pivot_baggage::{Baggage, QueryId};
use pivot_model::{AggState, GroupKey, Tuple, Value};
use pivot_query::{CompiledQuery, OutputSpec};

use crate::bus::{Command, Report, ReportRows};
use crate::interp::{self, EmitRows};
use crate::tracepoint::{Registry, DEFAULT_EXPORTS};

/// Identity of the process an agent runs in.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProcessInfo {
    /// Host name, e.g. `"host-A"`.
    pub host: String,
    /// Process id.
    pub procid: u64,
    /// Process name, e.g. `"DataNode"` or `"MRsort10g"`.
    pub procname: String,
}

/// Cumulative counters (drives the paper's overhead ablations).
#[derive(Clone, Copy, Default, Debug)]
pub struct AgentStats {
    /// Tracepoint invocations that found no woven advice.
    pub idle_invocations: u64,
    /// Tracepoint invocations that ran at least one advice program.
    pub advised_invocations: u64,
    /// Tuples packed into baggage by this process.
    pub tuples_packed: u64,
    /// Tuples emitted to the local aggregator.
    pub tuples_emitted: u64,
    /// Result rows sent to the frontend (after local aggregation).
    pub rows_reported: u64,
}

/// Per-query local aggregation buffer.
enum Buffer {
    Grouped {
        spec: OutputSpec,
        groups: HashMap<GroupKey, Vec<AggState>>,
    },
    Streaming {
        rows: Vec<Tuple>,
    },
}

/// The per-process agent.
pub struct Agent {
    info: ProcessInfo,
    registry: Registry,
    buffers: Mutex<HashMap<QueryId, Buffer>>,
    stats: Mutex<AgentStats>,
    enabled: std::sync::atomic::AtomicBool,
}

impl Agent {
    /// Creates an agent for the given process identity.
    pub fn new(info: ProcessInfo) -> Agent {
        Agent {
            info,
            registry: Registry::new(),
            buffers: Mutex::new(HashMap::new()),
            stats: Mutex::new(AgentStats::default()),
            enabled: std::sync::atomic::AtomicBool::new(true),
        }
    }

    /// Turns the whole agent on or off. A disabled agent's
    /// [`Agent::invoke`] returns before even consulting the registry —
    /// the "unmodified system" baseline of the paper's Table 5.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
    }

    /// Returns the process identity.
    pub fn info(&self) -> &ProcessInfo {
        &self.info
    }

    /// Returns the weave registry (exposed for tests and benches).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Returns a snapshot of the counters.
    pub fn stats(&self) -> AgentStats {
        *self.stats.lock()
    }

    /// Applies a frontend command (weave / unweave).
    pub fn apply(&self, cmd: &Command) {
        match cmd {
            Command::Install(compiled) => self.install(compiled),
            Command::Uninstall(id) => self.registry.unweave(*id),
        }
    }

    /// Weaves every advice program of `compiled` into the local registry.
    pub fn install(&self, compiled: &CompiledQuery) {
        for program in &compiled.advice {
            self.registry.weave(compiled.id, Arc::new(program.clone()));
        }
    }

    /// Invokes `tracepoint` with `exports`, running any woven advice.
    ///
    /// `now` is the current time in nanoseconds (virtual time under the
    /// simulator); it supplies the default `timestamp` export. Returns
    /// immediately — with one atomic load — when nothing is woven.
    pub fn invoke(
        &self,
        tracepoint: &str,
        baggage: &mut Baggage,
        now: u64,
        exports: &[(&str, Value)],
    ) {
        if !self.enabled.load(std::sync::atomic::Ordering::Relaxed) {
            return;
        }
        let Some(list) = self.registry.lookup(tracepoint) else {
            if !self.registry.is_idle() {
                self.stats.lock().idle_invocations += 1;
            }
            return;
        };
        let mut full: Vec<(&str, Value)> =
            Vec::with_capacity(exports.len() + DEFAULT_EXPORTS.len());
        full.push(("host", Value::str(&self.info.host)));
        full.push(("timestamp", Value::U64(now)));
        full.push(("procid", Value::U64(self.info.procid)));
        full.push(("procname", Value::str(&self.info.procname)));
        full.push(("tracepoint", Value::str(tracepoint)));
        full.extend(exports.iter().cloned());

        let mut stats = InvokeOutcome::default();
        for woven in list.iter() {
            let (emits, s) = interp::run(&woven.program, &full, baggage);
            stats.packed += s.packed as u64;
            stats.emitted += s.emitted as u64;
            for e in emits {
                self.absorb(e);
            }
        }
        let mut st = self.stats.lock();
        st.advised_invocations += 1;
        st.tuples_packed += stats.packed;
        st.tuples_emitted += stats.emitted;
    }

    /// Folds one emit batch into the local aggregation buffers.
    fn absorb(&self, e: interp::Emitted) {
        let rows = interp::emit_rows(&e);
        let mut buffers = self.buffers.lock();
        let buf = buffers.entry(e.query).or_insert_with(|| {
            if e.spec.streaming {
                Buffer::Streaming { rows: Vec::new() }
            } else {
                Buffer::Grouped {
                    spec: e.spec.clone(),
                    groups: HashMap::new(),
                }
            }
        });
        match (buf, rows) {
            (Buffer::Streaming { rows }, EmitRows::Raw(mut new)) => {
                rows.append(&mut new);
            }
            (Buffer::Grouped { spec, groups }, EmitRows::Grouped(new)) => {
                for (key, args) in new {
                    let states = groups
                        .entry(key)
                        .or_insert_with(|| spec.aggs.iter().map(|(f, _)| f.init()).collect());
                    for (st, arg) in states.iter_mut().zip(&args) {
                        st.update(arg);
                    }
                }
            }
            _ => {}
        }
    }

    /// Publishes and clears the local partial results (paper Figure 2, Æ).
    ///
    /// The embedding system calls this once per reporting interval; the
    /// returned reports are addressed to the frontend.
    pub fn flush(&self, now: u64) -> Vec<Report> {
        let mut buffers = self.buffers.lock();
        let mut out = Vec::new();
        for (query, buf) in buffers.drain() {
            let rows = match buf {
                Buffer::Streaming { rows } => {
                    if rows.is_empty() {
                        continue;
                    }
                    ReportRows::Raw(rows)
                }
                Buffer::Grouped { groups, .. } => {
                    if groups.is_empty() {
                        continue;
                    }
                    ReportRows::Grouped(groups.into_iter().collect())
                }
            };
            out.push(Report {
                query,
                host: self.info.host.clone(),
                procname: self.info.procname.clone(),
                time: now,
                rows,
            });
        }
        let mut st = self.stats.lock();
        for r in &out {
            st.rows_reported += r.rows.len() as u64;
        }
        out
    }
}

#[derive(Default)]
struct InvokeOutcome {
    packed: u64,
    emitted: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_baggage::PackMode;
    use pivot_model::{AggFunc, Expr, Schema};
    use pivot_query::advice::ColumnRef;
    use pivot_query::{AdviceOp, AdviceProgram};

    fn agent() -> Agent {
        Agent::new(ProcessInfo {
            host: "host-A".into(),
            procid: 7,
            procname: "DataNode".into(),
        })
    }

    fn q2_like() -> CompiledQuery {
        let slot = QueryId(256 + 1);
        let spec = OutputSpec {
            key_exprs: vec![Expr::field("cl.procName")],
            key_names: vec!["cl.procName".into()],
            aggs: vec![(AggFunc::Sum, Expr::field("incr.delta"))],
            agg_names: vec!["SUM(incr.delta)".into()],
            columns: vec![ColumnRef::Key(0), ColumnRef::Agg(0)],
            streaming: false,
        };
        CompiledQuery {
            id: QueryId(1),
            name: "q2".into(),
            text: String::new(),
            output: spec.clone(),
            advice: vec![
                AdviceProgram {
                    tracepoints: vec!["ClientProtocols".into()],
                    ops: vec![
                        AdviceOp::Observe {
                            alias: "cl".into(),
                            fields: vec!["procname".into()],
                        },
                        AdviceOp::Pack {
                            slot,
                            mode: PackMode::First(1),
                            exprs: vec![Expr::field("cl.procname")],
                            names: vec!["cl.procName".into()],
                        },
                    ],
                },
                AdviceProgram {
                    tracepoints: vec!["DataNodeMetrics.incrBytesRead".into()],
                    ops: vec![
                        AdviceOp::Observe {
                            alias: "incr".into(),
                            fields: vec!["delta".into()],
                        },
                        AdviceOp::Unpack {
                            slot,
                            schema: Schema::new(["cl.procName"]),
                            post_filter: None,
                        },
                        AdviceOp::Emit {
                            query: QueryId(1),
                            spec,
                        },
                    ],
                },
            ],
        }
    }

    #[test]
    fn unwoven_invocation_is_cheap_noop() {
        let a = agent();
        let mut bag = Baggage::new();
        a.invoke("anything", &mut bag, 0, &[]);
        assert_eq!(a.stats().advised_invocations, 0);
        assert!(bag.is_empty());
    }

    #[test]
    fn end_to_end_q2_through_one_agent() {
        let a = agent();
        let q = q2_like();
        a.apply(&Command::Install(Arc::new(q)));

        // A client invocation packs the process name...
        let mut bag = Baggage::new();
        a.invoke("ClientProtocols", &mut bag, 10, &[]);
        // ...then two DataNode reads emit deltas joined to it.
        a.invoke(
            "DataNodeMetrics.incrBytesRead",
            &mut bag,
            20,
            &[("delta", Value::I64(100))],
        );
        a.invoke(
            "DataNodeMetrics.incrBytesRead",
            &mut bag,
            30,
            &[("delta", Value::I64(50))],
        );

        let reports = a.flush(1_000_000_000);
        assert_eq!(reports.len(), 1);
        match &reports[0].rows {
            ReportRows::Grouped(rows) => {
                assert_eq!(rows.len(), 1);
                let (key, states) = &rows[0];
                assert_eq!(key.0.get(0), &Value::str("DataNode"));
                assert_eq!(states[0].finish(), Value::I64(150));
            }
            _ => panic!("expected grouped"),
        }
        // Local aggregation: two emits became one reported row.
        assert_eq!(a.stats().tuples_emitted, 2);
        assert_eq!(a.stats().rows_reported, 1);

        // Flush drains.
        assert!(a.flush(2_000_000_000).is_empty());
    }

    #[test]
    fn uninstall_stops_advice() {
        let a = agent();
        let q = q2_like();
        a.install(&q);
        a.apply(&Command::Uninstall(QueryId(1)));
        let mut bag = Baggage::new();
        a.invoke("ClientProtocols", &mut bag, 0, &[]);
        assert!(bag.is_empty());
        assert!(a.registry().is_idle());
    }
}
