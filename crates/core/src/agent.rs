//! The per-process Pivot Tracing agent.
//!
//! One [`Agent`] lives in every Pivot Tracing-enabled process (paper §5).
//! It owns the process's weave [`Registry`], runs woven advice bytecode on
//! every tracepoint invocation, accumulates emitted tuples with
//! process-local aggregation, and publishes partial query results at a
//! configurable interval (by default one second of simulated time).
//!
//! # Hot path
//!
//! [`Agent::invoke`] executes lowered [`AdviceByteCode`] through a
//! thread-local [`Vm`] whose scratch buffers persist across invocations, so
//! a woven event allocates only for the data it actually produces. Emitted
//! rows stream straight into the aggregation buffers through an
//! [`EmitSink`] — no intermediate `Emitted` batch, no per-event clone of
//! the output spec or schema. The default exports `host` and `procname`
//! are interned once at construction and the `tracepoint` name once at
//! weave time.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};
use pivot_baggage::{Baggage, QueryId};
use pivot_model::{intern, AggState, GroupKey, Tuple, Value};
use pivot_query::{AdviceByteCode, CompiledCode, EmitSink, OutputSpec, Vm};

use crate::bus::{Command, Report, ReportRows};
use crate::tracepoint::{Registry, DEFAULT_EXPORTS};

/// Identity of the process an agent runs in.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProcessInfo {
    /// Host name, e.g. `"host-A"`.
    pub host: String,
    /// Process id.
    pub procid: u64,
    /// Process name, e.g. `"DataNode"` or `"MRsort10g"`.
    pub procname: String,
}

/// Cumulative counters (drives the paper's overhead ablations).
#[derive(Clone, Copy, Default, Debug)]
pub struct AgentStats {
    /// Tracepoint invocations that found no woven advice.
    pub idle_invocations: u64,
    /// Tracepoint invocations that ran at least one advice program.
    pub advised_invocations: u64,
    /// Tuples packed into baggage by this process.
    pub tuples_packed: u64,
    /// Tuples emitted to the local aggregator.
    pub tuples_emitted: u64,
    /// Result rows sent to the frontend (after local aggregation).
    pub rows_reported: u64,
}

/// Rows accumulated for one query between flushes.
enum Rows {
    Grouped(HashMap<GroupKey, Vec<AggState>>),
    Streaming(Vec<Tuple>),
}

/// Per-query local aggregation buffer.
///
/// The buffer outlives individual flushes: `seq` and `emitted_cum` are the
/// loss-accounting envelope every [`Report`] carries, so they must keep
/// counting across reporting intervals (a flush only takes the rows and
/// the since-flush tuple delta).
struct Buffer {
    spec: Arc<OutputSpec>,
    rows: Rows,
    /// Next flush sequence number for this query.
    seq: u64,
    /// Tuples folded in since the last flush.
    tuples_since_flush: u64,
    /// Tuples emitted for this query over the agent's lifetime.
    emitted_cum: u64,
}

impl Buffer {
    fn new(spec: &Arc<OutputSpec>) -> Buffer {
        let rows = if spec.streaming {
            Rows::Streaming(Vec::new())
        } else {
            Rows::Grouped(HashMap::new())
        };
        Buffer {
            spec: Arc::clone(spec),
            rows,
            seq: 0,
            tuples_since_flush: 0,
            emitted_cum: 0,
        }
    }
}

thread_local! {
    /// Reusable VM scratch (registers, tuple buffers) shared by every agent
    /// on this thread. Advice runs to completion within one `invoke`, so a
    /// single VM per thread suffices.
    static VM: RefCell<Vm> = RefCell::new(Vm::new());
}

/// Streams VM emits into the agent's aggregation buffers.
///
/// The buffer lock is taken lazily on the first emitted row, so advice that
/// only packs (or drops everything) never touches the buffer mutex.
struct AgentSink<'a> {
    buffers: &'a Mutex<HashMap<QueryId, Buffer>>,
    guard: Option<MutexGuard<'a, HashMap<QueryId, Buffer>>>,
}

impl<'a> AgentSink<'a> {
    fn buf(&mut self, query: QueryId, spec: &Arc<OutputSpec>) -> &mut Buffer {
        let buffers = self.buffers;
        let guard = self.guard.get_or_insert_with(|| buffers.lock());
        guard.entry(query).or_insert_with(|| Buffer::new(spec))
    }
}

impl EmitSink for AgentSink<'_> {
    fn streaming_row(&mut self, query: QueryId, spec: &Arc<OutputSpec>, row: Tuple) {
        let buf = self.buf(query, spec);
        if let Rows::Streaming(rows) = &mut buf.rows {
            buf.tuples_since_flush += 1;
            buf.emitted_cum += 1;
            rows.push(row);
        }
    }

    fn grouped_row(
        &mut self,
        query: QueryId,
        spec: &Arc<OutputSpec>,
        key: GroupKey,
        args: &[Value],
    ) {
        let buf = self.buf(query, spec);
        if let Rows::Grouped(groups) = &mut buf.rows {
            buf.tuples_since_flush += 1;
            buf.emitted_cum += 1;
            let states = groups
                .entry(key)
                .or_insert_with(|| buf.spec.aggs.iter().map(|(f, _)| f.init()).collect());
            for (st, arg) in states.iter_mut().zip(args) {
                st.update(arg);
            }
        }
    }
}

/// Process-wide incarnation counter: every [`Agent`] gets a distinct
/// incarnation number, so a restarted agent (same host/procid, fresh
/// `seq` space) is distinguishable from duplicated reports of its
/// previous life.
static NEXT_INCARNATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// The per-process agent.
pub struct Agent {
    info: ProcessInfo,
    /// `info.host` as an interned `Value`, built once.
    host_value: Value,
    /// `info.procname` as an interned `Value`, built once.
    procname_value: Value,
    incarnation: u64,
    registry: Registry,
    buffers: Mutex<HashMap<QueryId, Buffer>>,
    stats: Mutex<AgentStats>,
    enabled: std::sync::atomic::AtomicBool,
}

impl Agent {
    /// Creates an agent for the given process identity.
    pub fn new(info: ProcessInfo) -> Agent {
        Agent {
            host_value: Value::Str(intern(&info.host)),
            procname_value: Value::Str(intern(&info.procname)),
            info,
            incarnation: NEXT_INCARNATION.fetch_add(1, std::sync::atomic::Ordering::Relaxed),
            registry: Registry::new(),
            buffers: Mutex::new(HashMap::new()),
            stats: Mutex::new(AgentStats::default()),
            enabled: std::sync::atomic::AtomicBool::new(true),
        }
    }

    /// Returns this agent's incarnation number (unique per `Agent` within
    /// the process; carried on every [`Report`]).
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Turns the whole agent on or off. A disabled agent's
    /// [`Agent::invoke`] returns before even consulting the registry —
    /// the "unmodified system" baseline of the paper's Table 5.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
    }

    /// Returns the process identity.
    pub fn info(&self) -> &ProcessInfo {
        &self.info
    }

    /// Returns the weave registry (exposed for tests and benches).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Returns a snapshot of the counters.
    pub fn stats(&self) -> AgentStats {
        *self.stats.lock()
    }

    /// Applies a frontend command (weave / unweave).
    pub fn apply(&self, cmd: &Command) {
        match cmd {
            Command::Install(code) => self.install(code),
            Command::Uninstall(id) => self.registry.unweave(*id),
        }
    }

    /// Weaves every bytecode program of `code` into the local registry and
    /// pre-creates the query's aggregation buffer so the first emit does
    /// not pay for it.
    ///
    /// Idempotent: a query that is already woven is left untouched, so
    /// re-shipped bytecode (a duplicated install frame, or an epoch
    /// re-sync after reconnect) can never weave the same advice twice and
    /// double-count emissions.
    pub fn install(&self, code: &CompiledCode) {
        if self.registry.has_query(code.id) {
            return;
        }
        if code.programs.iter().any(|p| p.emits()) {
            self.buffers
                .lock()
                .entry(code.id)
                .or_insert_with(|| Buffer::new(&code.output));
        }
        for program in &code.programs {
            self.registry.weave(code.id, Arc::clone(program));
        }
    }

    /// Reconciles the registry with the frontend's full installed-query
    /// set (the epoch re-sync path): weaves queries the agent is missing
    /// and unweaves queries the frontend no longer has. Used when an agent
    /// reconnects after a crash, restart, or partition during which it may
    /// have missed any number of install/uninstall commands.
    pub fn sync(&self, installed: &[Arc<CompiledCode>]) {
        let keep: std::collections::HashSet<QueryId> = installed.iter().map(|c| c.id).collect();
        for stale in self
            .registry
            .woven_queries()
            .into_iter()
            .filter(|q| !keep.contains(q))
        {
            self.registry.unweave(stale);
        }
        for code in installed {
            self.install(code);
        }
    }

    /// Cumulative tuples emitted for `query` by this agent (the ground
    /// truth the frontend's loss accounting reconciles against).
    pub fn emitted_for(&self, query: QueryId) -> u64 {
        self.buffers.lock().get(&query).map_or(0, |b| b.emitted_cum)
    }

    /// Invokes `tracepoint` with `exports`, running any woven advice.
    ///
    /// `now` is the current time in nanoseconds (virtual time under the
    /// simulator); it supplies the default `timestamp` export. Returns
    /// immediately — with one atomic load — when nothing is woven.
    pub fn invoke(
        &self,
        tracepoint: &str,
        baggage: &mut Baggage,
        now: u64,
        exports: &[(&str, Value)],
    ) {
        if !self.enabled.load(std::sync::atomic::Ordering::Relaxed) {
            return;
        }
        let Some((tp_value, list)) = self.registry.lookup(tracepoint) else {
            if !self.registry.is_idle() {
                self.stats.lock().idle_invocations += 1;
            }
            return;
        };
        let mut full: Vec<(&str, Value)> =
            Vec::with_capacity(exports.len() + DEFAULT_EXPORTS.len());
        full.push(("host", self.host_value.clone()));
        full.push(("timestamp", Value::U64(now)));
        full.push(("procid", Value::U64(self.info.procid)));
        full.push(("procname", self.procname_value.clone()));
        full.push(("tracepoint", tp_value));
        full.extend(exports.iter().cloned());

        let mut sink = AgentSink {
            buffers: &self.buffers,
            guard: None,
        };
        let mut packed = 0u64;
        let mut emitted = 0u64;
        VM.with(|vm| {
            let mut vm = vm.borrow_mut();
            for woven in list.iter() {
                let s = vm.run(&woven.code, &full, baggage, &mut sink);
                packed += s.packed as u64;
                emitted += s.emitted as u64;
            }
        });
        drop(sink);
        let mut st = self.stats.lock();
        st.advised_invocations += 1;
        st.tuples_packed += packed;
        st.tuples_emitted += emitted;
    }

    /// Runs one bytecode program directly (exposed for benches and tests
    /// that bypass the registry). `exports` must already include the
    /// default exports.
    pub fn run_code(
        &self,
        code: &AdviceByteCode,
        exports: &[(&str, Value)],
        baggage: &mut Baggage,
    ) -> pivot_query::VmStats {
        let mut sink = AgentSink {
            buffers: &self.buffers,
            guard: None,
        };
        VM.with(|vm| vm.borrow_mut().run(code, exports, baggage, &mut sink))
    }

    /// Publishes and clears the local partial results (paper Figure 2, Æ).
    ///
    /// The embedding system calls this once per reporting interval; the
    /// returned reports are addressed to the frontend.
    pub fn flush(&self, now: u64) -> Vec<Report> {
        let mut buffers = self.buffers.lock();
        let mut out = Vec::new();
        for (query, buf) in buffers.iter_mut() {
            let rows = match &mut buf.rows {
                Rows::Streaming(rows) => {
                    if rows.is_empty() {
                        continue;
                    }
                    ReportRows::Raw(std::mem::take(rows))
                }
                Rows::Grouped(groups) => {
                    if groups.is_empty() {
                        continue;
                    }
                    ReportRows::Grouped(groups.drain().collect())
                }
            };
            // Sequence numbers are only consumed by reports that actually
            // exist, so a receiver-side gap always means a lost report,
            // never an idle interval.
            let seq = buf.seq;
            buf.seq += 1;
            out.push(Report {
                query: *query,
                host: self.info.host.clone(),
                procid: self.info.procid,
                procname: self.info.procname.clone(),
                incarnation: self.incarnation,
                time: now,
                seq,
                tuples: std::mem::take(&mut buf.tuples_since_flush),
                emitted_cum: buf.emitted_cum,
                rows,
            });
        }
        let mut st = self.stats.lock();
        for r in &out {
            st.rows_reported += r.rows.len() as u64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_baggage::PackMode;
    use pivot_model::{AggFunc, Expr, Schema};
    use pivot_query::advice::ColumnRef;
    use pivot_query::{AdviceOp, AdviceProgram, CompiledQuery};

    fn agent() -> Agent {
        Agent::new(ProcessInfo {
            host: "host-A".into(),
            procid: 7,
            procname: "DataNode".into(),
        })
    }

    fn q2_like() -> CompiledQuery {
        let slot = QueryId(256 + 1);
        let spec = Arc::new(OutputSpec {
            key_exprs: vec![Expr::field("cl.procName")],
            key_names: vec!["cl.procName".into()],
            aggs: vec![(AggFunc::Sum, Expr::field("incr.delta"))],
            agg_names: vec!["SUM(incr.delta)".into()],
            columns: vec![ColumnRef::Key(0), ColumnRef::Agg(0)],
            streaming: false,
            ..OutputSpec::default()
        });
        CompiledQuery {
            id: QueryId(1),
            name: "q2".into(),
            text: String::new(),
            output: Arc::clone(&spec),
            advice: vec![
                AdviceProgram {
                    tracepoints: vec!["ClientProtocols".into()],
                    ops: vec![
                        AdviceOp::Observe {
                            alias: "cl".into(),
                            fields: vec!["procname".into()],
                        },
                        AdviceOp::Pack {
                            slot,
                            mode: PackMode::First(1),
                            exprs: vec![Expr::field("cl.procname")],
                            names: vec!["cl.procName".into()],
                        },
                    ],
                },
                AdviceProgram {
                    tracepoints: vec!["DataNodeMetrics.incrBytesRead".into()],
                    ops: vec![
                        AdviceOp::Observe {
                            alias: "incr".into(),
                            fields: vec!["delta".into()],
                        },
                        AdviceOp::Unpack {
                            slot,
                            schema: Schema::new(["cl.procName"]),
                            post_filter: None,
                        },
                        AdviceOp::Emit {
                            query: QueryId(1),
                            spec,
                        },
                    ],
                },
            ],
        }
    }

    fn q2_code() -> Arc<CompiledCode> {
        let (code, notes) = CompiledCode::lower(&q2_like());
        assert!(notes.is_empty(), "unexpected lowering notes: {notes:?}");
        Arc::new(code)
    }

    #[test]
    fn unwoven_invocation_is_cheap_noop() {
        let a = agent();
        let mut bag = Baggage::new();
        a.invoke("anything", &mut bag, 0, &[]);
        assert_eq!(a.stats().advised_invocations, 0);
        assert!(bag.is_empty());
    }

    #[test]
    fn end_to_end_q2_through_one_agent() {
        let a = agent();
        a.apply(&Command::Install(q2_code()));

        // A client invocation packs the process name...
        let mut bag = Baggage::new();
        a.invoke("ClientProtocols", &mut bag, 10, &[]);
        // ...then two DataNode reads emit deltas joined to it.
        a.invoke(
            "DataNodeMetrics.incrBytesRead",
            &mut bag,
            20,
            &[("delta", Value::I64(100))],
        );
        a.invoke(
            "DataNodeMetrics.incrBytesRead",
            &mut bag,
            30,
            &[("delta", Value::I64(50))],
        );

        let reports = a.flush(1_000_000_000);
        assert_eq!(reports.len(), 1);
        match &reports[0].rows {
            ReportRows::Grouped(rows) => {
                assert_eq!(rows.len(), 1);
                let (key, states) = &rows[0];
                assert_eq!(key.0.get(0), &Value::str("DataNode"));
                assert_eq!(states[0].finish(), Value::I64(150));
            }
            _ => panic!("expected grouped"),
        }
        // Local aggregation: two emits became one reported row.
        assert_eq!(a.stats().tuples_emitted, 2);
        assert_eq!(a.stats().rows_reported, 1);

        // Flush drains.
        assert!(a.flush(2_000_000_000).is_empty());
    }

    #[test]
    fn uninstall_stops_advice() {
        let a = agent();
        a.install(&q2_code());
        a.apply(&Command::Uninstall(QueryId(1)));
        let mut bag = Baggage::new();
        a.invoke("ClientProtocols", &mut bag, 0, &[]);
        assert!(bag.is_empty());
        assert!(a.registry().is_idle());
    }
}
