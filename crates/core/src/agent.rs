//! The per-process Pivot Tracing agent.
//!
//! One [`Agent`] lives in every Pivot Tracing-enabled process (paper §5).
//! It owns the process's weave [`Registry`], runs woven advice bytecode on
//! every tracepoint invocation, accumulates emitted tuples with
//! process-local aggregation, and publishes partial query results at a
//! configurable interval (by default one second of simulated time).
//!
//! # Hot path
//!
//! [`Agent::invoke`] executes lowered [`AdviceByteCode`] through a
//! thread-local [`Vm`] whose scratch buffers persist across invocations, so
//! a woven event allocates only for the data it actually produces. Emitted
//! rows stream straight into the aggregation buffers through an
//! [`EmitSink`] — no intermediate `Emitted` batch, no per-event clone of
//! the output spec or schema. The default exports `host` and `procname`
//! are interned once at construction and the `tracepoint` name once at
//! weave time.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};
use pivot_baggage::{Baggage, QueryId};
use pivot_model::{colblock, intern, AggState, EncodedBlock, GroupKey, Tuple, Value};
use pivot_query::{AdviceByteCode, CompiledCode, EmitSink, OutputSpec, Vm};

use crate::bus::{Command, Report, ReportRows};
use crate::governor::{
    QueryBudget, ThrottleReason, ThrottleStats, Throttled, NOMINAL_BYTES_PER_VALUE,
};
use crate::retro::{trace_of, RetroCounters, RetroIdent, RetroReport, RetroRing, TriggerKind};
use crate::tracepoint::{Registry, DEFAULT_EXPORTS};

/// Default per-query cap on rows buffered between flushes (and therefore
/// on outage-time buffering while a live agent is reconnecting). Past the
/// cap the buffer sheds deterministically — oldest row first for
/// streaming queries, newest group refused for grouped queries — and the
/// shed count rides the loss envelope as `shed_cum`.
pub const DEFAULT_ROW_CAP: usize = 65_536;

/// Streaming flushes at or above this many buffered rows leave the agent
/// already in the columnar block encoding
/// ([`ReportRows::RawEncoded`]), so the wire layer ships compressed
/// bytes and relays coalesce without decoding. Below the threshold the
/// fixed block framing is not worth it and rows ship as plain
/// [`ReportRows::Raw`].
pub const ENCODE_MIN_ROWS: usize = 32;

/// Identity of the process an agent runs in.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProcessInfo {
    /// Host name, e.g. `"host-A"`.
    pub host: String,
    /// Process id.
    pub procid: u64,
    /// Process name, e.g. `"DataNode"` or `"MRsort10g"`.
    pub procname: String,
}

/// Cumulative counters (drives the paper's overhead ablations).
#[derive(Clone, Copy, Default, Debug)]
pub struct AgentStats {
    /// Tracepoint invocations that found no woven advice.
    pub idle_invocations: u64,
    /// Tracepoint invocations that ran at least one advice program.
    pub advised_invocations: u64,
    /// Tuples packed into baggage by this process.
    pub tuples_packed: u64,
    /// Tuples emitted to the local aggregator.
    pub tuples_emitted: u64,
    /// Result rows sent to the frontend (after local aggregation).
    pub rows_reported: u64,
}

/// Rows accumulated for one query between flushes.
enum Rows {
    Grouped(HashMap<GroupKey, Vec<AggState>>),
    Streaming(Vec<Tuple>),
}

/// Per-query local aggregation buffer.
///
/// The buffer outlives individual flushes: `seq` and `emitted_cum` are the
/// loss-accounting envelope every [`Report`] carries, so they must keep
/// counting across reporting intervals (a flush only takes the rows and
/// the since-flush tuple delta).
struct Buffer {
    spec: Arc<OutputSpec>,
    rows: Rows,
    /// Next flush sequence number for this query.
    seq: u64,
    /// Tuples folded in since the last flush.
    tuples_since_flush: u64,
    /// Tuples emitted for this query over the agent's lifetime.
    emitted_cum: u64,
    /// Tuples shed by the row cap over the agent's lifetime (emitted but
    /// never delivered; see [`DEFAULT_ROW_CAP`]).
    shed_cum: u64,
    /// `truncated_cum` value last shipped in a report, so a truncation
    /// with no accompanying rows still forces a report out.
    truncated_sent: u64,
    /// Set when loss counters changed since the last report; forces a
    /// (possibly row-less) report so the envelope reaches the frontend.
    dirty: bool,
}

impl Buffer {
    fn new(spec: &Arc<OutputSpec>) -> Buffer {
        let rows = if spec.streaming {
            Rows::Streaming(Vec::new())
        } else {
            Rows::Grouped(HashMap::new())
        };
        Buffer {
            spec: Arc::clone(spec),
            rows,
            seq: 0,
            tuples_since_flush: 0,
            emitted_cum: 0,
            shed_cum: 0,
            truncated_sent: 0,
            dirty: false,
        }
    }
}

/// Hasher for the `QueryId`-keyed governor map: one multiply-xorshift
/// mix instead of SipHash. The map is probed once per woven program on
/// every governed invocation, the keys are process-local small integers,
/// and no untrusted input reaches it, so HashDoS resistance buys nothing
/// here and the default hasher's ~20ns per probe is pure hot-path tax.
#[derive(Default)]
struct IdHasher(u64);

impl std::hash::Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // FNV-1a fallback; `QueryId` hashes through `write_u64`.
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_u64(&mut self, n: u64) {
        let h = n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        self.0 = h ^ (h >> 32);
    }
}

type IdHashMap<V> = HashMap<QueryId, V, std::hash::BuildHasherDefault<IdHasher>>;

/// Per-query governor state: the budget, the current window's charges,
/// the breaker, and the retained advice programs for re-arm.
#[derive(Default)]
struct GovernorState {
    budget: QueryBudget,
    /// The query's advice, retained so a tripped breaker can re-weave it.
    programs: Vec<Arc<AdviceByteCode>>,
    /// The query's output spec, so a throttle can be reported even when
    /// the query never emitted here.
    spec: Option<Arc<OutputSpec>>,
    /// Start of the current accounting window.
    window_start: u64,
    /// Charges accumulated in the current window.
    tuples: u64,
    ops: u64,
    bytes: u64,
    /// `Some(deadline)` while the breaker is open (advice unwoven).
    open_until: Option<u64>,
    /// Lifetime trip count (drives the capped exponential backoff).
    trips: u32,
    /// A trip awaiting its ride on the next flush.
    pending: Option<Throttled>,
    /// Lifetime tuples truncated by the baggage `All`-cap, attributed to
    /// this query's advice.
    truncated_cum: u64,
}

/// Charges one advice program's work to its query and trips the breaker
/// when a budget dimension is exhausted. Returns `true` on trip (the
/// caller unweaves outside the VM loop).
fn charge_governor(
    g: &mut GovernorState,
    query: QueryId,
    now: u64,
    tuples: u64,
    ops: u64,
    bytes: u64,
    truncated: u64,
) -> bool {
    g.truncated_cum += truncated;
    if g.budget.is_unlimited() || g.open_until.is_some() {
        return false;
    }
    if now.saturating_sub(g.window_start) >= g.budget.window_ns {
        g.window_start = now;
        g.tuples = 0;
        g.ops = 0;
        g.bytes = 0;
    }
    g.tuples += tuples;
    g.ops += ops;
    g.bytes += bytes;
    let reason = if g.tuples > g.budget.tuples_per_window {
        ThrottleReason::Tuples
    } else if g.ops > g.budget.ops_per_window {
        ThrottleReason::Ops
    } else if g.bytes > g.budget.bytes_per_window {
        ThrottleReason::Bytes
    } else {
        return false;
    };
    g.trips += 1;
    g.open_until = Some(now.saturating_add(g.budget.backoff_ns(g.trips)));
    g.pending = Some(Throttled {
        query,
        reason,
        stats: ThrottleStats {
            tuples: g.tuples,
            ops: g.ops,
            bytes: g.bytes,
            trips: g.trips,
        },
    });
    true
}

thread_local! {
    /// Reusable VM scratch (registers, tuple buffers) shared by every agent
    /// on this thread. Advice runs to completion within one `invoke`, so a
    /// single VM per thread suffices.
    static VM: RefCell<Vm> = RefCell::new(Vm::new());
}

/// Streams VM emits into the agent's aggregation buffers.
///
/// The buffer lock is taken lazily on the first emitted row, so advice that
/// only packs (or drops everything) never touches the buffer mutex.
struct AgentSink<'a> {
    buffers: &'a Mutex<HashMap<QueryId, Buffer>>,
    guard: Option<MutexGuard<'a, HashMap<QueryId, Buffer>>>,
    /// Per-query bound on buffered rows (see [`DEFAULT_ROW_CAP`]).
    row_cap: usize,
    /// Queries whose `Trigger` advice fired during this VM pass. The
    /// agent drains them after the VM loop (outside the buffer locks)
    /// and fires the retro ring once per query.
    triggers: Vec<QueryId>,
}

impl<'a> AgentSink<'a> {
    fn buf(&mut self, query: QueryId, spec: &Arc<OutputSpec>) -> &mut Buffer {
        let buffers = self.buffers;
        let guard = self.guard.get_or_insert_with(|| buffers.lock());
        guard.entry(query).or_insert_with(|| Buffer::new(spec))
    }
}

impl EmitSink for AgentSink<'_> {
    fn streaming_row(&mut self, query: QueryId, spec: &Arc<OutputSpec>, row: Tuple) {
        let row_cap = self.row_cap;
        let buf = self.buf(query, spec);
        if let Rows::Streaming(rows) = &mut buf.rows {
            buf.emitted_cum += 1;
            buf.tuples_since_flush += 1;
            rows.push(row);
            if rows.len() > row_cap {
                // Shed oldest first: under overload (or a long outage on a
                // live agent) the freshest rows are the useful ones. The
                // shed tuple leaves the in-flight delta and joins the
                // cumulative shed count, keeping
                // `emitted_cum == delivered + in-flight + shed_cum` exact.
                rows.remove(0);
                buf.tuples_since_flush -= 1;
                buf.shed_cum += 1;
                buf.dirty = true;
            }
        }
    }

    fn grouped_row(
        &mut self,
        query: QueryId,
        spec: &Arc<OutputSpec>,
        key: GroupKey,
        args: &[Value],
    ) {
        let row_cap = self.row_cap;
        let buf = self.buf(query, spec);
        if let Rows::Grouped(groups) = &mut buf.rows {
            buf.emitted_cum += 1;
            // Grouped buffers shed by refusing *new* groups past the cap
            // (a group-key explosion); updates to existing groups fold
            // into fixed-size aggregation state and are never shed.
            if groups.len() >= row_cap && !groups.contains_key(&key) {
                buf.shed_cum += 1;
                buf.dirty = true;
                return;
            }
            buf.tuples_since_flush += 1;
            let states = groups
                .entry(key)
                .or_insert_with(|| buf.spec.aggs.iter().map(|(f, _)| f.init()).collect());
            for (st, arg) in states.iter_mut().zip(args) {
                st.update(arg);
            }
        }
    }

    fn folds_grouped(&self) -> bool {
        true
    }

    fn trigger(&mut self, query: QueryId) {
        // At most one firing per query per invocation (the VM already
        // fires at most once per program run; batch runs fire per
        // invocation, deduped here at no extra cost for the common case).
        if !self.triggers.contains(&query) {
            self.triggers.push(query);
        }
    }

    fn grouped_fold(
        &mut self,
        query: QueryId,
        spec: &Arc<OutputSpec>,
        key: GroupKey,
        states: &[AggState],
        rows: u64,
    ) {
        let row_cap = self.row_cap;
        let buf = self.buf(query, spec);
        if let Rows::Grouped(groups) = &mut buf.rows {
            buf.emitted_cum += rows;
            // Same shed rule as `grouped_row`, decided once for the whole
            // folded group: either every row of a refused new group is
            // shed or none is, which is exactly what per-row delivery
            // would do (the VM delivers new groups in first-seen order,
            // so the cap trips at the same group boundary).
            if groups.len() >= row_cap && !groups.contains_key(&key) {
                buf.shed_cum += rows;
                buf.dirty = true;
                return;
            }
            buf.tuples_since_flush += rows;
            let into = groups
                .entry(key)
                .or_insert_with(|| buf.spec.aggs.iter().map(|(f, _)| f.init()).collect());
            for (st, partial) in into.iter_mut().zip(states) {
                st.merge(partial);
            }
        }
    }
}

/// Process-wide incarnation counter: every [`Agent`] gets a distinct
/// incarnation number, so a restarted agent (same host/procid, fresh
/// `seq` space) is distinguishable from duplicated reports of its
/// previous life.
static NEXT_INCARNATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);

/// The per-process agent.
pub struct Agent {
    info: ProcessInfo,
    /// `info.host` as an interned `Value`, built once.
    host_value: Value,
    /// `info.procname` as an interned `Value`, built once.
    procname_value: Value,
    incarnation: u64,
    registry: Registry,
    buffers: Mutex<HashMap<QueryId, Buffer>>,
    /// Overload-governor state, keyed by query. Lock order: `governors`
    /// before `buffers` (invoke charges, then the sink buffers lazily).
    governors: Mutex<IdHashMap<GovernorState>>,
    /// `true` iff any governor entry has a finite budget; lets ungoverned
    /// invocations skip the governors lock entirely.
    governed: AtomicBool,
    /// Per-query bound on buffered rows between flushes.
    row_cap: AtomicUsize,
    stats: Mutex<AgentStats>,
    enabled: std::sync::atomic::AtomicBool,
    /// The hindsight ring (see [`crate::retro`]). Lock order: taken alone,
    /// never while holding `governors` or `buffers`.
    retro: Mutex<RetroRing>,
    /// Gate on the whole retro path: when `false` (the default), invoke
    /// pays exactly one relaxed load and records nothing.
    retro_enabled: AtomicBool,
    /// Latency-outlier trigger threshold in nanoseconds (0 = off): a woven
    /// invocation exporting `latency_ns` above it fires a retro flush.
    retro_latency_ns: AtomicU64,
}

impl Agent {
    /// Creates an agent for the given process identity.
    pub fn new(info: ProcessInfo) -> Agent {
        let incarnation = NEXT_INCARNATION.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let retro = RetroRing::new(RetroIdent {
            host: info.host.clone(),
            procid: info.procid,
            procname: info.procname.clone(),
            incarnation,
        });
        Agent {
            host_value: Value::Str(intern(&info.host)),
            procname_value: Value::Str(intern(&info.procname)),
            info,
            incarnation,
            registry: Registry::new(),
            buffers: Mutex::new(HashMap::new()),
            governors: Mutex::new(IdHashMap::default()),
            governed: AtomicBool::new(false),
            row_cap: AtomicUsize::new(DEFAULT_ROW_CAP),
            stats: Mutex::new(AgentStats::default()),
            enabled: std::sync::atomic::AtomicBool::new(true),
            retro: Mutex::new(retro),
            retro_enabled: AtomicBool::new(false),
            retro_latency_ns: AtomicU64::new(0),
        }
    }

    /// Returns this agent's incarnation number (unique per `Agent` within
    /// the process; carried on every [`Report`]).
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// Turns the whole agent on or off. A disabled agent's
    /// [`Agent::invoke`] returns before even consulting the registry —
    /// the "unmodified system" baseline of the paper's Table 5.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled
            .store(enabled, std::sync::atomic::Ordering::Relaxed);
    }

    /// Returns the process identity.
    pub fn info(&self) -> &ProcessInfo {
        &self.info
    }

    /// Returns the weave registry (exposed for tests and benches).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Returns a snapshot of the counters.
    pub fn stats(&self) -> AgentStats {
        *self.stats.lock()
    }

    /// Applies a frontend command (weave / unweave / budget).
    pub fn apply(&self, cmd: &Command) {
        match cmd {
            Command::Install(code) => self.install(code),
            Command::Uninstall(id) => {
                self.registry.unweave(*id);
                let mut governors = self.governors.lock();
                governors.remove(id);
                self.recompute_governed(&governors);
            }
            Command::SetBudget(id, budget) => self.set_budget(*id, *budget),
        }
    }

    /// Weaves every bytecode program of `code` into the local registry and
    /// pre-creates the query's aggregation buffer so the first emit does
    /// not pay for it.
    ///
    /// Idempotent: a query that is already woven is left untouched, so
    /// re-shipped bytecode (a duplicated install frame, or an epoch
    /// re-sync after reconnect) can never weave the same advice twice and
    /// double-count emissions. A query whose breaker is currently open is
    /// likewise left unwoven — a duplicated install or an epoch re-sync
    /// must not undo a trip before its backoff elapses.
    pub fn install(&self, code: &CompiledCode) {
        // A query carrying `Trigger` advice needs the hindsight ring
        // recording *before* the trigger ever fires; installing one
        // switches retro on (uninstall leaves it on — turning recording
        // off is an explicit operator decision, see [`Agent::set_retro`]).
        if code.programs.iter().any(|p| p.triggers()) {
            self.retro_enabled.store(true, Ordering::Relaxed);
        }
        {
            let mut governors = self.governors.lock();
            if let Some(g) = governors.get_mut(&code.id) {
                g.programs = code.programs.clone();
                g.spec = Some(Arc::clone(&code.output));
                if g.open_until.is_some() && !crate::mutation::sync_unthrottle() {
                    return;
                }
            }
        }
        if self.registry.has_query(code.id) {
            return;
        }
        if code.programs.iter().any(|p| p.emits()) {
            self.buffers
                .lock()
                .entry(code.id)
                .or_insert_with(|| Buffer::new(&code.output));
        }
        for program in &code.programs {
            self.registry.weave(code.id, Arc::clone(program));
        }
    }

    /// Sets (or replaces) the overload budget for `query`. The governor
    /// captures the query's currently woven programs so a later trip can
    /// re-weave exactly what it unwove.
    pub fn set_budget(&self, query: QueryId, budget: QueryBudget) {
        let mut governors = self.governors.lock();
        let g = governors.entry(query).or_default();
        g.budget = budget;
        if g.programs.is_empty() {
            g.programs = self.registry.programs_for(query);
        }
        if g.spec.is_none() {
            // Lock order: governors before buffers.
            g.spec = self.buffers.lock().get(&query).map(|b| Arc::clone(&b.spec));
        }
        self.recompute_governed(&governors);
    }

    /// Replaces the whole budget set (the epoch re-sync path, alongside
    /// [`Agent::sync`]). Queries absent from `budgets` lose their governor
    /// entry; an open breaker for a still-budgeted query stays open.
    pub fn sync_budgets(&self, budgets: &[(QueryId, QueryBudget)]) {
        let mut governors = self.governors.lock();
        governors.retain(|q, _| budgets.iter().any(|(bq, _)| bq == q));
        for (query, budget) in budgets {
            let g = governors.entry(*query).or_default();
            g.budget = *budget;
            if g.programs.is_empty() {
                g.programs = self.registry.programs_for(*query);
            }
            if g.spec.is_none() {
                g.spec = self.buffers.lock().get(query).map(|b| Arc::clone(&b.spec));
            }
        }
        self.recompute_governed(&governors);
    }

    fn recompute_governed(&self, governors: &IdHashMap<GovernorState>) {
        let any = governors.values().any(|g| !g.budget.is_unlimited());
        self.governed.store(any, Ordering::Relaxed);
    }

    /// Returns the budget currently set for `query`, if any.
    pub fn budget_for(&self, query: QueryId) -> Option<QueryBudget> {
        self.governors.lock().get(&query).map(|g| g.budget)
    }

    /// Returns `true` while `query`'s circuit breaker is open (advice
    /// unwoven, awaiting its backoff deadline).
    pub fn is_tripped(&self, query: QueryId) -> bool {
        self.governors
            .lock()
            .get(&query)
            .is_some_and(|g| g.open_until.is_some())
    }

    /// Lifetime breaker trips for `query` on this agent.
    pub fn trips_for(&self, query: QueryId) -> u32 {
        self.governors.lock().get(&query).map_or(0, |g| g.trips)
    }

    /// Cumulative tuples shed from `query`'s bounded buffer (emitted but
    /// never delivered).
    pub fn shed_for(&self, query: QueryId) -> u64 {
        self.buffers.lock().get(&query).map_or(0, |b| b.shed_cum)
    }

    /// Cumulative tuples truncated by the baggage `All`-cap while running
    /// `query`'s advice on this agent.
    pub fn truncated_for(&self, query: QueryId) -> u64 {
        self.governors
            .lock()
            .get(&query)
            .map_or(0, |g| g.truncated_cum)
    }

    /// Rows currently buffered for `query` (bounded by the row cap).
    pub fn buffered_rows(&self, query: QueryId) -> usize {
        self.buffers
            .lock()
            .get(&query)
            .map_or(0, |b| match &b.rows {
                Rows::Streaming(rows) => rows.len(),
                Rows::Grouped(groups) => groups.len(),
            })
    }

    /// Overrides the per-query buffered-row cap (minimum 1).
    pub fn set_row_cap(&self, cap: usize) {
        self.row_cap.store(cap.max(1), Ordering::Relaxed);
    }

    /// The per-query buffered-row cap currently in force.
    pub fn row_cap(&self) -> usize {
        self.row_cap.load(Ordering::Relaxed)
    }

    /// Switches hindsight recording on or off (see [`crate::retro`]).
    /// Off (the default) costs one relaxed load per invocation;
    /// installing a query with `Trigger` advice switches it on
    /// automatically.
    pub fn set_retro(&self, enabled: bool) {
        self.retro_enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether hindsight recording is currently on.
    pub fn retro_on(&self) -> bool {
        self.retro_enabled.load(Ordering::Relaxed)
    }

    /// Sets the hindsight ring capacity, in events (minimum 1).
    pub fn set_retro_cap(&self, cap: usize) {
        self.retro.lock().set_cap(cap);
    }

    /// Sets the bound on flushed-but-undrained hindsight events.
    pub fn set_retro_pending_cap(&self, cap: usize) {
        self.retro.lock().set_pending_cap(cap);
    }

    /// Sets the latency-outlier trigger threshold (nanoseconds; 0 = off).
    /// A woven invocation exporting `latency_ns` above the threshold
    /// fires a retroactive flush of its request's buffered events.
    pub fn set_retro_latency_threshold(&self, ns: u64) {
        self.retro_latency_ns.store(ns, Ordering::Relaxed);
    }

    /// Fires a hindsight trigger explicitly — the hook chaos harnesses
    /// call at fault-injection sites ([`TriggerKind::Fault`]). `request`
    /// correlates the flush to one trace id; 0 drains the whole ring.
    /// Returns `false` when nothing was buffered (or retro is off).
    pub fn trigger_retro(&self, kind: TriggerKind, request: u64, now: u64) -> bool {
        if !self.retro_enabled.load(Ordering::Relaxed) {
            return false;
        }
        self.retro.lock().trigger(kind, QueryId(0), request, now)
    }

    /// Takes the pending [`RetroReport`]s (the transport drain).
    pub fn drain_retro(&self) -> Vec<RetroReport> {
        self.retro.lock().drain()
    }

    /// A snapshot of the hindsight ring's cumulative event accounting.
    pub fn retro_counters(&self) -> RetroCounters {
        self.retro.lock().counters()
    }

    /// Hindsight events an abrupt crash would lose right now (ring +
    /// pending); crash harnesses fold this into `crash_lost`.
    pub fn retro_unflushed(&self) -> u64 {
        self.retro.lock().unflushed()
    }

    /// Events currently in the ring (recorded, not yet flushed or
    /// overwritten).
    pub fn retro_buffered(&self) -> usize {
        self.retro.lock().buffered()
    }

    /// Graceful end-of-life for the hindsight ring: leftover ring events
    /// become `sampled_out`, undrained pending reports become `shed`.
    /// Call [`Agent::drain_retro`] first to deliver what is deliverable.
    pub fn retro_seal(&self) -> RetroCounters {
        self.retro.lock().seal()
    }

    /// A canonical digest of this agent's protocol-visible state, for the
    /// interleaving explorer's state cache: weave registry, aggregation
    /// buffers, and governor state.
    ///
    /// Deliberately excludes the incarnation number (drawn from a
    /// process-global counter, so not stable across re-executions of the
    /// same schedule) and the observational [`AgentStats`] counters
    /// (which never influence future behaviour).
    pub fn state_digest(&self) -> u64 {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(256);
        let mut woven = self.registry.woven_queries();
        woven.sort_unstable_by_key(|q| q.0);
        for q in woven {
            let _ = write!(s, "w{}:{};", q.0, self.registry.programs_for(q).len());
        }
        {
            // Lock order: governors before buffers.
            let governors = self.governors.lock();
            let mut ids: Vec<QueryId> = governors.keys().copied().collect();
            ids.sort_unstable_by_key(|q| q.0);
            for q in ids {
                let g = &governors[&q];
                let _ = write!(
                    s,
                    "g{}:{:?}|{}|{}|{}|{}|{:?}|{}|{:?}|{}|{};",
                    q.0,
                    g.budget,
                    g.window_start,
                    g.tuples,
                    g.ops,
                    g.bytes,
                    g.open_until,
                    g.trips,
                    g.pending,
                    g.truncated_cum,
                    g.programs.len(),
                );
            }
            let buffers = self.buffers.lock();
            let mut ids: Vec<QueryId> = buffers.keys().copied().collect();
            ids.sort_unstable_by_key(|q| q.0);
            for q in ids {
                let b = &buffers[&q];
                let _ = write!(
                    s,
                    "b{}:{}|{}|{}|{}|{}|{};",
                    q.0,
                    b.seq,
                    b.tuples_since_flush,
                    b.emitted_cum,
                    b.shed_cum,
                    b.truncated_sent,
                    b.dirty,
                );
                match &b.rows {
                    Rows::Streaming(rows) => {
                        for t in rows {
                            let _ = write!(s, "r{t:?};");
                        }
                    }
                    Rows::Grouped(groups) => {
                        let mut lines: Vec<String> =
                            groups.iter().map(|(k, a)| format!("{k:?}={a:?}")).collect();
                        lines.sort_unstable();
                        for l in lines {
                            let _ = write!(s, "r{l};");
                        }
                    }
                }
            }
        }
        let _ = write!(
            s,
            "c{}|e{}",
            self.row_cap.load(Ordering::Relaxed),
            self.enabled.load(std::sync::atomic::Ordering::Relaxed),
        );
        {
            let retro = self.retro.lock();
            let c = retro.counters();
            let _ = write!(
                s,
                "R{}|{}|{}|{}|{}|{}|{};",
                self.retro_enabled.load(Ordering::Relaxed),
                c.recorded,
                c.flushed,
                c.sampled_out,
                c.shed,
                retro.buffered(),
                retro.unflushed(),
            );
        }
        crate::fnv64(s.as_bytes())
    }

    /// Reconciles the registry with the frontend's full installed-query
    /// set (the epoch re-sync path): weaves queries the agent is missing
    /// and unweaves queries the frontend no longer has. Used when an agent
    /// reconnects after a crash, restart, or partition during which it may
    /// have missed any number of install/uninstall commands.
    pub fn sync(&self, installed: &[Arc<CompiledCode>]) {
        let keep: std::collections::HashSet<QueryId> = installed.iter().map(|c| c.id).collect();
        for stale in self
            .registry
            .woven_queries()
            .into_iter()
            .filter(|q| !keep.contains(q))
        {
            self.registry.unweave(stale);
        }
        {
            let mut governors = self.governors.lock();
            governors.retain(|q, _| keep.contains(q));
            self.recompute_governed(&governors);
        }
        for code in installed {
            self.install(code);
        }
    }

    /// Cumulative tuples emitted for `query` by this agent (the ground
    /// truth the frontend's loss accounting reconciles against).
    pub fn emitted_for(&self, query: QueryId) -> u64 {
        self.buffers.lock().get(&query).map_or(0, |b| b.emitted_cum)
    }

    /// Invokes `tracepoint` with `exports`, running any woven advice.
    ///
    /// `now` is the current time in nanoseconds (virtual time under the
    /// simulator); it supplies the default `timestamp` export. Returns
    /// immediately — with one atomic load — when nothing is woven.
    pub fn invoke(
        &self,
        tracepoint: &str,
        baggage: &mut Baggage,
        now: u64,
        exports: &[(&str, Value)],
    ) {
        if !self.enabled.load(std::sync::atomic::Ordering::Relaxed) {
            return;
        }
        // Hindsight recording happens for *every* invocation — woven or
        // not — so a later trigger can reconstruct the full event stream.
        // When retro is off this is one relaxed load.
        let retro_on = self.retro_enabled.load(Ordering::Relaxed);
        let mut retro_request = 0u64;
        if retro_on {
            retro_request = trace_of(baggage).unwrap_or(0);
            self.retro
                .lock()
                .record(tracepoint, now, retro_request, exports);
        }
        let Some((tp_value, list)) = self.registry.lookup(tracepoint) else {
            if !self.registry.is_idle() {
                self.stats.lock().idle_invocations += 1;
            }
            return;
        };
        let mut full: Vec<(&str, Value)> =
            Vec::with_capacity(exports.len() + DEFAULT_EXPORTS.len());
        full.push(("host", self.host_value.clone()));
        full.push(("timestamp", Value::U64(now)));
        full.push(("procid", Value::U64(self.info.procid)));
        full.push(("procname", self.procname_value.clone()));
        full.push(("tracepoint", tp_value));
        full.extend(exports.iter().cloned());

        let mut sink = AgentSink {
            buffers: &self.buffers,
            guard: None,
            row_cap: self.row_cap.load(Ordering::Relaxed),
            triggers: Vec::new(),
        };
        let mut packed = 0u64;
        let mut emitted = 0u64;
        // `tripped` stays empty (no allocation) until a breaker actually
        // fires, which only the governed branch can do.
        let mut tripped: Vec<QueryId> = Vec::new();
        if self.governed.load(Ordering::Relaxed) {
            // Governed: charge each program's work to its query. The
            // governors lock is held across the VM loop (lock order:
            // governors → buffers; the sink takes buffers lazily inside).
            let mut governors = self.governors.lock();
            VM.with(|vm| {
                let mut vm = vm.borrow_mut();
                for woven in list.iter() {
                    // Programs with no governor entry skip the meter
                    // bookkeeping entirely; they run exactly as in the
                    // ungoverned branch below.
                    let Some(g) = governors.get_mut(&woven.query) else {
                        let s = vm.run(&woven.code, &full, baggage, &mut sink);
                        packed += s.packed as u64;
                        emitted += s.emitted as u64;
                        continue;
                    };
                    let ops0 = vm.ops();
                    let m0 = baggage.meter();
                    let s = vm.run(&woven.code, &full, baggage, &mut sink);
                    packed += s.packed as u64;
                    emitted += s.emitted as u64;
                    let m1 = baggage.meter();
                    let work = (s.emitted + s.packed) as u64;
                    let bytes = (m1.values - m0.values).saturating_mul(NOMINAL_BYTES_PER_VALUE);
                    if charge_governor(
                        g,
                        woven.query,
                        now,
                        work,
                        vm.ops() - ops0,
                        bytes,
                        m1.truncated - m0.truncated,
                    ) {
                        tripped.push(woven.query);
                    }
                }
            });
        } else {
            VM.with(|vm| {
                let mut vm = vm.borrow_mut();
                for woven in list.iter() {
                    let s = vm.run(&woven.code, &full, baggage, &mut sink);
                    packed += s.packed as u64;
                    emitted += s.emitted as u64;
                }
            });
        }
        let fired = std::mem::take(&mut sink.triggers);
        drop(sink);
        for query in &tripped {
            self.registry.unweave(*query);
        }
        if retro_on {
            let outlier = self.retro_outlier(exports);
            self.fire_retro(&fired, &tripped, outlier, retro_request, now);
        }
        let mut st = self.stats.lock();
        st.advised_invocations += 1;
        st.tuples_packed += packed;
        st.tuples_emitted += emitted;
    }

    /// Whether `exports` crosses the latency-outlier trigger threshold.
    fn retro_outlier(&self, exports: &[(&str, Value)]) -> bool {
        match self.retro_latency_ns.load(Ordering::Relaxed) {
            0 => false,
            thr => exports.iter().any(|(n, v)| {
                *n == "latency_ns"
                    && match v {
                        Value::U64(x) => *x > thr,
                        Value::I64(x) => u64::try_from(*x).is_ok_and(|x| x > thr),
                        _ => false,
                    }
            }),
        }
    }

    /// Fires the retro ring for every trigger source one woven invocation
    /// produced: `Trigger` advice ops, breaker trips, and the
    /// latency-outlier threshold. Runs outside the governor/buffer locks.
    fn fire_retro(
        &self,
        fired: &[QueryId],
        tripped: &[QueryId],
        outlier: bool,
        request: u64,
        now: u64,
    ) {
        if fired.is_empty() && tripped.is_empty() && !outlier {
            return;
        }
        let mut ring = self.retro.lock();
        for query in fired {
            ring.trigger(TriggerKind::Advice, *query, request, now);
        }
        for query in tripped {
            ring.trigger(TriggerKind::Breaker, *query, request, now);
        }
        if outlier {
            ring.trigger(TriggerKind::LatencyOutlier, QueryId(0), request, now);
        }
    }

    /// Invokes `tracepoint` once per `(now, exports)` event in `events`,
    /// all sharing `baggage` — semantically identical to calling
    /// [`Agent::invoke`] for each event in order, but woven advice
    /// executes through the VM's op-major batch path
    /// ([`pivot_query::Vm::run_batch`]), paying interpreter dispatch and
    /// baggage bookkeeping once per instruction instead of once per
    /// event × instruction.
    ///
    /// Embedding systems use this where invocations naturally arrive in
    /// bursts against one request context (e.g. a scan loop emitting one
    /// event per record). Governed queries receive one summed charge per
    /// batch, stamped at the last event's time, so a breaker can trip at
    /// batch granularity rather than mid-batch.
    pub fn invoke_batch(
        &self,
        tracepoint: &str,
        baggage: &mut Baggage,
        events: &[(u64, &[(&str, Value)])],
    ) {
        if events.is_empty() || !self.enabled.load(std::sync::atomic::Ordering::Relaxed) {
            return;
        }
        let retro_on = self.retro_enabled.load(Ordering::Relaxed);
        let mut retro_request = 0u64;
        let mut retro_outlier = false;
        if retro_on {
            retro_request = trace_of(baggage).unwrap_or(0);
            let mut ring = self.retro.lock();
            for (now, exports) in events {
                ring.record(tracepoint, *now, retro_request, exports);
            }
            drop(ring);
            retro_outlier = events.iter().any(|(_, e)| self.retro_outlier(e));
        }
        let Some((tp_value, list)) = self.registry.lookup(tracepoint) else {
            if !self.registry.is_idle() {
                self.stats.lock().idle_invocations += events.len() as u64;
            }
            return;
        };
        // Materialize every event's full export set back-to-back in one
        // arena (sized exactly up front, so slices below never move) —
        // the whole batch costs one allocation instead of one Vec per
        // event; each program then runs over the whole batch.
        let total: usize = events
            .iter()
            .map(|(_, exports)| exports.len() + DEFAULT_EXPORTS.len())
            .sum();
        let mut arena: Vec<(&str, Value)> = Vec::with_capacity(total);
        let mut bounds: Vec<(usize, usize)> = Vec::with_capacity(events.len());
        for (now, exports) in events {
            let start = arena.len();
            arena.push(("host", self.host_value.clone()));
            arena.push(("timestamp", Value::U64(*now)));
            arena.push(("procid", Value::U64(self.info.procid)));
            arena.push(("procname", self.procname_value.clone()));
            arena.push(("tracepoint", tp_value.clone()));
            arena.extend(exports.iter().cloned());
            bounds.push((start, arena.len()));
        }
        let batch: Vec<&[(&str, Value)]> = bounds.iter().map(|&(s, e)| &arena[s..e]).collect();
        let charge_now = events.last().expect("non-empty").0;

        let mut sink = AgentSink {
            buffers: &self.buffers,
            guard: None,
            row_cap: self.row_cap.load(Ordering::Relaxed),
            triggers: Vec::new(),
        };
        let mut packed = 0u64;
        let mut emitted = 0u64;
        let mut tripped: Vec<QueryId> = Vec::new();
        if self.governed.load(Ordering::Relaxed) {
            let mut governors = self.governors.lock();
            VM.with(|vm| {
                let mut vm = vm.borrow_mut();
                for woven in list.iter() {
                    let Some(g) = governors.get_mut(&woven.query) else {
                        let s = vm.run_batch(&woven.code, &batch, baggage, &mut sink);
                        packed += s.packed as u64;
                        emitted += s.emitted as u64;
                        continue;
                    };
                    let ops0 = vm.ops();
                    let m0 = baggage.meter();
                    let s = vm.run_batch(&woven.code, &batch, baggage, &mut sink);
                    packed += s.packed as u64;
                    emitted += s.emitted as u64;
                    let m1 = baggage.meter();
                    let work = (s.emitted + s.packed) as u64;
                    let bytes = (m1.values - m0.values).saturating_mul(NOMINAL_BYTES_PER_VALUE);
                    if charge_governor(
                        g,
                        woven.query,
                        charge_now,
                        work,
                        vm.ops() - ops0,
                        bytes,
                        m1.truncated - m0.truncated,
                    ) {
                        tripped.push(woven.query);
                    }
                }
            });
        } else {
            VM.with(|vm| {
                let mut vm = vm.borrow_mut();
                for woven in list.iter() {
                    let s = vm.run_batch(&woven.code, &batch, baggage, &mut sink);
                    packed += s.packed as u64;
                    emitted += s.emitted as u64;
                }
            });
        }
        let fired = std::mem::take(&mut sink.triggers);
        drop(sink);
        for query in &tripped {
            self.registry.unweave(*query);
        }
        if retro_on {
            self.fire_retro(&fired, &tripped, retro_outlier, retro_request, charge_now);
        }
        let mut st = self.stats.lock();
        st.advised_invocations += events.len() as u64;
        st.tuples_packed += packed;
        st.tuples_emitted += emitted;
    }

    /// Runs one bytecode program directly (exposed for benches and tests
    /// that bypass the registry). `exports` must already include the
    /// default exports.
    pub fn run_code(
        &self,
        code: &AdviceByteCode,
        exports: &[(&str, Value)],
        baggage: &mut Baggage,
    ) -> pivot_query::VmStats {
        let mut sink = AgentSink {
            buffers: &self.buffers,
            guard: None,
            row_cap: self.row_cap.load(Ordering::Relaxed),
            triggers: Vec::new(),
        };
        VM.with(|vm| vm.borrow_mut().run(code, exports, baggage, &mut sink))
    }

    /// Batch twin of [`Agent::run_code`]: runs one bytecode program over
    /// a whole batch of invocations through [`pivot_query::Vm::run_batch`].
    /// Every element of `batch` must already include the default exports.
    pub fn run_code_batch(
        &self,
        code: &AdviceByteCode,
        batch: &[&[(&str, Value)]],
        baggage: &mut Baggage,
    ) -> pivot_query::VmStats {
        let mut sink = AgentSink {
            buffers: &self.buffers,
            guard: None,
            row_cap: self.row_cap.load(Ordering::Relaxed),
            triggers: Vec::new(),
        };
        VM.with(|vm| vm.borrow_mut().run_batch(code, batch, baggage, &mut sink))
    }

    /// Publishes and clears the local partial results (paper Figure 2, Æ).
    ///
    /// The embedding system calls this once per reporting interval; the
    /// returned reports are addressed to the frontend. The flush also runs
    /// the governor's slow work: breakers whose backoff has elapsed re-arm
    /// (their retained advice is re-woven), and pending [`Throttled`]
    /// frames plus updated truncation counts ride out on the reports —
    /// forcing a row-less report when necessary so the frontend always
    /// hears about a trip or a truncation.
    pub fn flush(&self, now: u64) -> Vec<Report> {
        // Governor pre-pass, then buffers: the two locks are never held
        // together here (re-arming re-weaves through the registry).
        let mut throttles: Vec<Throttled> = Vec::new();
        let mut truncations: Vec<(QueryId, u64)> = Vec::new();
        let mut pending_specs: Vec<(QueryId, Arc<OutputSpec>)> = Vec::new();
        {
            let mut governors = self.governors.lock();
            for (query, g) in governors.iter_mut() {
                if let Some(until) = g.open_until {
                    if now >= until {
                        // Re-arm: fresh window, advice re-woven. `trips`
                        // is kept so a re-trip backs off longer.
                        g.open_until = None;
                        g.window_start = now;
                        g.tuples = 0;
                        g.ops = 0;
                        g.bytes = 0;
                        for program in &g.programs {
                            self.registry.weave(*query, Arc::clone(program));
                        }
                    }
                }
                if let Some(t) = g.pending.take() {
                    if let Some(spec) = &g.spec {
                        pending_specs.push((*query, Arc::clone(spec)));
                    }
                    throttles.push(t);
                }
                if g.truncated_cum > 0 {
                    truncations.push((*query, g.truncated_cum));
                }
            }
        }
        let mut buffers = self.buffers.lock();
        // A throttled query that never emitted here still needs a buffer
        // to carry the trip's envelope out.
        for (query, spec) in pending_specs {
            buffers.entry(query).or_insert_with(|| Buffer::new(&spec));
        }
        let mut out = Vec::new();
        for (query, buf) in buffers.iter_mut() {
            let throttled = throttles
                .iter()
                .position(|t| t.query == *query)
                .map(|i| throttles.swap_remove(i));
            let truncated_cum = truncations
                .iter()
                .find(|(q, _)| q == query)
                .map_or(buf.truncated_sent, |(_, n)| *n);
            let has_rows = !matches!(
                &buf.rows,
                Rows::Streaming(rows) if rows.is_empty()
            ) && !matches!(
                &buf.rows,
                Rows::Grouped(groups) if groups.is_empty()
            );
            // Skip only when there is truly nothing to say: no rows, no
            // new shed/truncation counts, no trip to report.
            if !has_rows && !buf.dirty && truncated_cum == buf.truncated_sent && throttled.is_none()
            {
                continue;
            }
            let rows = match &mut buf.rows {
                Rows::Streaming(rows) if rows.len() >= ENCODE_MIN_ROWS => {
                    // Large streaming batches flush pre-encoded; clearing
                    // (not taking) the buffer keeps its capacity for the
                    // next interval, so steady state stops growing.
                    let blocks = rows
                        .chunks(colblock::MAX_BLOCK_ROWS)
                        .map(EncodedBlock::encode)
                        .collect();
                    rows.clear();
                    ReportRows::RawEncoded(blocks)
                }
                Rows::Streaming(rows) => ReportRows::Raw(std::mem::take(rows)),
                Rows::Grouped(groups) => ReportRows::Grouped(groups.drain().collect()),
            };
            // Sequence numbers are only consumed by reports that actually
            // exist, so a receiver-side gap always means a lost report,
            // never an idle interval.
            let seq = buf.seq;
            buf.seq += 1;
            buf.dirty = false;
            buf.truncated_sent = truncated_cum;
            out.push(Report {
                query: *query,
                host: self.info.host.clone(),
                procid: self.info.procid,
                procname: self.info.procname.clone(),
                incarnation: self.incarnation,
                time: now,
                seq,
                tuples: std::mem::take(&mut buf.tuples_since_flush),
                emitted_cum: buf.emitted_cum,
                shed_cum: buf.shed_cum,
                truncated_cum,
                throttled,
                rows,
            });
        }
        let mut st = self.stats.lock();
        for r in &out {
            st.rows_reported += r.rows.len() as u64;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_baggage::PackMode;
    use pivot_model::{AggFunc, Expr, Schema};
    use pivot_query::advice::ColumnRef;
    use pivot_query::{AdviceOp, AdviceProgram, CompiledQuery};

    fn agent() -> Agent {
        Agent::new(ProcessInfo {
            host: "host-A".into(),
            procid: 7,
            procname: "DataNode".into(),
        })
    }

    fn q2_like() -> CompiledQuery {
        let slot = QueryId(256 + 1);
        let spec = Arc::new(OutputSpec {
            key_exprs: vec![Expr::field("cl.procName")],
            key_names: vec!["cl.procName".into()],
            aggs: vec![(AggFunc::Sum, Expr::field("incr.delta"))],
            agg_names: vec!["SUM(incr.delta)".into()],
            columns: vec![ColumnRef::Key(0), ColumnRef::Agg(0)],
            streaming: false,
            ..OutputSpec::default()
        });
        CompiledQuery {
            id: QueryId(1),
            name: "q2".into(),
            text: String::new(),
            output: Arc::clone(&spec),
            advice: vec![
                AdviceProgram {
                    tracepoints: vec!["ClientProtocols".into()],
                    ops: vec![
                        AdviceOp::Observe {
                            alias: "cl".into(),
                            fields: vec!["procname".into()],
                        },
                        AdviceOp::Pack {
                            slot,
                            mode: PackMode::First(1),
                            exprs: vec![Expr::field("cl.procname")],
                            names: vec!["cl.procName".into()],
                        },
                    ],
                },
                AdviceProgram {
                    tracepoints: vec!["DataNodeMetrics.incrBytesRead".into()],
                    ops: vec![
                        AdviceOp::Observe {
                            alias: "incr".into(),
                            fields: vec!["delta".into()],
                        },
                        AdviceOp::Unpack {
                            slot,
                            schema: Schema::new(["cl.procName"]),
                            post_filter: None,
                        },
                        AdviceOp::Emit {
                            query: QueryId(1),
                            spec,
                        },
                    ],
                },
            ],
        }
    }

    fn q2_code() -> Arc<CompiledCode> {
        let (code, notes) = CompiledCode::lower(&q2_like());
        assert!(notes.is_empty(), "unexpected lowering notes: {notes:?}");
        Arc::new(code)
    }

    #[test]
    fn unwoven_invocation_is_cheap_noop() {
        let a = agent();
        let mut bag = Baggage::new();
        a.invoke("anything", &mut bag, 0, &[]);
        assert_eq!(a.stats().advised_invocations, 0);
        assert!(bag.is_empty());
    }

    #[test]
    fn end_to_end_q2_through_one_agent() {
        let a = agent();
        a.apply(&Command::Install(q2_code()));

        // A client invocation packs the process name...
        let mut bag = Baggage::new();
        a.invoke("ClientProtocols", &mut bag, 10, &[]);
        // ...then two DataNode reads emit deltas joined to it.
        a.invoke(
            "DataNodeMetrics.incrBytesRead",
            &mut bag,
            20,
            &[("delta", Value::I64(100))],
        );
        a.invoke(
            "DataNodeMetrics.incrBytesRead",
            &mut bag,
            30,
            &[("delta", Value::I64(50))],
        );

        let reports = a.flush(1_000_000_000);
        assert_eq!(reports.len(), 1);
        match &reports[0].rows {
            ReportRows::Grouped(rows) => {
                assert_eq!(rows.len(), 1);
                let (key, states) = &rows[0];
                assert_eq!(key.0.get(0), &Value::str("DataNode"));
                assert_eq!(states[0].finish(), Value::I64(150));
            }
            _ => panic!("expected grouped"),
        }
        // Local aggregation: two emits became one reported row.
        assert_eq!(a.stats().tuples_emitted, 2);
        assert_eq!(a.stats().rows_reported, 1);

        // Flush drains.
        assert!(a.flush(2_000_000_000).is_empty());
    }

    #[test]
    fn uninstall_stops_advice() {
        let a = agent();
        a.install(&q2_code());
        a.apply(&Command::Uninstall(QueryId(1)));
        let mut bag = Baggage::new();
        a.invoke("ClientProtocols", &mut bag, 0, &[]);
        assert!(bag.is_empty());
        assert!(a.registry().is_idle());
    }
}
