//! Message-bus types connecting the frontend and the agents.
//!
//! The paper's prototype uses a central pub/sub server (Figure 2). This
//! crate defines the messages; delivery is owned by the embedding system —
//! the simulated cluster delivers them over its simulated network, while
//! [`LocalBus`] delivers instantly for tests, examples, and benches.
//!
//! Delivery *policy* is factored out of delivery *mechanics*: a
//! [`Scheduler`] decides the fate ([`Verdict`]) of every frame crossing a
//! [`SchedBus`], which owns the one shared implementation of holding,
//! releasing, duplicating, and dropping frames. Plain FIFO delivery
//! ([`FifoScheduler`]), the chaos injector's seeded fault PRF, and the
//! interleaving explorer's exhaustive schedule enumeration are all just
//! `Scheduler` implementations over the same mechanics.

use parking_lot::Mutex;
use std::sync::Arc;

use pivot_baggage::QueryId;
use pivot_model::{AggState, EncodedBlock, GroupKey, Tuple};
use pivot_query::CompiledCode;

use crate::retro::RetroReport;

/// A transport between the frontend and the per-process agents (the
/// paper's Figure 2 pub/sub server).
///
/// Implementations decide *how* [`Command`]s reach agents and how
/// [`Report`]s travel back: [`LocalBus`] delivers both synchronously inside
/// one process, the simulated cluster delivers over its virtual network,
/// and `pivot-live`'s TCP bus carries the same messages over real sockets
/// between real processes. The frontend-facing code is identical across
/// all three.
pub trait Bus {
    /// Broadcasts a frontend command to every connected agent.
    fn broadcast(&self, cmd: &Command);

    /// Collects the reports currently addressed to the frontend.
    ///
    /// `now` is the flush timestamp for transports that flush agents on
    /// demand; transports whose agents self-report on their own clocks
    /// (e.g. over TCP) ignore it.
    fn drain_reports(&self, now: u64) -> Vec<Report>;

    /// Collects the retroactive-flush reports currently addressed to the
    /// frontend. Transports predating retroactive tracing carry none, so
    /// the default is empty. `now` serves the same role as in
    /// [`Bus::drain_reports`].
    fn drain_retro(&self, now: u64) -> Vec<RetroReport> {
        let _ = now;
        Vec::new()
    }

    /// Drains pending reports (and retro reports) into `frontend`.
    fn pump_into(&self, now: u64, frontend: &mut crate::Frontend) {
        for report in self.drain_reports(now) {
            frontend.accept(report);
        }
        for retro in self.drain_retro(now) {
            frontend.accept_retro(retro);
        }
    }
}

// Shared handles forward to the underlying bus, so embeddings that hand
// out `Rc<Cluster>` / `Arc<TcpBusServer>` handles can still be wrapped by
// bus middleware such as `pivot-chaos`'s fault injector.
impl<B: Bus + ?Sized> Bus for std::rc::Rc<B> {
    fn broadcast(&self, cmd: &Command) {
        (**self).broadcast(cmd);
    }
    fn drain_reports(&self, now: u64) -> Vec<Report> {
        (**self).drain_reports(now)
    }
    fn drain_retro(&self, now: u64) -> Vec<RetroReport> {
        (**self).drain_retro(now)
    }
}

impl<B: Bus + ?Sized> Bus for Arc<B> {
    fn broadcast(&self, cmd: &Command) {
        (**self).broadcast(cmd);
    }
    fn drain_reports(&self, now: u64) -> Vec<Report> {
        (**self).drain_reports(now)
    }
    fn drain_retro(&self, now: u64) -> Vec<RetroReport> {
        (**self).drain_retro(now)
    }
}

// Boxed buses make heterogeneous topologies expressible — e.g. the relay
// tier's fan-in over subtrees that mix plain, scheduled, and chaos-wrapped
// links under one `Vec<Box<dyn Bus>>`.
impl<B: Bus + ?Sized> Bus for Box<B> {
    fn broadcast(&self, cmd: &Command) {
        (**self).broadcast(cmd);
    }
    fn drain_reports(&self, now: u64) -> Vec<Report> {
        (**self).drain_reports(now)
    }
    fn drain_retro(&self, now: u64) -> Vec<RetroReport> {
        (**self).drain_retro(now)
    }
}

/// A frontend → agents control message.
///
/// `Install` carries the *lowered* bytecode ([`CompiledCode`]), not the
/// advice-op tree: agents execute exactly the artifact the frontend
/// verified, and the wire protocol serializes flat instructions instead of
/// expression trees.
#[derive(Clone, Debug)]
pub enum Command {
    /// Weave this query's lowered advice bytecode.
    Install(Arc<CompiledCode>),
    /// Unweave every program owned by this query.
    Uninstall(QueryId),
    /// Set (or replace) the overload-governor budget for a query.
    SetBudget(QueryId, crate::governor::QueryBudget),
}

/// Partial results of one query from one process over one interval.
///
/// Besides the rows themselves, every report carries the loss-accounting
/// envelope the frontend needs to detect faults on the report path:
/// `seq` (a per-agent, per-query flush counter) exposes duplicated and
/// missing reports, and `tuples` / `emitted_cum` let the frontend balance
/// `tuples_dropped + delivered == emitted` even when whole reports vanish.
#[derive(Clone, PartialEq, Debug)]
pub struct Report {
    /// The query.
    pub query: QueryId,
    /// Reporting host.
    pub host: String,
    /// Reporting process id (with `host`, the agent's stable identity).
    pub procid: u64,
    /// Reporting process name.
    pub procname: String,
    /// Agent incarnation: distinguishes a restarted agent (whose `seq`
    /// restarts at 0) from duplicated frames of the previous life.
    pub incarnation: u64,
    /// Report timestamp (nanoseconds).
    pub time: u64,
    /// Per-(agent, query) flush sequence number, starting at 0. Consecutive
    /// on the sender; gaps or repeats on the receiver are transport faults.
    pub seq: u64,
    /// Tuples folded into this report (the delta since the previous flush).
    pub tuples: u64,
    /// Cumulative tuples emitted for this query by this agent incarnation,
    /// including the ones in this report.
    pub emitted_cum: u64,
    /// Cumulative tuples this incarnation's governor shed from bounded
    /// buffers (emitted but intentionally never delivered; extends the
    /// loss identity with a `governor_shed` term).
    pub shed_cum: u64,
    /// Cumulative tuples truncated by the baggage `All`-cap for this query
    /// on this incarnation (never emitted; informational, so the frontend
    /// can distinguish governor truncation from transport drops).
    pub truncated_cum: u64,
    /// A circuit-breaker trip that occurred since the previous flush.
    pub throttled: Option<crate::governor::Throttled>,
    /// The partial rows.
    pub rows: ReportRows,
}

/// Rows inside a report.
#[derive(Clone, PartialEq, Debug)]
pub enum ReportRows {
    /// Raw rows of a streaming (non-aggregating) query.
    Raw(Vec<Tuple>),
    /// Partially aggregated groups.
    Grouped(Vec<(GroupKey, Vec<AggState>)>),
    /// Raw rows of a streaming query, already in the columnar block
    /// encoding ([`pivot_model::EncodedBlock`]).
    ///
    /// Agents flush large streaming batches in this form so the wire
    /// layer ships (and relays re-originate) the compressed bytes
    /// without re-encoding — or, on the relay path, without decoding at
    /// all. Only the frontend materializes tuples. Each block's row
    /// count is trusted for accounting (it is validated at wire decode);
    /// the payload is validated when the frontend decodes it.
    RawEncoded(Vec<EncodedBlock>),
}

impl ReportRows {
    /// Number of rows carried.
    pub fn len(&self) -> usize {
        match self {
            ReportRows::Raw(r) => r.len(),
            ReportRows::Grouped(g) => g.len(),
            ReportRows::RawEncoded(blocks) => blocks.iter().map(EncodedBlock::rows).sum(),
        }
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An instant-delivery bus for single-process embeddings.
///
/// Registers agents, broadcasts commands synchronously, and pumps agent
/// flushes straight into the frontend.
#[derive(Default)]
pub struct LocalBus {
    agents: Vec<Arc<crate::Agent>>,
}

impl LocalBus {
    /// Creates an empty bus.
    pub fn new() -> LocalBus {
        LocalBus::default()
    }

    /// Registers an agent.
    pub fn register(&mut self, agent: Arc<crate::Agent>) {
        self.agents.push(agent);
    }

    /// Removes an agent (by identity), e.g. when a chaos harness crashes a
    /// simulated process. Unflushed tuples die with it, exactly as a real
    /// process crash would lose them.
    pub fn unregister(&mut self, agent: &Arc<crate::Agent>) {
        self.agents.retain(|a| !Arc::ptr_eq(a, agent));
    }

    /// Returns the registered agents.
    pub fn agents(&self) -> &[Arc<crate::Agent>] {
        &self.agents
    }

    /// Broadcasts a command to every agent.
    pub fn broadcast(&self, cmd: &Command) {
        Bus::broadcast(self, cmd);
    }

    /// Flushes every agent and delivers the reports to `frontend`.
    pub fn pump(&self, now: u64, frontend: &mut crate::Frontend) {
        self.pump_into(now, frontend);
    }
}

impl Bus for LocalBus {
    fn broadcast(&self, cmd: &Command) {
        broadcast_to_agents(&self.agents, cmd);
    }

    fn drain_reports(&self, now: u64) -> Vec<Report> {
        flush_agents(&self.agents, now)
    }

    fn drain_retro(&self, _now: u64) -> Vec<RetroReport> {
        self.agents.iter().flat_map(|a| a.drain_retro()).collect()
    }
}

/// Applies `cmd` to every agent — the one broadcast loop shared by
/// [`LocalBus`] and the simulated cluster's bus.
pub fn broadcast_to_agents(agents: &[Arc<crate::Agent>], cmd: &Command) {
    for a in agents {
        a.apply(cmd);
    }
}

/// Flushes every agent at `now` and collects the reports — the one
/// drain loop shared by [`LocalBus`] and the simulated cluster's bus.
pub fn flush_agents(agents: &[Arc<crate::Agent>], now: u64) -> Vec<Report> {
    agents.iter().flat_map(|a| a.flush(now)).collect()
}

/// The fate of one frame crossing a [`SchedBus`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Verdict {
    /// Deliver normally.
    Deliver,
    /// Silently discard (tallied in [`DeliveryStats`]).
    Drop,
    /// Deliver two copies.
    Duplicate,
    /// Hold for this many nanoseconds, then deliver.
    Delay(u64),
}

/// Delivery policy for a [`SchedBus`]: decides the [`Verdict`] of every
/// command and report frame crossing the bus.
///
/// Implementations are consulted under the bus's internal lock and must
/// be pure functions of their own state plus the frame identity — the
/// chaos injector's seeded PRF and the interleaving explorer's
/// hold-everything policy both satisfy this trivially.
pub trait Scheduler {
    /// The fate of the `index`-th broadcast command frame (`index` counts
    /// admissions on this bus, starting at 0).
    fn command_verdict(&self, index: u64, cmd: &Command) -> Verdict;

    /// The fate of one report frame admitted at `now`.
    fn report_verdict(&self, report: &Report, now: u64) -> Verdict;

    /// The fate of one retroactive-flush report frame admitted at `now`.
    /// Defaults to normal delivery so pre-retro schedulers need no change.
    fn retro_verdict(&self, report: &RetroReport, now: u64) -> Verdict {
        let _ = (report, now);
        Verdict::Deliver
    }
}

/// The trivial policy: deliver everything immediately, in admission
/// order. `SchedBus<B, FifoScheduler>` behaves exactly like `B` while
/// still tallying [`DeliveryStats`].
#[derive(Clone, Copy, Default, Debug)]
pub struct FifoScheduler;

impl Scheduler for FifoScheduler {
    fn command_verdict(&self, _index: u64, _cmd: &Command) -> Verdict {
        Verdict::Deliver
    }
    fn report_verdict(&self, _report: &Report, _now: u64) -> Verdict {
        Verdict::Deliver
    }
}

/// What a [`SchedBus`] did to the frames that crossed it, cumulatively.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct DeliveryStats {
    /// Report frames that crossed the bus.
    pub reports_seen: u64,
    /// Report frames discarded.
    pub reports_dropped: u64,
    /// Report frames delivered twice.
    pub reports_duplicated: u64,
    /// Report frames held for later delivery.
    pub reports_delayed: u64,
    /// Tuples carried by dropped report frames (the bus-side ground
    /// truth for the frontend's `tuples_dropped`).
    pub tuples_dropped: u64,
    /// Command frames that crossed the bus.
    pub commands_seen: u64,
    /// Command frames discarded.
    pub commands_dropped: u64,
    /// Command frames delivered twice.
    pub commands_duplicated: u64,
    /// Command frames held for later delivery.
    pub commands_delayed: u64,
    /// Retro report frames that crossed the bus.
    pub retro_seen: u64,
    /// Retro report frames discarded.
    pub retro_dropped: u64,
    /// Retro report frames delivered twice.
    pub retro_duplicated: u64,
    /// Retro report frames held for later delivery.
    pub retro_delayed: u64,
    /// Buffered events carried by dropped retro frames (the bus-side
    /// ground truth for the frontend's retro `dropped` term).
    pub retro_events_dropped: u64,
}

/// A frame currently held by a [`SchedBus`], exposed to
/// [`SchedBus::release_where`] predicates.
pub enum HeldFrame<'a> {
    /// A held command, identified by its admission index on this bus.
    Command {
        /// The admission index [`Scheduler::command_verdict`] saw.
        index: u64,
        /// The command itself.
        cmd: &'a Command,
    },
    /// A held report.
    Report(&'a Report),
    /// A held retroactive-flush report.
    Retro(&'a RetroReport),
}

struct PendingReport {
    release: u64,
    report: Report,
}

struct PendingRetro {
    release: u64,
    report: RetroReport,
}

struct PendingCommand {
    index: u64,
    delay: u64,
    /// Set on the first drain after the broadcast (the bus has no clock of
    /// its own; commands age relative to the next observed `now`).
    release: Option<u64>,
    cmd: Command,
}

#[derive(Default)]
struct SchedShared {
    pending_reports: Vec<PendingReport>,
    pending_retro: Vec<PendingRetro>,
    pending_cmds: Vec<PendingCommand>,
    stats: DeliveryStats,
    cmd_index: u64,
    disabled: bool,
    severed: bool,
}

/// Bus middleware routing every frame through a [`Scheduler`].
///
/// Owns the delivery mechanics every scheduled transport shares: pending
/// frames with release deadlines, duplicate and drop tallies, an on/off
/// switch, and a severed-link state modelling a dead connection. Works
/// over any transport — [`LocalBus`], the simulated cluster's
/// `Rc<Cluster>`, or a live `Arc<TcpBusServer>` — because it only touches
/// the [`Bus`] trait surface.
pub struct SchedBus<B, S> {
    inner: B,
    sched: S,
    shared: Mutex<SchedShared>,
}

impl<B, S> SchedBus<B, S> {
    /// Wraps `inner`, routing every frame through `sched`.
    pub fn new(inner: B, sched: S) -> SchedBus<B, S> {
        SchedBus {
            inner,
            sched,
            shared: Mutex::new(SchedShared::default()),
        }
    }

    /// The wrapped bus.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// The wrapped bus, mutably (e.g. to register/unregister agents on a
    /// [`LocalBus`] when a harness crashes and restarts them).
    pub fn inner_mut(&mut self) -> &mut B {
        &mut self.inner
    }

    /// The delivery policy.
    pub fn scheduler(&self) -> &S {
        &self.sched
    }

    /// A snapshot of the delivery tallies.
    pub fn stats(&self) -> DeliveryStats {
        self.shared.lock().stats
    }

    /// Turns scheduling on or off. While disabled the bus is a transparent
    /// pass-through (pending frames still release on drain).
    pub fn set_enabled(&self, enabled: bool) {
        self.shared.lock().disabled = !enabled;
    }

    /// Marks every held frame due immediately, so the next drain delivers
    /// it regardless of the clock.
    pub fn release_pending(&self) {
        self.release_where(|_| true);
    }

    /// Marks the held frames matching `pred` due immediately; returns how
    /// many matched. The interleaving explorer uses this to deliver one
    /// chosen frame per transition.
    pub fn release_where(&self, mut pred: impl FnMut(&HeldFrame) -> bool) -> usize {
        let mut sh = self.shared.lock();
        let mut n = 0;
        for p in &mut sh.pending_reports {
            if pred(&HeldFrame::Report(&p.report)) {
                p.release = 0;
                n += 1;
            }
        }
        for p in &mut sh.pending_retro {
            if pred(&HeldFrame::Retro(&p.report)) {
                p.release = 0;
                n += 1;
            }
        }
        for p in &mut sh.pending_cmds {
            if pred(&HeldFrame::Command {
                index: p.index,
                cmd: &p.cmd,
            }) {
                p.release = Some(0);
                n += 1;
            }
        }
        n
    }

    /// Frames currently held for later delivery (reports + retro reports,
    /// commands).
    pub fn pending(&self) -> (usize, usize) {
        let sh = self.shared.lock();
        (
            sh.pending_reports.len() + sh.pending_retro.len(),
            sh.pending_cmds.len(),
        )
    }

    /// Severs the link: the connection between this bus and its frontend
    /// is down. Frames admitted while severed are held regardless of
    /// their verdict (outage buffering — they deliver after
    /// [`SchedBus::restore`]), and nothing releases on drain.
    pub fn sever(&self) {
        self.shared.lock().severed = true;
    }

    /// Restores a severed link; held frames release again per their
    /// deadlines.
    pub fn restore(&self) {
        self.shared.lock().severed = false;
    }

    /// Whether the link is currently severed.
    pub fn is_severed(&self) -> bool {
        self.shared.lock().severed
    }
}

impl<B, S: Scheduler> SchedBus<B, S> {
    /// Admits one externally produced report through the scheduler, as if
    /// the inner bus had drained it at `now`. Returns any immediately
    /// deliverable copies. Harnesses that flush agents themselves (the
    /// interleaving explorer) use this instead of routing flushes through
    /// [`Bus::drain_reports`].
    pub fn offer_report(&self, report: Report, now: u64) -> Vec<Report> {
        let mut out = Vec::new();
        let mut sh = self.shared.lock();
        if sh.disabled {
            out.push(report);
            return out;
        }
        self.admit_report(&mut sh, report, now, &mut out);
        out
    }

    /// Admits one externally produced retro report through the scheduler
    /// (the retro analogue of [`SchedBus::offer_report`]).
    pub fn offer_retro(&self, report: RetroReport, now: u64) -> Vec<RetroReport> {
        let mut out = Vec::new();
        let mut sh = self.shared.lock();
        if sh.disabled {
            out.push(report);
            return out;
        }
        self.admit_retro(&mut sh, report, now, &mut out);
        out
    }

    fn admit_retro(
        &self,
        sh: &mut SchedShared,
        r: RetroReport,
        now: u64,
        out: &mut Vec<RetroReport>,
    ) {
        sh.stats.retro_seen += 1;
        let mut verdict = self.sched.retro_verdict(&r, now);
        if sh.severed {
            // Same outage buffering as ordinary reports: a dead link
            // cannot deliver now, so deliveries become holds.
            verdict = match verdict {
                Verdict::Deliver | Verdict::Duplicate => Verdict::Delay(0),
                v => v,
            };
        }
        match verdict {
            Verdict::Deliver => out.push(r),
            Verdict::Drop => {
                sh.stats.retro_dropped += 1;
                sh.stats.retro_events_dropped += r.events.len() as u64;
            }
            Verdict::Duplicate => {
                sh.stats.retro_duplicated += 1;
                out.push(r.clone());
                out.push(r);
            }
            Verdict::Delay(d) => {
                sh.stats.retro_delayed += 1;
                sh.pending_retro.push(PendingRetro {
                    release: now.saturating_add(d),
                    report: r,
                });
            }
        }
    }

    fn admit_report(&self, sh: &mut SchedShared, r: Report, now: u64, out: &mut Vec<Report>) {
        sh.stats.reports_seen += 1;
        if sh.severed && crate::mutation::silent_reader_exit() {
            // Seeded mutation (PR 4's silent reader-exit bug): the link is
            // down and the frame vanishes with no loss tally anywhere —
            // exactly the unaccounted loss the explorer's identity check
            // must catch. Compiled out without the `mutations` feature.
            return;
        }
        let mut verdict = self.sched.report_verdict(&r, now);
        if sh.severed {
            // A dead link cannot deliver now: deliveries and duplicates
            // become holds that release after restore.
            verdict = match verdict {
                Verdict::Deliver | Verdict::Duplicate => Verdict::Delay(0),
                v => v,
            };
        }
        match verdict {
            Verdict::Deliver => out.push(r),
            Verdict::Drop => {
                sh.stats.reports_dropped += 1;
                sh.stats.tuples_dropped += r.tuples;
            }
            Verdict::Duplicate => {
                sh.stats.reports_duplicated += 1;
                out.push(r.clone());
                out.push(r);
            }
            Verdict::Delay(d) => {
                sh.stats.reports_delayed += 1;
                sh.pending_reports.push(PendingReport {
                    release: now.saturating_add(d),
                    report: r,
                });
            }
        }
    }
}

impl<B: Bus, S: Scheduler> SchedBus<B, S> {
    /// End-of-run convergence: stop scheduling, release every held frame,
    /// and pump the final reports into `frontend`. After this, everything
    /// the policy did not *drop* has been delivered.
    pub fn settle_into(&self, now: u64, frontend: &mut crate::Frontend) {
        self.set_enabled(false);
        self.restore();
        self.release_pending();
        self.pump_into(now, frontend);
    }
}

impl<B: Bus, S: Scheduler> Bus for SchedBus<B, S> {
    fn broadcast(&self, cmd: &Command) {
        let mut sh = self.shared.lock();
        if sh.disabled {
            drop(sh);
            self.inner.broadcast(cmd);
            return;
        }
        sh.stats.commands_seen += 1;
        let idx = sh.cmd_index;
        sh.cmd_index += 1;
        let mut verdict = self.sched.command_verdict(idx, cmd);
        if sh.severed {
            verdict = match verdict {
                Verdict::Deliver | Verdict::Duplicate => Verdict::Delay(0),
                v => v,
            };
        }
        match verdict {
            Verdict::Deliver => {
                drop(sh);
                self.inner.broadcast(cmd);
            }
            Verdict::Drop => sh.stats.commands_dropped += 1,
            Verdict::Duplicate => {
                sh.stats.commands_duplicated += 1;
                drop(sh);
                self.inner.broadcast(cmd);
                self.inner.broadcast(cmd);
            }
            Verdict::Delay(d) => {
                sh.stats.commands_delayed += 1;
                sh.pending_cmds.push(PendingCommand {
                    index: idx,
                    delay: d,
                    release: None,
                    cmd: cmd.clone(),
                });
            }
        }
    }

    fn drain_reports(&self, now: u64) -> Vec<Report> {
        let mut sh = self.shared.lock();
        let mut out = Vec::new();
        if !sh.severed {
            // Release due commands before draining, so a late install
            // weaves before this round's flush rather than after it.
            let mut due_cmds = Vec::new();
            sh.pending_cmds.retain_mut(|p| {
                let rel = *p.release.get_or_insert_with(|| now.saturating_add(p.delay));
                if rel <= now {
                    due_cmds.push(p.cmd.clone());
                    false
                } else {
                    true
                }
            });
            for cmd in &due_cmds {
                self.inner.broadcast(cmd);
            }

            let mut i = 0;
            while i < sh.pending_reports.len() {
                if sh.pending_reports[i].release <= now {
                    out.push(sh.pending_reports.swap_remove(i).report);
                } else {
                    i += 1;
                }
            }
        }

        let fresh = self.inner.drain_reports(now);
        if sh.disabled {
            out.extend(fresh);
            return out;
        }
        for r in fresh {
            self.admit_report(&mut sh, r, now, &mut out);
        }
        out
    }

    fn drain_retro(&self, now: u64) -> Vec<RetroReport> {
        let mut sh = self.shared.lock();
        let mut out = Vec::new();
        if !sh.severed {
            let mut i = 0;
            while i < sh.pending_retro.len() {
                if sh.pending_retro[i].release <= now {
                    out.push(sh.pending_retro.swap_remove(i).report);
                } else {
                    i += 1;
                }
            }
        }
        let fresh = self.inner.drain_retro(now);
        if sh.disabled {
            out.extend(fresh);
            return out;
        }
        for r in fresh {
            self.admit_retro(&mut sh, r, now, &mut out);
        }
        out
    }
}
