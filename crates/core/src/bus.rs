//! Message-bus types connecting the frontend and the agents.
//!
//! The paper's prototype uses a central pub/sub server (Figure 2). This
//! crate defines the messages; delivery is owned by the embedding system —
//! the simulated cluster delivers them over its simulated network, while
//! [`LocalBus`] delivers instantly for tests, examples, and benches.

use std::sync::Arc;

use pivot_baggage::QueryId;
use pivot_model::{AggState, GroupKey, Tuple};
use pivot_query::CompiledCode;

/// A transport between the frontend and the per-process agents (the
/// paper's Figure 2 pub/sub server).
///
/// Implementations decide *how* [`Command`]s reach agents and how
/// [`Report`]s travel back: [`LocalBus`] delivers both synchronously inside
/// one process, the simulated cluster delivers over its virtual network,
/// and `pivot-live`'s TCP bus carries the same messages over real sockets
/// between real processes. The frontend-facing code is identical across
/// all three.
pub trait Bus {
    /// Broadcasts a frontend command to every connected agent.
    fn broadcast(&self, cmd: &Command);

    /// Collects the reports currently addressed to the frontend.
    ///
    /// `now` is the flush timestamp for transports that flush agents on
    /// demand; transports whose agents self-report on their own clocks
    /// (e.g. over TCP) ignore it.
    fn drain_reports(&self, now: u64) -> Vec<Report>;

    /// Drains pending reports into `frontend`.
    fn pump_into(&self, now: u64, frontend: &mut crate::Frontend) {
        for report in self.drain_reports(now) {
            frontend.accept(report);
        }
    }
}

// Shared handles forward to the underlying bus, so embeddings that hand
// out `Rc<Cluster>` / `Arc<TcpBusServer>` handles can still be wrapped by
// bus middleware such as `pivot-chaos`'s fault injector.
impl<B: Bus + ?Sized> Bus for std::rc::Rc<B> {
    fn broadcast(&self, cmd: &Command) {
        (**self).broadcast(cmd);
    }
    fn drain_reports(&self, now: u64) -> Vec<Report> {
        (**self).drain_reports(now)
    }
}

impl<B: Bus + ?Sized> Bus for Arc<B> {
    fn broadcast(&self, cmd: &Command) {
        (**self).broadcast(cmd);
    }
    fn drain_reports(&self, now: u64) -> Vec<Report> {
        (**self).drain_reports(now)
    }
}

/// A frontend → agents control message.
///
/// `Install` carries the *lowered* bytecode ([`CompiledCode`]), not the
/// advice-op tree: agents execute exactly the artifact the frontend
/// verified, and the wire protocol serializes flat instructions instead of
/// expression trees.
#[derive(Clone, Debug)]
pub enum Command {
    /// Weave this query's lowered advice bytecode.
    Install(Arc<CompiledCode>),
    /// Unweave every program owned by this query.
    Uninstall(QueryId),
    /// Set (or replace) the overload-governor budget for a query.
    SetBudget(QueryId, crate::governor::QueryBudget),
}

/// Partial results of one query from one process over one interval.
///
/// Besides the rows themselves, every report carries the loss-accounting
/// envelope the frontend needs to detect faults on the report path:
/// `seq` (a per-agent, per-query flush counter) exposes duplicated and
/// missing reports, and `tuples` / `emitted_cum` let the frontend balance
/// `tuples_dropped + delivered == emitted` even when whole reports vanish.
#[derive(Clone, Debug)]
pub struct Report {
    /// The query.
    pub query: QueryId,
    /// Reporting host.
    pub host: String,
    /// Reporting process id (with `host`, the agent's stable identity).
    pub procid: u64,
    /// Reporting process name.
    pub procname: String,
    /// Agent incarnation: distinguishes a restarted agent (whose `seq`
    /// restarts at 0) from duplicated frames of the previous life.
    pub incarnation: u64,
    /// Report timestamp (nanoseconds).
    pub time: u64,
    /// Per-(agent, query) flush sequence number, starting at 0. Consecutive
    /// on the sender; gaps or repeats on the receiver are transport faults.
    pub seq: u64,
    /// Tuples folded into this report (the delta since the previous flush).
    pub tuples: u64,
    /// Cumulative tuples emitted for this query by this agent incarnation,
    /// including the ones in this report.
    pub emitted_cum: u64,
    /// Cumulative tuples this incarnation's governor shed from bounded
    /// buffers (emitted but intentionally never delivered; extends the
    /// loss identity with a `governor_shed` term).
    pub shed_cum: u64,
    /// Cumulative tuples truncated by the baggage `All`-cap for this query
    /// on this incarnation (never emitted; informational, so the frontend
    /// can distinguish governor truncation from transport drops).
    pub truncated_cum: u64,
    /// A circuit-breaker trip that occurred since the previous flush.
    pub throttled: Option<crate::governor::Throttled>,
    /// The partial rows.
    pub rows: ReportRows,
}

/// Rows inside a report.
#[derive(Clone, Debug)]
pub enum ReportRows {
    /// Raw rows of a streaming (non-aggregating) query.
    Raw(Vec<Tuple>),
    /// Partially aggregated groups.
    Grouped(Vec<(GroupKey, Vec<AggState>)>),
}

impl ReportRows {
    /// Number of rows carried.
    pub fn len(&self) -> usize {
        match self {
            ReportRows::Raw(r) => r.len(),
            ReportRows::Grouped(g) => g.len(),
        }
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An instant-delivery bus for single-process embeddings.
///
/// Registers agents, broadcasts commands synchronously, and pumps agent
/// flushes straight into the frontend.
#[derive(Default)]
pub struct LocalBus {
    agents: Vec<Arc<crate::Agent>>,
}

impl LocalBus {
    /// Creates an empty bus.
    pub fn new() -> LocalBus {
        LocalBus::default()
    }

    /// Registers an agent.
    pub fn register(&mut self, agent: Arc<crate::Agent>) {
        self.agents.push(agent);
    }

    /// Removes an agent (by identity), e.g. when a chaos harness crashes a
    /// simulated process. Unflushed tuples die with it, exactly as a real
    /// process crash would lose them.
    pub fn unregister(&mut self, agent: &Arc<crate::Agent>) {
        self.agents.retain(|a| !Arc::ptr_eq(a, agent));
    }

    /// Returns the registered agents.
    pub fn agents(&self) -> &[Arc<crate::Agent>] {
        &self.agents
    }

    /// Broadcasts a command to every agent.
    pub fn broadcast(&self, cmd: &Command) {
        Bus::broadcast(self, cmd);
    }

    /// Flushes every agent and delivers the reports to `frontend`.
    pub fn pump(&self, now: u64, frontend: &mut crate::Frontend) {
        self.pump_into(now, frontend);
    }
}

impl Bus for LocalBus {
    fn broadcast(&self, cmd: &Command) {
        for a in &self.agents {
            a.apply(cmd);
        }
    }

    fn drain_reports(&self, now: u64) -> Vec<Report> {
        self.agents.iter().flat_map(|a| a.flush(now)).collect()
    }
}
