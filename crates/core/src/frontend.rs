//! The Pivot Tracing frontend: query installation and result collection.

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::Arc;

use pivot_analyze::{Analyzer, Diagnostic};
use pivot_baggage::QueryId;
use pivot_model::{AggState, GroupKey, Tuple, Value};
use pivot_query::advice::ColumnRef;
use pivot_query::{
    compile, CompileError, CompiledCode, CompiledQuery, Options, OutputSpec, Query, Resolver,
};

use crate::bus::{Command, Report, ReportRows};
use crate::governor::{QueryBudget, Throttled};
use crate::retro::RetroReport;
use crate::tracepoint::TracepointDef;

/// A handle to an installed query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct QueryHandle {
    /// The query's identity.
    pub id: QueryId,
    /// The query's name (auto-assigned `Q<n>` unless given).
    pub name: String,
}

/// One output row of a query, laid out in `Select` order.
#[derive(Clone, PartialEq, Debug)]
pub struct ResultRow {
    /// Report timestamp (nanoseconds); 0 for cumulative snapshots.
    pub time: u64,
    /// Values in `Select` order.
    pub values: Vec<Value>,
}

/// Per-query loss accounting, aggregated over every reporting agent.
///
/// A faulty transport can drop, duplicate, or reorder reports; these
/// counters make the damage visible instead of silently wrong:
/// duplicates are suppressed before merging (so aggregates never double
/// count), gaps in the per-agent sequence space are surfaced as
/// `reports_missed`, and the tuple counters balance as
/// `tuples_delivered + tuples_shed + tuples_dropped == tuples_emitted`
/// (where `tuples_emitted` is the frontend's latest view of each agent's
/// cumulative emission counter, and `tuples_shed` is what the agents'
/// overload governor intentionally discarded from bounded buffers —
/// distinguishable from `tuples_dropped`, the transport's losses).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct LossStats {
    /// Reports merged into the results.
    pub reports_accepted: u64,
    /// Reports suppressed as duplicates (same agent, same sequence number).
    pub reports_duplicate: u64,
    /// Sequence-number gaps: reports known to exist but never received.
    pub reports_missed: u64,
    /// Tuples carried by accepted reports.
    pub tuples_delivered: u64,
    /// Tuples the agents report having emitted (max cumulative counter per
    /// agent incarnation, summed).
    pub tuples_emitted: u64,
    /// Tuples the agents' governor shed from bounded buffers (emitted but
    /// intentionally never delivered — accounted, not lost).
    pub tuples_shed: u64,
    /// Tuples the agents' baggage `All`-cap truncated before emission
    /// (informational: these never count toward `tuples_emitted`).
    pub tuples_truncated: u64,
    /// Tuples lost on the report path
    /// (`tuples_emitted - tuples_delivered - tuples_shed`).
    pub tuples_dropped: u64,
}

impl LossStats {
    /// Returns `true` when any report or tuple is known to be lost: the
    /// accumulated results are a lower bound, not the full picture.
    pub fn is_degraded(&self) -> bool {
        self.reports_missed > 0 || self.tuples_dropped > 0
    }
}

/// Loss tracking for one reporting agent incarnation.
#[derive(Clone, Default, Debug)]
struct SourceTrack {
    /// Every sequence number below this has been received.
    next_contig: u64,
    /// Received sequence numbers at or above `next_contig` (out-of-order
    /// arrivals awaiting their predecessors).
    pending: std::collections::BTreeSet<u64>,
    accepted: u64,
    duplicates: u64,
    delivered_tuples: u64,
    emitted_cum: u64,
    shed_cum: u64,
    truncated_cum: u64,
}

impl SourceTrack {
    /// Records `seq`; returns `false` when it is a duplicate.
    fn record(&mut self, seq: u64) -> bool {
        if seq < self.next_contig || !self.pending.insert(seq) {
            self.duplicates += 1;
            return false;
        }
        while self.pending.remove(&self.next_contig) {
            self.next_contig += 1;
        }
        self.accepted += 1;
        true
    }

    /// Sequence numbers known to exist (some later seq arrived) but never
    /// received.
    fn missed(&self) -> u64 {
        match self.pending.iter().next_back() {
            Some(max) => (max + 1 - self.next_contig) - self.pending.len() as u64,
            None => 0,
        }
    }
}

/// Identity of one reporting agent incarnation.
type SourceKey = (String, u64, u64);

/// Retro-flush loss accounting, aggregated over every reporting agent
/// (see [`Frontend::retro_loss`]).
///
/// The retro identity mirrors the tuple identity: per agent ring,
/// `recorded == delivered + sampled_out + shed + outstanding`, where
/// `outstanding` covers events still buffered in a live ring, lost in a
/// crash, or dropped by the transport — the embedding harness (e.g. the
/// chaos simulator) distinguishes those three with its own ground truth.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct RetroLossStats {
    /// Retro reports merged into the results.
    pub reports_accepted: u64,
    /// Retro reports suppressed as duplicates (same agent incarnation,
    /// same ring sequence number).
    pub reports_duplicate: u64,
    /// Buffered events carried by accepted retro reports.
    pub events_delivered: u64,
    /// Events the agents report having recorded into their rings (max
    /// cumulative counter per agent incarnation, summed).
    pub events_recorded: u64,
    /// Events overwritten in the ring before any trigger fired (max
    /// cumulative counter per incarnation, summed).
    pub events_sampled_out: u64,
    /// Events shed from the bounded pending-report queue (max cumulative
    /// counter per incarnation, summed).
    pub events_shed: u64,
    /// `recorded - delivered - sampled_out - shed`: events still in
    /// flight, still ring-resident, crash-lost, or transport-dropped.
    pub events_outstanding: u64,
}

/// Retro dedup + cumulative-counter tracking for one agent incarnation.
/// Ring sequence numbers are per-agent (not per-query), so this lives on
/// the frontend rather than inside one query's results.
#[derive(Clone, Default, Debug)]
struct RetroTrack {
    seen: std::collections::BTreeSet<u64>,
    duplicates: u64,
    delivered_events: u64,
    recorded_cum: u64,
    sampled_out_cum: u64,
    shed_cum: u64,
}

/// Accumulated results for one query.
#[derive(Clone, Debug)]
pub struct QueryResults {
    /// The query's output shape (shared with the compiled query).
    pub spec: Arc<OutputSpec>,
    /// Merged-over-all-time groups.
    cumulative: HashMap<GroupKey, Vec<AggState>>,
    /// Per-report-interval merged groups.
    intervals: BTreeMap<u64, HashMap<GroupKey, Vec<AggState>>>,
    /// Raw rows of streaming queries, with report timestamps.
    raw: Vec<(u64, Tuple)>,
    /// Per-agent-incarnation sequence tracking and loss accounting.
    sources: HashMap<SourceKey, SourceTrack>,
    /// Circuit-breaker trips reported by agents, in arrival order.
    throttles: Vec<Throttled>,
    /// Retroactive-flush reports whose trigger named this query, in
    /// arrival order (deduplicated at the frontend before routing).
    retro: Vec<RetroReport>,
}

impl QueryResults {
    fn new(spec: Arc<OutputSpec>) -> QueryResults {
        QueryResults {
            spec,
            cumulative: HashMap::new(),
            intervals: BTreeMap::new(),
            raw: Vec::new(),
            sources: HashMap::new(),
            throttles: Vec::new(),
            retro: Vec::new(),
        }
    }

    fn absorb(&mut self, report: Report) {
        let track = self
            .sources
            .entry((report.host.clone(), report.procid, report.incarnation))
            .or_default();
        if !track.record(report.seq) {
            // A duplicated report frame: merging it again would double
            // count every aggregate, so it is suppressed here.
            return;
        }
        track.delivered_tuples += report.tuples;
        track.emitted_cum = track.emitted_cum.max(report.emitted_cum);
        track.shed_cum = track.shed_cum.max(report.shed_cum);
        track.truncated_cum = track.truncated_cum.max(report.truncated_cum);
        if let Some(t) = report.throttled {
            self.throttles.push(t);
        }
        match report.rows {
            ReportRows::Raw(rows) => {
                for r in rows {
                    self.raw.push((report.time, r));
                }
            }
            ReportRows::RawEncoded(blocks) => {
                // Columnar blocks from batched agent flushes (possibly
                // relayed without ever being decoded in between) are
                // materialized only here. A block that fails to decode is
                // dropped whole: its rows were counted as delivered by
                // the envelope above, so the loss identity is unaffected
                // and corruption shows up as missing rows, not a panic.
                let mut decoded: Vec<Tuple> = Vec::new();
                for block in &blocks {
                    if block.decode_into(&mut decoded).is_err() {
                        decoded.clear();
                    }
                    for r in decoded.drain(..) {
                        self.raw.push((report.time, r));
                    }
                }
            }
            ReportRows::Grouped(rows) => {
                let interval = self.intervals.entry(report.time).or_default();
                for (key, states) in rows {
                    merge_into(&mut self.cumulative, &self.spec, key.clone(), &states);
                    merge_into(interval, &self.spec, key, &states);
                }
            }
        }
    }

    /// Returns the query's loss accounting, aggregated over all reporting
    /// agents. When [`LossStats::is_degraded`] is set, [`Self::rows`] is a
    /// lower bound on the true results.
    pub fn loss(&self) -> LossStats {
        let mut loss = LossStats::default();
        for track in self.sources.values() {
            loss.reports_accepted += track.accepted;
            loss.reports_duplicate += track.duplicates;
            loss.reports_missed += track.missed();
            loss.tuples_delivered += track.delivered_tuples;
            loss.tuples_emitted += track.emitted_cum;
            loss.tuples_shed += track.shed_cum;
            loss.tuples_truncated += track.truncated_cum;
        }
        loss.tuples_dropped = loss
            .tuples_emitted
            .saturating_sub(loss.tuples_delivered)
            .saturating_sub(loss.tuples_shed);
        loss
    }

    /// Circuit-breaker trips reported by agents for this query, sorted
    /// (by query, reason, stats) for deterministic inspection.
    pub fn throttles(&self) -> Vec<Throttled> {
        let mut out = self.throttles.clone();
        out.sort_unstable();
        out
    }

    /// Returns the merged-over-all-time rows in `Select` order, sorted by
    /// key for determinism.
    pub fn rows(&self) -> Vec<ResultRow> {
        let mut out: Vec<ResultRow> = self
            .cumulative
            .iter()
            .map(|(key, states)| ResultRow {
                time: 0,
                values: layout(&self.spec, key, states),
            })
            .collect();
        sort_rows(&mut out);
        out
    }

    /// Returns per-interval rows: `(time, rows)` in time order.
    pub fn series(&self) -> Vec<(u64, Vec<ResultRow>)> {
        self.intervals
            .iter()
            .map(|(t, groups)| {
                let mut rows: Vec<ResultRow> = groups
                    .iter()
                    .map(|(key, states)| ResultRow {
                        time: *t,
                        values: layout(&self.spec, key, states),
                    })
                    .collect();
                sort_rows(&mut rows);
                (*t, rows)
            })
            .collect()
    }

    /// Returns raw streaming rows with their report timestamps.
    pub fn raw_rows(&self) -> &[(u64, Tuple)] {
        &self.raw
    }

    /// Retroactive-flush reports whose trigger named this query, in
    /// arrival order: the full-fidelity event windows that preceded each
    /// trigger firing (breaker trip, latency outlier, fault, or an
    /// explicit `Trigger` advice op).
    pub fn retro(&self) -> &[RetroReport] {
        &self.retro
    }

    /// Returns the total number of accumulated result rows.
    pub fn len(&self) -> usize {
        self.cumulative.len() + self.raw.len()
    }

    /// Returns `true` when no results have arrived.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// The shared grouped-aggregate fold (`pivot_query::merge_grouped`): the
// same merge the relay tier applies in flight, so a report folded once at
// a relay and once here lands on identical totals.
use pivot_query::merge_grouped as merge_into;

fn layout(spec: &OutputSpec, key: &GroupKey, states: &[AggState]) -> Vec<Value> {
    spec.columns
        .iter()
        .map(|c| match c {
            ColumnRef::Key(i) => key.0.get(*i).clone(),
            ColumnRef::Agg(i) => states.get(*i).map(AggState::finish).unwrap_or(Value::Null),
        })
        .collect()
}

fn sort_rows(rows: &mut [ResultRow]) {
    rows.sort_by(|a, b| {
        for (x, y) in a.values.iter().zip(&b.values) {
            match x.compare(y) {
                Some(std::cmp::Ordering::Equal) | None => continue,
                Some(ord) => return ord,
            }
        }
        std::cmp::Ordering::Equal
    });
}

/// Errors surfaced by [`Frontend::install`].
#[derive(Clone, PartialEq, Debug)]
pub enum InstallError {
    /// Compilation failed.
    Compile(CompileError),
    /// A query with this name already exists.
    DuplicateName(String),
    /// The static verifier rejected the query; at least one diagnostic is
    /// error-severity (warnings ride along for context).
    Rejected(Vec<Diagnostic>),
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::Compile(e) => write!(f, "{e}"),
            InstallError::DuplicateName(n) => {
                write!(f, "a query named `{n}` is already installed")
            }
            InstallError::Rejected(diags) => {
                write!(f, "query rejected by the static verifier:")?;
                for d in diags {
                    write!(f, "\n  {d}")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for InstallError {}

struct Installed {
    handle: QueryHandle,
    ast: Query,
    compiled: Arc<CompiledQuery>,
    code: Arc<CompiledCode>,
    /// Budget derived from the static verifier's baggage bound
    /// (unlimited when the bound is infinite or analysis was skipped).
    derived_budget: QueryBudget,
    /// The budget currently in force on the agents, if any was pushed.
    budget: Option<QueryBudget>,
}

/// The query frontend (paper Figure 2's "Pivot Tracing frontend").
///
/// Owns the tracepoint vocabulary, compiles and registers queries, emits
/// weave/unweave [`Command`]s for the embedding system to broadcast, and
/// merges the partial [`Report`]s streaming back from agents.
#[derive(Default)]
pub struct Frontend {
    tracepoints: HashMap<String, TracepointDef>,
    queries: Vec<Installed>,
    results: HashMap<QueryId, QueryResults>,
    /// Per-agent-incarnation retro dedup and cumulative retro counters.
    retro_sources: HashMap<SourceKey, RetroTrack>,
    /// Accepted retro reports whose trigger query is not installed here —
    /// breaker/latency/fault triggers fire with `QueryId(0)` when no
    /// specific query is implicated, and uninstalls can race a flush.
    retro_orphans: Vec<RetroReport>,
    commands: Vec<Command>,
    next_id: u64,
    epoch: u64,
    optimize: bool,
    skip_verify: bool,
    /// When set, every install also pushes the statically-derived
    /// [`QueryBudget`] to the agents (off by default).
    enforce_budgets: bool,
}

impl Frontend {
    /// Creates a frontend with the optimizer enabled.
    pub fn new() -> Frontend {
        Frontend {
            optimize: true,
            next_id: 1,
            ..Frontend::default()
        }
    }

    /// Creates a frontend that compiles queries *without* the Table 3
    /// rewrites (the unoptimized baseline for the ablation benches).
    pub fn new_unoptimized() -> Frontend {
        Frontend {
            optimize: false,
            ..Frontend::new()
        }
    }

    /// Defines a tracepoint (the query vocabulary, paper Figure 2 À).
    pub fn define_tracepoint(&mut self, def: TracepointDef) {
        self.tracepoints.insert(def.name.clone(), def);
    }

    /// Convenience: define a tracepoint by name and export list.
    pub fn define(&mut self, name: &str, exports: impl IntoIterator<Item = impl Into<String>>) {
        self.define_tracepoint(TracepointDef::new(name, exports));
    }

    /// Returns the known tracepoint definitions.
    pub fn tracepoint_defs(&self) -> impl Iterator<Item = &TracepointDef> {
        self.tracepoints.values()
    }

    /// Enables or disables the static verifier gate in
    /// [`Frontend::install`] (on by default). Disabling is an escape
    /// hatch for experiments that deliberately install pathological
    /// queries.
    pub fn set_verify(&mut self, on: bool) {
        self.skip_verify = !on;
    }

    /// Installs a query under an auto-assigned name (`Q<id>`).
    pub fn install(&mut self, text: &str) -> Result<QueryHandle, InstallError> {
        let name = format!("Q{}", self.next_id);
        self.install_named(&name, text)
    }

    /// Installs a query under `name`, compiling it to advice and queueing a
    /// weave command. Later queries may reference `name` as a source.
    pub fn install_named(&mut self, name: &str, text: &str) -> Result<QueryHandle, InstallError> {
        if self.queries.iter().any(|q| q.handle.name == name) {
            return Err(InstallError::DuplicateName(name.to_owned()));
        }
        let id = QueryId(self.next_id);
        let options = Options {
            optimize: self.optimize,
        };
        let compiled = compile(text, name, id, &*self, options).map_err(InstallError::Compile)?;
        // The static verifier (paper §5: advice must be safe to weave
        // into a live system). The compiler catches hard structural
        // defects above; the verifier additionally rejects type-incoherent
        // expressions and dataflow defects, with spans.
        let analysis = Analyzer::new(&*self).analyze(text, name);
        if !self.skip_verify && analysis.has_errors() {
            return Err(InstallError::Rejected(analysis.diagnostics));
        }
        // Derive a default overload budget from the static baggage bound
        // of the plan variant this frontend actually executes.
        let static_bound = if self.optimize {
            analysis.optimized_cost.as_ref()
        } else {
            analysis.unoptimized_cost.as_ref()
        }
        .and_then(|c| c.total_bytes.as_finite());
        let derived_budget = QueryBudget::from_static_bound(static_bound);
        let ast = pivot_query::parse(text).expect("compile re-parses successfully");
        self.next_id += 1;
        let compiled = Arc::new(compiled);
        // Lower the advice to bytecode: the one executable artifact that is
        // shipped to agents and checked by the verifier ("verify what you
        // execute"). Lowering is total; notes record degradations such as
        // fields that can never resolve (surfaced by the verifier's PT008).
        let (code, _lowering_notes) = CompiledCode::lower(&compiled);
        let code = Arc::new(code);
        let handle = QueryHandle {
            id,
            name: name.to_owned(),
        };
        self.results
            .insert(id, QueryResults::new(Arc::clone(&compiled.output)));
        self.epoch += 1;
        self.commands.push(Command::Install(Arc::clone(&code)));
        let budget = if self.enforce_budgets && !derived_budget.is_unlimited() {
            self.commands.push(Command::SetBudget(id, derived_budget));
            Some(derived_budget)
        } else {
            None
        };
        self.queries.push(Installed {
            handle: handle.clone(),
            ast,
            compiled,
            code,
            derived_budget,
            budget,
        });
        Ok(handle)
    }

    /// Enables pushing statically-derived [`QueryBudget`]s to the agents
    /// on every install (off by default: budgets are opt-in, so the
    /// governor is invisible until asked for).
    pub fn set_enforce_budgets(&mut self, on: bool) {
        self.enforce_budgets = on;
    }

    /// Explicitly sets (or replaces) the overload budget for an installed
    /// query, queueing a [`Command::SetBudget`] broadcast. Does not bump
    /// the epoch — the epoch tracks the weave set, and budgets re-ship
    /// alongside it on re-sync via [`Frontend::budgets`].
    pub fn set_budget(&mut self, handle: &QueryHandle, budget: QueryBudget) {
        if let Some(q) = self.queries.iter_mut().find(|q| q.handle == *handle) {
            q.budget = Some(budget);
            self.commands.push(Command::SetBudget(handle.id, budget));
        }
    }

    /// The budget derived from the query's static baggage bound
    /// (unlimited when the bound is infinite).
    pub fn derived_budget(&self, handle: &QueryHandle) -> Option<QueryBudget> {
        self.queries
            .iter()
            .find(|q| q.handle == *handle)
            .map(|q| q.derived_budget)
    }

    /// Every installed query's budget currently in force, for transports
    /// that re-ship budgets when an agent re-syncs after a crash or
    /// partition (the budget analogue of [`Frontend::installed`]).
    pub fn budgets(&self) -> Vec<(QueryId, QueryBudget)> {
        self.queries
            .iter()
            .filter_map(|q| q.budget.map(|b| (q.handle.id, b)))
            .collect()
    }

    /// Uninstalls a query, queueing an unweave command. Accumulated results
    /// remain readable.
    pub fn uninstall(&mut self, handle: &QueryHandle) {
        self.queries.retain(|q| q.handle != *handle);
        self.epoch += 1;
        self.commands.push(Command::Uninstall(handle.id));
    }

    /// The install epoch: bumped on every install and uninstall. Agents
    /// that re-sync against [`Frontend::installed`] are up to date exactly
    /// when they have observed this epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Drains the pending weave/unweave commands for broadcast.
    pub fn drain_commands(&mut self) -> Vec<Command> {
        std::mem::take(&mut self.commands)
    }

    /// Merges one agent report (paper Figure 2 Ç).
    pub fn accept(&mut self, report: Report) {
        if let Some(res) = self.results.get_mut(&report.query) {
            res.absorb(report);
        }
    }

    /// Merges one retroactive-flush report: deduplicates on the agent's
    /// ring sequence number (relays forward retro frames verbatim, so a
    /// duplicated frame carries the same identity), latches the ring's
    /// cumulative counters, and routes the report to the triggering
    /// query's results (or the orphan pool when that query is unknown —
    /// breaker/latency/fault triggers use `QueryId(0)`).
    pub fn accept_retro(&mut self, report: RetroReport) {
        let track = self
            .retro_sources
            .entry((report.host.clone(), report.procid, report.incarnation))
            .or_default();
        track.recorded_cum = track.recorded_cum.max(report.recorded_cum);
        track.sampled_out_cum = track.sampled_out_cum.max(report.sampled_out_cum);
        track.shed_cum = track.shed_cum.max(report.shed_cum);
        if !track.seen.insert(report.seq) {
            track.duplicates += 1;
            return;
        }
        track.delivered_events += report.events.len() as u64;
        match self.results.get_mut(&report.query) {
            Some(res) => res.retro.push(report),
            None => self.retro_orphans.push(report),
        }
    }

    /// Accepted retro reports whose trigger query is not installed here.
    pub fn retro_orphans(&self) -> &[RetroReport] {
        &self.retro_orphans
    }

    /// Retro-flush loss accounting aggregated over every agent
    /// incarnation that has reported: the frontend's side of the
    /// extended identity `recorded == delivered + sampled_out + shed +
    /// outstanding`.
    pub fn retro_loss(&self) -> RetroLossStats {
        let mut loss = RetroLossStats::default();
        for track in self.retro_sources.values() {
            loss.reports_accepted += track.seen.len() as u64;
            loss.reports_duplicate += track.duplicates;
            loss.events_delivered += track.delivered_events;
            loss.events_recorded += track.recorded_cum;
            loss.events_sampled_out += track.sampled_out_cum;
            loss.events_shed += track.shed_cum;
        }
        loss.events_outstanding = loss
            .events_recorded
            .saturating_sub(loss.events_delivered)
            .saturating_sub(loss.events_sampled_out)
            .saturating_sub(loss.events_shed);
        loss
    }

    /// Returns the accumulated results for a query.
    pub fn results(&self, handle: &QueryHandle) -> &QueryResults {
        &self.results[&handle.id]
    }

    /// Returns every currently installed query's lowered bytecode (used to
    /// weave advice into processes that join after installation).
    pub fn installed(&self) -> Vec<Arc<CompiledCode>> {
        self.queries.iter().map(|q| Arc::clone(&q.code)).collect()
    }

    /// Returns the compiled (advice-op) form of an installed query.
    pub fn compiled(&self, handle: &QueryHandle) -> Option<Arc<CompiledQuery>> {
        self.queries
            .iter()
            .find(|q| q.handle == *handle)
            .map(|q| Arc::clone(&q.compiled))
    }

    /// Returns the lowered bytecode of an installed query.
    pub fn code(&self, handle: &QueryHandle) -> Option<Arc<CompiledCode>> {
        self.queries
            .iter()
            .find(|q| q.handle == *handle)
            .map(|q| Arc::clone(&q.code))
    }

    /// A canonical digest of the frontend's protocol-visible state, for
    /// the interleaving explorer's state cache: epoch, installed set,
    /// budgets, pending commands, and — per query — merged results,
    /// per-source sequence tracking, and throttle arrivals.
    ///
    /// `remap_incarnation` maps raw agent incarnation numbers (drawn from
    /// a process-global counter, so not stable across re-executions of
    /// the same schedule) to caller-stable identifiers such as
    /// `(slot, generation)` codes.
    pub fn state_digest(&self, remap_incarnation: &mut dyn FnMut(u64) -> u64) -> u64 {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(512);
        let _ = write!(s, "e{}|c{};", self.epoch, self.commands.len());
        for q in &self.queries {
            let _ = write!(s, "q{}:{}|{:?};", q.handle.id.0, q.handle.name, q.budget);
        }
        let mut ids: Vec<QueryId> = self.results.keys().copied().collect();
        ids.sort_unstable_by_key(|q| q.0);
        for id in ids {
            let res = &self.results[&id];
            let _ = write!(s, "R{}:", id.0);
            let mut groups: Vec<String> = res
                .cumulative
                .iter()
                .map(|(k, a)| format!("{k:?}={a:?}"))
                .collect();
            groups.sort_unstable();
            for g in groups {
                let _ = write!(s, "g{g};");
            }
            for (t, row) in &res.raw {
                let _ = write!(s, "w{t}:{row:?};");
            }
            for (t, groups) in res.intervals.iter() {
                let mut lines: Vec<String> =
                    groups.iter().map(|(k, a)| format!("{k:?}={a:?}")).collect();
                lines.sort_unstable();
                let _ = write!(s, "i{t}:{lines:?};");
            }
            let mut tracks: Vec<String> = res
                .sources
                .iter()
                .map(|((host, procid, inc), t)| {
                    format!(
                        "{host}/{procid}/{}:{}|{:?}|{}|{}|{}|{}|{}|{}",
                        remap_incarnation(*inc),
                        t.next_contig,
                        t.pending,
                        t.accepted,
                        t.duplicates,
                        t.delivered_tuples,
                        t.emitted_cum,
                        t.shed_cum,
                        t.truncated_cum,
                    )
                })
                .collect();
            tracks.sort_unstable();
            for t in tracks {
                let _ = write!(s, "s{t};");
            }
            let _ = write!(s, "t{:?};", res.throttles());
            let mut retro: Vec<String> = res
                .retro
                .iter()
                .map(|r| {
                    format!(
                        "{}/{}/{}:{}:{:?}:{}:{}",
                        r.host,
                        r.procid,
                        remap_incarnation(r.incarnation),
                        r.seq,
                        r.kind,
                        r.request,
                        r.events.len(),
                    )
                })
                .collect();
            retro.sort_unstable();
            for r in retro {
                let _ = write!(s, "x{r};");
            }
        }
        let mut retro_tracks: Vec<String> = self
            .retro_sources
            .iter()
            .map(|((host, procid, inc), t)| {
                format!(
                    "{host}/{procid}/{}:{}|{}|{}|{}|{}|{}",
                    remap_incarnation(*inc),
                    t.seen.len(),
                    t.duplicates,
                    t.delivered_events,
                    t.recorded_cum,
                    t.sampled_out_cum,
                    t.shed_cum,
                )
            })
            .collect();
        retro_tracks.sort_unstable();
        for t in retro_tracks {
            let _ = write!(s, "X{t};");
        }
        let _ = write!(s, "O{};", self.retro_orphans.len());
        crate::fnv64(s.as_bytes())
    }
}

impl Resolver for Frontend {
    fn tracepoint_exports(&self, name: &str) -> Option<Vec<String>> {
        self.tracepoints.get(name).map(TracepointDef::all_exports)
    }

    fn query_ast(&self, name: &str) -> Option<Query> {
        self.queries
            .iter()
            .find(|q| q.handle.name == name)
            .map(|q| q.ast.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{Agent, ProcessInfo};
    use crate::bus::LocalBus;

    fn setup() -> (Frontend, LocalBus) {
        let mut fe = Frontend::new();
        fe.define("ClientProtocols", ["procName"]);
        fe.define("DataNodeMetrics.incrBytesRead", ["delta"]);
        let mut bus = LocalBus::new();
        for (host, proc_) in [("host-A", "FSread4m"), ("host-B", "DataNode")] {
            bus.register(Arc::new(Agent::new(ProcessInfo {
                host: host.into(),
                procid: 1,
                procname: proc_.into(),
            })));
        }
        (fe, bus)
    }

    #[test]
    fn q2_end_to_end_over_local_bus() {
        let (mut fe, bus) = setup();
        let handle = fe
            .install(
                "From incr In DataNodeMetrics.incrBytesRead
                 Join cl In First(ClientProtocols) On cl -> incr
                 GroupBy cl.procName
                 Select cl.procName, SUM(incr.delta)",
            )
            .unwrap();
        for cmd in fe.drain_commands() {
            bus.broadcast(&cmd);
        }
        let client = &bus.agents()[0];
        let datanode = &bus.agents()[1];

        // Two requests from the same client process.
        for delta in [100i64, 400] {
            let mut bag = pivot_baggage::Baggage::new();
            client.invoke(
                "ClientProtocols",
                &mut bag,
                5,
                &[("procName", Value::str("FSread4m"))],
            );
            // "RPC" to the datanode: serialize and deserialize baggage.
            let bytes = bag.to_bytes();
            let mut remote = pivot_baggage::Baggage::from_bytes(&bytes);
            datanode.invoke(
                "DataNodeMetrics.incrBytesRead",
                &mut remote,
                9,
                &[("delta", Value::I64(delta))],
            );
        }
        bus.pump(1_000_000_000, &mut fe);

        let rows = fe.results(&handle).rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[0], Value::str("FSread4m"));
        assert_eq!(rows[0].values[1], Value::I64(500));
    }

    #[test]
    fn intervals_keep_per_flush_results() {
        let (mut fe, bus) = setup();
        let handle = fe
            .install(
                "From incr In DataNodeMetrics.incrBytesRead
                 GroupBy incr.host
                 Select incr.host, SUM(incr.delta)",
            )
            .unwrap();
        for cmd in fe.drain_commands() {
            bus.broadcast(&cmd);
        }
        let dn = &bus.agents()[1];
        let mut bag = pivot_baggage::Baggage::new();
        dn.invoke(
            "DataNodeMetrics.incrBytesRead",
            &mut bag,
            1,
            &[("delta", Value::I64(10))],
        );
        bus.pump(1_000_000_000, &mut fe);
        dn.invoke(
            "DataNodeMetrics.incrBytesRead",
            &mut bag,
            2,
            &[("delta", Value::I64(30))],
        );
        bus.pump(2_000_000_000, &mut fe);

        let res = fe.results(&handle);
        let series = res.series();
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].1[0].values[1], Value::I64(10));
        assert_eq!(series[1].1[0].values[1], Value::I64(30));
        // Cumulative merges both intervals.
        assert_eq!(res.rows()[0].values[1], Value::I64(40));
    }

    #[test]
    fn duplicate_names_rejected_and_unknown_tracepoints_error() {
        let (mut fe, _) = setup();
        fe.install_named("X", "From e In ClientProtocols Select COUNT")
            .unwrap();
        assert!(matches!(
            fe.install_named("X", "From e In ClientProtocols Select COUNT"),
            Err(InstallError::DuplicateName(_))
        ));
        assert!(matches!(
            fe.install("From e In Nope Select COUNT"),
            Err(InstallError::Compile(_))
        ));
    }

    #[test]
    fn ill_typed_query_rejected_with_span() {
        let (mut fe, _) = setup();
        // Compiles fine (the compiler is untyped) but can never evaluate:
        // `&&` over a number.
        let err = fe
            .install(
                "From e In ClientProtocols
                 Where e.procName && 5
                 Select COUNT",
            )
            .unwrap_err();
        let InstallError::Rejected(diags) = err else {
            panic!("expected Rejected, got {err:?}");
        };
        assert!(diags
            .iter()
            .any(|d| { d.code == pivot_analyze::Code::TypeError && d.span.is_some() }));
        // The escape hatch installs it anyway.
        let (mut fe, _) = setup();
        fe.set_verify(false);
        fe.install(
            "From e In ClientProtocols
             Where e.procName && 5
             Select COUNT",
        )
        .unwrap();
    }

    #[test]
    fn query_reference_resolves_installed_query() {
        let mut fe = Frontend::new();
        fe.define("SendResponse", ["time"]);
        fe.define("ReceiveRequest", ["time"]);
        fe.define("JobComplete", ["id"]);
        fe.install_named(
            "Q8",
            "From response In SendResponse
             Join request In MostRecent(ReceiveRequest)
               On request -> response
             Select response.time - request.time",
        )
        .unwrap();
        let q9 = fe.install_named(
            "Q9",
            "From job In JobComplete
             Join lat In Q8 On lat -> job
             Select job.id, AVERAGE(lat)",
        );
        assert!(q9.is_ok(), "{q9:?}");
    }
}
