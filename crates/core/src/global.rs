//! Ground-truth global evaluation of happened-before joins.
//!
//! This module implements the paper's *unoptimized* strategy (Figure 6a):
//! record every tracepoint invocation together with a causal stamp, ship
//! everything to one place, and evaluate `⋈→` as a θ-join whose condition
//! is the happened-before relation. It exists for three reasons:
//!
//! 1. **Differential testing** — the baggage-based inline evaluation must
//!    produce identical results on every execution (the system's central
//!    correctness property; exercised by property tests).
//! 2. **Figure 3** — the paper's worked example of `⋈→` semantics on a
//!    branching execution.
//! 3. **The ablation benches** — quantifying the tuple traffic the inline
//!    strategy avoids.

use pivot_itc::Stamp;
use pivot_model::{GroupKey, Schema, Tuple, Value};
use pivot_query::ast::{Query, SelectItem, SourceKind, TemporalFilter};
use pivot_query::Resolver;

use pivot_baggage::Baggage;

/// A recorded tracepoint invocation.
#[derive(Clone, Debug)]
pub struct TraceEvent {
    /// Global capture sequence (total order used for recency ties).
    pub seq: u64,
    /// The request this event belongs to.
    pub request: u64,
    /// Tracepoint name.
    pub tracepoint: String,
    /// Anonymous causal stamp at the time of the event.
    pub stamp: Stamp,
    /// Exported variables (including defaults).
    pub exports: Vec<(String, Value)>,
}

/// A log of every tracepoint invocation in an execution.
#[derive(Default, Debug)]
pub struct TraceLog {
    events: Vec<TraceEvent>,
}

impl TraceLog {
    /// Creates an empty log.
    pub fn new() -> TraceLog {
        TraceLog::default()
    }

    /// Returns all events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Returns `true` if `a` happened before `b` (same request, strictly
    /// ordered stamps).
    pub fn happened_before(a: &TraceEvent, b: &TraceEvent) -> bool {
        a.request == b.request && a.stamp.leq(&b.stamp) && a.seq != b.seq
    }
}

/// A request context for tests and harnesses: carries baggage (for the
/// inline strategy) *and* an interval tree clock stamp (for the global
/// strategy), so both evaluation strategies observe the same execution.
pub struct TracedCtx<'l> {
    /// The request's baggage.
    pub baggage: Baggage,
    stamp: Stamp,
    request: u64,
    log: &'l mut TraceLog,
}

impl<'l> TracedCtx<'l> {
    /// Starts a new request against `log`.
    pub fn new(log: &'l mut TraceLog, request: u64) -> TracedCtx<'l> {
        TracedCtx {
            baggage: Baggage::new(),
            stamp: Stamp::seed(),
            request,
            log,
        }
    }

    /// Records a tracepoint invocation (advances the causal stamp and logs
    /// the event). The caller separately runs any woven advice via an
    /// [`crate::Agent`].
    pub fn record(&mut self, tracepoint: &str, exports: &[(&str, Value)]) {
        self.stamp.event();
        let seq = self.log.events.len() as u64;
        self.log.events.push(TraceEvent {
            seq,
            request: self.request,
            tracepoint: tracepoint.to_owned(),
            stamp: self.stamp.peek(),
            exports: exports
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        });
    }

    /// Branches the execution: baggage splits, the stamp forks.
    pub fn split(&mut self) -> TracedCtxBranch {
        let baggage = self.baggage.split();
        let (a, b) = self.stamp.fork();
        self.stamp = a;
        TracedCtxBranch {
            baggage,
            stamp: b,
            request: self.request,
        }
    }

    /// Rejoins a branch created by [`TracedCtx::split`].
    pub fn join(&mut self, branch: TracedCtxBranch) {
        self.baggage.join(branch.baggage);
        self.stamp = self.stamp.join(&branch.stamp);
    }

    /// Runs one step on a branch (the branch borrows the same log).
    pub fn record_on(
        &mut self,
        branch: &mut TracedCtxBranch,
        tracepoint: &str,
        exports: &[(&str, Value)],
    ) {
        branch.stamp.event();
        let seq = self.log.events.len() as u64;
        self.log.events.push(TraceEvent {
            seq,
            request: branch.request,
            tracepoint: tracepoint.to_owned(),
            stamp: branch.stamp.peek(),
            exports: exports
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.clone()))
                .collect(),
        });
    }
}

/// A branched execution context (see [`TracedCtx::split`]).
pub struct TracedCtxBranch {
    /// The branch's baggage.
    pub baggage: Baggage,
    stamp: Stamp,
    request: u64,
}

/// Evaluates `query` globally over `log`, returning result rows in
/// `Select` order (sorted for determinism).
///
/// Aggregating queries return one row per group; streaming queries return
/// one row per join result. Query references are not supported here —
/// the evaluator exists to validate tracepoint queries.
pub fn evaluate(query: &Query, resolver: &dyn Resolver, log: &TraceLog) -> Vec<Vec<Value>> {
    // Alias → (tracepoints, schema fields).
    let alias_events = |kind: &SourceKind| -> Vec<&TraceEvent> {
        let SourceKind::Tracepoints(names) = kind else {
            return Vec::new();
        };
        log.events
            .iter()
            .filter(|e| names.iter().any(|n| n == &e.tracepoint))
            .collect()
    };

    let schema_for = |alias: &str, kind: &SourceKind| -> Schema {
        let SourceKind::Tracepoints(names) = kind else {
            return Schema::empty();
        };
        let mut fields: Vec<String> = Vec::new();
        for n in names {
            for f in resolver.tracepoint_exports(n).unwrap_or_default() {
                let q = format!("{alias}.{f}");
                if !fields.contains(&q) {
                    fields.push(q);
                }
            }
        }
        Schema::new(fields)
    };

    let tuple_for = |schema: &Schema, alias: &str, e: &TraceEvent| -> Tuple {
        schema
            .fields()
            .iter()
            .map(|qf| {
                let f = qf.strip_prefix(&format!("{alias}.")).unwrap_or(qf.as_ref());
                e.exports
                    .iter()
                    .find(|(k, _)| k == f)
                    .map(|(_, v)| v.clone())
                    .unwrap_or(Value::Null)
            })
            .collect()
    };

    // Assignments: map alias → chosen event, built in join declaration
    // order starting from each event of the From source.
    struct Asg<'a> {
        chosen: Vec<(&'a str, &'a TraceEvent)>,
    }
    let from_events = alias_events(&query.from.kind);
    let mut assignments: Vec<Asg> = from_events
        .iter()
        .map(|e| Asg {
            chosen: vec![(query.from.alias.as_str(), *e)],
        })
        .collect();

    for join in &query.joins {
        let cands_all = alias_events(&join.source.kind);
        let mut next = Vec::new();
        for asg in &assignments {
            let later_name: &str = &join.later;
            let later = asg
                .chosen
                .iter()
                .find(|(a, _)| *a == later_name)
                .or_else(|| asg.chosen.first())
                .map(|(_, e)| *e)
                .expect("assignments start non-empty");
            let mut cands: Vec<&TraceEvent> = cands_all
                .iter()
                .copied()
                .filter(|c| TraceLog::happened_before(c, later))
                .collect();
            cands.sort_by_key(|c| c.seq);
            match join.source.filter {
                Some(TemporalFilter::First(n)) => cands.truncate(n.max(1)),
                Some(TemporalFilter::MostRecent(n)) => {
                    let keep = n.max(1);
                    if cands.len() > keep {
                        let skip = cands.len() - keep;
                        cands.drain(..skip);
                    }
                }
                None => {}
            }
            for c in cands {
                let mut chosen = asg.chosen.clone();
                chosen.push((join.source.alias.as_str(), c));
                next.push(Asg { chosen });
            }
        }
        assignments = next;
    }

    // Build the join schema.
    let mut schema = schema_for(&query.from.alias, &query.from.kind);
    let mut alias_schemas = vec![(query.from.alias.clone(), schema.clone())];
    for join in &query.joins {
        let s = schema_for(&join.source.alias, &join.source.kind);
        schema = schema.concat(&s);
        alias_schemas.push((join.source.alias.clone(), s));
    }

    // Materialize joined tuples, filter, and aggregate.
    let mut groups: Vec<(GroupKey, Vec<pivot_model::AggState>)> = Vec::new();
    let mut raw = Vec::new();
    let has_aggs = query.has_aggregates();
    // Keys: explicit group-by then non-agg select items.
    let mut key_exprs: Vec<pivot_model::Expr> = query
        .group_by
        .iter()
        .map(|g| pivot_model::Expr::field(g.clone()))
        .collect();
    for item in &query.select {
        if let SelectItem::Expr(e) = item {
            if !key_exprs.contains(e) {
                key_exprs.push(e.clone());
            }
        }
    }
    let aggs: Vec<(pivot_model::AggFunc, pivot_model::Expr)> = query
        .select
        .iter()
        .filter_map(|i| match i {
            SelectItem::Agg(f, e) => Some((*f, e.clone())),
            SelectItem::Expr(_) => None,
        })
        .collect();

    'asg: for asg in &assignments {
        let mut joined = Tuple::empty();
        for ((alias, s), (_, e)) in alias_schemas.iter().zip(&asg.chosen) {
            joined = joined.concat(&tuple_for(s, alias, e));
        }
        let row = (&schema, &joined);
        for w in &query.wheres {
            if !matches!(w.eval(&row), Ok(Value::Bool(true))) {
                continue 'asg;
            }
        }
        if has_aggs {
            let Some(key) = key_exprs
                .iter()
                .map(|k| k.eval(&row).ok())
                .collect::<Option<Tuple>>()
            else {
                continue;
            };
            let key = GroupKey(key);
            let states = match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, s)) => s,
                None => {
                    groups.push((key, aggs.iter().map(|(f, _)| f.init()).collect()));
                    &mut groups.last_mut().expect("just pushed").1
                }
            };
            for (st, (_, arg)) in states.iter_mut().zip(&aggs) {
                st.update(&arg.eval(&row).unwrap_or(Value::Null));
            }
        } else {
            let Some(out) = key_exprs
                .iter()
                .map(|k| k.eval(&row).ok())
                .collect::<Option<Tuple>>()
            else {
                continue;
            };
            raw.push(out.values().to_vec());
        }
    }

    let mut rows: Vec<Vec<Value>> = if has_aggs {
        groups
            .iter()
            .map(|(key, states)| {
                // Lay out in Select order.
                let mut out = Vec::new();
                let mut agg_i = 0;
                for item in &query.select {
                    match item {
                        SelectItem::Expr(e) => {
                            let pos = key_exprs
                                .iter()
                                .position(|k| k == e)
                                .expect("key registered");
                            out.push(key.0.get(pos).clone());
                        }
                        SelectItem::Agg(..) => {
                            out.push(states[agg_i].finish());
                            agg_i += 1;
                        }
                    }
                }
                out
            })
            .collect()
    } else {
        raw
    };
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b) {
            match x.compare(y) {
                Some(std::cmp::Ordering::Equal) | None => continue,
                Some(ord) => return ord,
            }
        }
        std::cmp::Ordering::Equal
    });
    rows
}
