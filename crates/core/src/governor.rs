//! The runtime overload governor: per-query budgets and circuit breakers.
//!
//! The paper's §4.4 safety argument promises a query can never destabilize
//! the host system. The static verifier (pivot-analyze) bounds baggage
//! growth *before install*; this module is the runtime half: every agent
//! charges each query for the work its advice actually performs — tuples
//! emitted, VM instructions retired, baggage values packed — against a
//! windowed [`QueryBudget`]. A query that exhausts its budget trips a
//! per-agent circuit breaker: its advice is unwoven locally (so further
//! invocations cost one atomic load, the idle-tracepoint price), a
//! [`Throttled`] frame rides the next report to the frontend, and the
//! breaker re-arms after a capped exponential backoff measured in budget
//! windows. No randomness anywhere: under the simulated clock the whole
//! trip/backoff/re-arm sequence is a pure function of the workload, which
//! is what lets the chaos suite assert "same seed ⇒ same trip sequence".

use pivot_baggage::QueryId;

/// Nominal bytes charged per packed value, matching the static cost
/// model's `bytes_per_value` so statically-derived budgets and runtime
/// charges are in the same currency.
pub const NOMINAL_BYTES_PER_VALUE: u64 = 12;

/// Resource budget for one query on one agent, per accounting window.
///
/// `u64::MAX` in every rate field means "unlimited" — the governor never
/// charges, and the hot path stays byte-identical to an ungoverned agent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct QueryBudget {
    /// Tuples the query may emit/pack per window.
    pub tuples_per_window: u64,
    /// VM instructions the query's advice may retire per window.
    pub ops_per_window: u64,
    /// Baggage bytes (nominal: packed values × [`NOMINAL_BYTES_PER_VALUE`])
    /// the query may add per window.
    pub bytes_per_window: u64,
    /// Window length in nanoseconds on the embedding's clock (virtual
    /// under simrt, wall under pivot-live).
    pub window_ns: u64,
    /// Backoff after the first trip, in windows.
    pub backoff_base_windows: u32,
    /// Cap on backoff doublings (trip `n` backs off
    /// `base << min(n-1, cap)` windows).
    pub max_backoff_doublings: u32,
}

impl QueryBudget {
    /// A budget that never trips (the default for every installed query).
    pub fn unlimited() -> QueryBudget {
        QueryBudget {
            tuples_per_window: u64::MAX,
            ops_per_window: u64::MAX,
            bytes_per_window: u64::MAX,
            window_ns: 1_000_000_000,
            backoff_base_windows: 1,
            max_backoff_doublings: 6,
        }
    }

    /// Returns `true` when no rate field can ever be exceeded.
    pub fn is_unlimited(&self) -> bool {
        self.tuples_per_window == u64::MAX
            && self.ops_per_window == u64::MAX
            && self.bytes_per_window == u64::MAX
    }

    /// Derives a default budget from the static verifier's per-request
    /// baggage bound, when finite.
    ///
    /// The static bound is *per request*; a window admits many requests,
    /// so the derived budget is deliberately generous: 1024 requests'
    /// worth of bytes per one-second window, the matching value count at
    /// [`NOMINAL_BYTES_PER_VALUE`] bytes each, and 64 VM instructions per
    /// admitted tuple. A query within its static bound under ordinary
    /// traffic never trips; a storm three orders of magnitude past the
    /// analyzed rate does.
    pub fn from_static_bound(bound_bytes: Option<u64>) -> QueryBudget {
        match bound_bytes {
            None => QueryBudget::unlimited(),
            Some(b) => {
                let bytes = b.max(NOMINAL_BYTES_PER_VALUE).saturating_mul(1024);
                let tuples = bytes / NOMINAL_BYTES_PER_VALUE;
                QueryBudget {
                    tuples_per_window: tuples,
                    ops_per_window: tuples.saturating_mul(64),
                    bytes_per_window: bytes,
                    ..QueryBudget::unlimited()
                }
            }
        }
    }

    /// Backoff in windows after the `trips`-th trip: exponential from
    /// `backoff_base_windows`, capped at `max_backoff_doublings`.
    pub fn backoff_windows(&self, trips: u32) -> u64 {
        let doublings = trips.saturating_sub(1).min(self.max_backoff_doublings);
        u64::from(self.backoff_base_windows).saturating_mul(1u64 << doublings)
    }

    /// Nanoseconds of backoff after the `trips`-th trip.
    pub fn backoff_ns(&self, trips: u32) -> u64 {
        self.backoff_windows(trips).saturating_mul(self.window_ns)
    }
}

impl Default for QueryBudget {
    fn default() -> QueryBudget {
        QueryBudget::unlimited()
    }
}

/// Which budget dimension a trip exhausted (checked in this order).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum ThrottleReason {
    /// `tuples_per_window` exceeded.
    Tuples,
    /// `ops_per_window` exceeded.
    Ops,
    /// `bytes_per_window` exceeded.
    Bytes,
}

impl ThrottleReason {
    /// Wire tag.
    pub fn tag(self) -> u8 {
        match self {
            ThrottleReason::Tuples => 0,
            ThrottleReason::Ops => 1,
            ThrottleReason::Bytes => 2,
        }
    }

    /// Decodes a wire tag.
    pub fn from_tag(tag: u8) -> Option<ThrottleReason> {
        Some(match tag {
            0 => ThrottleReason::Tuples,
            1 => ThrottleReason::Ops,
            2 => ThrottleReason::Bytes,
            _ => return None,
        })
    }
}

/// The charge counters of the window that tripped.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct ThrottleStats {
    /// Tuples charged in the tripping window.
    pub tuples: u64,
    /// VM instructions charged in the tripping window.
    pub ops: u64,
    /// Nominal baggage bytes charged in the tripping window.
    pub bytes: u64,
    /// Cumulative trips for this query on this agent (1 on first trip).
    pub trips: u32,
}

/// One breaker trip, reported to the frontend on the next flush.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct Throttled {
    /// The query whose breaker tripped.
    pub query: QueryId,
    /// The exhausted budget dimension.
    pub reason: ThrottleReason,
    /// The tripping window's counters.
    pub stats: ThrottleStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_never_charges() {
        let b = QueryBudget::unlimited();
        assert!(b.is_unlimited());
        assert_eq!(QueryBudget::from_static_bound(None), b);
        assert_eq!(QueryBudget::default(), b);
    }

    #[test]
    fn derived_budget_scales_with_the_static_bound() {
        let b = QueryBudget::from_static_bound(Some(120));
        assert!(!b.is_unlimited());
        assert_eq!(b.bytes_per_window, 120 * 1024);
        assert_eq!(b.tuples_per_window, 120 * 1024 / NOMINAL_BYTES_PER_VALUE);
        assert_eq!(b.ops_per_window, b.tuples_per_window * 64);
        // A degenerate zero-byte bound still yields a usable budget.
        assert!(QueryBudget::from_static_bound(Some(0)).tuples_per_window > 0);
    }

    #[test]
    fn backoff_is_exponential_and_capped() {
        let b = QueryBudget {
            backoff_base_windows: 2,
            max_backoff_doublings: 3,
            ..QueryBudget::unlimited()
        };
        assert_eq!(b.backoff_windows(1), 2);
        assert_eq!(b.backoff_windows(2), 4);
        assert_eq!(b.backoff_windows(4), 16);
        assert_eq!(b.backoff_windows(5), 16, "doublings cap");
        assert_eq!(b.backoff_windows(100), 16);
        assert_eq!(b.backoff_ns(1), 2 * b.window_ns);
    }

    #[test]
    fn reason_tags_round_trip() {
        for r in [
            ThrottleReason::Tuples,
            ThrottleReason::Ops,
            ThrottleReason::Bytes,
        ] {
            assert_eq!(ThrottleReason::from_tag(r.tag()), Some(r));
        }
        assert_eq!(ThrottleReason::from_tag(9), None);
    }
}
