//! The advice interpreter.
//!
//! Executes a straight-line advice program (paper Table 2) against one
//! tracepoint invocation: observe the exported variables, unpack and
//! cross-join baggage tuples, filter, then pack forward and/or emit.
//!
//! The interpreter is total: expression evaluation errors drop the affected
//! tuple instead of failing the carrying request (advice safety, paper §3).
//!
//! Production agents execute lowered bytecode through
//! [`pivot_query::Vm`]; this tree-walking interpreter is kept as the
//! *differential ground truth* the VM is tested against (and as the
//! readable reference semantics for Table 2).

use std::sync::Arc;

use pivot_baggage::Baggage;
use pivot_model::{GroupKey, Schema, Tuple, Value};
use pivot_query::{AdviceOp, AdviceProgram, OutputSpec};

/// One `Emit` outcome handed to the process-local aggregator.
#[derive(Clone, Debug)]
pub struct Emitted {
    /// The emitting query.
    pub query: pivot_baggage::QueryId,
    /// The query's output spec (key/agg layout; shared, never deep-cloned).
    pub spec: Arc<OutputSpec>,
    /// Joined tuples that reached the `Emit`, with their schema.
    pub schema: Schema,
    /// The tuples themselves.
    pub tuples: Vec<Tuple>,
}

/// Statistics from one advice execution (feeds the overhead ablations).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct InterpStats {
    /// Tuples packed into the baggage.
    pub packed: usize,
    /// Tuples unpacked from the baggage.
    pub unpacked: usize,
    /// Tuples that reached an `Emit`.
    pub emitted: usize,
    /// `Trigger` ops that fired (at most one per op per invocation).
    pub triggered: usize,
}

/// Executes `program` for one tracepoint invocation.
///
/// `exports` supplies the tracepoint's variables (the default exports must
/// already be included by the caller — [`crate::Agent::invoke`] does this).
/// Packs mutate `baggage`; emits are returned for local aggregation.
pub fn run(
    program: &AdviceProgram,
    exports: &[(&str, Value)],
    baggage: &mut Baggage,
) -> (Vec<Emitted>, InterpStats) {
    let mut schema = Schema::empty();
    let mut tuples: Vec<Tuple> = vec![Tuple::empty()];
    let mut emits = Vec::new();
    let mut stats = InterpStats::default();

    let last = program.ops.len().wrapping_sub(1);
    for (i, op) in program.ops.iter().enumerate() {
        match op {
            AdviceOp::Observe { alias, fields } => {
                let values: Tuple = fields
                    .iter()
                    .map(|f| {
                        exports
                            .iter()
                            .find(|(name, _)| name == f)
                            .map(|(_, v)| v.clone())
                            .unwrap_or(Value::Null)
                    })
                    .collect();
                let obs_schema = Schema::new(fields.iter().map(|f| format!("{alias}.{f}")));
                schema = schema.concat(&obs_schema);
                tuples = tuples.iter().map(|t| t.concat(&values)).collect();
            }
            AdviceOp::Unpack {
                slot,
                schema: unpack_schema,
                post_filter,
            } => {
                let mut unpacked = baggage.unpack(*slot);
                if let Some(f) = post_filter {
                    f.apply(&mut unpacked);
                }
                stats.unpacked += unpacked.len();
                schema = schema.concat(unpack_schema);
                // Happened-before join: cross product with the tuples
                // packed earlier in this request's execution.
                tuples = tuples
                    .iter()
                    .flat_map(|t| unpacked.iter().map(move |u| t.concat(u)))
                    .collect();
            }
            AdviceOp::Filter { pred } => {
                tuples.retain(|t| matches!(pred.eval(&(&schema, t)), Ok(Value::Bool(true))));
            }
            AdviceOp::Pack {
                slot,
                mode,
                exprs,
                names: _,
            } => {
                let projected: Vec<Tuple> = tuples
                    .iter()
                    .filter_map(|t| {
                        let row = (&schema, t);
                        exprs
                            .iter()
                            .map(|e| e.eval(&row).ok())
                            .collect::<Option<Tuple>>()
                    })
                    .collect();
                stats.packed += projected.len();
                baggage.pack(*slot, mode, projected);
            }
            AdviceOp::Trigger { pred, .. } => {
                let fires = match pred {
                    None => !tuples.is_empty(),
                    Some(p) => tuples
                        .iter()
                        .any(|t| matches!(p.eval(&(&schema, t)), Ok(Value::Bool(true)))),
                };
                if fires {
                    stats.triggered += 1;
                }
            }
            AdviceOp::Emit { query, spec } => {
                stats.emitted += tuples.len();
                // On the (overwhelmingly common) final op, hand off the
                // buffers instead of cloning them.
                let (batch, batch_schema) = if i == last {
                    (
                        std::mem::take(&mut tuples),
                        std::mem::replace(&mut schema, Schema::empty()),
                    )
                } else {
                    (tuples.clone(), schema.clone())
                };
                emits.push(Emitted {
                    query: *query,
                    spec: Arc::clone(spec),
                    schema: batch_schema,
                    tuples: batch,
                });
            }
        }
        if tuples.is_empty() {
            // Inner-join semantics: once no tuple survives, later ops can
            // produce nothing.
            break;
        }
    }
    (emits, stats)
}

/// Evaluates an emitted batch into `(group key, agg input values)` pairs or
/// raw rows, shared by the agent aggregator and the global evaluator.
pub fn emit_rows(e: &Emitted) -> EmitRows {
    if e.spec.streaming {
        let rows = e
            .tuples
            .iter()
            .filter_map(|t| {
                let row = (&e.schema, t);
                e.spec
                    .key_exprs
                    .iter()
                    .map(|k| k.eval(&row).ok())
                    .collect::<Option<Tuple>>()
            })
            .collect();
        return EmitRows::Raw(rows);
    }
    let mut out = Vec::new();
    for t in &e.tuples {
        let row = (&e.schema, t);
        let Some(key) = e
            .spec
            .key_exprs
            .iter()
            .map(|k| k.eval(&row).ok())
            .collect::<Option<Tuple>>()
        else {
            continue;
        };
        let args: Vec<Value> = e
            .spec
            .aggs
            .iter()
            .map(|(_, arg)| arg.eval(&row).unwrap_or(Value::Null))
            .collect();
        out.push((GroupKey(key), args));
    }
    EmitRows::Grouped(out)
}

/// The two shapes of emit output.
pub enum EmitRows {
    /// Raw projected rows (streaming queries).
    Raw(Vec<Tuple>),
    /// `(group key, agg argument values)` pairs.
    Grouped(Vec<(GroupKey, Vec<Value>)>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_baggage::{PackMode, QueryId};
    use pivot_model::{AggFunc, BinOp, Expr};
    use pivot_query::advice::ColumnRef;
    use pivot_query::ast::TemporalFilter;

    fn observe(alias: &str, fields: &[&str]) -> AdviceOp {
        AdviceOp::Observe {
            alias: alias.into(),
            fields: fields.iter().map(|s| (*s).to_owned()).collect(),
        }
    }

    #[test]
    fn observe_pack_unpack_emit_pipeline() {
        // Simulate the paper's A1/A2 for Q2 by hand.
        let slot = QueryId(300);
        let a1 = AdviceProgram {
            tracepoints: vec!["ClientProtocols".into()],
            ops: vec![
                observe("cl", &["procName"]),
                AdviceOp::Pack {
                    slot,
                    mode: PackMode::First(1),
                    exprs: vec![Expr::field("cl.procName")],
                    names: vec!["cl.procName".into()],
                },
            ],
        };
        let spec = Arc::new(OutputSpec {
            key_exprs: vec![Expr::field("cl.procName")],
            key_names: vec!["cl.procName".into()],
            aggs: vec![(AggFunc::Sum, Expr::field("incr.delta"))],
            agg_names: vec!["SUM(incr.delta)".into()],
            columns: vec![ColumnRef::Key(0), ColumnRef::Agg(0)],
            streaming: false,
            ..OutputSpec::default()
        });
        let a2 = AdviceProgram {
            tracepoints: vec!["DataNodeMetrics.incrBytesRead".into()],
            ops: vec![
                observe("incr", &["delta"]),
                AdviceOp::Unpack {
                    slot,
                    schema: Schema::new(["cl.procName"]),
                    post_filter: None,
                },
                AdviceOp::Emit {
                    query: QueryId(1),
                    spec,
                },
            ],
        };

        let mut bag = Baggage::new();
        let (emits, s1) = run(&a1, &[("procName", Value::str("HGet"))], &mut bag);
        assert!(emits.is_empty());
        assert_eq!(s1.packed, 1);

        let (emits, s2) = run(&a2, &[("delta", Value::I64(4096))], &mut bag);
        assert_eq!(s2.unpacked, 1);
        assert_eq!(s2.emitted, 1);
        let rows = emit_rows(&emits[0]);
        match rows {
            EmitRows::Grouped(rows) => {
                assert_eq!(rows.len(), 1);
                assert_eq!(rows[0].0 .0.get(0), &Value::str("HGet"));
                assert_eq!(rows[0].1, vec![Value::I64(4096)]);
            }
            EmitRows::Raw(_) => panic!("expected grouped"),
        }
    }

    #[test]
    fn join_with_empty_baggage_emits_nothing() {
        let a = AdviceProgram {
            tracepoints: vec!["tp".into()],
            ops: vec![
                observe("e", &["x"]),
                AdviceOp::Unpack {
                    slot: QueryId(300),
                    schema: Schema::new(["cl.y"]),
                    post_filter: None,
                },
                AdviceOp::Emit {
                    query: QueryId(1),
                    spec: Arc::new(OutputSpec::default()),
                },
            ],
        };
        let mut bag = Baggage::new();
        let (emits, stats) = run(&a, &[("x", Value::I64(1))], &mut bag);
        assert!(emits.is_empty());
        assert_eq!(stats.emitted, 0);
    }

    #[test]
    fn filter_drops_and_eval_errors_drop() {
        let a = AdviceProgram {
            tracepoints: vec!["tp".into()],
            ops: vec![
                observe("e", &["x"]),
                AdviceOp::Filter {
                    pred: Expr::bin(BinOp::Lt, Expr::field("e.x"), Expr::lit(10)),
                },
                AdviceOp::Pack {
                    slot: QueryId(300),
                    mode: PackMode::All,
                    exprs: vec![Expr::field("e.x")],
                    names: vec!["e.x".into()],
                },
            ],
        };
        let mut bag = Baggage::new();
        let (_, s) = run(&a, &[("x", Value::I64(50))], &mut bag);
        assert_eq!(s.packed, 0);
        let (_, s) = run(&a, &[("x", Value::str("oops"))], &mut bag);
        assert_eq!(s.packed, 0, "type-mismatched filter drops the tuple");
        let (_, s) = run(&a, &[("x", Value::I64(5))], &mut bag);
        assert_eq!(s.packed, 1);
    }

    #[test]
    fn missing_exports_observe_null() {
        let a = AdviceProgram {
            tracepoints: vec!["tp".into()],
            ops: vec![
                observe("e", &["x", "ghost"]),
                AdviceOp::Emit {
                    query: QueryId(1),
                    spec: Arc::new(OutputSpec {
                        key_exprs: vec![Expr::field("e.x"), Expr::field("e.ghost")],
                        key_names: vec!["e.x".into(), "e.ghost".into()],
                        aggs: vec![],
                        agg_names: vec![],
                        columns: vec![ColumnRef::Key(0), ColumnRef::Key(1)],
                        streaming: true,
                        ..OutputSpec::default()
                    }),
                },
            ],
        };
        let mut bag = Baggage::new();
        let (emits, _) = run(&a, &[("x", Value::I64(1))], &mut bag);
        match emit_rows(&emits[0]) {
            EmitRows::Raw(rows) => {
                assert_eq!(rows[0].values(), &[Value::I64(1), Value::Null]);
            }
            _ => panic!("expected raw"),
        }
    }

    #[test]
    fn multi_unpack_cross_joins() {
        let s1 = QueryId(301);
        let s2 = QueryId(302);
        let mut bag = Baggage::new();
        bag.pack(
            s1,
            &PackMode::All,
            [
                Tuple::from_iter([Value::I64(1)]),
                Tuple::from_iter([Value::I64(2)]),
            ],
        );
        bag.pack(
            s2,
            &PackMode::All,
            [
                Tuple::from_iter([Value::str("a")]),
                Tuple::from_iter([Value::str("b")]),
                Tuple::from_iter([Value::str("c")]),
            ],
        );
        let a = AdviceProgram {
            tracepoints: vec!["tp".into()],
            ops: vec![
                observe("e", &[]),
                AdviceOp::Unpack {
                    slot: s1,
                    schema: Schema::new(["p.x"]),
                    post_filter: None,
                },
                AdviceOp::Unpack {
                    slot: s2,
                    schema: Schema::new(["q.y"]),
                    post_filter: None,
                },
                AdviceOp::Emit {
                    query: QueryId(1),
                    spec: Arc::new(OutputSpec::default()),
                },
            ],
        };
        let (_, stats) = run(&a, &[], &mut bag);
        assert_eq!(stats.emitted, 6);
    }

    #[test]
    fn post_filter_takes_most_recent() {
        let slot = QueryId(303);
        let mut bag = Baggage::new();
        bag.pack(
            slot,
            &PackMode::All,
            (0..5).map(|i| Tuple::from_iter([Value::I64(i)])),
        );
        let a = AdviceProgram {
            tracepoints: vec!["tp".into()],
            ops: vec![
                observe("e", &[]),
                AdviceOp::Unpack {
                    slot,
                    schema: Schema::new(["p.x"]),
                    post_filter: Some(TemporalFilter::MostRecent(2)),
                },
                AdviceOp::Emit {
                    query: QueryId(1),
                    spec: Arc::new(OutputSpec {
                        key_exprs: vec![Expr::field("p.x")],
                        key_names: vec!["p.x".into()],
                        aggs: vec![],
                        agg_names: vec![],
                        columns: vec![ColumnRef::Key(0)],
                        streaming: true,
                        ..OutputSpec::default()
                    }),
                },
            ],
        };
        let (emits, _) = run(&a, &[], &mut bag);
        match emit_rows(&emits[0]) {
            EmitRows::Raw(rows) => {
                let got: Vec<i64> = rows.iter().map(|r| r.get(0).as_i64().unwrap()).collect();
                assert_eq!(got, vec![3, 4]);
            }
            _ => panic!("expected raw"),
        }
    }
}
