//! The Pivot Tracing runtime: tracepoints, advice weaving, agents, the
//! message bus, and the query frontend.
//!
//! This crate ties the query compiler ([`pivot_query`]) and the baggage
//! abstraction ([`pivot_baggage`]) into the live monitoring system of the
//! paper's Figure 2:
//!
//! 1. Tracepoints are **defined** against the frontend (À) — the vocabulary
//!    for queries.
//! 2. Users **install** textual queries ([`Frontend::install`], Á), which
//!    compile to advice (Â).
//! 3. The frontend broadcasts weave commands over the message bus; each
//!    process's [`Agent`] **weaves** the advice into its local tracepoint
//!    [`Registry`] (Ã).
//! 4. Requests executing in the system **invoke** woven advice whenever
//!    they reach a tracepoint ([`Agent::invoke`]); `Pack`/`Unpack` move
//!    tuples through the request's [`Baggage`](pivot_baggage::Baggage) (Ä),
//!    and `Emit` hands tuples to the agent's process-local aggregator (Å).
//! 5. Agents **report** partial results at a configurable interval
//!    ([`Agent::flush`], Æ) and the frontend merges them into streaming
//!    per-query result series (Ç).
//!
//! The crate is simulation-agnostic: it never spawns threads or timers.
//! The embedding system (the simulated Hadoop stack in `pivot-hadoop`, or a
//! plain test harness via [`bus::LocalBus`]) drives invocation, flushing,
//! and message delivery.
//!
//! For differential testing, [`global`] provides the paper's *unoptimized*
//! evaluation strategy (Figure 6a): materialize every tracepoint invocation
//! with a causal stamp and evaluate the happened-before join centrally.

pub mod agent;
pub mod bus;
pub mod frontend;
pub mod global;
pub mod governor;
pub mod interp;
pub mod mutation;
pub mod retro;
pub mod tracepoint;

pub use agent::{Agent, ProcessInfo};
pub use bus::{
    Bus, Command, DeliveryStats, FifoScheduler, HeldFrame, LocalBus, Report, ReportRows, SchedBus,
    Scheduler, Verdict,
};
pub use frontend::{Frontend, LossStats, QueryHandle, QueryResults, ResultRow, RetroLossStats};
pub use governor::{QueryBudget, ThrottleReason, ThrottleStats, Throttled};
pub use retro::{
    set_trace, trace_of, RetroCounters, RetroEvent, RetroReport, TriggerKind, TRACE_SLOT,
};
pub use tracepoint::{Registry, TracepointDef, DEFAULT_EXPORTS};

/// FNV-1a over `bytes`; shared by the agent/frontend state-digest
/// helpers the interleaving explorer keys its state cache on.
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
