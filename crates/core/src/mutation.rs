//! Deliberately re-introducible, known-fixed protocol bugs.
//!
//! The interleaving explorer (`pivot-explore`) proves it has teeth by
//! re-seeding two bugs this codebase already fixed and asserting the
//! explorer rediscovers each within a bounded schedule count:
//!
//! - [`Mutation::SilentReaderExit`] — the report path of a severed link
//!   silently discards frames with no loss tally (the PR 4 bug: a dead
//!   reader connection swallowed reports that agents kept sending),
//!   violating the loss identity
//!   `emitted == delivered + dropped + crash_lost + governor_shed`.
//! - [`Mutation::SyncUnthrottle`] — `Agent::install` skips the
//!   open-breaker guard, so a duplicated install or an epoch re-sync
//!   re-weaves advice whose circuit breaker is mid-backoff (the PR 5
//!   bug), violating sync-cannot-unthrottle.
//!
//! Without the `mutations` cargo feature every check compiles to a
//! constant `false` and this module has zero runtime cost. With the
//! feature, mutations still default to *off* and are toggled at runtime
//! by the explorer's mutation-teeth harness — never enable them outside
//! a test process.

/// A known-fixed bug that can be re-introduced at runtime (only with the
/// `mutations` cargo feature).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Mutation {
    /// Report frames admitted to a severed link vanish untallied.
    SilentReaderExit,
    /// `Agent::install` ignores an open circuit breaker.
    SyncUnthrottle,
}

impl Mutation {
    /// Canonical name, as used by `pivot-explore --mutation` and
    /// schedule files.
    pub fn name(self) -> &'static str {
        match self {
            Mutation::SilentReaderExit => "silent-reader-exit",
            Mutation::SyncUnthrottle => "sync-unthrottle",
        }
    }

    /// Parses a canonical name.
    pub fn parse(s: &str) -> Option<Mutation> {
        match s {
            "silent-reader-exit" | "reader-exit" => Some(Mutation::SilentReaderExit),
            "sync-unthrottle" => Some(Mutation::SyncUnthrottle),
            _ => None,
        }
    }

    /// Every seedable mutation.
    pub fn all() -> [Mutation; 2] {
        [Mutation::SilentReaderExit, Mutation::SyncUnthrottle]
    }
}

/// Whether this build can activate mutations at all.
pub fn supported() -> bool {
    cfg!(feature = "mutations")
}

#[cfg(feature = "mutations")]
mod imp {
    use std::sync::atomic::AtomicBool;

    pub static READER_EXIT: AtomicBool = AtomicBool::new(false);
    pub static SYNC_UNTHROTTLE: AtomicBool = AtomicBool::new(false);
}

/// Turns `m` on or off. Returns `false` (and does nothing) when the
/// build lacks the `mutations` feature, so callers can fail loudly
/// instead of silently testing nothing.
pub fn set(m: Mutation, on: bool) -> bool {
    #[cfg(feature = "mutations")]
    {
        use std::sync::atomic::Ordering;
        match m {
            Mutation::SilentReaderExit => imp::READER_EXIT.store(on, Ordering::SeqCst),
            Mutation::SyncUnthrottle => imp::SYNC_UNTHROTTLE.store(on, Ordering::SeqCst),
        }
        true
    }
    #[cfg(not(feature = "mutations"))]
    {
        let _ = (m, on);
        false
    }
}

/// Turns every mutation off.
pub fn reset() {
    for m in Mutation::all() {
        set(m, false);
    }
}

/// Checked on the severed-link report-admission path in `bus::SchedBus`.
#[inline]
pub(crate) fn silent_reader_exit() -> bool {
    #[cfg(feature = "mutations")]
    {
        imp::READER_EXIT.load(std::sync::atomic::Ordering::SeqCst)
    }
    #[cfg(not(feature = "mutations"))]
    {
        false
    }
}

/// Checked on the open-breaker guard in `Agent::install`.
#[inline]
pub(crate) fn sync_unthrottle() -> bool {
    #[cfg(feature = "mutations")]
    {
        imp::SYNC_UNTHROTTLE.load(std::sync::atomic::Ordering::SeqCst)
    }
    #[cfg(not(feature = "mutations"))]
    {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for m in Mutation::all() {
            assert_eq!(Mutation::parse(m.name()), Some(m));
        }
        assert_eq!(Mutation::parse("no-such-bug"), None);
    }

    #[test]
    fn disabled_build_reports_unsupported() {
        if !supported() {
            assert!(!set(Mutation::SyncUnthrottle, true));
            assert!(!sync_unthrottle());
            assert!(!silent_reader_exit());
        }
    }

    #[cfg(feature = "mutations")]
    #[test]
    fn toggles_take_effect() {
        reset();
        assert!(set(Mutation::SyncUnthrottle, true));
        assert!(sync_unthrottle());
        assert!(!silent_reader_exit());
        reset();
        assert!(!sync_unthrottle());
    }
}
