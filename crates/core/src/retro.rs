//! Retroactive full-fidelity tracing: per-agent ring buffers with
//! trigger-driven hindsight flush (the paper's §6 "benefit of hindsight"
//! direction).
//!
//! A query answers only what it was told to watch *before* the fact. The
//! retro ring closes the gap for the moments that matter: every agent
//! (when enabled) records the raw export set of **every** tracepoint
//! invocation — woven or not — into a bounded ring that continuously
//! overwrites itself. When something interesting happens (an explicit
//! `Trigger` advice op fires, an overload breaker trips, a woven invoke
//! looks like a latency outlier, or a chaos harness injects a fault), the
//! buffered events correlated with the triggering request drain into a
//! [`RetroReport`] and travel to the frontend like any other report —
//! full-fidelity data for a window that ended *before* anyone asked.
//!
//! # Loss accounting
//!
//! Hindsight data is still accounted data. Every recorded event ends in
//! exactly one bucket, extending the loss identity of the report path:
//!
//! ```text
//! recorded == delivered + dropped + stale + crash_lost + shed + sampled_out
//! ```
//!
//! - `sampled_out`: overwritten in the ring before any trigger wanted it
//!   (the deliberate, bounded loss that makes the ring affordable);
//! - `shed`: flushed by a trigger but evicted from the bounded pending
//!   queue before the transport drained it;
//! - `dropped` / `stale` / `crash_lost` / `delivered`: the transport-side
//!   fates, tallied by the same machinery that accounts ordinary reports.

use std::collections::VecDeque;
use std::sync::Arc;

use pivot_baggage::{Baggage, PackMode, QueryId};
use pivot_model::{Sym, Tuple, Value};

/// The reserved baggage slot carrying the request's trace id.
///
/// Query ids are allocated from 1 and pack slots from 256, so slot 0 is
/// free for the runtime itself. The id rides the ordinary baggage wire
/// format (one `First(1)` tuple of one `U64`), so every propagation
/// boundary that carries baggage carries the trace id for free.
pub const TRACE_SLOT: QueryId = QueryId(0);

/// Default ring capacity, in events.
pub const DEFAULT_RETRO_CAP: usize = 1024;

/// Default bound on events held in flushed-but-undrained
/// [`RetroReport`]s. Past it the oldest pending report is evicted and
/// its events are tallied as shed.
pub const DEFAULT_PENDING_CAP: usize = 4096;

/// Stamps `trace_id` into the request's baggage (replacing any previous
/// one). Embedding systems call this once at request ingress.
pub fn set_trace(baggage: &mut Baggage, trace_id: u64) {
    baggage.clear_query(TRACE_SLOT);
    baggage.pack(
        TRACE_SLOT,
        &PackMode::First(1),
        [Tuple::from_iter([Value::U64(trace_id)])],
    );
}

/// Reads the request's trace id back out of its baggage, if one was set.
pub fn trace_of(baggage: &mut Baggage) -> Option<u64> {
    match baggage.unpack_view(TRACE_SLOT).first()?.get(0) {
        Value::U64(id) => Some(*id),
        _ => None,
    }
}

/// What caused a retroactive flush.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TriggerKind {
    /// An explicit `Trigger` advice op fired (the query's predicate held).
    Advice,
    /// An overload-governor circuit breaker tripped.
    Breaker,
    /// A woven invoke exceeded the agent's latency-outlier threshold.
    LatencyOutlier,
    /// A fault-injection site (or other embedding-level event) asked for
    /// hindsight explicitly.
    Fault,
}

/// One buffered tracepoint invocation: the raw export set, verbatim.
#[derive(Clone, PartialEq, Debug)]
pub struct RetroEvent {
    /// The tracepoint name (interned).
    pub tracepoint: Value,
    /// Invocation time (nanoseconds).
    pub time: u64,
    /// The request's trace id at invocation time (0 = none).
    pub request: u64,
    /// Export names, shared across events of the same tracepoint shape.
    pub names: Arc<Vec<Sym>>,
    /// Export values, position-matched to `names`.
    pub values: Vec<Value>,
}

/// A retroactive flush: the buffered events a trigger drained, plus the
/// loss envelope that keeps hindsight data inside the loss identity.
///
/// Relays forward these opaquely — the originating agent's identity and
/// `seq` survive to the frontend, which dedups on them exactly as it
/// dedups ordinary reports.
#[derive(Clone, PartialEq, Debug)]
pub struct RetroReport {
    /// Originating host.
    pub host: String,
    /// Originating process id.
    pub procid: u64,
    /// Originating process name.
    pub procname: String,
    /// Originating agent incarnation (same dedup role as on `Report`).
    pub incarnation: u64,
    /// Trigger time (nanoseconds).
    pub time: u64,
    /// Per-agent retro flush sequence number, starting at 0.
    pub seq: u64,
    /// The query whose advice or breaker triggered the flush
    /// (`QueryId(0)` when the trigger was not query-scoped).
    pub query: QueryId,
    /// What fired.
    pub kind: TriggerKind,
    /// The trace id the flush was correlated on (0 = uncorrelated: the
    /// whole ring was drained).
    pub request: u64,
    /// The drained events, oldest first.
    pub events: Vec<RetroEvent>,
    /// Cumulative events recorded by this agent incarnation, including
    /// the ones in this report.
    pub recorded_cum: u64,
    /// Cumulative events overwritten in the ring before any trigger
    /// claimed them.
    pub sampled_out_cum: u64,
    /// Cumulative flushed events evicted from the bounded pending queue
    /// before the transport drained them.
    pub shed_cum: u64,
}

/// A snapshot of one ring's cumulative event accounting.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct RetroCounters {
    /// Events recorded into the ring, lifetime.
    pub recorded: u64,
    /// Events drained into [`RetroReport`]s, lifetime.
    pub flushed: u64,
    /// Events overwritten in the ring before any trigger claimed them.
    pub sampled_out: u64,
    /// Flushed events evicted from the bounded pending queue.
    pub shed: u64,
}

impl RetroCounters {
    /// `recorded == flushed + sampled_out + shed + in_ring`: every
    /// recorded event is in exactly one bucket (`in_ring` is
    /// [`RetroRing::buffered`]; events sitting in undrained pending
    /// reports count as `flushed` — their onward fate is the transport's
    /// ledger, not the ring's).
    pub fn balanced_with(&self, in_ring: u64) -> bool {
        self.recorded == self.flushed + self.sampled_out + self.shed + in_ring
    }
}

/// The originating agent's identity, stamped onto every report the ring
/// produces.
#[derive(Clone, Debug)]
pub struct RetroIdent {
    /// Host name.
    pub host: String,
    /// Process id.
    pub procid: u64,
    /// Process name.
    pub procname: String,
    /// Agent incarnation.
    pub incarnation: u64,
}

/// Cached export-name vector for one `(tracepoint, export names)` shape.
struct NameShape {
    tracepoint: Sym,
    /// The tracepoint name as an interned value, stamped onto flushed
    /// events — so recording never touches the global intern pool (a
    /// process-wide lock) from the hot path.
    tp_value: Value,
    names: Arc<Vec<Sym>>,
}

/// One ring slot. Stores a shape *index* instead of the shape's `Arc`s:
/// steady-state recording (push + evict) then moves no reference counts
/// at all; the public [`RetroEvent`] is only materialized for the events
/// a trigger actually claims.
struct Slot {
    shape: u32,
    time: u64,
    request: u64,
    values: Vec<Value>,
}

/// A bounded ring of recent raw tracepoint events with trigger-driven
/// retroactive flush. Owned by one [`Agent`](crate::Agent); all methods
/// run under the agent's retro lock.
pub struct RetroRing {
    ident: RetroIdent,
    cap: usize,
    ring: VecDeque<Slot>,
    /// Recycled `values` allocations from overwritten ring slots, so
    /// steady-state recording allocates only when an export set outgrows
    /// every spare.
    spare: Vec<Vec<Value>>,
    /// Interned name vectors keyed by `(tracepoint, arity)`; validated on
    /// every hit (same shape key, different names → rebuilt), so the
    /// cache is a pure accelerator, never a source of wrong names.
    shapes: Vec<NameShape>,
    /// Flushed reports awaiting a transport drain, bounded by
    /// `pending_cap` total events.
    pending: Vec<RetroReport>,
    pending_cap: usize,
    pending_events: usize,
    seq: u64,
    recorded_cum: u64,
    flushed_cum: u64,
    sampled_out_cum: u64,
    shed_cum: u64,
}

impl RetroRing {
    /// Creates a ring with the default capacities.
    pub fn new(ident: RetroIdent) -> RetroRing {
        RetroRing {
            ident,
            cap: DEFAULT_RETRO_CAP,
            ring: VecDeque::new(),
            spare: Vec::new(),
            shapes: Vec::new(),
            pending: Vec::new(),
            pending_cap: DEFAULT_PENDING_CAP,
            pending_events: 0,
            seq: 0,
            recorded_cum: 0,
            flushed_cum: 0,
            sampled_out_cum: 0,
            shed_cum: 0,
        }
    }

    /// Sets the ring capacity (minimum 1). Shrinking evicts oldest events
    /// into `sampled_out`, exactly as overwriting would.
    pub fn set_cap(&mut self, cap: usize) {
        self.cap = cap.max(1);
        while self.ring.len() > self.cap {
            let slot = self.ring.pop_front().expect("non-empty");
            self.recycle(slot);
            self.sampled_out_cum += 1;
        }
    }

    /// The ring capacity, in events.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Sets the pending-queue bound (in events, minimum 1).
    pub fn set_pending_cap(&mut self, cap: usize) {
        self.pending_cap = cap.max(1);
        self.evict_pending();
    }

    fn recycle(&mut self, slot: Slot) {
        if self.spare.len() < self.cap {
            let mut v = slot.values;
            v.clear();
            self.spare.push(v);
        }
    }

    /// Looks up (or builds) the cached shape — interned tracepoint value
    /// plus shared name vector — for this export set. The hit path is a
    /// short scan validated with string compares (the cache is a pure
    /// accelerator, never a source of wrong names); only a miss — the
    /// first event of a new shape — pays the global intern lock.
    fn shape_for(&mut self, tracepoint: &str, exports: &[(&str, Value)]) -> u32 {
        if let Some(i) = self.shapes.iter().position(|s| {
            s.tracepoint.as_str() == tracepoint
                && s.names.len() == exports.len()
                && s.names
                    .iter()
                    .zip(exports)
                    .all(|(n, (e, _))| n.as_str() == *e)
        }) {
            return i as u32;
        }
        let tp_sym = Sym::from(tracepoint);
        let tp_value = Value::Str(Arc::clone(tp_sym.as_arc()));
        self.shapes.push(NameShape {
            tracepoint: tp_sym,
            tp_value,
            names: Arc::new(exports.iter().map(|(n, _)| Sym::from(*n)).collect()),
        });
        (self.shapes.len() - 1) as u32
    }

    /// Materializes the public event for a slot a trigger claimed.
    fn materialize(shapes: &[NameShape], slot: Slot) -> RetroEvent {
        let shape = &shapes[slot.shape as usize];
        RetroEvent {
            tracepoint: shape.tp_value.clone(),
            time: slot.time,
            request: slot.request,
            names: Arc::clone(&shape.names),
            values: slot.values,
        }
    }

    /// Records one invocation; `request` is the trace id (0 = none).
    pub fn record(&mut self, tracepoint: &str, time: u64, request: u64, exports: &[(&str, Value)]) {
        let shape = self.shape_for(tracepoint, exports);
        self.recorded_cum += 1;
        if self.ring.len() >= self.cap {
            // Steady state: overwrite the oldest slot in place, reusing
            // its `values` allocation — no spare-pool traffic at all.
            let mut slot = self.ring.pop_front().expect("non-empty");
            slot.values.clear();
            slot.values.extend(exports.iter().map(|(_, v)| v.clone()));
            slot.shape = shape;
            slot.time = time;
            slot.request = request;
            self.ring.push_back(slot);
            self.sampled_out_cum += 1;
            return;
        }
        let mut values = self.spare.pop().unwrap_or_default();
        values.extend(exports.iter().map(|(_, v)| v.clone()));
        self.ring.push_back(Slot {
            shape,
            time,
            request,
            values,
        });
    }

    /// Fires a trigger: drains the buffered events correlated with
    /// `request` (all of them when `request` is 0) into a pending
    /// [`RetroReport`]. Returns `false` (and produces nothing) when no
    /// buffered event matches — a second trigger in the same invocation
    /// finds the ring already drained and is thereby suppressed.
    pub fn trigger(&mut self, kind: TriggerKind, query: QueryId, request: u64, now: u64) -> bool {
        let mut events = Vec::new();
        if request == 0 {
            // Uncorrelated hindsight: take the whole window.
            for slot in self.ring.drain(..) {
                events.push(Self::materialize(&self.shapes, slot));
            }
        } else {
            let mut kept = VecDeque::with_capacity(self.ring.len());
            for slot in self.ring.drain(..) {
                if slot.request == request {
                    events.push(Self::materialize(&self.shapes, slot));
                } else {
                    kept.push_back(slot);
                }
            }
            self.ring = kept;
        }
        if events.is_empty() {
            return false;
        }
        self.flushed_cum += events.len() as u64;
        self.pending_events += events.len();
        let seq = self.seq;
        self.seq += 1;
        self.pending.push(RetroReport {
            host: self.ident.host.clone(),
            procid: self.ident.procid,
            procname: self.ident.procname.clone(),
            incarnation: self.ident.incarnation,
            time: now,
            seq,
            query,
            kind,
            request,
            events,
            recorded_cum: self.recorded_cum,
            sampled_out_cum: self.sampled_out_cum,
            shed_cum: self.shed_cum,
        });
        self.evict_pending();
        true
    }

    /// Evicts oldest pending reports until the event bound holds; their
    /// events move from `flushed` to `shed`.
    fn evict_pending(&mut self) {
        while self.pending_events > self.pending_cap && self.pending.len() > 1 {
            let victim = self.pending.remove(0);
            let n = victim.events.len();
            self.pending_events -= n;
            self.flushed_cum -= n as u64;
            self.shed_cum += n as u64;
        }
    }

    /// Takes the pending reports (the transport drain). The envelope
    /// counters on later reports supersede earlier ones.
    pub fn drain(&mut self) -> Vec<RetroReport> {
        self.pending_events = 0;
        std::mem::take(&mut self.pending)
    }

    /// Events currently buffered (ring + pending): the amount an abrupt
    /// crash would lose. Crash harnesses fold this into `crash_lost`.
    pub fn unflushed(&self) -> u64 {
        self.ring.len() as u64 + self.pending_events as u64
    }

    /// Graceful end-of-life: remaining ring events were never claimed by
    /// any trigger and become `sampled_out`; pending reports nobody
    /// drained become `shed`. Call [`RetroRing::drain`] first if the
    /// pending reports should still be delivered.
    pub fn seal(&mut self) -> RetroCounters {
        while let Some(slot) = self.ring.pop_front() {
            self.recycle(slot);
            self.sampled_out_cum += 1;
        }
        for report in std::mem::take(&mut self.pending) {
            let n = report.events.len() as u64;
            self.flushed_cum -= n;
            self.shed_cum += n;
        }
        self.pending_events = 0;
        self.counters()
    }

    /// A snapshot of the cumulative accounting.
    pub fn counters(&self) -> RetroCounters {
        RetroCounters {
            recorded: self.recorded_cum,
            flushed: self.flushed_cum,
            sampled_out: self.sampled_out_cum,
            shed: self.shed_cum,
        }
    }

    /// Events currently in the ring (not yet flushed or overwritten).
    pub fn buffered(&self) -> usize {
        self.ring.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> RetroRing {
        RetroRing::new(RetroIdent {
            host: "host-A".into(),
            procid: 7,
            procname: "DataNode".into(),
            incarnation: 1,
        })
    }

    #[test]
    fn trace_id_round_trips_through_baggage() {
        let mut bag = Baggage::new();
        assert_eq!(trace_of(&mut bag), None);
        set_trace(&mut bag, 42);
        assert_eq!(trace_of(&mut bag), Some(42));
        // Survives the wire.
        let bytes = bag.to_bytes();
        let mut back = Baggage::from_bytes(&bytes);
        assert_eq!(trace_of(&mut back), Some(42));
        // Replacement, not accumulation.
        set_trace(&mut bag, 43);
        assert_eq!(trace_of(&mut bag), Some(43));
    }

    #[test]
    fn wraparound_moves_oldest_to_sampled_out() {
        let mut r = ring();
        r.set_cap(3);
        for i in 0..5 {
            r.record("T", i, 1, &[("x", Value::I64(i as i64))]);
        }
        assert_eq!(r.buffered(), 3);
        let c = r.counters();
        assert_eq!(c.recorded, 5);
        assert_eq!(c.sampled_out, 2);
        assert!(c.balanced_with(r.buffered() as u64));
    }

    #[test]
    fn trigger_drains_only_the_matching_request() {
        let mut r = ring();
        r.record("T", 0, 1, &[]);
        r.record("T", 1, 2, &[]);
        r.record("T", 2, 1, &[]);
        assert!(r.trigger(TriggerKind::Advice, QueryId(9), 1, 10));
        let reports = r.drain();
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].events.len(), 2);
        assert!(reports[0].events.iter().all(|e| e.request == 1));
        assert_eq!(reports[0].query, QueryId(9));
        // Request 2's event is still buffered.
        assert_eq!(r.buffered(), 1);
        assert!(r.counters().balanced_with(r.buffered() as u64));
    }

    #[test]
    fn second_trigger_on_drained_ring_is_suppressed() {
        let mut r = ring();
        r.record("T", 0, 1, &[]);
        assert!(r.trigger(TriggerKind::Advice, QueryId(9), 1, 10));
        assert!(!r.trigger(TriggerKind::Breaker, QueryId(9), 1, 10));
        assert_eq!(r.drain().len(), 1);
    }

    #[test]
    fn uncorrelated_trigger_takes_everything() {
        let mut r = ring();
        r.record("T", 0, 1, &[]);
        r.record("T", 1, 2, &[]);
        assert!(r.trigger(TriggerKind::Fault, QueryId(0), 0, 10));
        let reports = r.drain();
        assert_eq!(reports[0].events.len(), 2);
        assert_eq!(r.buffered(), 0);
    }

    #[test]
    fn pending_overflow_sheds_oldest_report() {
        let mut r = ring();
        r.set_pending_cap(3);
        for round in 0..3u64 {
            for i in 0..2 {
                r.record("T", i, round + 1, &[]);
            }
            assert!(r.trigger(TriggerKind::Advice, QueryId(1), round + 1, 10));
        }
        // 6 flushed events against a 3-event bound: oldest report(s) shed.
        let c = r.counters();
        assert!(c.shed >= 2, "{c:?}");
        assert!(c.balanced_with(r.buffered() as u64), "{c:?}");
        let kept: usize = r.drain().iter().map(|p| p.events.len()).sum();
        assert_eq!(c.flushed, kept as u64);
    }

    #[test]
    fn seal_accounts_every_leftover() {
        let mut r = ring();
        r.record("T", 0, 1, &[]);
        r.record("T", 1, 2, &[]);
        r.trigger(TriggerKind::Advice, QueryId(1), 1, 5);
        // One event pending, one still in the ring; seal without draining.
        let c = r.seal();
        assert_eq!(c.recorded, 2);
        assert_eq!(c.sampled_out, 1);
        assert_eq!(c.shed, 1);
        assert_eq!(c.flushed, 0);
        assert!(c.balanced_with(0));
    }

    #[test]
    fn name_cache_is_validated_not_trusted() {
        let mut r = ring();
        r.record("T", 0, 1, &[("a", Value::I64(1)), ("b", Value::I64(2))]);
        // Same tracepoint and arity, different names: must not inherit.
        r.record("T", 1, 1, &[("c", Value::I64(3)), ("d", Value::I64(4))]);
        r.trigger(TriggerKind::Advice, QueryId(1), 1, 2);
        let reports = r.drain();
        let evs = &reports[0].events;
        assert_eq!(evs[0].names[0].as_str(), "a");
        assert_eq!(evs[1].names[0].as_str(), "c");
        // Same shape again: shared Arc with the first.
        r.record("T", 2, 1, &[("a", Value::I64(5)), ("b", Value::I64(6))]);
    }

    #[test]
    fn sequence_numbers_are_consecutive() {
        let mut r = ring();
        for i in 0..3u64 {
            r.record("T", i, i + 1, &[]);
            r.trigger(TriggerKind::Advice, QueryId(1), i + 1, i);
        }
        let seqs: Vec<u64> = r.drain().iter().map(|p| p.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
    }
}
