//! Tracepoint definitions and the per-process weave registry.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use pivot_baggage::QueryId;
use pivot_model::{intern, Value};
use pivot_query::AdviceByteCode;

/// The variables every tracepoint exports in addition to its declared ones
/// (paper §3): host, timestamp, process id, process name, and the
/// tracepoint name itself.
pub const DEFAULT_EXPORTS: [&str; 5] = ["host", "timestamp", "procid", "procname", "tracepoint"];

/// A tracepoint definition: a named location in the system plus its
/// exported variables.
///
/// Definitions are *not* part of the instrumented system's code — they are
/// the vocabulary queries are written against. In this Rust implementation
/// the instrumented systems call pre-declared tracepoints (see DESIGN.md on
/// the dynamic-weaving substitution); weaving and unweaving advice remains
/// fully dynamic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TracepointDef {
    /// Fully qualified name, e.g. `DataNodeMetrics.incrBytesRead`.
    pub name: String,
    /// Declared export names (the default exports are implicit).
    pub exports: Vec<String>,
}

impl TracepointDef {
    /// Creates a definition.
    pub fn new(
        name: impl Into<String>,
        exports: impl IntoIterator<Item = impl Into<String>>,
    ) -> TracepointDef {
        TracepointDef {
            name: name.into(),
            exports: exports.into_iter().map(Into::into).collect(),
        }
    }

    /// Returns declared plus default export names.
    pub fn all_exports(&self) -> Vec<String> {
        DEFAULT_EXPORTS
            .iter()
            .map(|s| (*s).to_owned())
            .chain(self.exports.iter().cloned())
            .collect()
    }
}

/// One woven bytecode program tagged with the query that owns it.
#[derive(Clone, Debug)]
pub struct Woven {
    /// The owning query (used for unweaving).
    pub query: QueryId,
    /// The lowered advice to run.
    pub code: Arc<AdviceByteCode>,
}

/// Registry slot for one tracepoint: the woven programs plus an interned
/// `Value` of the tracepoint's own name, built once at weave time so every
/// invocation reuses it for the `tracepoint` default export instead of
/// allocating a fresh string.
#[derive(Clone, Debug)]
struct WeaveEntry {
    name: Value,
    list: Arc<Vec<Woven>>,
}

/// The per-process registry mapping tracepoints to woven advice.
///
/// Invocation of an unwoven tracepoint costs a single atomic load (the
/// paper's "zero probe effect" — §5: inactive tracepoints impose no
/// overhead): the registry keeps a global count of woven programs and
/// bails before any lookup when it is zero.
#[derive(Default)]
pub struct Registry {
    woven_count: AtomicUsize,
    map: RwLock<HashMap<String, WeaveEntry>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Returns the advice woven at `tracepoint` together with the interned
    /// tracepoint-name `Value`, or `None` cheaply when the whole registry
    /// is empty. Both halves are reference-counted clones.
    #[inline]
    pub fn lookup(&self, tracepoint: &str) -> Option<(Value, Arc<Vec<Woven>>)> {
        if self.woven_count.load(Ordering::Relaxed) == 0 {
            return None;
        }
        self.map
            .read()
            .get(tracepoint)
            .map(|e| (e.name.clone(), Arc::clone(&e.list)))
    }

    /// Returns `true` if nothing is woven anywhere.
    #[inline]
    pub fn is_idle(&self) -> bool {
        self.woven_count.load(Ordering::Relaxed) == 0
    }

    /// Weaves `code` (owned by `query`) into each of its tracepoints.
    pub fn weave(&self, query: QueryId, code: Arc<AdviceByteCode>) {
        let mut map = self.map.write();
        for tp in &code.tracepoints {
            let entry = map.entry(tp.clone()).or_insert_with(|| WeaveEntry {
                name: Value::Str(intern(tp)),
                list: Arc::new(Vec::new()),
            });
            let mut list = entry.list.as_ref().clone();
            list.push(Woven {
                query,
                code: Arc::clone(&code),
            });
            self.woven_count.fetch_add(1, Ordering::Relaxed);
            entry.list = Arc::new(list);
        }
    }

    /// Removes every advice program owned by `query`.
    pub fn unweave(&self, query: QueryId) {
        let mut map = self.map.write();
        map.retain(|_, entry| {
            let before = entry.list.len();
            let list: Vec<Woven> = entry
                .list
                .iter()
                .filter(|w| w.query != query)
                .cloned()
                .collect();
            let removed = before - list.len();
            if removed > 0 {
                self.woven_count.fetch_sub(removed, Ordering::Relaxed);
            }
            if list.is_empty() {
                false
            } else {
                entry.list = Arc::new(list);
                true
            }
        });
    }

    /// Returns the number of woven (tracepoint, program) pairs.
    pub fn woven_count(&self) -> usize {
        self.woven_count.load(Ordering::Relaxed)
    }

    /// Returns `true` if any advice owned by `query` is woven. Weave-time
    /// only (takes the map lock), never on the invoke hot path.
    pub fn has_query(&self, query: QueryId) -> bool {
        self.map
            .read()
            .values()
            .any(|entry| entry.list.iter().any(|w| w.query == query))
    }

    /// Returns the distinct advice programs woven for `query` (weave-time
    /// cost, never on the invoke hot path). The overload governor captures
    /// these when a budget is set so a tripped breaker can re-weave the
    /// exact programs it unwove.
    pub fn programs_for(&self, query: QueryId) -> Vec<Arc<AdviceByteCode>> {
        let map = self.map.read();
        let mut out: Vec<Arc<AdviceByteCode>> = Vec::new();
        for entry in map.values() {
            for w in entry.list.iter().filter(|w| w.query == query) {
                if !out.iter().any(|p| Arc::ptr_eq(p, &w.code)) {
                    out.push(Arc::clone(&w.code));
                }
            }
        }
        out
    }

    /// Returns the distinct query ids with woven advice, in sorted order
    /// (used by epoch re-sync to reconcile against the frontend's set).
    pub fn woven_queries(&self) -> Vec<QueryId> {
        let map = self.map.read();
        let mut ids: Vec<QueryId> = map
            .values()
            .flat_map(|entry| entry.list.iter().map(|w| w.query))
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_query::bytecode::lower_program;
    use pivot_query::{AdviceOp, AdviceProgram};

    fn program(tps: &[&str]) -> Arc<AdviceByteCode> {
        let lowered = lower_program(&AdviceProgram {
            tracepoints: tps.iter().map(|s| (*s).to_owned()).collect(),
            ops: vec![AdviceOp::Observe {
                alias: "x".into(),
                fields: vec![],
            }],
        });
        Arc::new(lowered.code)
    }

    #[test]
    fn weave_unweave_round_trip() {
        let reg = Registry::new();
        assert!(reg.is_idle());
        assert!(reg.lookup("tp").is_none());
        reg.weave(QueryId(1), program(&["tp", "tp2"]));
        assert_eq!(reg.woven_count(), 2);
        let (name, list) = reg.lookup("tp").unwrap();
        assert_eq!(name, Value::str("tp"));
        assert_eq!(list.len(), 1);
        reg.weave(QueryId(2), program(&["tp"]));
        assert_eq!(reg.lookup("tp").unwrap().1.len(), 2);
        reg.unweave(QueryId(1));
        assert_eq!(reg.woven_count(), 1);
        assert_eq!(reg.lookup("tp").unwrap().1.len(), 1);
        assert!(reg.lookup("tp2").is_none());
        reg.unweave(QueryId(2));
        assert!(reg.is_idle());
    }

    #[test]
    fn default_exports_are_appended() {
        let def = TracepointDef::new("X.y", ["delta"]);
        let all = def.all_exports();
        assert!(all.contains(&"host".to_owned()));
        assert!(all.contains(&"timestamp".to_owned()));
        assert!(all.contains(&"delta".to_owned()));
        assert_eq!(all.len(), 6);
    }
}
