//! Agent-level batched-execution equivalence under overload: with a tiny
//! grouped row cap, `invoke_batch` must keep and shed exactly the same
//! groups — and count exactly the same emitted/shed rows — as per-event
//! `invoke`, both on the plain aggregation path (batch partial
//! aggregation) and through the factorized join path.

use pivot_baggage::Baggage;
use pivot_core::bus::{Report, ReportRows};
use pivot_core::{Agent, Frontend, ProcessInfo};
use pivot_model::Value;

fn mk_agent() -> Agent {
    Agent::new(ProcessInfo {
        host: "h".into(),
        procid: 1,
        procname: "p".into(),
    })
}

/// Flattens grouped report rows to `(key values, finished agg values)`,
/// sorted, so the hash-map drain order of two agents is comparable.
fn grouped_rows(reports: &[Report]) -> Vec<(Vec<Value>, Vec<Value>)> {
    let mut out: Vec<(Vec<Value>, Vec<Value>)> = Vec::new();
    for r in reports {
        if let ReportRows::Grouped(groups) = &r.rows {
            for (k, states) in groups {
                out.push((
                    k.0.values().to_vec(),
                    states.iter().map(|s| s.finish()).collect(),
                ));
            }
        }
    }
    out.sort_by_key(|e| format!("{e:?}"));
    out
}

/// Drives the same event stream through per-event `invoke` on one agent
/// and chunked `invoke_batch` on another, then asserts the loss counters
/// and surviving groups are identical.
fn assert_agents_agree(
    query: &str,
    row_cap: usize,
    seed: impl Fn(&Agent, &mut Baggage),
    events: &[Vec<(&'static str, Value)>],
) {
    let mut fe = Frontend::new();
    fe.define("C", ["name"]);
    fe.define("S", ["x"]);
    let handle = fe.install(query).expect("install");
    let code = fe.code(&handle).expect("code");
    let qid = handle.id;

    let scalar = mk_agent();
    scalar.install(&code);
    scalar.set_row_cap(row_cap);
    let mut bag_scalar = Baggage::new();
    seed(&scalar, &mut bag_scalar);
    for (i, e) in events.iter().enumerate() {
        scalar.invoke("S", &mut bag_scalar, i as u64, e);
    }

    let batched = mk_agent();
    batched.install(&code);
    batched.set_row_cap(row_cap);
    let mut bag_batch = Baggage::new();
    seed(&batched, &mut bag_batch);
    // Uneven chunks so at least one cap boundary lands mid-batch.
    for (c, chunk) in events.chunks(3).enumerate() {
        let ev: Vec<(u64, &[(&str, Value)])> = chunk
            .iter()
            .enumerate()
            .map(|(i, e)| ((c * 3 + i) as u64, e.as_slice()))
            .collect();
        batched.invoke_batch("S", &mut bag_batch, &ev);
    }

    assert_eq!(
        scalar.emitted_for(qid),
        batched.emitted_for(qid),
        "emitted_cum diverges"
    );
    assert_eq!(
        scalar.shed_for(qid),
        batched.shed_for(qid),
        "shed_cum diverges"
    );
    assert_eq!(
        scalar.buffered_rows(qid),
        batched.buffered_rows(qid),
        "surviving group count diverges"
    );
    assert_eq!(
        grouped_rows(&scalar.flush(1_000)),
        grouped_rows(&batched.flush(1_000)),
        "surviving groups diverge"
    );
}

#[test]
fn plain_aggregation_sheds_identically() {
    // 9 distinct group keys against a cap of 3: six groups' rows shed.
    let events: Vec<Vec<(&'static str, Value)>> =
        (0..27).map(|i| vec![("x", Value::I64(i % 9))]).collect();
    assert_agents_agree(
        "From s In S GroupBy s.x Select s.x, COUNT, SUM(s.x)",
        3,
        |_, _| {},
        &events,
    );
}

#[test]
fn factorized_join_sheds_identically() {
    // 6 distinct packed client names → 6 join groups against a cap of 2.
    let events: Vec<Vec<(&'static str, Value)>> =
        (0..12).map(|i| vec![("x", Value::I64(i))]).collect();
    assert_agents_agree(
        "From s In S Join c In C On c -> s GroupBy c.name Select c.name, COUNT, SUM(s.x)",
        2,
        |agent, bag| {
            for n in 0..6 {
                let name = format!("client-{n}");
                agent.invoke("C", bag, n, &[("name", Value::str(&name))]);
            }
        },
        &events,
    );
}
