//! Differential tests: the baggage-based **inline** evaluation of the
//! happened-before join must produce exactly the results of the
//! **global** (unoptimized, Figure 6a) evaluation, on arbitrary executions
//! — including branching ones — and regardless of whether the Table 3
//! optimizer ran.

use std::sync::Arc;

use pivot_core::global::{evaluate, TraceLog, TracedCtx};
use pivot_core::{Agent, Frontend, ProcessInfo, QueryHandle};
use pivot_model::Value;

use proptest::prelude::*;

/// One step of a randomly generated execution.
#[derive(Debug, Clone)]
enum Step {
    /// Invoke tracepoint `A`/`B`/`C` (by index) with payload `v`, on the
    /// branch selected by `lane`.
    Invoke { tp: usize, v: i64, lane: usize },
    /// Split a new branch off the main lane.
    Split,
    /// Join the most recent branch back into the main lane.
    Join,
}

const TRACEPOINTS: [&str; 3] = ["A", "B", "C"];

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        6 => ((0usize..3), (0i64..5), (0usize..4))
            .prop_map(|(tp, v, lane)| Step::Invoke { tp, v, lane }),
        1 => Just(Step::Split),
        1 => Just(Step::Join),
    ]
}

fn make_frontend(optimized: bool) -> Frontend {
    let mut fe = if optimized {
        Frontend::new()
    } else {
        Frontend::new_unoptimized()
    };
    for tp in TRACEPOINTS {
        fe.define(tp, ["x"]);
    }
    fe
}

/// Replays `steps` as `requests` independent requests, recording the trace
/// log and running woven advice through `agent`.
fn replay(steps: &[Step], requests: u64, agent: &Agent, log: &mut TraceLog, allow_branches: bool) {
    let mut now = 0u64;
    for req in 0..requests {
        let mut ctx = TracedCtx::new(log, req);
        let mut branches = Vec::new();
        for step in steps {
            now += 1;
            match step {
                Step::Invoke { tp, v, lane } => {
                    let name = TRACEPOINTS[*tp];
                    let exports = [("x", Value::I64(*v + req as i64))];
                    if branches.is_empty() || *lane == 0 {
                        ctx.record(name, &exports);
                        agent.invoke(name, &mut ctx.baggage, now, &exports);
                    } else {
                        let i = (*lane - 1) % branches.len();
                        // Split borrow: take the branch out briefly.
                        let mut b: pivot_core::global::TracedCtxBranch = branches.remove(i);
                        ctx.record_on(&mut b, name, &exports);
                        agent.invoke(name, &mut b.baggage, now, &exports);
                        branches.insert(i, b);
                    }
                }
                Step::Split if allow_branches && branches.len() < 3 => {
                    branches.push(ctx.split());
                }
                Step::Join if allow_branches => {
                    if let Some(b) = branches.pop() {
                        ctx.join(b);
                    }
                }
                _ => {}
            }
        }
        for b in branches.drain(..) {
            ctx.join(b);
        }
    }
}

/// Runs `text` through frontend+agent and compares with global evaluation.
fn check_query(
    text: &str,
    steps: &[Step],
    requests: u64,
    optimized: bool,
    allow_branches: bool,
) -> Result<(), TestCaseError> {
    let mut fe = make_frontend(optimized);
    let handle: QueryHandle = fe.install(text).expect("valid query");
    let agent = Arc::new(Agent::new(ProcessInfo {
        host: "host-A".into(),
        procid: 1,
        procname: "proc".into(),
    }));
    for cmd in fe.drain_commands() {
        agent.apply(&cmd);
    }

    let mut log = TraceLog::new();
    replay(steps, requests, &agent, &mut log, allow_branches);
    for report in agent.flush(1_000_000_000) {
        fe.accept(report);
    }

    let ast = pivot_query::parse(text).expect("parses");
    let expected = evaluate(&ast, &fe, &log);

    let results = fe.results(&handle);
    let mut got: Vec<Vec<Value>> = if results.spec.streaming {
        results
            .raw_rows()
            .iter()
            .map(|(_, t)| t.values().to_vec())
            .collect()
    } else {
        results.rows().into_iter().map(|r| r.values).collect()
    };
    got.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    let mut expected = expected;
    expected.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    prop_assert_eq!(got, expected, "query: {}", text);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single ⋈→ with group-by aggregation, branching executions.
    #[test]
    fn join_sum_matches_global(
        steps in prop::collection::vec(step_strategy(), 1..40),
        optimized in prop::bool::ANY,
    ) {
        check_query(
            "From b In B Join a In A On a -> b
             GroupBy a.x Select a.x, SUM(b.x)",
            &steps, 2, optimized, true,
        )?;
    }

    /// Three-way chain with a Where spanning stages, branching executions.
    #[test]
    fn chain_count_matches_global(
        steps in prop::collection::vec(step_strategy(), 1..40),
        optimized in prop::bool::ANY,
    ) {
        check_query(
            "From c In C
             Join b In B On b -> c
             Join a In A On a -> b
             Where a.x != c.x
             GroupBy c.x Select c.x, COUNT",
            &steps, 2, optimized, true,
        )?;
    }

    /// Temporal filters (linear executions — recency across concurrent
    /// branches is implementation-defined in both strategies).
    #[test]
    fn most_recent_matches_global(
        steps in prop::collection::vec(step_strategy(), 1..40),
        optimized in prop::bool::ANY,
    ) {
        check_query(
            "From b In B Join a In MostRecent(A) On a -> b
             Select b.x, a.x",
            &steps, 2, optimized, false,
        )?;
    }

    /// FIRST keeps exactly the earliest tuple.
    #[test]
    fn first_matches_global(
        steps in prop::collection::vec(step_strategy(), 1..40),
        optimized in prop::bool::ANY,
    ) {
        check_query(
            "From b In B Join a In First(A) On a -> b
             GroupBy a.x Select a.x, COUNT",
            &steps, 2, optimized, false,
        )?;
    }

    /// Optimized and unoptimized plans agree with each other on every
    /// execution (they both agree with global, but check directly too).
    #[test]
    fn optimizer_is_semantics_preserving(
        steps in prop::collection::vec(step_strategy(), 1..30),
    ) {
        let text = "From c In C
             Join a In A On a -> c
             Where a.x < 3
             GroupBy c.x Select c.x, COUNT, SUM(a.x)";
        let run = |optimized: bool| {
            let mut fe = make_frontend(optimized);
            let handle = fe.install(text).expect("valid");
            let agent = Arc::new(Agent::new(ProcessInfo {
                host: "h".into(),
                procid: 1,
                procname: "p".into(),
            }));
            for cmd in fe.drain_commands() {
                agent.apply(&cmd);
            }
            let mut log = TraceLog::new();
            replay(&steps, 2, &agent, &mut log, true);
            for r in agent.flush(1) {
                fe.accept(r);
            }
            let mut rows: Vec<Vec<Value>> = fe
                .results(&handle)
                .rows()
                .into_iter()
                .map(|r| r.values)
                .collect();
            rows.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            rows
        };
        prop_assert_eq!(run(true), run(false));
    }
}

/// The paper's Figure 3: an execution triggering tracepoints A, B, and C
/// on two branches, with the tuples each query must produce.
#[test]
fn figure_3_semantics() {
    let fe = make_frontend(true);
    let mut log = TraceLog::new();

    // Execution graph of Figure 3 (labels carry the invocation number):
    //   branch 1: a1 ─ b1 ─ c1
    //   branch 2: a2 ─ b2 (forked after a1, joined before c2)
    //   main:     a1 ─ [fork] ... [join] ─ c2 ─ a3
    let mut ctx = TracedCtx::new(&mut log, 0);
    ctx.record("A", &[("x", Value::str("a1"))]);
    let mut b2 = ctx.split();
    ctx.record("B", &[("x", Value::str("b1"))]);
    ctx.record("C", &[("x", Value::str("c1"))]);
    ctx.record_on(&mut b2, "A", &[("x", Value::str("a2"))]);
    ctx.record_on(&mut b2, "B", &[("x", Value::str("b2"))]);
    ctx.join(b2);
    ctx.record("C", &[("x", Value::str("c2"))]);
    ctx.record("A", &[("x", Value::str("a3"))]);

    let rows = |text: &str| -> Vec<Vec<String>> {
        let ast = pivot_query::parse(text).unwrap();
        evaluate(&ast, &fe, &log)
            .into_iter()
            .map(|r| r.into_iter().map(|v| v.to_string()).collect::<Vec<_>>())
            .collect()
    };

    // Query "A": all three invocations.
    assert_eq!(
        rows("From a In A Select a.x"),
        vec![vec!["a1"], vec!["a2"], vec!["a3"]]
    );
    // A ⋈→ B: a1 joins both b's; a2 joins only b2 (its branch).
    assert_eq!(
        rows("From b In B Join a In A On a -> b Select a.x, b.x"),
        vec![vec!["a1", "b1"], vec!["a1", "b2"], vec!["a2", "b2"],]
    );
    // B ⋈→ C: b1 precedes c1 and c2; b2 precedes only c2.
    assert_eq!(
        rows("From c In C Join b In B On b -> c Select b.x, c.x"),
        vec![vec!["b1", "c1"], vec!["b1", "c2"], vec!["b2", "c2"],]
    );
    // (A ⋈→ B) ⋈→ C.
    assert_eq!(
        rows(
            "From c In C Join b In B On b -> c Join a In A On a -> b
             Select a.x, b.x, c.x"
        ),
        vec![
            vec!["a1", "b1", "c1"],
            vec!["a1", "b1", "c2"],
            vec!["a1", "b2", "c2"],
            vec!["a2", "b2", "c2"],
        ]
    );
}
