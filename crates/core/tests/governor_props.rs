//! Property tests for the runtime overload governor: trip → backoff →
//! re-arm is deterministic, a tripped query never executes advice, and an
//! unlimited (or never-exceeded) budget is observationally identical to
//! running ungoverned.

use std::sync::Arc;

use pivot_core::{
    Agent, Bus, Frontend, LocalBus, ProcessInfo, QueryBudget, QueryHandle, ThrottleReason,
};
use pivot_model::Value;

/// One-second virtual windows; timestamps below are in window units.
const WINDOW_NS: u64 = 1_000;

/// A budget that trips after `tuples` emitted/packed tuples per window,
/// with a 2-window base backoff that doubles on consecutive trips.
fn tight(tuples: u64) -> QueryBudget {
    QueryBudget {
        tuples_per_window: tuples,
        ops_per_window: u64::MAX,
        bytes_per_window: u64::MAX,
        window_ns: WINDOW_NS,
        backoff_base_windows: 2,
        max_backoff_doublings: 2,
    }
}

/// Frontend + agent wired over a `LocalBus`, with one streaming query
/// over a single tracepoint.
fn setup() -> (Frontend, Arc<Agent>, LocalBus, QueryHandle) {
    let mut fe = Frontend::new();
    fe.define("Gov.point", ["v"]);
    let handle = fe
        .install("From e In Gov.point Select e.v")
        .expect("governor test query compiles");
    let agent = Arc::new(Agent::new(ProcessInfo {
        host: "gov-host".into(),
        procid: 7,
        procname: "GovProc".into(),
    }));
    let mut bus = LocalBus::new();
    bus.register(Arc::clone(&agent));
    for cmd in fe.drain_commands() {
        bus.broadcast(&cmd);
    }
    (fe, agent, bus, handle)
}

fn push_budget(fe: &mut Frontend, bus: &LocalBus, handle: &QueryHandle, budget: QueryBudget) {
    fe.set_budget(handle, budget);
    for cmd in fe.drain_commands() {
        bus.broadcast(&cmd);
    }
}

fn invoke(agent: &Agent, now: u64, v: i64) {
    let mut bag = pivot_baggage::Baggage::new();
    agent.invoke("Gov.point", &mut bag, now, &[("v", Value::I64(v))]);
}

#[test]
fn breaker_trips_and_advice_stops_executing() {
    let (mut fe, agent, bus, handle) = setup();
    push_budget(&mut fe, &bus, &handle, tight(4));

    // Ten invocations inside one window: the fifth tuple strictly
    // exceeds the 4-per-window budget and trips the breaker; the rest
    // hit an unwoven tracepoint and execute no advice at all.
    for i in 0..10 {
        invoke(&agent, 1 + i, i as i64);
    }
    assert!(agent.is_tripped(handle.id));
    assert_eq!(agent.trips_for(handle.id), 1);
    assert_eq!(agent.emitted_for(handle.id), 5);

    // The throttle notification rides the next flush.
    bus.pump_into(10, &mut fe);
    let res = fe.results(&handle);
    assert_eq!(res.raw_rows().len(), 5);
    let throttles = res.throttles();
    assert_eq!(throttles.len(), 1);
    assert_eq!(throttles[0].query, handle.id);
    assert_eq!(throttles[0].reason, ThrottleReason::Tuples);
    assert_eq!(throttles[0].stats.tuples, 5);
    assert_eq!(throttles[0].stats.trips, 1);
}

#[test]
fn breaker_rearms_after_backoff_and_backoff_doubles() {
    let (mut fe, agent, bus, handle) = setup();
    push_budget(&mut fe, &bus, &handle, tight(4));

    // First trip at t=1..=5. Backoff: 2 windows (2000 ns) from t=5.
    for i in 0..6 {
        invoke(&agent, 1 + i, 0);
    }
    assert!(agent.is_tripped(handle.id));
    assert_eq!(agent.emitted_for(handle.id), 5);

    // Still open before the deadline: flush does not re-arm, invokes do
    // nothing.
    bus.pump_into(1_500, &mut fe);
    assert!(agent.is_tripped(handle.id));
    invoke(&agent, 1_600, 0);
    assert_eq!(agent.emitted_for(handle.id), 5);

    // Past the deadline the flush re-arms and re-weaves; advice runs
    // again in a fresh window.
    bus.pump_into(3_100, &mut fe);
    assert!(!agent.is_tripped(handle.id));
    invoke(&agent, 3_200, 0);
    assert_eq!(agent.emitted_for(handle.id), 6);

    // Second trip: the backoff doubles to 4 windows.
    for i in 0..5 {
        invoke(&agent, 3_300 + i, 0);
    }
    assert!(agent.is_tripped(handle.id));
    assert_eq!(agent.trips_for(handle.id), 2);
    let tripped_at = 3_303;
    // 2 windows later: still open (first-trip backoff would have cleared).
    bus.pump_into(tripped_at + 2_500, &mut fe);
    assert!(agent.is_tripped(handle.id));
    // 4 windows later: re-armed.
    bus.pump_into(tripped_at + 4_100, &mut fe);
    assert!(!agent.is_tripped(handle.id));

    // Both throttle notifications reached the frontend, in trip order.
    let throttles = fe.results(&handle).throttles();
    assert_eq!(throttles.len(), 2);
    assert_eq!(throttles[0].stats.trips, 1);
    assert_eq!(throttles[1].stats.trips, 2);
}

#[test]
fn install_and_sync_cannot_undo_an_open_breaker() {
    let (mut fe, agent, bus, handle) = setup();
    push_budget(&mut fe, &bus, &handle, tight(2));
    for i in 0..4 {
        invoke(&agent, 1 + i, 0);
    }
    assert!(agent.is_tripped(handle.id));
    let frozen = agent.emitted_for(handle.id);

    // Re-delivering the install (duplicate command, or an epoch re-sync
    // racing the trip) must not re-weave a throttled query's advice.
    agent.sync(&fe.installed());
    agent.sync_budgets(&fe.budgets());
    invoke(&agent, 100, 0);
    assert!(agent.is_tripped(handle.id));
    assert_eq!(agent.emitted_for(handle.id), frozen);
}

/// Replays the same trip/re-arm script and captures every observable:
/// rows, trip flags, emission counters, throttle frames.
fn scripted_run() -> (Vec<(u64, pivot_model::Tuple)>, Vec<bool>, u64, usize) {
    let (mut fe, agent, bus, handle) = setup();
    push_budget(&mut fe, &bus, &handle, tight(3));
    let mut trip_flags = Vec::new();
    for round in 0..6u64 {
        let base = round * 2_500;
        for i in 0..5 {
            invoke(&agent, base + 1 + i, (round * 10 + i) as i64);
        }
        trip_flags.push(agent.is_tripped(handle.id));
        bus.pump_into(base + 2_000, &mut fe);
        trip_flags.push(agent.is_tripped(handle.id));
    }
    bus.pump_into(20_000, &mut fe);
    let res = fe.results(&handle);
    let throttles = res.throttles().len();
    (
        res.raw_rows().to_vec(),
        trip_flags,
        agent.emitted_for(handle.id),
        throttles,
    )
}

#[test]
fn trip_and_rearm_sequence_is_deterministic() {
    let a = scripted_run();
    let b = scripted_run();
    assert_eq!(a, b);
    // The script must actually exercise both states.
    assert!(a.1.iter().any(|t| *t) && a.1.iter().any(|t| !*t));
    assert!(a.3 > 0);
}

/// Drives a fixed workload and returns everything the frontend saw.
fn workload_run(budget: Option<QueryBudget>) -> (Vec<(u64, pivot_model::Tuple)>, u64, usize) {
    let (mut fe, agent, bus, handle) = setup();
    if let Some(b) = budget {
        push_budget(&mut fe, &bus, &handle, b);
    }
    for i in 0..200u64 {
        invoke(&agent, i + 1, (i % 13) as i64);
        if (i + 1) % 25 == 0 {
            bus.pump_into(i + 1, &mut fe);
        }
    }
    bus.pump_into(1_000, &mut fe);
    let res = fe.results(&handle);
    (
        res.raw_rows().to_vec(),
        agent.emitted_for(handle.id),
        res.throttles().len(),
    )
}

#[test]
fn unlimited_and_generous_budgets_match_ungoverned_exactly() {
    let ungoverned = workload_run(None);
    assert_eq!(ungoverned.0.len(), 200);
    assert_eq!(ungoverned.2, 0);

    // `unlimited()` short-circuits the governed fast path entirely …
    let unlimited = workload_run(Some(QueryBudget::unlimited()));
    // … while a huge finite budget takes the charging path but never
    // trips. Both must be byte-identical to running without a governor.
    let generous = workload_run(Some(QueryBudget {
        tuples_per_window: u64::MAX - 1,
        ops_per_window: u64::MAX - 1,
        bytes_per_window: u64::MAX - 1,
        window_ns: WINDOW_NS,
        backoff_base_windows: 1,
        max_backoff_doublings: 0,
    }));
    assert_eq!(ungoverned, unlimited);
    assert_eq!(ungoverned, generous);
}
