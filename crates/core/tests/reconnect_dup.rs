//! Direct unit tests for the reconnect duplicate-suppression edge.
//!
//! A reconnecting transport re-sends frames it cannot prove were
//! delivered, and a *restarted* agent reuses its predecessor's stable
//! identity (host, procid) with a fresh `seq` space. The frontend keys
//! sequence tracking on `(host, procid, incarnation)` so the two cases
//! stay distinguishable:
//!
//! - the same incarnation re-delivering a frame mid-window is a
//!   duplicate and must not double-count any aggregate;
//! - a fresh incarnation's `seq 0` is *not* a duplicate of the old
//!   incarnation's `seq 0`, and the dead incarnation's unrecovered
//!   tuples stay visible as `tuples_dropped` (crash loss) instead of
//!   being masked by the successor's fresh counters.
//!
//! The chaos suite covers these paths under random seeds; these tests
//! pin the exact semantics deterministically.

use std::sync::Arc;

use pivot_baggage::Baggage;
use pivot_core::{Agent, Frontend, ProcessInfo, QueryHandle, Report};
use pivot_model::Value;

const QUERY: &str = "From e In Exec GroupBy e.k Select e.k, SUM(e.v)";
const MS: u64 = 1_000_000;

fn frontend_with_query() -> (Frontend, QueryHandle) {
    let mut fe = Frontend::new();
    fe.define("Exec", ["k", "v"]);
    let handle = fe.install_named("Q", QUERY).expect("query installs");
    (fe, handle)
}

/// A fresh agent with the fixed identity `worker-7@host-0`, woven with
/// everything the frontend has installed (the epoch re-sync a
/// reconnecting agent receives). Calling this twice models a restart:
/// same host/procid, new incarnation.
fn fresh_agent(fe: &Frontend) -> Arc<Agent> {
    let agent = Arc::new(Agent::new(ProcessInfo {
        host: "host-0".into(),
        procid: 7,
        procname: "worker".into(),
    }));
    agent.sync(&fe.installed());
    agent
}

fn invoke(agent: &Agent, now: u64, key: &str) {
    let mut bag = Baggage::new();
    agent.invoke(
        "Exec",
        &mut bag,
        now,
        &[("k", Value::str(key)), ("v", Value::I64(1))],
    );
}

fn flush_one(agent: &Agent, now: u64) -> Report {
    let mut reports = agent.flush(now);
    assert_eq!(reports.len(), 1, "one woven query, one report");
    reports.remove(0)
}

/// Sum over every output row (all rows are `k, SUM(v)`).
fn total(fe: &Frontend, handle: &QueryHandle) -> i64 {
    fe.results(handle)
        .rows()
        .iter()
        .map(|r| match r.values[1] {
            Value::I64(n) => n,
            ref v => panic!("SUM column is not an integer: {v:?}"),
        })
        .sum()
}

/// A reconnecting link re-sends unacked frames; the same incarnation's
/// frame arriving again mid-window is suppressed, never merged twice.
#[test]
fn redelivered_frame_from_same_incarnation_does_not_double_count() {
    let (mut fe, handle) = frontend_with_query();
    let agent = fresh_agent(&fe);

    for _ in 0..3 {
        invoke(&agent, MS, "a");
    }
    let first = flush_one(&agent, MS);
    fe.accept(first.clone());
    // The reconnect replay: the exact same frame again.
    fe.accept(first.clone());

    // Later in the same window the agent keeps emitting and flushes
    // again; the stale frame is replayed once more in between.
    for _ in 0..2 {
        invoke(&agent, 2 * MS, "a");
    }
    let second = flush_one(&agent, 2 * MS);
    fe.accept(second);
    fe.accept(first);

    assert_eq!(total(&fe, &handle), 5, "each tuple counted exactly once");
    let loss = fe.results(&handle).loss();
    assert_eq!(loss.reports_accepted, 2);
    assert_eq!(loss.reports_duplicate, 2);
    assert_eq!(loss.reports_missed, 0);
    assert_eq!(loss.tuples_delivered, 5);
    assert_eq!(loss.tuples_emitted, 5);
    assert_eq!(loss.tuples_dropped, 0);
}

/// A restarted agent restarts its `seq` space at 0. Keyed on
/// incarnation, the successor's `seq 0` must be accepted, not
/// suppressed as a replay of the predecessor's `seq 0`.
#[test]
fn fresh_incarnation_seq_zero_is_not_a_duplicate() {
    let (mut fe, handle) = frontend_with_query();

    let old = fresh_agent(&fe);
    for _ in 0..3 {
        invoke(&old, MS, "a");
    }
    let old_first = flush_one(&old, MS);
    assert_eq!(old_first.seq, 0);
    fe.accept(old_first);

    // Restart: same host/procid, fresh incarnation, fresh seq space.
    let new = fresh_agent(&fe);
    assert_ne!(new.incarnation(), old.incarnation());
    for _ in 0..2 {
        invoke(&new, 2 * MS, "a");
    }
    let new_first = flush_one(&new, 2 * MS);
    assert_eq!(new_first.seq, 0, "fresh incarnation restarts at seq 0");
    fe.accept(new_first);

    assert_eq!(total(&fe, &handle), 5, "both incarnations contribute");
    let loss = fe.results(&handle).loss();
    assert_eq!(loss.reports_accepted, 2);
    assert_eq!(loss.reports_duplicate, 0);
    assert_eq!(loss.tuples_delivered, 5);
    assert_eq!(loss.tuples_dropped, 0);
}

/// Tuples a dead incarnation emitted but never got delivered must stay
/// on the books as `tuples_dropped` (the crash loss) after a successor
/// incarnation comes up — the successor's fresh counters must extend
/// the totals, not overwrite the dead incarnation's deficit.
#[test]
fn crashed_incarnation_loss_stays_visible_past_the_restart() {
    let (mut fe, handle) = frontend_with_query();

    let old = fresh_agent(&fe);
    for _ in 0..3 {
        invoke(&old, MS, "a");
    }
    // seq 0 dies in transit with the link.
    let lost = flush_one(&old, MS);
    assert_eq!((lost.seq, lost.tuples), (0, 3));
    drop(lost);
    // seq 1 lands; its cumulative counter proves seq 0 existed.
    for _ in 0..2 {
        invoke(&old, 2 * MS, "a");
    }
    let survivor = flush_one(&old, 2 * MS);
    assert_eq!((survivor.seq, survivor.emitted_cum), (1, 5));
    fe.accept(survivor);

    let loss = fe.results(&handle).loss();
    assert_eq!(loss.reports_missed, 1, "the gap before seq 1 is visible");
    assert_eq!(loss.tuples_dropped, 3, "the lost frame's tuples");

    // The agent crashes; a successor takes over its identity and
    // delivers normally.
    let new = fresh_agent(&fe);
    for _ in 0..4 {
        invoke(&new, 3 * MS, "b");
    }
    fe.accept(flush_one(&new, 3 * MS));

    assert_eq!(total(&fe, &handle), 6, "2 surviving + 4 successor tuples");
    let loss = fe.results(&handle).loss();
    assert_eq!(loss.reports_accepted, 2);
    assert_eq!(loss.reports_duplicate, 0);
    assert_eq!(loss.reports_missed, 1, "the old gap does not heal");
    assert_eq!(loss.tuples_emitted, 9, "5 old + 4 new, summed not maxed");
    assert_eq!(loss.tuples_delivered, 6);
    assert_eq!(
        loss.tuples_dropped, 3,
        "the crash loss survives the restart instead of being masked \
         by the successor's smaller cumulative counters"
    );
    assert!(fe.results(&handle).loss().is_degraded());
}
