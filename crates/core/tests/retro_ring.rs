//! Agent-level retro ring edge cases: wraparound overwriting part of a
//! request's history before its trigger fires, and a breaker trip whose
//! hindsight flush races the breaker's own re-arm cycle. The `RetroRing`
//! unit tests pin the ring in isolation; these drive it through the full
//! `Agent::invoke` path (baggage-carried trace ids, governor charging,
//! unweave-on-trip) where the orderings actually interleave.

use std::sync::Arc;

use pivot_baggage::Baggage;
use pivot_core::{
    set_trace, Agent, Frontend, LocalBus, ProcessInfo, QueryBudget, QueryHandle, TriggerKind,
};
use pivot_model::Value;

fn agent() -> Agent {
    Agent::new(ProcessInfo {
        host: "retro-host".into(),
        procid: 3,
        procname: "RetroProc".into(),
    })
}

/// Invokes `tracepoint` with the request's trace id stamped into fresh
/// baggage, the way a request-scoped invocation arrives in production.
fn invoke_as(agent: &Agent, tracepoint: &str, request: u64, now: u64, v: i64) {
    let mut bag = Baggage::new();
    set_trace(&mut bag, request);
    agent.invoke(tracepoint, &mut bag, now, &[("v", Value::I64(v))]);
}

#[test]
fn wraparound_mid_request_flushes_only_the_surviving_tail() {
    let a = agent();
    a.set_retro(true);
    a.set_retro_cap(4);

    // Two interleaved requests, nine invocations against a four-slot
    // ring: by the time request 1's trigger fires, its early history has
    // been overwritten by later traffic (its own and request 2's).
    let schedule: &[(u64, u64)] = &[
        (1, 0),
        (2, 1),
        (1, 2),
        (2, 3),
        (1, 4),
        (1, 5),
        (2, 6),
        (1, 7),
        (1, 8),
    ];
    for &(req, t) in schedule {
        invoke_as(&a, "Retro.point", req, t, t as i64);
    }
    // Ring holds the last four: t=5 (req 1), t=6 (req 2), t=7, t=8.
    assert_eq!(a.retro_buffered(), 4);

    assert!(a.trigger_retro(TriggerKind::Fault, 1, 100));
    let reports = a.drain_retro();
    assert_eq!(reports.len(), 1);
    let r = &reports[0];
    assert_eq!(r.request, 1);
    assert_eq!(r.kind, TriggerKind::Fault);
    // Only the surviving tail of request 1 — oldest first, nothing from
    // request 2, nothing resurrected from overwritten slots.
    let times: Vec<u64> = r.events.iter().map(|e| e.time).collect();
    assert_eq!(times, vec![5, 7, 8]);
    assert!(r.events.iter().all(|e| e.request == 1));

    // The overwritten five are sampled_out; request 2's survivor is
    // still in the ring; every recorded event is in exactly one bucket.
    let c = a.retro_counters();
    assert_eq!(c.recorded, 9);
    assert_eq!(c.flushed, 3);
    assert_eq!(c.sampled_out, 5);
    assert_eq!(c.shed, 0);
    assert_eq!(a.retro_buffered(), 1);
    assert!(c.balanced_with(a.retro_buffered() as u64));

    // A later trigger for request 2 claims its survivor.
    assert!(a.trigger_retro(TriggerKind::Fault, 2, 101));
    let reports = a.drain_retro();
    assert_eq!(reports[0].events.len(), 1);
    assert_eq!(reports[0].events[0].time, 6);
    assert!(a.retro_counters().balanced_with(0));
}

/// One-second virtual windows (timestamps below are in window units),
/// matching the governor property tests.
const WINDOW_NS: u64 = 1_000;

fn tight(tuples: u64) -> QueryBudget {
    QueryBudget {
        tuples_per_window: tuples,
        ops_per_window: u64::MAX,
        bytes_per_window: u64::MAX,
        window_ns: WINDOW_NS,
        backoff_base_windows: 2,
        max_backoff_doublings: 2,
    }
}

fn governed_setup() -> (Frontend, Arc<Agent>, LocalBus, QueryHandle) {
    let mut fe = Frontend::new();
    fe.define("Gov.point", ["v"]);
    let handle = fe
        .install("From e In Gov.point Select e.v")
        .expect("query compiles");
    let agent = Arc::new(agent());
    let mut bus = LocalBus::new();
    bus.register(Arc::clone(&agent));
    fe.set_budget(&handle, tight(4));
    for cmd in fe.drain_commands() {
        bus.broadcast(&cmd);
    }
    (fe, agent, bus, handle)
}

#[test]
fn breaker_trip_flush_races_rearm_without_losing_or_doubling_events() {
    let (_fe, a, _bus, handle) = governed_setup();
    a.set_retro(true);
    a.set_retro_cap(64);

    // Phase 1: request 11 trips the breaker on its fifth tuple. The trip
    // itself is a retro trigger, correlated to the tripping request.
    for t in 1..=5u64 {
        invoke_as(&a, "Gov.point", 11, t, t as i64);
    }
    assert!(a.is_tripped(handle.id));
    assert_eq!(a.trips_for(handle.id), 1);

    // The race, first direction: a second trigger for the same request
    // lands right behind the trip. The ring was already drained by the
    // breaker's flush, so it must be suppressed — no empty report, no
    // double-flush of the same events.
    assert!(!a.trigger_retro(TriggerKind::Fault, 11, 5));

    let reports = a.drain_retro();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].kind, TriggerKind::Breaker);
    assert_eq!(reports[0].query, handle.id);
    assert_eq!(reports[0].request, 11);
    assert_eq!(reports[0].events.len(), 5);
    assert_eq!(reports[0].seq, 0);

    // Phase 2: while the breaker is open the advice is unwoven, but
    // hindsight recording continues — these events belong to whatever
    // trigger fires next, not to the void.
    for t in 6..=8u64 {
        invoke_as(&a, "Gov.point", 12, t, t as i64);
    }
    assert!(a.is_tripped(handle.id));
    assert_eq!(a.retro_buffered(), 3);

    // The race, second direction: the re-arm itself (backoff elapsed,
    // advice re-woven) is not a trigger and must not flush anything.
    let _ = a.flush(2_100);
    assert!(!a.is_tripped(handle.id));
    assert!(a.drain_retro().is_empty());
    assert_eq!(a.retro_buffered(), 3);

    // Phase 3: request 12 trips the re-armed breaker. Its flush claims
    // both the open-window backlog and the new tuples.
    for t in 2_101..=2_105u64 {
        invoke_as(&a, "Gov.point", 12, t, t as i64);
    }
    assert!(a.is_tripped(handle.id));
    assert_eq!(a.trips_for(handle.id), 2);

    let reports = a.drain_retro();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].kind, TriggerKind::Breaker);
    assert_eq!(reports[0].request, 12);
    assert_eq!(reports[0].events.len(), 8);
    assert_eq!(reports[0].seq, 1);
    let times: Vec<u64> = reports[0].events.iter().map(|e| e.time).collect();
    assert_eq!(times, vec![6, 7, 8, 2_101, 2_102, 2_103, 2_104, 2_105]);

    // Thirteen invocations, thirteen flushed events, zero lost, zero
    // doubled.
    let c = a.retro_counters();
    assert_eq!(c.recorded, 13);
    assert_eq!(c.flushed, 13);
    assert_eq!(c.sampled_out, 0);
    assert_eq!(c.shed, 0);
    assert!(c.balanced_with(0));
}
