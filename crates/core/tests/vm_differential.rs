//! Differential tests for the bytecode VM: on *arbitrary* advice programs
//! — including ill-typed expressions, unresolvable fields, dead unpacks,
//! and pathological op orders — the lowered bytecode must reproduce the
//! tree-walk interpreter's observable behavior bit for bit: emitted rows
//! (in order), execution stats, and the resulting baggage bytes.
//!
//! Two layers:
//!
//! 1. **Program-level** (`random_programs_match_treewalk`): fuzz raw
//!    [`AdviceProgram`]s far outside what the compiler would produce, so
//!    lowering's error paths (`EInst::Fail`, short-circuit skips, fused
//!    pre-predicates, the pack-on-empty guard) are exercised, not just its
//!    happy path.
//! 2. **Query-level** (`random_queries_match_treewalk`): compile random
//!    query texts through the real frontend, then drive the tree-walk and
//!    the VM through the same multi-tracepoint execution, comparing per
//!    program and at the end. (VM-vs-global on branching DAGs is covered
//!    by `differential.rs`, whose agent now executes bytecode.)

use std::sync::Arc;

use pivot_baggage::{Baggage, PackMode, QueryId};
use pivot_core::interp::{self, EmitRows};
use pivot_core::Frontend;
use pivot_model::AggState;
use pivot_model::{AggFunc, BinOp, Expr, GroupKey, Schema, Tuple, UnOp, Value};
use pivot_query::advice::{AdviceOp, AdviceProgram, ColumnRef, OutputSpec};
use pivot_query::bytecode::lower_program;
use pivot_query::{CollectSink, EmitSink, TemporalFilter, Vm};

use proptest::prelude::*;

/// Uniform choice from a fixed list (the vendored proptest shim has no
/// `prop::sample`).
fn select<T: Clone + std::fmt::Debug + 'static>(items: Vec<T>) -> BoxedStrategy<T> {
    let n = items.len();
    (0..n).prop_map(move |i| items[i].clone()).boxed()
}

/// Field names used in generated expressions: a mix of resolvable,
/// suffix-matching, ambiguous, and unknown references.
const FIELD_NAMES: [&str; 8] = ["x.a", "x.b", "x.c", "a", "b", "c", "x.zz", "nope"];

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..5).prop_map(Value::I64),
        (0u64..5).prop_map(Value::U64),
        prop::bool::ANY.prop_map(Value::Bool),
        select(vec!["s", "t"]).prop_map(Value::str),
        Just(Value::Null),
    ]
}

fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        select(FIELD_NAMES.to_vec()).prop_map(Expr::field),
        value_strategy().prop_map(Expr::Lit),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (prop::bool::ANY, inner.clone()).prop_map(|(neg, e)| Expr::Unary(
                if neg { UnOp::Neg } else { UnOp::Not },
                Box::new(e)
            )),
            (
                select(vec![
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::Div,
                    BinOp::Eq,
                    BinOp::Ne,
                    BinOp::Lt,
                    BinOp::Gt,
                    BinOp::And,
                    BinOp::Or,
                ]),
                inner.clone(),
                inner
            )
                .prop_map(|(op, a, b)| Expr::Binary(op, Box::new(a), Box::new(b))),
        ]
    })
}

fn agg_strategy() -> impl Strategy<Value = AggFunc> {
    select(vec![
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Min,
        AggFunc::Max,
        AggFunc::Average,
    ])
}

fn temporal_strategy() -> impl Strategy<Value = Option<TemporalFilter>> {
    prop_oneof![
        Just(None),
        (1usize..3).prop_map(|n| Some(TemporalFilter::First(n))),
        (1usize..3).prop_map(|n| Some(TemporalFilter::MostRecent(n))),
    ]
}

fn op_strategy() -> impl Strategy<Value = AdviceOp> {
    prop_oneof![
        // Observe under alias `x` or `y`; `zz` exports Null.
        (
            select(vec!["x", "y"]),
            prop::collection::vec(select(vec!["a", "b", "c", "zz"]), 0..4)
        )
            .prop_map(|(alias, fields)| AdviceOp::Observe {
                alias: alias.to_owned(),
                fields: fields.into_iter().map(str::to_owned).collect(),
            }),
        // Unpack the seeded slot (100) or a possibly-written slot (200).
        (select(vec![100u64, 200]), (1usize..3), temporal_strategy()).prop_map(
            |(slot, width, post_filter)| AdviceOp::Unpack {
                slot: QueryId(slot),
                schema: Schema::new((0..width).map(|i| format!("u{i}"))),
                post_filter,
            }
        ),
        expr_strategy().prop_map(|pred| AdviceOp::Filter { pred }),
        (
            prop::collection::vec(expr_strategy(), 1..3),
            0usize..4,
            1usize..3,
            0usize..3,
            prop::collection::vec(agg_strategy(), 0..3),
        )
            .prop_map(|(exprs, mode_sel, n, key_seed, aggs)| {
                let width = exprs.len();
                let mode = match mode_sel {
                    0 => PackMode::All,
                    1 => PackMode::First(n),
                    2 => PackMode::Recent(n),
                    _ => {
                        // A well-formed grouped pack covers every column:
                        // key_len keys + one aggregator per value column.
                        let key_len = key_seed.min(width);
                        let mut aggs: Vec<AggFunc> =
                            aggs.into_iter().take(width - key_len).collect();
                        while aggs.len() < width - key_len {
                            aggs.push(AggFunc::Count);
                        }
                        PackMode::GroupAgg { key_len, aggs }
                    }
                };
                let names = (0..exprs.len()).map(|i| format!("p{i}")).collect();
                AdviceOp::Pack {
                    slot: QueryId(200),
                    mode,
                    exprs,
                    names,
                }
            }),
        // Trigger with an optional (possibly ill-typed) predicate: the
        // fire-at-most-once-per-invocation rule must match between
        // engines even when the predicate errors on some tuples.
        prop_oneof![Just(None), expr_strategy().prop_map(Some)].prop_map(|pred| {
            AdviceOp::Trigger {
                query: QueryId(7),
                pred,
            }
        }),
        (
            prop::collection::vec(expr_strategy(), 0..3),
            prop::collection::vec((agg_strategy(), expr_strategy()), 0..3)
        )
            .prop_map(|(keys, aggs)| {
                let columns = (0..keys.len())
                    .map(ColumnRef::Key)
                    .chain((0..aggs.len()).map(ColumnRef::Agg))
                    .collect();
                let spec = OutputSpec {
                    key_names: (0..keys.len()).map(|i| format!("k{i}")).collect(),
                    agg_names: (0..aggs.len()).map(|i| format!("g{i}")).collect(),
                    streaming: aggs.is_empty(),
                    key_exprs: keys,
                    aggs,
                    columns,
                    ..OutputSpec::default()
                };
                AdviceOp::Emit {
                    query: QueryId(7),
                    spec: Arc::new(spec),
                }
            }),
    ]
}

/// Exports visible at the fuzzed tracepoint (`zz` deliberately absent).
fn exports_strategy() -> impl Strategy<Value = Vec<(&'static str, Value)>> {
    (value_strategy(), value_strategy(), value_strategy())
        .prop_map(|(a, b, c)| vec![("a", a), ("b", b), ("c", c)])
}

/// Pre-seeded baggage contents for slot 100.
fn seed_strategy() -> impl Strategy<Value = Vec<Vec<Value>>> {
    prop::collection::vec(prop::collection::vec(value_strategy(), 1..3), 0..4)
}

/// Runs both engines on identical inputs and asserts identical rows,
/// stats, and baggage.
fn assert_engines_agree(
    program: &AdviceProgram,
    exports: &[(&str, Value)],
    seed: &[Vec<Value>],
) -> Result<(), TestCaseError> {
    let lowered = lower_program(program);
    lowered
        .code
        .validate()
        .expect("lowering always yields structurally valid bytecode");

    let mut bag_tree = Baggage::new();
    if !seed.is_empty() {
        bag_tree.pack(
            QueryId(100),
            &PackMode::All,
            seed.iter().map(|t| t.iter().cloned().collect::<Tuple>()),
        );
    }
    let mut bag_vm = bag_tree.clone();

    let (emits, tree_stats) = interp::run(program, exports, &mut bag_tree);
    let mut tree_raw: Vec<(QueryId, Tuple)> = Vec::new();
    let mut tree_grouped: Vec<(QueryId, GroupKey, Vec<Value>)> = Vec::new();
    for e in &emits {
        match interp::emit_rows(e) {
            EmitRows::Raw(rows) => tree_raw.extend(rows.into_iter().map(|t| (e.query, t))),
            EmitRows::Grouped(rows) => {
                tree_grouped.extend(rows.into_iter().map(|(k, a)| (e.query, k, a)))
            }
        }
    }

    let mut sink = CollectSink::default();
    let vm_stats = Vm::new().run(&lowered.code, exports, &mut bag_vm, &mut sink);

    prop_assert_eq!(
        (tree_stats.packed, tree_stats.unpacked, tree_stats.emitted),
        (vm_stats.packed, vm_stats.unpacked, vm_stats.emitted),
        "stats diverge for {:?}",
        program
    );
    prop_assert_eq!(
        tree_stats.triggered,
        sink.triggers.len(),
        "trigger firings diverge for {:?}",
        program
    );
    prop_assert_eq!(
        &tree_raw,
        &sink.raw,
        "streaming rows diverge for {:?}",
        program
    );
    prop_assert_eq!(
        &tree_grouped,
        &sink.grouped,
        "grouped rows diverge for {:?}",
        program
    );
    prop_assert_eq!(
        bag_tree.to_bytes(),
        bag_vm.to_bytes(),
        "baggage diverges for {:?}",
        program
    );
    Ok(())
}

/// An [`EmitSink`] that opts into batch-folded grouped delivery and lands
/// either delivery style in final per-group accumulator states, so the
/// scalar per-row path and the batched fold/factorized paths become
/// directly comparable.
#[derive(Default)]
struct FoldSink {
    raw: Vec<(QueryId, Tuple)>,
    /// `(query, key, states, rows)` in first-seen group order.
    groups: Vec<(QueryId, GroupKey, Vec<AggState>, u64)>,
}

impl FoldSink {
    fn slot(
        &mut self,
        query: QueryId,
        spec: &Arc<OutputSpec>,
        key: GroupKey,
    ) -> &mut (QueryId, GroupKey, Vec<AggState>, u64) {
        if let Some(i) = self
            .groups
            .iter()
            .position(|(q, k, _, _)| *q == query && *k == key)
        {
            return &mut self.groups[i];
        }
        let states = spec.aggs.iter().map(|(f, _)| f.init()).collect();
        self.groups.push((query, key, states, 0));
        self.groups.last_mut().expect("just pushed")
    }

    fn finished(&self) -> Vec<(QueryId, GroupKey, Vec<Value>, u64)> {
        self.groups
            .iter()
            .map(|(q, k, states, rows)| {
                (
                    *q,
                    k.clone(),
                    states.iter().map(AggState::finish).collect(),
                    *rows,
                )
            })
            .collect()
    }
}

impl EmitSink for FoldSink {
    fn streaming_row(&mut self, query: QueryId, _spec: &Arc<OutputSpec>, row: Tuple) {
        self.raw.push((query, row));
    }
    fn grouped_row(
        &mut self,
        query: QueryId,
        spec: &Arc<OutputSpec>,
        key: GroupKey,
        args: &[Value],
    ) {
        let (_, _, states, rows) = self.slot(query, spec, key);
        *rows += 1;
        for (st, arg) in states.iter_mut().zip(args) {
            st.update(arg);
        }
    }
    fn folds_grouped(&self) -> bool {
        true
    }
    fn grouped_fold(
        &mut self,
        query: QueryId,
        spec: &Arc<OutputSpec>,
        key: GroupKey,
        partial: &[AggState],
        rows: u64,
    ) {
        let (_, _, states, r) = self.slot(query, spec, key);
        *r += rows;
        for (st, p) in states.iter_mut().zip(partial) {
            st.merge(p);
        }
    }
}

/// Batched-vs-scalar VM: [`Vm::run_batch`] must reproduce N sequential
/// [`Vm::run`]s exactly — rows in order, stats, and baggage — for
/// arbitrary programs (batchable or not), and, when driven through a
/// folding sink, land identical final aggregation states in identical
/// first-seen group order.
fn assert_batch_agrees(
    program: &AdviceProgram,
    batch_exports: &[Vec<(&'static str, Value)>],
    seed: &[Vec<Value>],
) -> Result<(), TestCaseError> {
    let lowered = lower_program(program);
    let mut bag_seed = Baggage::new();
    if !seed.is_empty() {
        bag_seed.pack(
            QueryId(100),
            &PackMode::All,
            seed.iter().map(|t| t.iter().cloned().collect::<Tuple>()),
        );
    }
    let batch: Vec<&[(&str, Value)]> = batch_exports.iter().map(|e| e.as_slice()).collect();

    // Per-row delivery: byte-identical rows in emit order.
    let mut bag_scalar = bag_seed.clone();
    let mut sink_scalar = CollectSink::default();
    let mut scalar = (0usize, 0usize, 0usize);
    for exports in &batch {
        let s = Vm::new().run(&lowered.code, exports, &mut bag_scalar, &mut sink_scalar);
        scalar = (
            scalar.0 + s.packed,
            scalar.1 + s.unpacked,
            scalar.2 + s.emitted,
        );
    }
    let mut bag_batch = bag_seed.clone();
    let mut sink_batch = CollectSink::default();
    let b = Vm::new().run_batch(&lowered.code, &batch, &mut bag_batch, &mut sink_batch);
    prop_assert_eq!(
        (b.packed, b.unpacked, b.emitted),
        scalar,
        "batch stats diverge for {:?}",
        program
    );
    prop_assert_eq!(
        &sink_batch.raw,
        &sink_scalar.raw,
        "batch streaming rows diverge for {:?}",
        program
    );
    prop_assert_eq!(
        &sink_batch.grouped,
        &sink_scalar.grouped,
        "batch grouped rows diverge for {:?}",
        program
    );
    prop_assert_eq!(
        &sink_batch.triggers,
        &sink_scalar.triggers,
        "batch trigger firings diverge for {:?}",
        program
    );
    prop_assert_eq!(
        bag_batch.to_bytes(),
        bag_scalar.to_bytes(),
        "batch baggage diverges for {:?}",
        program
    );

    // Folding delivery: identical final accumulators per group.
    let mut bag_scalar = bag_seed.clone();
    let mut fold_scalar = FoldSink::default();
    for exports in &batch {
        Vm::new().run(&lowered.code, exports, &mut bag_scalar, &mut fold_scalar);
    }
    let mut bag_fold = bag_seed.clone();
    let mut fold_batch = FoldSink::default();
    Vm::new().run_batch(&lowered.code, &batch, &mut bag_fold, &mut fold_batch);
    prop_assert_eq!(
        fold_batch.finished(),
        fold_scalar.finished(),
        "folded groups diverge for {:?}",
        program
    );
    prop_assert_eq!(
        &fold_batch.raw,
        &fold_scalar.raw,
        "folding streaming rows diverge for {:?}",
        program
    );
    prop_assert_eq!(
        bag_fold.to_bytes(),
        bag_scalar.to_bytes(),
        "folding baggage diverges for {:?}",
        program
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    /// ≥1000 random advice programs: arbitrary op orders, ill-typed and
    /// unresolvable expressions, random pack modes and temporal filters.
    #[test]
    fn random_programs_match_treewalk(
        ops in prop::collection::vec(op_strategy(), 1..6),
        exports in exports_strategy(),
        seed in seed_strategy(),
    ) {
        let program = AdviceProgram { tracepoints: vec!["T".to_owned()], ops };
        assert_engines_agree(&program, &exports, &seed)?;
    }

    /// ≥1000 random advice programs driven as a batch: the columnar batch
    /// engine (including its factorized-join and partial-aggregation fast
    /// paths) must reproduce sequential scalar execution exactly.
    #[test]
    fn random_programs_batch_matches_scalar(
        ops in prop::collection::vec(op_strategy(), 1..6),
        batch in prop::collection::vec(exports_strategy(), 1..5),
        seed in seed_strategy(),
    ) {
        let program = AdviceProgram { tracepoints: vec!["T".to_owned()], ops };
        assert_batch_agrees(&program, &batch, &seed)?;
    }
}

// ---------------------------------------------------------------------------
// Query-level: random query texts through the real compiler.
// ---------------------------------------------------------------------------

const TRACEPOINTS: [&str; 3] = ["A", "B", "C"];

/// A random (but usually installable) query over tracepoints A/B/C.
fn query_strategy() -> impl Strategy<Value = String> {
    let tp = || select(TRACEPOINTS.to_vec());
    let temporal = select(vec!["", "First", "MostRecent"]);
    let cmp = select(vec!["<", ">", "!=", "=="]);
    let agg = select(vec!["COUNT", "SUM(a.x)", "AVERAGE(a.x)", "MIN(a.x)"]);
    prop_oneof![
        tp().prop_map(|s| format!("From a In {s} Select a.x")),
        tp().prop_map(|s| format!("From a In {s} GroupBy a.x Select a.x, COUNT")),
        // Hindsight trigger on a bounded (join-free) flow; both engines
        // must agree on exactly which invocations fire.
        (tp(), (0i64..4))
            .prop_map(|(s, lit)| format!("From a In {s} Where a.x > {lit} Trigger Select a.x")),
        (tp(), tp(), temporal.clone(), agg.clone()).prop_map(|(s1, s2, t, g)| {
            let src = if t.is_empty() {
                s1.to_owned()
            } else {
                format!("{t}({s1})")
            };
            format!(
                "From b In {s2} Join a In {src} On a -> b \
                 GroupBy b.x Select b.x, {g}"
            )
        }),
        (tp(), tp(), cmp, (0i64..4), agg).prop_map(|(s1, s2, c, lit, g)| format!(
            "From b In {s2} Join a In {s1} On a -> b \
             Where a.x {c} {lit} \
             GroupBy a.x Select a.x, {g}"
        )),
    ]
}

/// Drives the tree-walk and the VM through the same linear execution of
/// `query`, comparing emitted rows and final baggage.
fn check_query_engines(query: &str, events: &[(usize, i64)]) -> Result<(), TestCaseError> {
    let mut fe = Frontend::new();
    for tp in TRACEPOINTS {
        fe.define(tp, ["x"]);
    }
    let Ok(handle) = fe.install(query) else {
        // Rejected by the verifier (e.g. a dead-advice corner) — nothing
        // to compare.
        return Ok(());
    };
    let cq = fe.compiled(&handle).expect("compiled form");
    let code = fe.code(&handle).expect("lowered form");
    prop_assert_eq!(cq.advice.len(), code.programs.len());

    let mut bag_tree = Baggage::new();
    let mut bag_vm = Baggage::new();
    let mut bag_batch = Baggage::new();
    let mut tree_raw: Vec<(QueryId, Tuple)> = Vec::new();
    let mut tree_grouped: Vec<(QueryId, GroupKey, Vec<Value>)> = Vec::new();
    let mut sink = CollectSink::default();
    let mut sink_batch = CollectSink::default();
    let mut vm = Vm::new();
    let mut vm_batch = Vm::new();

    let mut tree_triggered = 0usize;
    for (i, &(tp, v)) in events.iter().enumerate() {
        let name = TRACEPOINTS[tp];
        // The same full export set the agent assembles.
        let exports: Vec<(&str, Value)> = vec![
            ("host", Value::str("h")),
            ("timestamp", Value::U64(i as u64)),
            ("procid", Value::U64(1)),
            ("procname", Value::str("p")),
            ("tracepoint", Value::str(name)),
            ("x", Value::I64(v)),
        ];
        for (prog, lowered) in cq.advice.iter().zip(&code.programs) {
            if !prog.tracepoints.iter().any(|t| t == name) {
                continue;
            }
            let (emits, ts) = interp::run(prog, &exports, &mut bag_tree);
            tree_triggered += ts.triggered;
            for e in &emits {
                match interp::emit_rows(e) {
                    EmitRows::Raw(rows) => tree_raw.extend(rows.into_iter().map(|t| (e.query, t))),
                    EmitRows::Grouped(rows) => {
                        tree_grouped.extend(rows.into_iter().map(|(k, a)| (e.query, k, a)))
                    }
                }
            }
            let vs = vm.run(lowered, &exports, &mut bag_vm, &mut sink);
            prop_assert_eq!(
                (ts.packed, ts.unpacked, ts.emitted),
                (vs.packed, vs.unpacked, vs.emitted),
                "stats diverge on {} at event {}",
                query,
                i
            );
            let bs = vm_batch.run_batch(lowered, &[&exports], &mut bag_batch, &mut sink_batch);
            prop_assert_eq!(
                (bs.packed, bs.unpacked, bs.emitted),
                (vs.packed, vs.unpacked, vs.emitted),
                "batch stats diverge on {} at event {}",
                query,
                i
            );
        }
    }
    prop_assert_eq!(&tree_raw, &sink.raw, "streaming rows diverge on {}", query);
    prop_assert_eq!(
        &tree_grouped,
        &sink.grouped,
        "grouped rows diverge on {}",
        query
    );
    prop_assert_eq!(
        bag_tree.to_bytes(),
        bag_vm.to_bytes(),
        "baggage diverges on {}",
        query
    );
    prop_assert_eq!(
        &sink_batch.raw,
        &sink.raw,
        "batch streaming rows diverge on {}",
        query
    );
    prop_assert_eq!(
        &sink_batch.grouped,
        &sink.grouped,
        "batch grouped rows diverge on {}",
        query
    );
    prop_assert_eq!(
        bag_batch.to_bytes(),
        bag_vm.to_bytes(),
        "batch baggage diverges on {}",
        query
    );
    prop_assert_eq!(
        tree_triggered,
        sink.triggers.len(),
        "trigger firings diverge on {}",
        query
    );
    prop_assert_eq!(
        &sink_batch.triggers,
        &sink.triggers,
        "batch trigger firings diverge on {}",
        query
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Real compiled queries: both engines see the same execution and must
    /// emit the same rows and leave the same baggage.
    #[test]
    fn random_queries_match_treewalk(
        query in query_strategy(),
        events in prop::collection::vec(((0usize..3), (0i64..4)), 1..25),
    ) {
        check_query_engines(&query, &events)?;
    }
}
