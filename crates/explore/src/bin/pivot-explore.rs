//! `pivot-explore`: exhaustive protocol interleaving explorer.
//!
//! ```text
//! pivot-explore [--agents N] [--budget M] [--mutation NAME]
//!               [--emit-schedule PATH] [--require-complete]
//!               [--expect-violation]
//! pivot-explore --replay PATH [--expect-violation]
//! ```
//!
//! Exit codes: 0 — the expected outcome (clean by default, a violation
//! under `--expect-violation`); 1 — the opposite outcome; 2 — usage or
//! I/O error, or the budget ran out under `--require-complete`.

use std::process::ExitCode;

use pivot_core::mutation::{self, Mutation};
use pivot_explore::{harness, Explorer, Scenario, Schedule, Violation};

struct Args {
    agents: usize,
    budget: usize,
    mutation: Option<Mutation>,
    replay: Option<String>,
    emit_schedule: Option<String>,
    require_complete: bool,
    expect_violation: bool,
}

fn usage() -> String {
    let muts: Vec<&str> = Mutation::all().iter().map(|m| m.name()).collect();
    format!(
        "usage: pivot-explore [--agents N] [--budget M] [--mutation NAME]\n\
         \x20                    [--emit-schedule PATH] [--require-complete] [--expect-violation]\n\
         \x20      pivot-explore --replay PATH [--expect-violation]\n\
         \n\
         mutations: {} (need the `mutations` build feature; supported here: {})",
        muts.join(", "),
        mutation::supported(),
    )
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        agents: 2,
        budget: 200_000,
        mutation: None,
        replay: None,
        emit_schedule: None,
        require_complete: false,
        expect_violation: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |what: &str| {
            it.next()
                .ok_or_else(|| format!("{what} expects a value\n\n{}", usage()))
        };
        match flag.as_str() {
            "--agents" => {
                args.agents = value("--agents")?
                    .parse()
                    .map_err(|e| format!("--agents: {e}"))?
            }
            "--budget" => {
                args.budget = value("--budget")?
                    .parse()
                    .map_err(|e| format!("--budget: {e}"))?
            }
            "--mutation" => {
                let name = value("--mutation")?;
                args.mutation = Some(
                    Mutation::parse(&name).ok_or_else(|| format!("unknown mutation `{name}`"))?,
                );
            }
            "--replay" => args.replay = Some(value("--replay")?),
            "--emit-schedule" => args.emit_schedule = Some(value("--emit-schedule")?),
            "--require-complete" => args.require_complete = true,
            "--expect-violation" => args.expect_violation = true,
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown flag `{other}`\n\n{}", usage())),
        }
    }
    Ok(args)
}

fn enable_mutation(m: Mutation) -> Result<(), String> {
    if !mutation::set(m, true) {
        return Err(format!(
            "mutation `{}` requires building with `--features mutations`",
            m.name()
        ));
    }
    eprintln!("mutation enabled: {}", m.name());
    Ok(())
}

fn print_violation(v: &Violation) {
    println!("VIOLATION: {} — {}", v.invariant, v.detail);
    println!("schedule ({} transitions):", v.schedule.len());
    for t in &v.schedule {
        println!("  {t}");
    }
}

fn verdict(found_violation: bool, expect_violation: bool) -> ExitCode {
    if found_violation == expect_violation {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn run_replay(args: &Args, path: &str) -> Result<ExitCode, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
    let sched = Schedule::parse(&text).map_err(|e| format!("`{path}`: {e}"))?;
    match (&sched.mutation, args.mutation) {
        // The schedule records the mutation it was found under; replay
        // re-arms it so the counterexample actually reproduces.
        (Some(name), None) => {
            let m = Mutation::parse(name)
                .ok_or_else(|| format!("`{path}`: unknown mutation `{name}`"))?;
            enable_mutation(m)?;
        }
        (_, Some(m)) => enable_mutation(m)?,
        (None, None) => {}
    }
    println!(
        "replaying {} transitions over {} agents",
        sched.steps.len(),
        sched.agents
    );
    match harness::replay(&sched)? {
        Some(v) => {
            print_violation(&v);
            if let Some(expected) = &sched.invariant {
                if *expected != v.invariant.name() {
                    return Err(format!(
                        "schedule claims invariant `{expected}` but replay violated `{}`",
                        v.invariant
                    ));
                }
            }
            Ok(verdict(true, args.expect_violation))
        }
        None => {
            println!("schedule ran clean");
            Ok(verdict(false, args.expect_violation))
        }
    }
}

fn run_explore(args: &Args) -> Result<ExitCode, String> {
    if let Some(m) = args.mutation {
        enable_mutation(m)?;
    }
    let scenario = Scenario::new(args.agents);
    println!(
        "exploring {} agents, budget {} executions",
        scenario.agents, args.budget
    );
    let outcome = Explorer::new(scenario, args.budget).explore();
    println!(
        "{} executions, {} distinct states, {} complete schedules, {}",
        outcome.executions,
        outcome.distinct_states,
        outcome.complete_schedules,
        if outcome.complete {
            "exhaustive"
        } else {
            "budget exhausted"
        },
    );
    match &outcome.violation {
        Some(v) => {
            print_violation(v);
            if let Some(path) = &args.emit_schedule {
                let sched = v.to_schedule(&scenario, args.mutation.map(|m| m.name()));
                std::fs::write(path, sched.render())
                    .map_err(|e| format!("cannot write `{path}`: {e}"))?;
                println!("schedule written to {path}");
            }
            Ok(verdict(true, args.expect_violation))
        }
        None => {
            if !outcome.complete && args.require_complete {
                return Err(format!(
                    "exploration incomplete after {} executions (--require-complete)",
                    outcome.executions
                ));
            }
            Ok(verdict(false, args.expect_violation))
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let result = match args.replay.clone() {
        Some(path) => run_replay(&args, &path),
        None => run_explore(&args),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("pivot-explore: {msg}");
            ExitCode::from(2)
        }
    }
}
