//! Depth-first schedule enumeration with sleep-set dynamic partial-order
//! reduction and state-digest caching.
//!
//! The explorer is *stateless*: visiting a schedule node means
//! re-executing the whole configuration from its initial state along the
//! node's transition prefix (cheap — a prefix is a few dozen
//! transitions). Two reductions keep the tree tractable:
//!
//! - **sleep sets**: after exploring transition `t` from a state, `t`
//!   goes to sleep; sibling branches only wake it when they execute a
//!   transition *dependent* on `t`. Commuting interleavings of
//!   independent deliveries are enumerated once, not `n!` times.
//! - **state-digest caching**: a `(state digest, sleep set)` pair that
//!   has already been expanded is not expanded again. Caching keyed on
//!   the pair (not the digest alone) keeps the classic
//!   sleep-sets-plus-state-matching unsoundness at bay: a state revisited
//!   with a *smaller* sleep set is re-explored.
//!
//! The independence relation is conservative — when in doubt, two
//! transitions are dependent and both orders are explored. Wrongly
//! declaring independence would silently prune real interleavings;
//! wrongly declaring dependence only costs executions.

use std::collections::HashSet;

use crate::harness::{Execution, Violation};
use crate::scenario::{step_fe_write, step_touches, Scenario};
use crate::schedule::TransKey;

/// Whether two transitions may fail to commute. See the module docs of
/// [`crate::harness`] for why deliveries on distinct links commute: each
/// delivery touches exactly one agent (commands, syncs) or only the
/// frontend's per-source merge state (reports, whose merges are
/// commutative for grouped queries), and the clock never advances on
/// deliveries.
pub fn dependent(a: TransKey, b: TransKey) -> bool {
    use TransKey::{Cmd, Rep, Step, Sync};
    match (a, b) {
        // The script is a chain.
        (Step(_), Step(_)) => true,
        // A step conflicts with deliveries touching the agents/links in
        // its footprint (it invokes them, flushes into their bus, or
        // severs/restores/replaces them).
        (Step(k), Cmd { link, .. }) | (Cmd { link, .. }, Step(k)) => step_touches(k, link),
        (Step(k), Sync { agent, .. }) | (Sync { agent, .. }, Step(k)) => step_touches(k, agent),
        (Step(k), Rep { link, .. }) | (Rep { link, .. }, Step(k)) => {
            step_fe_write(k) || step_touches(k, link)
        }
        // Same-agent deliveries are ordered; cross-agent ones commute.
        (Cmd { link: a, .. }, Cmd { link: b, .. }) => a == b,
        (Cmd { link: a, .. }, Sync { agent: b, .. })
        | (Sync { agent: b, .. }, Cmd { link: a, .. }) => a == b,
        (Sync { agent: a, .. }, Sync { agent: b, .. }) => a == b,
        // Command/sync deliveries mutate an agent; report deliveries
        // mutate the frontend. Disjoint state.
        (Cmd { .. }, Rep { .. }) | (Rep { .. }, Cmd { .. }) => false,
        (Sync { .. }, Rep { .. }) | (Rep { .. }, Sync { .. }) => false,
        // Same-source reports are conservatively ordered (sequence
        // tracking); cross-source reports merge commutatively.
        (Rep { link: a, .. }, Rep { link: b, .. }) => a == b,
    }
}

/// What an exploration produced.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Executions performed (= schedule-tree nodes visited).
    pub executions: usize,
    /// Distinct `(state digest, sleep set)` pairs expanded.
    pub distinct_states: usize,
    /// Maximal (terminal) schedules that ran to completion cleanly.
    pub complete_schedules: usize,
    /// `true` when the tree was exhausted within the execution budget
    /// (or a violation stopped the search early — the counterexample is
    /// the answer, completeness is moot).
    pub complete: bool,
    /// The first invariant violation found, with its schedule.
    pub violation: Option<Violation>,
}

/// The DFS explorer over one scenario.
pub struct Explorer {
    scenario: Scenario,
    budget: usize,
    executions: usize,
    complete_schedules: usize,
    exhausted: bool,
    cache: HashSet<(u64, Vec<TransKey>)>,
}

impl Explorer {
    /// Creates an explorer over `scenario` bounded by `budget`
    /// executions.
    pub fn new(scenario: Scenario, budget: usize) -> Explorer {
        Explorer {
            scenario,
            budget,
            executions: 0,
            complete_schedules: 0,
            exhausted: false,
            cache: HashSet::new(),
        }
    }

    /// Runs the exploration to completion, violation, or budget
    /// exhaustion.
    pub fn explore(mut self) -> ExploreOutcome {
        let mut prefix = Vec::new();
        let violation = self.dfs(&mut prefix, &[]);
        ExploreOutcome {
            executions: self.executions,
            distinct_states: self.cache.len(),
            complete_schedules: self.complete_schedules,
            complete: violation.is_some() || !self.exhausted,
            violation,
        }
    }

    fn dfs(&mut self, prefix: &mut Vec<TransKey>, sleep: &[TransKey]) -> Option<Violation> {
        if self.executions >= self.budget {
            self.exhausted = true;
            return None;
        }
        self.executions += 1;
        let (exec, violation) = Execution::run_prefix(&self.scenario, prefix)
            .expect("deterministic re-execution diverged from its own prefix");
        if violation.is_some() {
            return violation;
        }
        let enabled = exec.enabled();
        if enabled.is_empty() {
            if let Some((invariant, detail)) = exec.terminal_check() {
                return Some(Violation {
                    invariant,
                    detail,
                    schedule: prefix.clone(),
                });
            }
            self.complete_schedules += 1;
            return None;
        }
        let mut sleep_key = sleep.to_vec();
        sleep_key.sort_unstable();
        if !self.cache.insert((exec.digest(), sleep_key)) {
            return None;
        }
        drop(exec);
        // Sleep-set DFS: explored transitions go to sleep for the
        // remaining siblings; a child only inherits the sleepers
        // independent of the transition it takes.
        let mut sleep_here = sleep.to_vec();
        for &t in &enabled {
            if sleep_here.contains(&t) {
                continue;
            }
            let child_sleep: Vec<TransKey> = sleep_here
                .iter()
                .copied()
                .filter(|&s| !dependent(s, t))
                .collect();
            prefix.push(t);
            let found = self.dfs(prefix, &child_sleep);
            prefix.pop();
            if found.is_some() {
                return found;
            }
            sleep_here.push(t);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependence_is_symmetric_and_conservative() {
        let cmd0 = TransKey::Cmd { link: 0, idx: 0 };
        let cmd1 = TransKey::Cmd { link: 1, idx: 0 };
        let rep0 = TransKey::Rep {
            link: 0,
            gen: 0,
            query: 1,
            seq: 0,
        };
        let rep1 = TransKey::Rep {
            link: 1,
            gen: 0,
            query: 1,
            seq: 0,
        };
        let sync1 = TransKey::Sync { agent: 1, n: 0 };
        let all = [cmd0, cmd1, rep0, rep1, sync1, TransKey::Step(3)];
        for a in all {
            for b in all {
                assert_eq!(dependent(a, b), dependent(b, a), "{a} vs {b}");
            }
            // Everything conflicts with itself.
            assert!(dependent(a, a), "{a} vs itself");
        }
        // Cross-link deliveries commute; same-link ones do not.
        assert!(!dependent(cmd0, cmd1));
        assert!(!dependent(rep0, rep1));
        assert!(!dependent(cmd0, rep0));
        assert!(dependent(cmd1, sync1));
        // The storm step (3) only touches the severed agent's link.
        assert!(dependent(TransKey::Step(3), cmd1));
        assert!(!dependent(TransKey::Step(3), cmd0));
        // Install (step 0) conflicts with everything.
        assert!(dependent(TransKey::Step(0), rep0));
        assert!(dependent(TransKey::Step(0), cmd1));
    }
}
