//! Scheduler-controlled execution of one small-scope configuration.
//!
//! Each agent sits behind its own [`SchedBus`] whose [`HoldScheduler`]
//! holds every frame indefinitely, so nothing moves unless the explorer
//! delivers it: an [`Execution`] applies one [`TransKey`] at a time —
//! a held command, a held report, a pending epoch re-sync, or the next
//! scripted workload step — and checks the protocol invariants after
//! every transition.
//!
//! The agents never flush through [`Bus::drain_reports`]; the harness
//! flushes them at script steps and admits the reports through
//! [`SchedBus::offer_report`], so report frames only ever move when the
//! explorer picks their transition. The virtual clock advances only on
//! workload steps (never on deliveries), which keeps every timestamp a
//! pure function of script position — the commutativity the DPOR
//! independence relation relies on.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use pivot_baggage::{Baggage, QueryId};
use pivot_core::{
    Agent, Bus, Command, Frontend, HeldFrame, ProcessInfo, QueryHandle, Report, SchedBus,
    Scheduler, Verdict,
};
use pivot_model::Value;
use pivot_query::CompiledCode;

use crate::scenario::{self, Scenario, CRASHED_SLOT, QUERY, ROW_CAP, SEVERED_SLOT, STEPS, TICK};
use crate::schedule::{Schedule, TransKey};

/// The explorer's delivery policy: hold every frame forever. Delivery
/// happens only through [`SchedBus::release_where`] when the explorer
/// executes that frame's transition.
#[derive(Clone, Copy, Default, Debug)]
pub struct HoldScheduler;

impl Scheduler for HoldScheduler {
    fn command_verdict(&self, _index: u64, _cmd: &Command) -> Verdict {
        Verdict::Delay(u64::MAX)
    }
    fn report_verdict(&self, _report: &Report, _now: u64) -> Verdict {
        Verdict::Delay(u64::MAX)
    }
}

/// The bus endpoint behind one link: broadcasts apply to the slot's
/// *current* agent (the cell is swapped on crash/replacement), and
/// drains return nothing — the harness flushes agents explicitly, so a
/// bus drain can never move tuples behind the explorer's back.
pub struct AgentPort {
    cell: Arc<Mutex<Arc<Agent>>>,
}

impl Bus for AgentPort {
    fn broadcast(&self, cmd: &Command) {
        self.cell.lock().unwrap().apply(cmd);
    }
    fn drain_reports(&self, _now: u64) -> Vec<Report> {
        Vec::new()
    }
}

/// One agent slot: its scheduled link and the current agent incarnation.
struct Link {
    bus: SchedBus<AgentPort, HoldScheduler>,
    cell: Arc<Mutex<Arc<Agent>>>,
    /// Generation within this slot: 0 originally, +1 per crash.
    gen: u64,
}

impl Link {
    fn agent(&self) -> Arc<Agent> {
        Arc::clone(&self.cell.lock().unwrap())
    }
}

/// An epoch re-sync in flight to one agent, snapshotted at enqueue time
/// (the frontend's installed set and budgets as of the moment the
/// reconnect/replacement happened).
struct PendingSync {
    agent: usize,
    n: u64,
    installed: Vec<Arc<CompiledCode>>,
    budgets: Vec<(QueryId, pivot_core::QueryBudget)>,
}

/// The protocol invariants the explorer checks on every schedule.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Invariant {
    /// Terminal: `emitted != delivered + shed + dropped + crash_lost` —
    /// tuples vanished without any loss tally.
    LossIdentity,
    /// An agent has a query woven while that query's circuit breaker is
    /// open (an epoch re-sync undid a trip).
    WovenWhileTripped,
    /// A per-incarnation breaker trip count decreased.
    TripsDecreased,
    /// The frontend's install epoch regressed.
    EpochRegressed,
    /// The frontend counted delivered tuples past the agents' emission
    /// counters, or accepted a frame twice (duplicate suppression
    /// failed).
    DoubleCount,
}

impl Invariant {
    /// All invariants, for documentation and CLI listings.
    pub fn all() -> [Invariant; 5] {
        [
            Invariant::LossIdentity,
            Invariant::WovenWhileTripped,
            Invariant::TripsDecreased,
            Invariant::EpochRegressed,
            Invariant::DoubleCount,
        ]
    }

    /// Stable kebab-case name (used in schedule files).
    pub fn name(self) -> &'static str {
        match self {
            Invariant::LossIdentity => "loss-identity",
            Invariant::WovenWhileTripped => "woven-while-tripped",
            Invariant::TripsDecreased => "trips-decreased",
            Invariant::EpochRegressed => "epoch-regressed",
            Invariant::DoubleCount => "double-count",
        }
    }

    /// Parses a name produced by [`Invariant::name`].
    pub fn parse(s: &str) -> Option<Invariant> {
        Invariant::all().into_iter().find(|i| i.name() == s)
    }
}

impl fmt::Display for Invariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An invariant violation together with the exact transition sequence
/// that produced it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: Invariant,
    /// Human-readable specifics (counter values, slots).
    pub detail: String,
    /// The violating schedule: replaying exactly these transitions
    /// reproduces the violation.
    pub schedule: Vec<TransKey>,
}

impl Violation {
    /// Packages the violation as a replayable [`Schedule`] file.
    pub fn to_schedule(&self, scenario: &Scenario, mutation: Option<&str>) -> Schedule {
        Schedule {
            agents: scenario.agents,
            mutation: mutation.map(str::to_owned),
            invariant: Some(self.invariant.name().to_owned()),
            steps: self.schedule.clone(),
        }
    }
}

/// One scheduler-controlled execution of the scenario, from its initial
/// state through an explorer-chosen transition sequence.
pub struct Execution {
    scenario: Scenario,
    fe: Frontend,
    handle: Option<QueryHandle>,
    links: Vec<Link>,
    /// Raw incarnation number → (slot, generation). Incarnations come
    /// from a process-global counter and are not stable across
    /// re-executions; everything explorer-visible uses (slot, gen).
    incarnations: HashMap<u64, (usize, u64)>,
    pending_syncs: Vec<PendingSync>,
    sync_counter: u64,
    next_step: usize,
    /// Monotonicity baseline: (slot, gen) → last observed trip count.
    trips_seen: HashMap<(usize, u64), u32>,
    last_epoch: u64,
    /// Ground-truth tallies for the terminal loss identity.
    emitted_dead: u64,
    shed_dead: u64,
    crash_lost: u64,
}

impl Execution {
    /// Sets up the initial configuration: a frontend knowing the `Exec`
    /// tracepoint and `agents` fresh agents, each behind a hold-all
    /// scheduled link. Nothing is installed yet — that is step 0.
    pub fn new(scenario: &Scenario) -> Execution {
        let mut fe = Frontend::new();
        fe.define("Exec", ["k", "v"]);
        let mut links = Vec::new();
        let mut incarnations = HashMap::new();
        for slot in 0..scenario.agents {
            let agent = fresh_agent(slot);
            incarnations.insert(agent.incarnation(), (slot, 0));
            let cell = Arc::new(Mutex::new(agent));
            let bus = SchedBus::new(
                AgentPort {
                    cell: Arc::clone(&cell),
                },
                HoldScheduler,
            );
            links.push(Link { bus, cell, gen: 0 });
        }
        Execution {
            scenario: *scenario,
            fe,
            handle: None,
            links,
            incarnations,
            pending_syncs: Vec::new(),
            sync_counter: 0,
            next_step: 0,
            trips_seen: HashMap::new(),
            last_epoch: 0,
            emitted_dead: 0,
            shed_dead: 0,
            crash_lost: 0,
        }
    }

    /// Re-executes `prefix` from the initial state. Returns the
    /// resulting execution and the first invariant violation hit along
    /// the way (with its schedule truncated to the violating prefix).
    /// `Err` means the prefix diverged — a transition was not enabled
    /// where the schedule claimed it would be.
    pub fn run_prefix(
        scenario: &Scenario,
        prefix: &[TransKey],
    ) -> Result<(Execution, Option<Violation>), String> {
        let mut exec = Execution::new(scenario);
        for (i, &t) in prefix.iter().enumerate() {
            match exec.apply(t) {
                Err(e) => return Err(format!("transition {i} (`{t}`): {e}")),
                Ok(Some((invariant, detail))) => {
                    let violation = Violation {
                        invariant,
                        detail,
                        schedule: prefix[..=i].to_vec(),
                    };
                    return Ok((exec, Some(violation)));
                }
                Ok(None) => {}
            }
        }
        Ok((exec, None))
    }

    /// The virtual clock: advances only with script progress.
    fn now(&self) -> u64 {
        (self.next_step as u64 + 1) * TICK
    }

    /// The held frames of `slot`'s link as transition keys, regardless
    /// of sever state (severed links' frames are *held*, not enabled).
    fn held_keys(&self, slot: usize) -> Vec<TransKey> {
        let mut out = Vec::new();
        self.links[slot].bus.release_where(|f| {
            match f {
                HeldFrame::Command { index, .. } => out.push(TransKey::Cmd {
                    link: slot,
                    idx: *index,
                }),
                HeldFrame::Report(r) => {
                    let (s, g) = self.incarnations[&r.incarnation];
                    debug_assert_eq!(s, slot, "report held on a foreign link");
                    out.push(TransKey::Rep {
                        link: slot,
                        gen: g,
                        query: r.query.0,
                        seq: r.seq,
                    });
                }
                // The explorer's scenarios never enable retroactive
                // tracing, so no retro frame can be held here.
                HeldFrame::Retro(_) => {}
            }
            false // visit only; release nothing
        });
        out
    }

    /// The currently enabled transitions, in deterministic (DFS) order:
    /// deliveries first, then re-syncs, then the next workload step.
    pub fn enabled(&self) -> Vec<TransKey> {
        let mut out = Vec::new();
        for slot in 0..self.links.len() {
            if self.links[slot].bus.is_severed() {
                continue;
            }
            out.extend(self.held_keys(slot));
        }
        for ps in &self.pending_syncs {
            if !self.links[ps.agent].bus.is_severed() {
                out.push(TransKey::Sync {
                    agent: ps.agent,
                    n: ps.n,
                });
            }
        }
        if self.next_step < STEPS {
            out.push(TransKey::Step(self.next_step));
        }
        out.sort_unstable();
        out
    }

    /// `true` once no transition is enabled (the script is done and
    /// every deliverable frame has been delivered).
    pub fn is_terminal(&self) -> bool {
        self.enabled().is_empty()
    }

    /// Applies one transition. `Err` when the transition is not
    /// currently enabled; otherwise the first invariant violated by the
    /// resulting state, if any.
    pub fn apply(&mut self, t: TransKey) -> Result<Option<(Invariant, String)>, String> {
        if !self.enabled().contains(&t) {
            return Err(format!("transition `{t}` is not enabled"));
        }
        match t {
            TransKey::Cmd { link, idx } => {
                let released = self.links[link].bus.release_where(
                    |f| matches!(f, HeldFrame::Command { index, .. } if *index == idx),
                );
                debug_assert_eq!(released, 1);
                // The drain broadcasts the released command into the
                // agent; AgentPort's drain contributes nothing fresh.
                let stray = self.links[link].bus.drain_reports(self.now());
                for r in stray {
                    self.fe.accept(r);
                }
            }
            TransKey::Rep {
                link,
                gen,
                query,
                seq,
            } => {
                let incarnations = &self.incarnations;
                let released = self.links[link].bus.release_where(|f| match f {
                    HeldFrame::Report(r) => {
                        incarnations[&r.incarnation] == (link, gen)
                            && r.query.0 == query
                            && r.seq == seq
                    }
                    HeldFrame::Command { .. } | HeldFrame::Retro(_) => false,
                });
                debug_assert_eq!(released, 1);
                let reports = self.links[link].bus.drain_reports(self.now());
                for r in reports {
                    self.fe.accept(r);
                }
            }
            TransKey::Sync { agent, n } => {
                let pos = self
                    .pending_syncs
                    .iter()
                    .position(|ps| ps.agent == agent && ps.n == n)
                    .ok_or_else(|| format!("sync {agent}/{n} vanished"))?;
                let ps = self.pending_syncs.remove(pos);
                let a = self.links[agent].agent();
                a.sync(&ps.installed);
                a.sync_budgets(&ps.budgets);
            }
            TransKey::Step(k) => self.apply_step(k)?,
        }
        Ok(self.check_invariants())
    }

    fn apply_step(&mut self, k: usize) -> Result<(), String> {
        let now = (k as u64 + 1) * TICK;
        let agents = self.scenario.agents;
        match k {
            // Install the query and its tight budget; the resulting
            // Install/SetBudget commands are admitted (and held) on
            // every link.
            0 => {
                let handle = self
                    .fe
                    .install_named("Q", QUERY)
                    .map_err(|e| format!("install failed: {e}"))?;
                self.fe.set_budget(&handle, scenario::storm_budget());
                self.handle = Some(handle);
                for cmd in self.fe.drain_commands() {
                    for link in &self.links {
                        link.bus.broadcast(&cmd);
                    }
                }
            }
            // A normal round: agent `i` emits `i + 2` tuples, everyone
            // flushes.
            1 => {
                for slot in 0..agents {
                    for j in 0..slot + 2 {
                        self.invoke(slot, now, &format!("r1-{slot}-{j}"));
                    }
                }
                for slot in 0..agents {
                    self.flush_and_offer(slot, now);
                }
            }
            // The severed agent's frontend link goes down; frames it
            // admits from here on are held until restore.
            2 => self.links[SEVERED_SLOT].bus.sever(),
            // An emission storm on the severed agent: blows the tuple
            // budget (breaker trips) and the row cap (rows shed), then
            // flushes into the dead link.
            3 => {
                for j in 0..40 {
                    self.invoke(SEVERED_SLOT, now, &format!("s-{j}"));
                }
                self.flush_and_offer(SEVERED_SLOT, now);
            }
            // Another round, but the crash victim does not flush — its
            // round-2 tuples must die with it as `crash_lost`.
            4 => {
                for slot in 0..agents {
                    for j in 0..2 {
                        self.invoke(slot, now, &format!("r2-{slot}-{j}"));
                    }
                }
                for slot in 0..agents {
                    if slot != CRASHED_SLOT {
                        self.flush_and_offer(slot, now);
                    }
                }
            }
            // Crash: unflushed tuples are tallied as ground truth and
            // lost; a fresh-generation agent takes the slot and an epoch
            // re-sync to it is enqueued.
            5 => self.crash(CRASHED_SLOT, now),
            // The severed link heals; the frontend re-syncs the agent
            // behind it (whose breaker, tripped during the storm, is
            // still open — the re-sync must not re-weave).
            6 => {
                self.links[SEVERED_SLOT].bus.restore();
                self.enqueue_sync(SEVERED_SLOT);
            }
            // A final round so post-recovery behaviour is observable.
            7 => {
                for slot in 0..agents {
                    self.invoke(slot, now, &format!("r3-{slot}"));
                }
                for slot in 0..agents {
                    self.flush_and_offer(slot, now);
                }
            }
            // The governor's control frames join the alphabet: the
            // frontend replaces the budget mid-flight, and the resulting
            // `SetBudget` frame races whatever round-3 reports are still
            // held on the severed agent's link — the agent whose breaker
            // tripped during the storm and is still open. Whatever order
            // the explorer picks, replacing a budget must never re-arm
            // that breaker or unbalance the loss books. (One link and no
            // extra round: the racing partners are step 7's frames, and
            // keeping the step frame-light keeps 2 agents exhaustively
            // explorable in CI.)
            8 => {
                let handle = self.handle.clone().ok_or("no installed query")?;
                self.fe.set_budget(&handle, scenario::relaxed_budget());
                for cmd in self.fe.drain_commands() {
                    self.links[SEVERED_SLOT].bus.broadcast(&cmd);
                }
            }
            _ => return Err(format!("no such step {k}")),
        }
        self.next_step = k + 1;
        Ok(())
    }

    fn invoke(&self, slot: usize, now: u64, key: &str) {
        let a = self.links[slot].agent();
        let mut bag = Baggage::new();
        a.invoke(
            "Exec",
            &mut bag,
            now,
            &[("k", Value::str(key)), ("v", Value::I64(1))],
        );
    }

    fn flush_and_offer(&mut self, slot: usize, now: u64) {
        let a = self.links[slot].agent();
        for report in a.flush(now) {
            // Hold-all scheduling makes this empty, but a disabled or
            // pass-through bus would deliver immediately.
            let immediate = self.links[slot].bus.offer_report(report, now);
            for r in immediate {
                self.fe.accept(r);
            }
        }
    }

    fn crash(&mut self, slot: usize, now: u64) {
        let old = self.links[slot].agent();
        if let Some(handle) = &self.handle {
            self.emitted_dead += old.emitted_for(handle.id);
            self.shed_dead += old.shed_for(handle.id);
        }
        for report in old.flush(now) {
            // Flushed at the moment of death but never offered to the
            // bus: these tuples are the ground truth for `crash_lost`.
            self.crash_lost += report.tuples;
        }
        let agent = fresh_agent(slot);
        self.links[slot].gen += 1;
        self.incarnations
            .insert(agent.incarnation(), (slot, self.links[slot].gen));
        // The slot keeps its cell (the bus endpoint holds it); only the
        // agent inside swaps, so held commands now apply to the fresh
        // incarnation — exactly like a reconnecting live agent.
        *self.links[slot].cell.lock().unwrap() = agent;
        self.enqueue_sync(slot);
    }

    fn enqueue_sync(&mut self, slot: usize) {
        self.pending_syncs.push(PendingSync {
            agent: slot,
            n: self.sync_counter,
            installed: self.fe.installed(),
            budgets: self.fe.budgets(),
        });
        self.sync_counter += 1;
    }

    /// Per-transition invariants (everything except the terminal loss
    /// identity).
    fn check_invariants(&mut self) -> Option<(Invariant, String)> {
        let epoch = self.fe.epoch();
        if epoch < self.last_epoch {
            return Some((
                Invariant::EpochRegressed,
                format!("epoch went {} -> {epoch}", self.last_epoch),
            ));
        }
        self.last_epoch = epoch;
        let handle = self.handle.as_ref()?;
        let q = handle.id;
        for (slot, link) in self.links.iter().enumerate() {
            let a = link.agent();
            let trips = a.trips_for(q);
            let seen = self.trips_seen.entry((slot, link.gen)).or_insert(0);
            if trips < *seen {
                return Some((
                    Invariant::TripsDecreased,
                    format!(
                        "agent {slot} gen {}: trips went {seen} -> {trips}",
                        link.gen
                    ),
                ));
            }
            *seen = trips;
            if a.is_tripped(q) && a.registry().has_query(q) {
                return Some((
                    Invariant::WovenWhileTripped,
                    format!(
                        "agent {slot} gen {}: query {} is woven while its breaker is open",
                        link.gen, q.0
                    ),
                ));
            }
        }
        let loss = self.fe.results(handle).loss();
        if loss.reports_duplicate != 0 {
            return Some((
                Invariant::DoubleCount,
                format!(
                    "frontend saw {} duplicate reports on a bus that never duplicates",
                    loss.reports_duplicate
                ),
            ));
        }
        if loss.tuples_delivered > loss.tuples_emitted {
            return Some((
                Invariant::DoubleCount,
                format!(
                    "delivered {} tuples > emitted view {}",
                    loss.tuples_delivered, loss.tuples_emitted
                ),
            ));
        }
        None
    }

    /// The terminal loss identity, checked once no transition is
    /// enabled: every tuple any incarnation ever emitted is delivered,
    /// governor-shed, transport-dropped, or crash-lost — against
    /// *ground-truth* agent counters, not the frontend's (possibly
    /// deceived) view.
    pub fn terminal_check(&self) -> Option<(Invariant, String)> {
        let handle = self.handle.as_ref()?;
        let loss = self.fe.results(handle).loss();
        let mut emitted = self.emitted_dead;
        let mut shed = self.shed_dead;
        let mut dropped = 0u64;
        for link in &self.links {
            let a = link.agent();
            emitted += a.emitted_for(handle.id);
            shed += a.shed_for(handle.id);
            dropped += link.bus.stats().tuples_dropped;
        }
        let accounted = loss.tuples_delivered + shed + dropped + self.crash_lost;
        if emitted != accounted {
            return Some((
                Invariant::LossIdentity,
                format!(
                    "emitted {emitted} != delivered {} + shed {shed} + dropped {dropped} \
                     + crash_lost {} ({} unaccounted)",
                    loss.tuples_delivered,
                    self.crash_lost,
                    emitted.abs_diff(accounted),
                ),
            ));
        }
        None
    }

    /// A digest of the whole configuration state — frontend, agents,
    /// links (sever state, tallies, held frames), pending re-syncs,
    /// script position, and ground-truth tallies — stable across
    /// re-executions of the same transition sequence. The explorer's
    /// state cache keys on this.
    pub fn digest(&self) -> u64 {
        use std::fmt::Write as _;
        let mut s = String::with_capacity(512);
        let _ = write!(s, "n{};", self.next_step);
        let incarnations = &self.incarnations;
        let fe_digest = self.fe.state_digest(&mut |inc| {
            incarnations
                .get(&inc)
                .map_or(u64::MAX, |(slot, gen)| ((*slot as u64) << 32) | *gen)
        });
        let _ = write!(s, "f{fe_digest:016x};");
        for (slot, link) in self.links.iter().enumerate() {
            let _ = write!(
                s,
                "a{slot}:{:016x}|{}|{}|{:?};",
                link.agent().state_digest(),
                link.gen,
                link.bus.is_severed(),
                link.bus.stats(),
            );
            let mut held = self.held_keys(slot);
            held.sort_unstable();
            for k in held {
                let _ = write!(s, "h{k};");
            }
        }
        let mut syncs: Vec<(usize, u64)> =
            self.pending_syncs.iter().map(|p| (p.agent, p.n)).collect();
        syncs.sort_unstable();
        let _ = write!(
            s,
            "y{syncs:?};t{}|{}|{}",
            self.emitted_dead, self.shed_dead, self.crash_lost
        );
        crate::fnv64(s.as_bytes())
    }
}

fn fresh_agent(slot: usize) -> Arc<Agent> {
    let agent = Arc::new(Agent::new(ProcessInfo {
        host: format!("host-{slot}"),
        procid: slot as u64,
        procname: "worker".into(),
    }));
    agent.set_row_cap(ROW_CAP);
    agent
}

/// Replays a schedule file deterministically: re-executes exactly its
/// transitions and reports the violation it reproduces (or `None` if it
/// runs clean). `Err` when the schedule diverges from what the scenario
/// can actually do — e.g. a fixture from an older scenario revision.
pub fn replay(sched: &Schedule) -> Result<Option<Violation>, String> {
    let scenario = Scenario::new(sched.agents);
    let (exec, violation) = Execution::run_prefix(&scenario, &sched.steps)?;
    if violation.is_some() {
        return Ok(violation);
    }
    if exec.is_terminal() {
        if let Some((invariant, detail)) = exec.terminal_check() {
            return Ok(Some(Violation {
                invariant,
                detail,
                schedule: sched.steps.clone(),
            }));
        }
    }
    Ok(None)
}
