//! Exhaustive protocol interleaving explorer for the Pivot Tracing
//! runtime (`pivot-explore`).
//!
//! The chaos suite (pivot-chaos) samples fault schedules from a seeded
//! PRF; this crate *enumerates* them. A small-scope configuration of the
//! real protocol code — one [`pivot_core::Frontend`], two to four
//! [`pivot_core::Agent`]s, each behind its own
//! [`pivot_core::SchedBus`] — runs under a scheduler that holds every
//! frame, so the explorer alone decides which frame is delivered next.
//! Every maximal interleaving of command deliveries, report deliveries,
//! epoch re-syncs, and workload steps is executed, subject to sleep-set
//! dynamic partial-order reduction and state-digest caching, and each is
//! checked against the protocol invariants the previous PRs established:
//!
//! - **loss identity** — every emitted tuple is delivered, governor-shed,
//!   transport-dropped, or crash-lost; nothing vanishes unaccounted;
//! - **sync cannot unthrottle** — an epoch re-sync never re-weaves a
//!   query whose circuit breaker is open;
//! - **breaker monotonicity** — per-incarnation trip counts never
//!   decrease;
//! - **epoch monotonicity** — the frontend's install epoch never
//!   regresses;
//! - **no double count** — duplicate-suppression keeps the frontend's
//!   delivered-tuple view at or below the agents' emission counters.
//!
//! A violation yields a [`Violation`] carrying the exact transition
//! sequence that produced it, serializable as a [`Schedule`] file that
//! `pivot-explore --replay` re-executes deterministically — a
//! counterexample is a regression test, not a log line.
//!
//! The model is *stateless* (TraceForge-style): each schedule node
//! re-executes the whole configuration from its initial state, so
//! transition identity ([`TransKey`]) is content-derived — per-link
//! admission indices for commands, `(link, generation, query, seq)` for
//! reports — and stable across re-executions. See DESIGN.md §5g.

pub mod dpor;
pub mod harness;
pub mod scenario;
pub mod schedule;

pub use dpor::{ExploreOutcome, Explorer};
pub use harness::{Execution, Invariant, Violation};
pub use scenario::Scenario;
pub use schedule::{Schedule, TransKey};

/// FNV-1a over `bytes`: the digest primitive for explorer state hashing
/// (mirrors the agent/frontend digests in pivot-core).
pub(crate) fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
