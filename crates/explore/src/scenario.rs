//! The canonical small-scope scenario the explorer enumerates.
//!
//! Model checking the full system at arbitrary scale is hopeless; the
//! small-scope hypothesis says most protocol bugs already manifest in the
//! smallest configuration that can express them. This scenario is that
//! configuration for the Pivot Tracing report/recovery protocol: one
//! frontend, 2–4 agents, one grouped query with a tight overload budget,
//! and a scripted workload that drives every interesting protocol edge —
//! install/budget broadcast, normal rounds, a severed link buffering an
//! overload storm, a crash losing unflushed tuples, and two epoch
//! re-syncs (one to the crashed agent's replacement, one to the agent
//! behind the healed link whose breaker is still open).
//!
//! The script is a fixed chain of [`STEPS`] workload steps; everything
//! *between* steps — which held frame is delivered next — is the
//! explorer's choice. Step metadata ([`step_touches`], [`step_fe_write`])
//! feeds the DPOR independence relation in [`crate::dpor`].

use pivot_core::QueryBudget;

/// Virtual nanoseconds per workload step. The clock advances only on
/// `Step` transitions (never on deliveries), so timestamps are a pure
/// function of script position and independent transitions commute
/// exactly.
pub const TICK: u64 = 1_000_000;

/// The scenario's one query: grouped aggregation over the `Exec`
/// tracepoint. Grouped (not streaming) so result merging is
/// order-insensitive and the frontend digest is stable across
/// report-delivery reorderings.
pub const QUERY: &str = "From e In Exec GroupBy e.k Select e.k, SUM(e.v)";

/// Per-query cap on buffered rows: small enough that the storm step
/// sheds, exercising the `governor_shed` term of the loss identity.
pub const ROW_CAP: usize = 8;

/// Number of scripted workload steps (transitions `Step(0..STEPS)`).
pub const STEPS: usize = 9;

/// The index of the agent whose link is severed during the storm.
pub const SEVERED_SLOT: usize = 1;

/// The index of the agent that crashes mid-run.
pub const CRASHED_SLOT: usize = 0;

/// A small-scope configuration: how many agents sit behind the one
/// frontend. The script itself is fixed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Scenario {
    /// Number of agents (2–4; 2 is exhaustively explorable in CI).
    pub agents: usize,
}

impl Scenario {
    /// A scenario with `agents` agents, clamped to the supported 2–4
    /// range.
    pub fn new(agents: usize) -> Scenario {
        Scenario {
            agents: agents.clamp(2, 4),
        }
    }
}

impl Default for Scenario {
    fn default() -> Scenario {
        Scenario { agents: 2 }
    }
}

/// The tight per-query budget: 16 tuples per one-second window, backoff
/// long enough (64 windows) that a breaker tripped mid-run never re-arms
/// before the run ends — so "sync cannot unthrottle" is checkable at
/// every later transition. The window never rolls over either: the whole
/// run spans well under one window.
pub fn storm_budget() -> QueryBudget {
    QueryBudget {
        tuples_per_window: 16,
        window_ns: 1_000_000_000,
        backoff_base_windows: 64,
        max_backoff_doublings: 0,
        ..QueryBudget::unlimited()
    }
}

/// The step-8 replacement budget the frontend broadcasts mid-run: looser
/// than [`storm_budget`] but still finite, so the `SetBudget` frame races
/// the final round's reports without re-arming the severed agent's
/// still-open breaker (replacing a budget must never unthrottle).
pub fn relaxed_budget() -> QueryBudget {
    QueryBudget {
        tuples_per_window: 64,
        window_ns: 1_000_000_000,
        backoff_base_windows: 64,
        max_backoff_doublings: 0,
        ..QueryBudget::unlimited()
    }
}

/// Whether workload step `k` touches agent/link `slot` — the
/// conservative footprint driving `Step × delivery` (in)dependence.
pub fn step_touches(k: usize, slot: usize) -> bool {
    match k {
        // Install + budget broadcast and the three invoke/flush rounds
        // touch every agent and admit frames on every link.
        0 | 1 | 4 | 7 => true,
        // Sever, storm, restore+re-sync, and the rebudget finale only
        // involve the severed agent's link.
        2 | 3 | 6 | 8 => slot == SEVERED_SLOT,
        // The crash replaces only the crashed agent.
        5 => slot == CRASHED_SLOT,
        _ => false,
    }
}

/// Whether workload step `k` writes frontend state that report delivery
/// also touches (step 0 creates the query's result accumulator).
pub fn step_fe_write(k: usize) -> bool {
    k == 0
}

/// Human-readable name of workload step `k`, for schedule files and
/// violation reports.
pub fn step_name(k: usize) -> &'static str {
    match k {
        0 => "install-query-and-budget",
        1 => "round1-invoke-and-flush",
        2 => "sever-link",
        3 => "storm-and-flush-severed",
        4 => "round2-invoke-flush-most",
        5 => "crash-agent",
        6 => "restore-link-and-resync",
        7 => "round3-invoke-and-flush",
        8 => "rebudget-racing-final-round",
        _ => "past-end",
    }
}
