//! Transition identity and replayable schedule files.
//!
//! The explorer is stateless: every schedule node re-executes the
//! configuration from its initial state, so a transition cannot be named
//! by a pointer or a queue position — it needs an identity derived from
//! frame *content* that comes out identical on every re-execution.
//! [`TransKey`] is that identity. Its derived ordering doubles as the
//! DFS exploration order: deliveries before syncs before workload steps,
//! so the first explored path is the eager FIFO-like one and shallow
//! bugs surface within a handful of executions.
//!
//! A [`Schedule`] is a counterexample serialized as a line-oriented text
//! file — stable under `git diff`, human-auditable, and replayable with
//! `pivot-explore --replay <file>`.

use std::fmt;

/// Content-derived identity of one explorer transition, stable across
/// re-executions of the same schedule prefix.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum TransKey {
    /// Deliver the command admitted `idx`-th on `link`'s bus.
    Cmd {
        /// Target agent slot.
        link: usize,
        /// Admission index on that bus (see
        /// [`pivot_core::Scheduler::command_verdict`]).
        idx: u64,
    },
    /// Deliver one held report, identified by its producing agent
    /// generation (incarnation numbers are process-global and unstable;
    /// the harness remaps them to per-slot generations) and its
    /// per-(agent, query) flush sequence number.
    Rep {
        /// Source agent slot.
        link: usize,
        /// Source agent generation within that slot (0 = original,
        /// bumped on each crash/replacement).
        gen: u64,
        /// Query id.
        query: u64,
        /// Flush sequence number.
        seq: u64,
    },
    /// Deliver the `n`-th enqueued epoch re-sync to `agent`.
    Sync {
        /// Target agent slot.
        agent: usize,
        /// Global re-sync counter value at enqueue time.
        n: u64,
    },
    /// Execute scripted workload step `k` (steps form a chain; step `k`
    /// enables step `k + 1`).
    Step(usize),
}

impl fmt::Display for TransKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransKey::Cmd { link, idx } => write!(f, "cmd {link} {idx}"),
            TransKey::Rep {
                link,
                gen,
                query,
                seq,
            } => write!(f, "rep {link} {gen} {query} {seq}"),
            TransKey::Sync { agent, n } => write!(f, "sync {agent} {n}"),
            TransKey::Step(k) => write!(f, "step {k}"),
        }
    }
}

impl std::str::FromStr for TransKey {
    type Err = String;

    fn from_str(s: &str) -> Result<TransKey, String> {
        let mut it = s.split_whitespace();
        let kind = it.next().ok_or("empty transition")?;
        let mut num = |what: &str| -> Result<u64, String> {
            it.next()
                .ok_or_else(|| format!("`{s}`: missing {what}"))?
                .parse::<u64>()
                .map_err(|e| format!("`{s}`: bad {what}: {e}"))
        };
        let key = match kind {
            "cmd" => TransKey::Cmd {
                link: num("link")? as usize,
                idx: num("index")?,
            },
            "rep" => TransKey::Rep {
                link: num("link")? as usize,
                gen: num("generation")?,
                query: num("query")?,
                seq: num("seq")?,
            },
            "sync" => TransKey::Sync {
                agent: num("agent")? as usize,
                n: num("counter")?,
            },
            "step" => TransKey::Step(num("step index")? as usize),
            other => return Err(format!("unknown transition kind `{other}`")),
        };
        if let Some(extra) = it.next() {
            return Err(format!("`{s}`: trailing token `{extra}`"));
        }
        Ok(key)
    }
}

/// A serialized (counterexample) schedule: the scenario shape, the
/// mutation it was found under (if any), the invariant it violates (if
/// any), and the exact transition sequence.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schedule {
    /// Number of agents in the configuration.
    pub agents: usize,
    /// Mutation name the schedule was found under (`None` for clean
    /// runs; see [`pivot_core::mutation::Mutation`]).
    pub mutation: Option<String>,
    /// Name of the violated invariant, informational.
    pub invariant: Option<String>,
    /// The transition sequence.
    pub steps: Vec<TransKey>,
}

impl Schedule {
    /// Renders the schedule as its file format.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("# pivot-explore schedule v1\n");
        let _ = writeln!(out, "agents {}", self.agents);
        if let Some(m) = &self.mutation {
            let _ = writeln!(out, "mutation {m}");
        }
        if let Some(i) = &self.invariant {
            let _ = writeln!(out, "invariant {i}");
        }
        for t in &self.steps {
            let _ = writeln!(out, "{t}");
        }
        out
    }

    /// Parses the file format produced by [`Schedule::render`].
    pub fn parse(text: &str) -> Result<Schedule, String> {
        let mut agents = None;
        let mut mutation = None;
        let mut invariant = None;
        let mut steps = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| format!("line {}: {msg}", lineno + 1);
            if let Some(rest) = line.strip_prefix("agents ") {
                agents = Some(
                    rest.trim()
                        .parse::<usize>()
                        .map_err(|e| err(format!("bad agent count: {e}")))?,
                );
            } else if let Some(rest) = line.strip_prefix("mutation ") {
                mutation = Some(rest.trim().to_owned());
            } else if let Some(rest) = line.strip_prefix("invariant ") {
                invariant = Some(rest.trim().to_owned());
            } else {
                steps.push(line.parse::<TransKey>().map_err(err)?);
            }
        }
        Ok(Schedule {
            agents: agents.ok_or("missing `agents` header")?,
            mutation,
            invariant,
            steps,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transkey_display_parse_roundtrip() {
        let keys = [
            TransKey::Cmd { link: 2, idx: 7 },
            TransKey::Rep {
                link: 1,
                gen: 3,
                query: 1,
                seq: 9,
            },
            TransKey::Sync { agent: 0, n: 4 },
            TransKey::Step(5),
        ];
        for k in keys {
            let s = k.to_string();
            assert_eq!(s.parse::<TransKey>().unwrap(), k, "via `{s}`");
        }
        assert!("cmd 1".parse::<TransKey>().is_err());
        assert!("bogus 1 2".parse::<TransKey>().is_err());
        assert!("step 1 2".parse::<TransKey>().is_err());
    }

    #[test]
    fn transkey_order_puts_deliveries_before_steps() {
        let mut v = [
            TransKey::Step(0),
            TransKey::Sync { agent: 0, n: 0 },
            TransKey::Rep {
                link: 0,
                gen: 0,
                query: 1,
                seq: 0,
            },
            TransKey::Cmd { link: 0, idx: 0 },
        ];
        v.sort_unstable();
        assert!(matches!(v[0], TransKey::Cmd { .. }));
        assert!(matches!(v[1], TransKey::Rep { .. }));
        assert!(matches!(v[2], TransKey::Sync { .. }));
        assert!(matches!(v[3], TransKey::Step(_)));
    }

    #[test]
    fn schedule_render_parse_roundtrip() {
        let sched = Schedule {
            agents: 3,
            mutation: Some("sync-unthrottle".into()),
            invariant: Some("woven-while-tripped".into()),
            steps: vec![
                TransKey::Step(0),
                TransKey::Cmd { link: 0, idx: 0 },
                TransKey::Rep {
                    link: 1,
                    gen: 0,
                    query: 1,
                    seq: 2,
                },
            ],
        };
        let text = sched.render();
        assert_eq!(Schedule::parse(&text).unwrap(), sched);
        // Comments and blank lines are tolerated.
        let commented = format!("\n# hello\n{text}\n");
        assert_eq!(Schedule::parse(&commented).unwrap(), sched);
        assert!(Schedule::parse("step 0\n").is_err(), "agents is required");
    }
}
