//! Explorer correctness on the unmutated protocol: the 2-agent scenario
//! is exhaustively explorable, every interleaving satisfies every
//! invariant, executions are deterministic, and schedules survive a
//! serialize/parse/replay round trip.

use pivot_explore::harness::replay;
use pivot_explore::{Execution, Explorer, Invariant, Scenario, Schedule, TransKey};

/// The whole point of the small-scope scenario: two agents are cheap
/// enough to enumerate *every* interleaving in CI, and the real protocol
/// code holds every invariant on all of them.
#[test]
fn two_agent_scenario_is_exhaustively_clean() {
    let outcome = Explorer::new(Scenario::new(2), 200_000).explore();
    assert!(
        outcome.complete,
        "2-agent exploration must exhaust within budget ({} executions)",
        outcome.executions
    );
    assert!(
        outcome.violation.is_none(),
        "unexpected violation: {:?}",
        outcome.violation
    );
    assert!(
        outcome.complete_schedules > 1,
        "DPOR must still leave genuinely different maximal schedules"
    );
    assert!(
        outcome.executions > outcome.complete_schedules,
        "interior nodes outnumber terminals"
    );
}

/// Re-executing the same prefix must reproduce the same state digest and
/// the same enabled set — the bedrock of stateless model checking.
#[test]
fn re_execution_is_deterministic() {
    let scenario = Scenario::new(3);
    // An eager FIFO prefix: always take the first enabled transition.
    let mut prefix = Vec::new();
    let mut exec = Execution::new(&scenario);
    while let Some(&t) = exec.enabled().first() {
        prefix.push(t);
        assert_eq!(exec.apply(t).unwrap(), None, "clean run violated at {t}");
    }
    assert!(exec.is_terminal());
    assert_eq!(exec.terminal_check(), None);

    let (again, violation) = Execution::run_prefix(&scenario, &prefix).unwrap();
    assert!(violation.is_none());
    assert_eq!(exec.digest(), again.digest());
    assert!(again.is_terminal());
}

/// A recorded schedule — serialized to its file format and parsed back —
/// replays cleanly and to the same terminal state.
#[test]
fn fifo_schedule_roundtrips_through_file_format() {
    let scenario = Scenario::new(2);
    let mut exec = Execution::new(&scenario);
    let mut steps = Vec::new();
    while let Some(&t) = exec.enabled().first() {
        steps.push(t);
        exec.apply(t).unwrap();
    }
    let sched = Schedule {
        agents: scenario.agents,
        mutation: None,
        invariant: None,
        steps,
    };
    let reparsed = Schedule::parse(&sched.render()).unwrap();
    assert_eq!(reparsed, sched);
    assert_eq!(
        replay(&reparsed).unwrap(),
        None,
        "clean schedule replays clean"
    );
}

/// A schedule that claims a transition before it is enabled must be
/// rejected as diverged, not silently reordered.
#[test]
fn diverged_schedule_is_rejected() {
    let sched = Schedule {
        agents: 2,
        mutation: None,
        invariant: None,
        // Report delivery before anything was ever flushed.
        steps: vec![TransKey::Rep {
            link: 0,
            gen: 0,
            query: 1,
            seq: 0,
        }],
    };
    let err = replay(&sched).unwrap_err();
    assert!(err.contains("not enabled"), "got: {err}");
}

/// Invariant names are stable — schedule files and CI logs refer to
/// them.
#[test]
fn invariant_names_round_trip() {
    for inv in Invariant::all() {
        assert_eq!(Invariant::parse(inv.name()), Some(inv), "{inv}");
    }
    assert_eq!(Invariant::parse("no-such-invariant"), None);
}

/// Without the `mutations` feature the seeded bugs cannot be armed —
/// the production build path is provably mutation-free.
#[test]
fn mutations_require_the_feature() {
    use pivot_core::mutation::{self, Mutation};
    if !mutation::supported() {
        assert!(!mutation::set(Mutation::SilentReaderExit, true));
        assert!(!mutation::set(Mutation::SyncUnthrottle, true));
    }
}
