//! Mutation teeth: prove the explorer actually finds bugs by re-seeding
//! two known-fixed ones (see `pivot_core::mutation`) and asserting each
//! is rediscovered within a bounded schedule count, with a replayable
//! counterexample that survives the schedule file format.
//!
//! Runs only with `--features mutations`; mutation toggles are
//! process-global, so every test serializes on one lock and resets the
//! toggles around its body.
#![cfg(feature = "mutations")]

use std::sync::Mutex;

use pivot_core::mutation::{self, Mutation};
use pivot_explore::harness::replay;
use pivot_explore::{Explorer, Invariant, Scenario, Schedule, Violation};

static MUTATION_LOCK: Mutex<()> = Mutex::new(());

/// The bound proving detection is cheap: both seeded bugs surface on the
/// explorer's *first* maximal schedule (the eager FIFO-like path), so a
/// couple dozen executions — one per prefix node — must suffice.
const DETECTION_BUDGET: usize = 64;

fn with_mutation<T>(m: Mutation, f: impl FnOnce() -> T) -> T {
    let _guard = MUTATION_LOCK.lock().unwrap();
    mutation::reset();
    assert!(mutation::set(m, true), "mutations feature must be active");
    let out = f();
    mutation::reset();
    out
}

/// Explore under `m`, assert the expected invariant breaks within the
/// detection budget, and hand back the counterexample.
fn detect(m: Mutation, expect: Invariant) -> Violation {
    let outcome = Explorer::new(Scenario::new(2), DETECTION_BUDGET).explore();
    let violation = outcome.violation.unwrap_or_else(|| {
        panic!(
            "mutation {} escaped {} executions",
            m.name(),
            outcome.executions
        )
    });
    assert_eq!(violation.invariant, expect, "detail: {}", violation.detail);
    assert!(
        outcome.executions <= DETECTION_BUDGET,
        "took {} executions",
        outcome.executions
    );
    violation
}

/// Replay the counterexample — directly, and again after a round trip
/// through the schedule file format — and require the same invariant to
/// break both times.
fn assert_reproduces(m: Mutation, violation: &Violation) {
    let sched = violation.to_schedule(&Scenario::new(2), Some(m.name()));
    let replayed = replay(&sched)
        .expect("counterexample replays without divergence")
        .expect("counterexample reproduces a violation");
    assert_eq!(replayed.invariant, violation.invariant);
    assert_eq!(replayed.schedule, violation.schedule);

    let reparsed = Schedule::parse(&sched.render()).unwrap();
    assert_eq!(reparsed, sched, "file format round trip");
    let again = replay(&reparsed).unwrap().unwrap();
    assert_eq!(again.invariant, violation.invariant);
}

/// PR 4's bug, re-seeded: a severed link's reader swallows report frames
/// with no tally anywhere. No single counter looks wrong — only the
/// end-to-end loss identity over ground-truth agent counters exposes the
/// unaccounted tuples.
#[test]
fn explorer_rediscovers_silent_reader_exit() {
    with_mutation(Mutation::SilentReaderExit, || {
        let violation = detect(Mutation::SilentReaderExit, Invariant::LossIdentity);
        assert!(
            violation.detail.contains("unaccounted"),
            "detail: {}",
            violation.detail
        );
        assert_reproduces(Mutation::SilentReaderExit, &violation);
    });
}

/// PR 5's bug, re-seeded: `Agent::install` ignores an open breaker, so
/// the epoch re-sync after the link heals re-weaves a query that is
/// mid-backoff.
#[test]
fn explorer_rediscovers_sync_unthrottle() {
    with_mutation(Mutation::SyncUnthrottle, || {
        let violation = detect(Mutation::SyncUnthrottle, Invariant::WovenWhileTripped);
        assert_reproduces(Mutation::SyncUnthrottle, &violation);
    });
}

/// The committed counterexample fixtures — produced by
/// `pivot-explore --mutation <m> --emit-schedule` — keep reproducing
/// their violations: a found bug stays a regression test.
#[test]
fn committed_fixtures_still_reproduce() {
    for (fixture, expect) in [
        (
            include_str!("fixtures/silent-reader-exit.sched"),
            Invariant::LossIdentity,
        ),
        (
            include_str!("fixtures/sync-unthrottle.sched"),
            Invariant::WovenWhileTripped,
        ),
    ] {
        let sched = Schedule::parse(fixture).unwrap();
        let m = Mutation::parse(sched.mutation.as_deref().unwrap()).unwrap();
        assert_eq!(sched.invariant.as_deref(), Some(expect.name()));
        let violation = with_mutation(m, || {
            replay(&sched)
                .expect("fixture must not diverge — regenerate it if the scenario changed")
                .expect("fixture must reproduce its violation")
        });
        assert_eq!(violation.invariant, expect, "fixture {}", m.name());
    }
}

/// With every mutation off, the same configuration is clean — the teeth
/// only bite the seeded bugs, not the fixed protocol.
#[test]
fn unmutated_protocol_passes_the_same_search() {
    let _guard = MUTATION_LOCK.lock().unwrap();
    mutation::reset();
    let outcome = Explorer::new(Scenario::new(2), 4096).explore();
    assert!(outcome.violation.is_none(), "{:?}", outcome.violation);
}
