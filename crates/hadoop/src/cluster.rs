//! Hosts, the network fabric, and Pivot Tracing wiring.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use pivot_core::frontend::InstallError;
use pivot_core::{Agent, Bus, Command, Frontend, ProcessInfo, QueryHandle, Report};
use pivot_simrt::{join2, Clock, Counter, FifoResource, Nanos, SimRt};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::tracepoints;

/// One megabyte, the unit for sizes throughout the simulation.
pub const MB: f64 = 1024.0 * 1024.0;

/// Cluster construction parameters.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Number of worker hosts (`host-A`…; the paper uses 8). A NameNode
    /// host is always appended after the workers.
    pub workers: usize,
    /// RNG seed for placement and workloads.
    pub seed: u64,
    /// Disk bandwidth per host, bytes/sec.
    pub disk_rate: f64,
    /// NIC bandwidth per direction per host, bytes/sec (1 Gbit default).
    pub nic_rate: f64,
    /// IO chunk size in bytes (tracepoint granularity).
    pub chunk: f64,
    /// Reproduce the HDFS-6268 replica-ordering bug (paper §6.1).
    pub replica_bug: bool,
    /// Agent reporting interval in seconds (paper default: 1 s).
    pub report_interval: f64,
    /// Compile queries with the Table 3 optimizer (off = the paper's
    /// unoptimized baseline, for the ablation benches).
    pub optimize_queries: bool,
    /// Extra per-operation disk positioning cost, expressed in bytes of
    /// equivalent transfer (seek + protocol overhead for random IO).
    pub seek_bytes: f64,
}

impl Default for ClusterConfig {
    fn default() -> ClusterConfig {
        ClusterConfig {
            workers: 8,
            seed: 42,
            disk_rate: 120.0 * MB,
            nic_rate: 125.0 * MB,
            chunk: 4.0 * MB,
            replica_bug: false,
            report_interval: 1.0,
            optimize_queries: true,
            seek_bytes: 1.0 * MB,
        }
    }
}

impl ClusterConfig {
    /// A small 4-worker cluster for tests and the quickstart example.
    pub fn small(seed: u64) -> ClusterConfig {
        ClusterConfig {
            workers: 4,
            seed,
            ..ClusterConfig::default()
        }
    }
}

/// A simulated machine: two NIC directions, one disk, and utilization
/// counters (the "machine-level metrics" the paper's case studies consult
/// out-of-band, e.g. Figure 8b and Figure 9c).
pub struct Host {
    /// Host index in the cluster (workers first, NameNode host last).
    pub idx: usize,
    /// Host name (`host-A` … / `host-NN`).
    pub name: String,
    /// Ingress NIC bandwidth.
    pub nic_in: FifoResource,
    /// Egress NIC bandwidth.
    pub nic_out: FifoResource,
    /// Local disk.
    pub disk: FifoResource,
    /// Bytes sent (time series).
    pub net_tx: Counter,
    /// Bytes received (time series).
    pub net_rx: Counter,
    /// Bytes read from disk (time series).
    pub disk_read: Counter,
    /// Bytes written to disk (time series).
    pub disk_write: Counter,
}

/// Worker host names follow the paper: `host-A` … `host-H`.
pub fn worker_name(idx: usize) -> String {
    let letter = (b'A' + (idx % 26) as u8) as char;
    format!("host-{letter}")
}

/// The simulated cluster: hosts, virtual-time runtime, and the Pivot
/// Tracing control plane (frontend + per-process agents + reporters).
pub struct Cluster {
    /// The discrete-event runtime.
    pub rt: SimRt,
    /// The virtual clock.
    pub clock: Clock,
    /// Construction parameters.
    pub cfg: ClusterConfig,
    /// Worker hosts followed by the NameNode host.
    pub hosts: Vec<Rc<Host>>,
    /// The Pivot Tracing frontend.
    pub frontend: Rc<RefCell<Frontend>>,
    agents: Rc<RefCell<Vec<Arc<Agent>>>>,
    agents_enabled: std::cell::Cell<bool>,
    next_procid: std::cell::Cell<u64>,
    /// Shared deterministic RNG.
    pub rng: Rc<RefCell<SmallRng>>,
    /// Baggage bytes observed on RPC envelopes (time series; feeds the
    /// optimizer ablation).
    pub baggage_bytes: Counter,
}

impl Cluster {
    /// Builds the cluster: hosts, tracepoint vocabulary, and the reporting
    /// loop that flushes agents to the frontend every interval.
    pub fn new(cfg: ClusterConfig) -> Rc<Cluster> {
        let rt = SimRt::new();
        let clock = rt.clock();
        let mut hosts = Vec::new();
        for idx in 0..=cfg.workers {
            let name = if idx == cfg.workers {
                "host-NN".to_owned()
            } else {
                worker_name(idx)
            };
            hosts.push(Rc::new(Host {
                idx,
                name: name.clone(),
                nic_in: FifoResource::new(clock.clone(), format!("{name}/nic-in"), cfg.nic_rate),
                nic_out: FifoResource::new(clock.clone(), format!("{name}/nic-out"), cfg.nic_rate),
                disk: FifoResource::new(clock.clone(), format!("{name}/disk"), cfg.disk_rate),
                net_tx: Counter::new(clock.clone()),
                net_rx: Counter::new(clock.clone()),
                disk_read: Counter::new(clock.clone()),
                disk_write: Counter::new(clock.clone()),
            }));
        }
        let mut frontend = if cfg.optimize_queries {
            Frontend::new()
        } else {
            Frontend::new_unoptimized()
        };
        tracepoints::define_all(&mut frontend);
        let cluster = Rc::new(Cluster {
            clock: clock.clone(),
            cfg,
            hosts,
            frontend: Rc::new(RefCell::new(frontend)),
            agents: Rc::new(RefCell::new(Vec::new())),
            agents_enabled: std::cell::Cell::new(true),
            next_procid: std::cell::Cell::new(1),
            rng: Rc::new(RefCell::new(SmallRng::seed_from_u64(42))),
            baggage_bytes: Counter::new(clock),
            rt,
        });
        cluster
            .rng
            .replace(SmallRng::seed_from_u64(cluster.cfg.seed));
        cluster.spawn_reporter();
        cluster
    }

    fn spawn_reporter(self: &Rc<Cluster>) {
        let clock = self.clock.clone();
        let agents = Rc::clone(&self.agents);
        let frontend = Rc::clone(&self.frontend);
        let interval = Clock::secs(self.cfg.report_interval);
        self.rt.spawn(async move {
            loop {
                clock.sleep(interval).await;
                let now = clock.now();
                let list = agents.borrow().clone();
                let mut fe = frontend.borrow_mut();
                for agent in &list {
                    for report in agent.flush(now) {
                        fe.accept(report);
                    }
                }
            }
        });
    }

    /// Creates (and registers) the agent of a new simulated process.
    pub fn new_agent(&self, host: &Rc<Host>, procname: &str) -> Arc<Agent> {
        let procid = self.next_procid.get();
        self.next_procid.set(procid + 1);
        let agent = Arc::new(Agent::new(ProcessInfo {
            host: host.name.clone(),
            procid,
            procname: procname.to_owned(),
        }));
        // Weave already-installed queries into the newcomer.
        for compiled in self.frontend.borrow().installed() {
            agent.install(&compiled);
        }
        if !self.agents_enabled.get() {
            agent.set_enabled(false);
        }
        self.agents.borrow_mut().push(Arc::clone(&agent));
        agent
    }

    /// Installs a query and broadcasts its advice to every agent.
    pub fn install(&self, text: &str) -> Result<QueryHandle, InstallError> {
        let handle = self.frontend.borrow_mut().install(text)?;
        self.broadcast();
        Ok(handle)
    }

    /// Installs a query under a fixed name (referencable by later queries).
    pub fn install_named(&self, name: &str, text: &str) -> Result<QueryHandle, InstallError> {
        let handle = self.frontend.borrow_mut().install_named(name, text)?;
        self.broadcast();
        Ok(handle)
    }

    /// Uninstalls a query everywhere.
    pub fn uninstall(&self, handle: &QueryHandle) {
        self.frontend.borrow_mut().uninstall(handle);
        self.broadcast();
    }

    fn broadcast(&self) {
        let cmds = self.frontend.borrow_mut().drain_commands();
        for cmd in &cmds {
            Bus::broadcast(self, cmd);
        }
    }

    /// Flushes all agents into the frontend immediately (used at the end
    /// of an experiment to collect the final partial interval).
    pub fn flush_now(&self) {
        let now = self.clock.now();
        let mut fe = self.frontend.borrow_mut();
        self.pump_into(now, &mut fe);
    }

    /// Returns the worker hosts (excludes the NameNode host).
    pub fn workers(&self) -> &[Rc<Host>] {
        &self.hosts[..self.cfg.workers]
    }

    /// Returns the NameNode host.
    pub fn nn_host(&self) -> &Rc<Host> {
        &self.hosts[self.cfg.workers]
    }

    /// Hard-enables or -disables every agent (including ones created
    /// later). The "unmodified system" baseline of Table 5.
    pub fn set_agents_enabled(&self, enabled: bool) {
        self.agents_enabled.set(enabled);
        for a in self.agents.borrow().iter() {
            a.set_enabled(enabled);
        }
    }

    /// Sums per-process advice-execution counters across all agents.
    pub fn agent_totals(&self) -> pivot_core::agent::AgentStats {
        let mut total = pivot_core::agent::AgentStats::default();
        for a in self.agents.borrow().iter() {
            let s = a.stats();
            total.idle_invocations += s.idle_invocations;
            total.advised_invocations += s.advised_invocations;
            total.tuples_packed += s.tuples_packed;
            total.tuples_emitted += s.tuples_emitted;
            total.rows_reported += s.rows_reported;
        }
        total
    }
}

/// The simulated cluster *is* a [`Bus`]: commands reach every simulated
/// process's agent and flushing collects their partial reports, making the
/// control plane interchangeable with [`pivot_core::LocalBus`] and the
/// live TCP bus.
impl Bus for Cluster {
    fn broadcast(&self, cmd: &Command) {
        // Clone out of the RefCell first: advice may re-enter the cluster.
        let agents = self.agents.borrow().clone();
        pivot_core::bus::broadcast_to_agents(&agents, cmd);
    }

    fn drain_reports(&self, now: u64) -> Vec<Report> {
        let agents = self.agents.borrow().clone();
        pivot_core::bus::flush_agents(&agents, now)
    }
}

/// Moves `bytes` from `src` to `dst` over both NICs (concurrently, as a
/// real cut-through transfer would), counting utilization. Loopback
/// traffic bypasses the NICs. Returns the transfer latency.
pub async fn transfer(clock: &Clock, src: &Rc<Host>, dst: &Rc<Host>, bytes: f64) -> Nanos {
    const PROPAGATION: Nanos = 100_000; // 100 µs switch + stack latency
    if src.idx == dst.idx {
        clock.sleep(20_000).await;
        return 20_000;
    }
    let start = clock.now();
    clock.sleep(PROPAGATION).await;
    join2(src.nic_out.acquire(bytes), dst.nic_in.acquire(bytes)).await;
    // Count on completion: throughput is delivered bytes, so a saturated
    // link reads as pinned at its capacity (paper Figure 9c).
    src.net_tx.add(bytes);
    dst.net_rx.add(bytes);
    clock.now() - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_hosts_with_names() {
        let c = Cluster::new(ClusterConfig::default());
        assert_eq!(c.hosts.len(), 9);
        assert_eq!(c.workers().len(), 8);
        assert_eq!(c.hosts[0].name, "host-A");
        assert_eq!(c.hosts[7].name, "host-H");
        assert_eq!(c.nn_host().name, "host-NN");
    }

    #[test]
    fn transfer_uses_both_nics_and_counts() {
        let c = Cluster::new(ClusterConfig::small(1));
        let src = Rc::clone(&c.hosts[0]);
        let dst = Rc::clone(&c.hosts[1]);
        let clock = c.clock.clone();
        let h =
            c.rt.spawn(async move { transfer(&clock, &src, &dst, 125.0 * MB).await });
        // The reporter loop never terminates, so run bounded.
        c.rt.run_for_secs(10.0);
        let lat = h.try_take().unwrap();
        // 125 MB at 125 MB/s ≈ 1 s (+0.1 ms propagation).
        assert!((1_000_000_000..1_010_000_000).contains(&lat), "{lat}");
        assert_eq!(c.hosts[0].net_tx.total(), 125.0 * MB);
        assert_eq!(c.hosts[1].net_rx.total(), 125.0 * MB);
    }

    #[test]
    fn loopback_is_free() {
        let c = Cluster::new(ClusterConfig::small(1));
        let src = Rc::clone(&c.hosts[0]);
        let clock = c.clock.clone();
        let h =
            c.rt.spawn(async move { transfer(&clock, &src.clone(), &src, 1000.0 * MB).await });
        c.rt.run_for_secs(10.0);
        assert!(h.try_take().unwrap() < 1_000_000);
        assert_eq!(c.hosts[0].net_tx.total(), 0.0);
    }

    #[test]
    fn reporter_flushes_agents_periodically() {
        let c = Cluster::new(ClusterConfig::small(1));
        let handle = c
            .install(
                "From incr In DataNodeMetrics.incrBytesRead
                 GroupBy incr.host
                 Select incr.host, SUM(incr.delta)",
            )
            .unwrap();
        let agent = c.new_agent(&c.hosts[0], "DataNode");
        let clock = c.clock.clone();
        c.rt.spawn(async move {
            let mut ctx = crate::Ctx::new();
            agent.invoke(
                "DataNodeMetrics.incrBytesRead",
                &mut ctx.bag,
                clock.now(),
                &[("delta", pivot_model::Value::I64(4096))],
            );
        });
        c.rt.run_for_secs(2.0);
        let fe = c.frontend.borrow();
        let rows = fe.results(&handle).rows();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].values[1], pivot_model::Value::I64(4096));
    }
}
