//! Request contexts carrying baggage through the simulated systems.

use pivot_baggage::Baggage;

/// A per-request execution context.
///
/// The paper's prototype stores baggage in a thread-local; in this
/// simulation the context is threaded explicitly through the request's
/// (async) call chain — the same causal path, made visible in the types.
/// Crossing a process boundary serializes the baggage into the simulated
/// RPC envelope ([`Ctx::to_wire`] / [`Ctx::from_wire`]); branching
/// executions split and join it (paper §5).
#[derive(Debug, Default)]
pub struct Ctx {
    /// The request's baggage.
    pub bag: Baggage,
}

impl Ctx {
    /// Starts a fresh request.
    pub fn new() -> Ctx {
        Ctx {
            bag: Baggage::new(),
        }
    }

    /// Serializes the baggage for an RPC envelope, returning its wire form.
    pub fn to_wire(&mut self) -> std::sync::Arc<[u8]> {
        self.bag.to_bytes()
    }

    /// Reconstructs a context on the far side of an RPC (lazily — the
    /// bytes are not decoded until some advice packs or unpacks).
    pub fn from_wire(bytes: &[u8]) -> Ctx {
        Ctx {
            bag: Baggage::from_bytes(bytes),
        }
    }

    /// Branches the execution (e.g. a job fanning out tasks).
    pub fn split(&mut self) -> Ctx {
        Ctx {
            bag: self.bag.split(),
        }
    }

    /// Rejoins a branch created by [`Ctx::split`].
    pub fn join(&mut self, other: Ctx) {
        self.bag.join(other.bag);
    }

    /// Adopts the baggage returned with a synchronous RPC response: the
    /// callee's execution is a causal extension of the caller's.
    pub fn adopt_response(&mut self, bytes: &[u8]) {
        self.bag = Baggage::from_bytes(bytes);
    }
}
