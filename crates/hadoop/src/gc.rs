//! Stop-the-world garbage collection injection.
//!
//! The paper's §6.2 replicates a case study diagnosing *rogue GC* in HBase
//! RegionServers. This module injects periodic stop-the-world pauses into
//! a simulated process: requests arriving during a pause wait it out, and
//! the waited time is visible at the [`crate::tracepoints::GC_PAUSE`]
//! tracepoint.

use std::cell::Cell;
use std::rc::Rc;

use pivot_simrt::{Clock, Nanos, SimRt};

/// A per-process GC pause injector.
pub struct Gc {
    clock: Clock,
    pause_until: Cell<Nanos>,
    total_paused: Cell<Nanos>,
}

impl Gc {
    /// Creates an injector and spawns its pause schedule: every
    /// `period_secs`, the process stops the world for `pause_secs`.
    pub fn start(rt: &SimRt, clock: Clock, period_secs: f64, pause_secs: f64) -> Rc<Gc> {
        let gc = Rc::new(Gc {
            clock: clock.clone(),
            pause_until: Cell::new(0),
            total_paused: Cell::new(0),
        });
        let weak = Rc::downgrade(&gc);
        rt.spawn(async move {
            loop {
                clock.sleep_secs(period_secs).await;
                let Some(gc) = weak.upgrade() else { return };
                let until = clock.now() + Clock::secs(pause_secs);
                gc.pause_until.set(until);
                gc.total_paused
                    .set(gc.total_paused.get() + Clock::secs(pause_secs));
            }
        });
        gc
    }

    /// Waits out any active pause; returns the nanoseconds waited.
    pub async fn wait(&self) -> Nanos {
        let now = self.clock.now();
        let until = self.pause_until.get();
        if until > now {
            self.clock.sleep_until(until).await;
            until - now
        } else {
            0
        }
    }

    /// Total injected pause time so far.
    pub fn total_paused(&self) -> Nanos {
        self.total_paused.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_simrt::SimRt;

    #[test]
    fn requests_wait_out_pauses() {
        let rt = SimRt::new();
        let gc = Gc::start(&rt, rt.clock(), 1.0, 0.5);
        let clock = rt.clock();
        let h = rt.spawn({
            let gc = Rc::clone(&gc);
            async move {
                // Before any pause: no wait.
                let w0 = gc.wait().await;
                // Land inside the first pause window (1.0 – 1.5 s).
                clock.sleep_secs(1.2 - clock.now_secs()).await;
                let w1 = gc.wait().await;
                (w0, w1)
            }
        });
        rt.run_until(pivot_simrt::Clock::secs(5.0));
        let (w0, w1) = h.try_take().unwrap();
        assert_eq!(w0, 0);
        assert_eq!(w1, 300_000_000); // waited till 1.5 s
    }
}
