//! Simulated HBase: RegionServers over HDFS.
//!
//! Each worker host runs one RegionServer holding a slice of the table's
//! key space. Gets and scans arrive over the simulated network, queue for
//! a handler, read their region's HFile data through HDFS (so DataNode
//! metrics attribute to the *original* client via baggage — the paper's
//! cross-tier analysis), and stream results back. RegionServers support
//! stop-the-world GC injection for the §6.2 rogue-GC case study.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;

use pivot_core::Agent;
use pivot_model::Value;
use pivot_simrt::FifoResource;
use rand::Rng;

use crate::cluster::{transfer, Cluster, Host, MB};
use crate::ctx::Ctx;
use crate::gc::Gc;
use crate::hdfs::{DfsClient, Hdfs};
use crate::tracepoints as tp;

/// Size of an HFile backing one region.
pub const HFILE_SIZE: f64 = 256.0 * MB;

/// Control message size.
const RPC_BYTES: f64 = 512.0;

/// One RegionServer process.
pub struct RegionServer {
    cluster: Rc<Cluster>,
    /// The host it runs on.
    pub host: Rc<Host>,
    /// The RegionServer process's agent.
    pub agent: Arc<Agent>,
    /// Request handler admission (queueing shows up as `queueNanos`).
    handler: FifoResource,
    dfs: DfsClient,
    /// Optional GC injection (rogue-GC case study).
    pub gc: RefCell<Option<Rc<Gc>>>,
    /// Regions hosted here (indices into the table's region list).
    pub regions: RefCell<Vec<usize>>,
}

impl RegionServer {
    /// Handles one client operation: queue, read through HDFS, respond.
    pub async fn handle(
        &self,
        ctx: &mut Ctx,
        op: &str,
        region: usize,
        size: f64,
        client: &Rc<Host>,
    ) {
        let clock = self.cluster.clock.clone();
        self.agent.invoke(
            tp::RS_RECEIVE_REQUEST,
            &mut ctx.bag,
            clock.now(),
            &[("op", Value::str(op))],
        );
        let arrive = clock.now();
        let gc = self.gc.borrow().clone();
        let mut gc_waited = 0u64;
        if let Some(gc) = gc {
            gc_waited = gc.wait().await;
            if gc_waited > 0 {
                self.agent.invoke(
                    tp::GC_PAUSE,
                    &mut ctx.bag,
                    clock.now(),
                    &[("gcNanos", Value::U64(gc_waited))],
                );
            }
        }
        self.handler.acquire(1.0).await;
        let queue = clock.now() - arrive;
        let start = clock.now();
        let file = region_file(region);
        self.dfs.read_random(ctx, &file, size).await;
        // Result assembly CPU time.
        clock
            .sleep(50_000 + (size / (500.0 * MB) * 1e9) as u64)
            .await;
        let process = clock.now() - start;
        self.agent.invoke(
            tp::RS_SEND_RESPONSE,
            &mut ctx.bag,
            clock.now(),
            &[
                ("op", Value::str(op)),
                ("queueNanos", Value::U64(queue)),
                ("processNanos", Value::U64(process)),
                ("gcNanos", Value::U64(gc_waited)),
            ],
        );
        transfer(&clock, &self.host, client, size).await;
    }
}

/// Returns the HDFS file backing a region.
pub fn region_file(region: usize) -> String {
    format!("hbase/region-{region}")
}

/// The assembled HBase service.
pub struct HBase {
    cluster: Rc<Cluster>,
    /// One RegionServer per worker host.
    pub regionservers: Vec<Rc<RegionServer>>,
    /// Total number of regions.
    pub regions: usize,
}

impl HBase {
    /// Starts HBase: one RegionServer per worker and `regions_per_server`
    /// regions each, with HFiles bootstrapped into HDFS.
    pub fn start(cluster: &Rc<Cluster>, hdfs: &Rc<Hdfs>, regions_per_server: usize) -> Rc<HBase> {
        let mut regionservers = Vec::new();
        for h in cluster.workers() {
            let agent = cluster.new_agent(h, "RegionServer");
            regionservers.push(Rc::new(RegionServer {
                cluster: Rc::clone(cluster),
                host: Rc::clone(h),
                agent: Arc::clone(&agent),
                handler: FifoResource::new(
                    cluster.clock.clone(),
                    format!("{}/rs-handler", h.name),
                    5_000.0,
                ),
                dfs: hdfs.client(h, &agent, "RegionServer"),
                gc: RefCell::new(None),
                regions: RefCell::new(Vec::new()),
            }));
        }
        let regions = regions_per_server * regionservers.len();
        for r in 0..regions {
            let rs = r % regionservers.len();
            regionservers[rs].regions.borrow_mut().push(r);
            hdfs.namenode.bootstrap_file(&region_file(r), HFILE_SIZE, 3);
        }
        Rc::new(HBase {
            cluster: Rc::clone(cluster),
            regionservers,
            regions,
        })
    }

    /// Maps a key in `[0, 1)` to its region.
    pub fn region_for(&self, key: f64) -> usize {
        ((key.clamp(0.0, 0.999_999) * self.regions as f64) as usize).min(self.regions - 1)
    }

    /// Builds a client bound to a process.
    pub fn client(
        self: &Rc<HBase>,
        host: &Rc<Host>,
        agent: &Arc<Agent>,
        procname: &str,
    ) -> HBaseClient {
        HBaseClient {
            hbase: Rc::clone(self),
            host: Rc::clone(host),
            agent: Arc::clone(agent),
            procname: procname.to_owned(),
        }
    }
}

/// An HBase client library instance.
pub struct HBaseClient {
    hbase: Rc<HBase>,
    /// The process's host.
    pub host: Rc<Host>,
    /// The process's agent.
    pub agent: Arc<Agent>,
    /// Process name exported at `ClientProtocols`.
    pub procname: String,
}

impl HBaseClient {
    /// A 10 kB row lookup at a random key (the paper's `HGet`).
    pub async fn get_random(&self, ctx: &mut Ctx) {
        let key = self.hbase.cluster.rng.borrow_mut().gen::<f64>();
        self.request(ctx, "get", key, 10.0 * 1024.0).await;
    }

    /// A 4 MB table scan starting at a random key (the paper's `HScan`).
    pub async fn scan_random(&self, ctx: &mut Ctx) {
        let key = self.hbase.cluster.rng.borrow_mut().gen::<f64>();
        self.request(ctx, "scan", key, 4.0 * MB).await;
    }

    /// Issues one operation against the responsible RegionServer.
    pub async fn request(&self, ctx: &mut Ctx, op: &str, key: f64, size: f64) {
        let clock = self.hbase.cluster.clock.clone();
        self.agent.invoke(
            tp::CLIENT_PROTOCOLS,
            &mut ctx.bag,
            clock.now(),
            &[("procName", Value::str(&self.procname))],
        );
        let region = self.hbase.region_for(key);
        let rs = Rc::clone(&self.hbase.regionservers[region % self.hbase.regionservers.len()]);
        let wire = ctx.to_wire();
        self.hbase.cluster.baggage_bytes.add(wire.len() as f64);
        transfer(&clock, &self.host, &rs.host, RPC_BYTES + wire.len() as f64).await;
        let mut sctx = Ctx::from_wire(&wire);
        rs.handle(&mut sctx, op, region, size, &self.host).await;
        let back = sctx.to_wire();
        ctx.adopt_response(&back);
    }
}
