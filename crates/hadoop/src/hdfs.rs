//! Simulated HDFS: NameNode, DataNodes, and the DFS client.
//!
//! Faithful to the protocol behaviours the paper's case studies exercise:
//!
//! - `GetBlockLocations` returns replica lists ordered by
//!   `pseudoSortByDistance`; with [`ClusterConfig::replica_bug`] enabled,
//!   rack-local replicas keep a **global static ordering** and the client
//!   always takes the first entry — the two conflicting behaviours of
//!   HDFS-6268 (paper §6.1).
//! - DataNode reads move chunk-by-chunk through the disk and both NICs,
//!   invoking `DataNodeMetrics.incrBytesRead`, `FileInputStream`, and the
//!   timing tracepoints along the way.
//! - Writes pipeline through all replicas.
//! - The NameNode serializes metadata operations through a lock whose
//!   write operations are far more expensive than reads (the §6.2
//!   "exclusive write locking" case study).
//!
//! [`ClusterConfig::replica_bug`]: crate::cluster::ClusterConfig

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use pivot_core::Agent;
use pivot_model::Value;
use pivot_simrt::{FifoResource, Nanos, NANOS_PER_SEC};
use rand::seq::SliceRandom;
use rand::Rng;

use crate::cluster::{transfer, Cluster, Host, MB};
use crate::ctx::Ctx;
use crate::gc::Gc;
use crate::tracepoints as tp;

/// HDFS block size (the paper's clusters use 128 MB).
pub const BLOCK_SIZE: f64 = 128.0 * MB;

/// Size of a control-plane RPC message, excluding baggage.
const RPC_BYTES: f64 = 512.0;

/// One replicated block.
#[derive(Clone, Debug)]
pub struct BlockMeta {
    /// Globally unique block id.
    pub id: u64,
    /// Bytes stored in this block.
    pub size: f64,
    /// Hosts holding replicas (unordered).
    pub replicas: Vec<usize>,
}

/// A located block as returned by `GetBlockLocations`: replicas ordered by
/// the NameNode's distance sort.
#[derive(Clone, Debug)]
pub struct LocatedBlock {
    /// The block.
    pub block: BlockMeta,
    /// Replica hosts in selection order.
    pub order: Vec<usize>,
}

#[derive(Clone, Debug, Default)]
struct FileMeta {
    blocks: Vec<BlockMeta>,
}

/// The HDFS NameNode.
pub struct NameNode {
    cluster: Rc<Cluster>,
    /// The host the NameNode runs on.
    pub host: Rc<Host>,
    /// The NameNode process's agent.
    pub agent: Arc<Agent>,
    /// Namespace lock: reads cost 1 unit, writes cost [`Self::WRITE_COST`].
    lock: FifoResource,
    files: RefCell<HashMap<String, FileMeta>>,
    next_block: Cell<u64>,
}

impl NameNode {
    /// Lock units consumed by a mutating metadata operation (exclusive
    /// write locking; reads cost 1).
    pub const WRITE_COST: f64 = 40.0;

    /// Lock service rate in units per second.
    pub const LOCK_RATE: f64 = 20_000.0;

    fn new(cluster: &Rc<Cluster>) -> Rc<NameNode> {
        let host = Rc::clone(cluster.nn_host());
        let agent = cluster.new_agent(&host, "NameNode");
        Rc::new(NameNode {
            cluster: Rc::clone(cluster),
            lock: FifoResource::new(cluster.clock.clone(), "nn/lock", Self::LOCK_RATE),
            host,
            agent,
            files: RefCell::new(HashMap::new()),
            next_block: Cell::new(1),
        })
    }

    /// Creates a file with pre-placed blocks and **no simulated IO** —
    /// bootstrap for pre-existing datasets.
    pub fn bootstrap_file(&self, name: &str, size: f64, replication: usize) {
        let meta = self.allocate(size, replication, None);
        self.files.borrow_mut().insert(name.to_owned(), meta);
    }

    fn allocate(&self, size: f64, replication: usize, local_hint: Option<usize>) -> FileMeta {
        let workers = self.cluster.cfg.workers;
        let replication = replication.min(workers);
        let mut rng = self.cluster.rng.borrow_mut();
        let mut blocks = Vec::new();
        let mut remaining = size;
        while remaining > 0.0 {
            let bsize = remaining.min(BLOCK_SIZE);
            remaining -= bsize;
            let mut hosts: Vec<usize> = (0..workers).collect();
            hosts.shuffle(&mut *rng);
            let mut replicas: Vec<usize> = Vec::new();
            if let Some(local) = local_hint {
                replicas.push(local);
            }
            for h in hosts {
                if replicas.len() >= replication {
                    break;
                }
                if !replicas.contains(&h) {
                    replicas.push(h);
                }
            }
            let id = self.next_block.get();
            self.next_block.set(id + 1);
            blocks.push(BlockMeta {
                id,
                size: bsize,
                replicas,
            });
        }
        FileMeta { blocks }
    }

    /// Orders a block's replicas for `client` — the faulty
    /// `pseudoSortByDistance` when the HDFS-6268 bug is enabled.
    fn order_replicas(&self, replicas: &[usize], client: usize) -> Vec<usize> {
        let mut order: Vec<usize> = replicas.to_vec();
        // A local replica always sorts first.
        if let Some(pos) = order.iter().position(|&h| h == client) {
            order.swap(0, pos);
            let rest = &mut order[1..];
            self.order_rest(rest);
        } else {
            self.order_rest(&mut order[..]);
        }
        order
    }

    fn order_rest(&self, rest: &mut [usize]) {
        if self.cluster.cfg.replica_bug {
            // HDFS-6268: rack-local replicas follow a global static
            // ordering instead of being randomized.
            rest.sort_unstable();
        } else {
            rest.shuffle(&mut *self.cluster.rng.borrow_mut());
        }
    }

    /// Server-side `GetBlockLocations`: looks up the blocks overlapping
    /// `[offset, offset + len)` and orders each block's replicas.
    pub async fn get_block_locations(
        &self,
        ctx: &mut Ctx,
        src: &str,
        offset: f64,
        len: f64,
        client_host: usize,
    ) -> Vec<LocatedBlock> {
        let lock_nanos = self.lock.acquire(1.0).await;
        let files = self.files.borrow();
        let Some(meta) = files.get(src) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut pos = 0.0;
        for b in &meta.blocks {
            let end = pos + b.size;
            if end > offset && pos < offset + len {
                out.push(LocatedBlock {
                    block: b.clone(),
                    order: self.order_replicas(&b.replicas, client_host),
                });
            }
            pos = end;
        }
        drop(files);
        let replicas_str = out
            .first()
            .map(|lb| {
                lb.order
                    .iter()
                    .map(|&h| self.cluster.hosts[h].name.clone())
                    .collect::<Vec<_>>()
                    .join(",")
            })
            .unwrap_or_default();
        self.agent.invoke(
            tp::NN_GET_BLOCK_LOCATIONS,
            &mut ctx.bag,
            self.cluster.clock.now(),
            &[
                ("src", Value::str(src)),
                ("replicas", Value::str(replicas_str)),
                ("lockNanos", Value::U64(lock_nanos)),
            ],
        );
        out
    }

    /// Server-side metadata operation (`open` / `create` / `rename` / …).
    /// Mutating operations hold the namespace lock exclusively.
    pub async fn metadata_op(&self, ctx: &mut Ctx, op: &str, mutating: bool) {
        let cost = if mutating { Self::WRITE_COST } else { 1.0 };
        let lock_nanos = self.lock.acquire(cost).await;
        self.agent.invoke(
            tp::NN_CLIENT_PROTOCOL,
            &mut ctx.bag,
            self.cluster.clock.now(),
            &[
                ("op", Value::str(op)),
                ("lockNanos", Value::U64(lock_nanos)),
            ],
        );
    }

    /// Registers a freshly written file.
    pub fn commit_file(&self, name: &str, meta_blocks: Vec<BlockMeta>) {
        self.files.borrow_mut().insert(
            name.to_owned(),
            FileMeta {
                blocks: meta_blocks,
            },
        );
    }

    /// Allocates blocks for a new file being written.
    pub fn allocate_for_write(
        &self,
        size: f64,
        replication: usize,
        local_hint: Option<usize>,
    ) -> Vec<BlockMeta> {
        self.allocate(size, replication, local_hint).blocks
    }

    /// Returns `(offset, size, replica hosts)` for each block of a file —
    /// the split layout MapReduce schedules against.
    pub fn block_layout(&self, name: &str) -> Vec<(f64, f64, Vec<usize>)> {
        let files = self.files.borrow();
        let Some(meta) = files.get(name) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut pos = 0.0;
        for b in &meta.blocks {
            out.push((pos, b.size, b.replicas.clone()));
            pos += b.size;
        }
        out
    }

    /// Returns the file's size, if it exists.
    pub fn file_size(&self, name: &str) -> Option<f64> {
        self.files
            .borrow()
            .get(name)
            .map(|m| m.blocks.iter().map(|b| b.size).sum())
    }

    /// Instantaneous namespace-lock backlog (used to verify the §6.2
    /// write-lock overload case).
    pub fn lock_backlog(&self) -> Nanos {
        self.lock.backlog()
    }
}

/// A DataNode process.
pub struct DataNode {
    cluster: Rc<Cluster>,
    /// The host this DataNode runs on.
    pub host: Rc<Host>,
    /// The DataNode process's agent.
    pub agent: Arc<Agent>,
    /// Optional GC injection.
    pub gc: RefCell<Option<Rc<Gc>>>,
}

impl DataNode {
    /// Serves a block read of `size` bytes, streaming chunks to `client`.
    ///
    /// Invokes `DN.DataTransferProtocol` at arrival, then per chunk:
    /// `FileInputStream` + `DataNodeMetrics.incrBytesRead` after the disk
    /// read, counting queueing on the NICs as blocked time; finally
    /// `DN.Transfer` with the timing decomposition (Figure 9b).
    pub async fn read_block(
        &self,
        ctx: &mut Ctx,
        size: f64,
        client: &Rc<Host>,
        setup_lat: Nanos,
        setup_blocked: Nanos,
    ) {
        let clock = &self.cluster.clock;
        self.agent.invoke(
            tp::DN_DATA_TRANSFER,
            &mut ctx.bag,
            clock.now(),
            &[("op", Value::str("READ")), ("size", Value::F64(size))],
        );
        let start = clock.now();
        // Connection setup that queued behind a saturated link counts as
        // network blocking for this operation (Figure 9b attribution).
        let mut blocked: Nanos = setup_blocked;
        let mut gc_total: Nanos = 0;
        let chunk = self.cluster.cfg.chunk;
        let mut remaining = size;
        let mut first = true;
        while remaining > 0.0 {
            let c = remaining.min(chunk);
            remaining -= c;
            let gc = self.gc.borrow().clone();
            if let Some(gc) = gc {
                let waited = gc.wait().await;
                if waited > 0 {
                    self.agent.invoke(
                        tp::GC_PAUSE,
                        &mut ctx.bag,
                        clock.now(),
                        &[("gcNanos", Value::U64(waited))],
                    );
                }
                gc_total += waited;
            }
            // Random-IO positioning cost on the first chunk of the op.
            let seek = if first {
                self.cluster.cfg.seek_bytes
            } else {
                0.0
            };
            first = false;
            self.host.disk.acquire(c + seek).await;
            self.host.disk_read.add(c);
            self.agent.invoke(
                tp::FILE_INPUT_STREAM,
                &mut ctx.bag,
                clock.now(),
                &[("delta", Value::F64(c)), ("phase", Value::str("HDFS"))],
            );
            self.agent.invoke(
                tp::DN_INCR_BYTES_READ,
                &mut ctx.bag,
                clock.now(),
                &[("delta", Value::F64(c))],
            );
            let lat = transfer(clock, &self.host, client, c).await;
            // "Blocked" is measured against the *nominal* link rate: on a
            // limping link the anomalous extra service time counts as
            // blocking, as in the paper's Figure 9b.
            let ideal = (c / self.cluster.cfg.nic_rate * NANOS_PER_SEC as f64) as Nanos + 100_000;
            blocked += lat.saturating_sub(ideal);
        }
        self.agent.invoke(
            tp::DN_TRANSFER_TIMING,
            &mut ctx.bag,
            clock.now(),
            &[
                // The connection setup belongs to this operation's
                // transfer window so the Figure 9b components add up.
                ("xferNanos", Value::U64(clock.now() - start + setup_lat)),
                ("blockedNanos", Value::U64(blocked)),
                ("gcNanos", Value::U64(gc_total)),
            ],
        );
    }

    /// Receives a block write of `size` bytes from `from` and forwards it
    /// down the replication `pipeline`.
    pub async fn write_block(
        &self,
        ctx: &mut Ctx,
        size: f64,
        from: &Rc<Host>,
        pipeline: &[Rc<DataNode>],
    ) {
        let clock = &self.cluster.clock;
        self.agent.invoke(
            tp::DN_DATA_TRANSFER,
            &mut ctx.bag,
            clock.now(),
            &[("op", Value::str("WRITE")), ("size", Value::F64(size))],
        );
        let chunk = self.cluster.cfg.chunk;
        let mut remaining = size;
        let mut first = true;
        while remaining > 0.0 {
            let c = remaining.min(chunk);
            remaining -= c;
            transfer(clock, from, &self.host, c).await;
            let seek = if first {
                self.cluster.cfg.seek_bytes
            } else {
                0.0
            };
            first = false;
            self.host.disk.acquire(c + seek).await;
            self.host.disk_write.add(c);
            self.agent.invoke(
                tp::FILE_OUTPUT_STREAM,
                &mut ctx.bag,
                clock.now(),
                &[("delta", Value::F64(c)), ("phase", Value::str("HDFS"))],
            );
            self.agent.invoke(
                tp::DN_INCR_BYTES_WRITTEN,
                &mut ctx.bag,
                clock.now(),
                &[("delta", Value::F64(c))],
            );
            // Forward through the rest of the pipeline, chunk by chunk.
            if let Some((next, rest)) = pipeline.split_first() {
                // Box the recursion: async fn cannot be directly recursive.
                let fut: std::pin::Pin<Box<dyn std::future::Future<Output = ()>>> =
                    Box::pin(next.write_block_chunkless(ctx, c, &self.host, rest));
                fut.await;
            }
        }
    }

    /// One forwarded chunk of a pipelined write (no per-block tracepoint).
    async fn write_block_chunkless(
        &self,
        ctx: &mut Ctx,
        c: f64,
        from: &Rc<Host>,
        pipeline: &[Rc<DataNode>],
    ) {
        let clock = &self.cluster.clock;
        transfer(clock, from, &self.host, c).await;
        self.host.disk.acquire(c).await;
        self.host.disk_write.add(c);
        self.agent.invoke(
            tp::FILE_OUTPUT_STREAM,
            &mut ctx.bag,
            clock.now(),
            &[("delta", Value::F64(c)), ("phase", Value::str("HDFS"))],
        );
        self.agent.invoke(
            tp::DN_INCR_BYTES_WRITTEN,
            &mut ctx.bag,
            clock.now(),
            &[("delta", Value::F64(c))],
        );
        if let Some((next, rest)) = pipeline.split_first() {
            let fut: std::pin::Pin<Box<dyn std::future::Future<Output = ()>>> =
                Box::pin(next.write_block_chunkless(ctx, c, &self.host, rest));
            fut.await;
        }
    }
}

/// The assembled HDFS service.
pub struct Hdfs {
    /// The NameNode.
    pub namenode: Rc<NameNode>,
    /// One DataNode per worker host.
    pub datanodes: Vec<Rc<DataNode>>,
    cluster: Rc<Cluster>,
}

impl Hdfs {
    /// Starts HDFS on the cluster: one DataNode per worker, the NameNode
    /// on the dedicated host.
    pub fn start(cluster: &Rc<Cluster>) -> Rc<Hdfs> {
        let namenode = NameNode::new(cluster);
        let datanodes = cluster
            .workers()
            .iter()
            .map(|h| {
                Rc::new(DataNode {
                    cluster: Rc::clone(cluster),
                    host: Rc::clone(h),
                    agent: cluster.new_agent(h, "DataNode"),
                    gc: RefCell::new(None),
                })
            })
            .collect();
        Rc::new(Hdfs {
            namenode,
            datanodes,
            cluster: Rc::clone(cluster),
        })
    }

    /// Builds a client bound to a process (its host and agent).
    pub fn client(
        self: &Rc<Hdfs>,
        host: &Rc<Host>,
        agent: &Arc<Agent>,
        procname: &str,
    ) -> DfsClient {
        DfsClient {
            hdfs: Rc::clone(self),
            host: Rc::clone(host),
            agent: Arc::clone(agent),
            procname: procname.to_owned(),
        }
    }
}

/// An HDFS client library instance embedded in some process.
pub struct DfsClient {
    hdfs: Rc<Hdfs>,
    /// The process's host.
    pub host: Rc<Host>,
    /// The process's agent.
    pub agent: Arc<Agent>,
    /// The process name exported at `ClientProtocols`.
    pub procname: String,
}

impl DfsClient {
    fn clock(&self) -> &pivot_simrt::Clock {
        &self.hdfs.cluster.clock
    }

    /// Invokes the `ClientProtocols` tracepoint (the paper records the
    /// process name the first time a request passes any client protocol).
    pub fn client_protocols(&self, ctx: &mut Ctx) {
        self.agent.invoke(
            tp::CLIENT_PROTOCOLS,
            &mut ctx.bag,
            self.clock().now(),
            &[("procName", Value::str(&self.procname))],
        );
    }

    /// A control RPC to the NameNode: ships the baggage both ways.
    async fn nn_rpc<'a, R, F, Fut>(&'a self, ctx: &'a mut Ctx, f: F) -> R
    where
        F: FnOnce(Rc<NameNode>, Ctx) -> Fut,
        Fut: std::future::Future<Output = (Ctx, R)> + 'a,
        R: 'a,
    {
        let nn = Rc::clone(&self.hdfs.namenode);
        let clock = self.clock().clone();
        let wire = ctx.to_wire();
        self.hdfs.cluster.baggage_bytes.add(wire.len() as f64);
        transfer(&clock, &self.host, &nn.host, RPC_BYTES + wire.len() as f64).await;
        let server_ctx = Ctx::from_wire(&wire);
        let (mut server_ctx, out) = f(Rc::clone(&nn), server_ctx).await;
        let back = server_ctx.to_wire();
        transfer(&clock, &nn.host, &self.host, RPC_BYTES + back.len() as f64).await;
        ctx.adopt_response(&back);
        out
    }

    /// Reads `size` bytes at `offset` from `file`, choosing replicas the
    /// way the HDFS client does (always the first location returned).
    pub async fn read_at(&self, ctx: &mut Ctx, file: &str, offset: f64, size: f64) {
        self.client_protocols(ctx);
        let client_idx = self.host.idx;
        let file_owned = file.to_owned();
        let located = self
            .nn_rpc(ctx, move |nn, mut sctx| async move {
                let out = nn
                    .get_block_locations(&mut sctx, &file_owned, offset, size, client_idx)
                    .await;
                (sctx, out)
            })
            .await;
        let mut remaining = size;
        for lb in located {
            if remaining <= 0.0 {
                break;
            }
            let take = remaining.min(lb.block.size);
            remaining -= take;
            // The HDFS client bug: always select the first location.
            let Some(&replica) = lb.order.first() else {
                continue;
            };
            let dn = Rc::clone(&self.hdfs.datanodes[replica]);
            let clock = self.clock().clone();
            // Data-transfer connection: request out, stream back.
            let wire = ctx.to_wire();
            self.hdfs.cluster.baggage_bytes.add(wire.len() as f64);
            let env_bytes = RPC_BYTES + wire.len() as f64;
            let env_lat = transfer(&clock, &self.host, &dn.host, env_bytes).await;
            let env_ideal = (env_bytes / self.hdfs.cluster.cfg.nic_rate * NANOS_PER_SEC as f64)
                as Nanos
                + 100_000;
            let mut sctx = Ctx::from_wire(&wire);
            dn.read_block(
                &mut sctx,
                take,
                &self.host,
                env_lat,
                env_lat.saturating_sub(env_ideal),
            )
            .await;
            let back = sctx.to_wire();
            ctx.adopt_response(&back);
        }
    }

    /// Reads `size` bytes starting at a uniformly random block of `file`.
    pub async fn read_random(&self, ctx: &mut Ctx, file: &str, size: f64) {
        let total = self.hdfs.namenode.file_size(file).unwrap_or(BLOCK_SIZE);
        let max_off = (total - size).max(0.0);
        let offset = if max_off > 0.0 {
            self.hdfs.cluster.rng.borrow_mut().gen_range(0.0..max_off)
        } else {
            0.0
        };
        self.read_at(ctx, file, offset, size).await;
    }

    /// Creates `file` of `size` bytes, writing through the replication
    /// pipeline.
    pub async fn write(&self, ctx: &mut Ctx, file: &str, size: f64, replication: usize) {
        self.client_protocols(ctx);
        self.nn_rpc(ctx, move |nn, mut sctx| async move {
            nn.metadata_op(&mut sctx, "create", true).await;
            (sctx, ())
        })
        .await;
        let local = self.host.idx;
        let blocks = self.hdfs.namenode.allocate_for_write(
            size,
            replication,
            // Local-first placement only when the writer is a worker.
            (local < self.hdfs.cluster.cfg.workers).then_some(local),
        );
        for b in &blocks {
            let Some((&first, rest)) = b.replicas.split_first() else {
                continue;
            };
            let dn = Rc::clone(&self.hdfs.datanodes[first]);
            let pipeline: Vec<Rc<DataNode>> = rest
                .iter()
                .map(|&r| Rc::clone(&self.hdfs.datanodes[r]))
                .collect();
            let clock = self.clock().clone();
            let wire = ctx.to_wire();
            transfer(&clock, &self.host, &dn.host, RPC_BYTES + wire.len() as f64).await;
            let mut sctx = Ctx::from_wire(&wire);
            dn.write_block(&mut sctx, b.size, &self.host, &pipeline)
                .await;
            let back = sctx.to_wire();
            ctx.adopt_response(&back);
        }
        self.hdfs.namenode.commit_file(file, blocks);
    }

    /// A pure metadata operation (NNBench's open / create / rename).
    pub async fn metadata(&self, ctx: &mut Ctx, op: &str, mutating: bool) {
        self.client_protocols(ctx);
        let op_owned = op.to_owned();
        self.nn_rpc(ctx, move |nn, mut sctx| async move {
            nn.metadata_op(&mut sctx, &op_owned, mutating).await;
            (sctx, ())
        })
        .await;
    }
}
