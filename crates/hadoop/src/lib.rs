//! Instrumented simulations of the Hadoop stack.
//!
//! The paper evaluates Pivot Tracing on a live 8-node cluster running
//! HDFS, HBase, Hadoop MapReduce, and YARN (paper §6, Figure 7). This
//! crate re-implements those systems *behaviourally* on the deterministic
//! discrete-event runtime ([`pivot_simrt`]):
//!
//! - [`hdfs`] — a NameNode (file → block → replica metadata, with the
//!   HDFS-6268 replica-ordering bug switchable on and off), DataNodes
//!   serving block reads/writes through simulated disks and NICs, and a
//!   DFS client with the replica-selection logic under study.
//! - [`hbase`] — RegionServers hosting key-range regions whose reads go
//!   through HDFS, with request queue/processing accounting and optional
//!   stop-the-world GC injection.
//! - [`yarn`] — a ResourceManager and per-host NodeManagers allocating
//!   task containers.
//! - [`mapreduce`] — map / shuffle / sort / reduce jobs over YARN
//!   containers and HDFS, performing local disk IO at `FileInputStream` /
//!   `FileOutputStream` tracepoints exactly where the paper instruments
//!   Java's classes.
//!
//! Every system propagates request [`Ctx`] (baggage) across its simulated
//! RPC boundaries by serialization, and invokes the tracepoints of
//! [`tracepoints`] through its process's [`pivot_core::Agent`] — so any
//! Pivot Tracing query over those tracepoints works against these systems
//! exactly as in the paper.

pub mod cluster;
pub mod ctx;
pub mod gc;
pub mod hbase;
pub mod hdfs;
pub mod mapreduce;
pub mod tracepoints;
pub mod yarn;

pub use cluster::{Cluster, ClusterConfig, Host};
pub use ctx::Ctx;
