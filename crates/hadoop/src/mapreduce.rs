//! Simulated Hadoop MapReduce on YARN containers.
//!
//! A job reads its input from HDFS with data-local map scheduling, spills
//! map output to local disk (`FileOutputStream`, phase `Map`), shuffles
//! partitions across the network (`FileInputStream`, phase `Shuffle`, on
//! the map host), merges and writes reducer output (`phase Reduce`),
//! finally committing the result back to HDFS. The job's request context
//! splits across tasks and rejoins at the job barrier, so happened-before
//! joins spanning the whole job (paper Q9's per-job latency aggregation)
//! observe every task.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

use pivot_core::Agent;
use pivot_model::Value;
use pivot_simrt::Nanos;

use crate::cluster::{transfer, Cluster, Host, MB};
use crate::ctx::Ctx;
use crate::hdfs::Hdfs;
use crate::tracepoints as tp;
use crate::yarn::Yarn;

/// Map/reduce CPU processing rate (bytes per second).
const CPU_RATE: f64 = 400.0 * MB;

/// A MapReduce job description.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Job (and client process) name, e.g. `MRsort10g`.
    pub name: String,
    /// HDFS input file.
    pub input: String,
    /// Number of reduce tasks.
    pub reducers: usize,
    /// Worker host the job client / ApplicationMaster runs on.
    pub client_host: usize,
}

/// Completed-job statistics.
#[derive(Clone, Copy, Debug)]
pub struct JobStats {
    /// Wall-clock (virtual) duration.
    pub duration: Nanos,
    /// Number of map tasks.
    pub maps: usize,
    /// Number of reduce tasks.
    pub reducers: usize,
}

/// The MapReduce service.
pub struct MapReduce {
    cluster: Rc<Cluster>,
    hdfs: Rc<Hdfs>,
    yarn: Rc<Yarn>,
    task_agents: RefCell<HashMap<(usize, &'static str), Arc<Agent>>>,
}

impl MapReduce {
    /// Starts the MapReduce service.
    pub fn start(cluster: &Rc<Cluster>, hdfs: &Rc<Hdfs>, yarn: &Rc<Yarn>) -> Rc<MapReduce> {
        Rc::new(MapReduce {
            cluster: Rc::clone(cluster),
            hdfs: Rc::clone(hdfs),
            yarn: Rc::clone(yarn),
            task_agents: RefCell::new(HashMap::new()),
        })
    }

    /// Returns the per-host agent for map / reduce task processes.
    fn task_agent(&self, host: usize, kind: &'static str) -> Arc<Agent> {
        let mut agents = self.task_agents.borrow_mut();
        Arc::clone(
            agents
                .entry((host, kind))
                .or_insert_with(|| self.cluster.new_agent(&self.cluster.hosts[host], kind)),
        )
    }

    /// Runs a job to completion and returns its statistics.
    pub async fn run_job(self: &Rc<MapReduce>, spec: JobSpec) -> JobStats {
        let clock = self.cluster.clock.clone();
        let start = clock.now();
        let client_host = Rc::clone(&self.cluster.hosts[spec.client_host]);
        let client_agent = self.cluster.new_agent(&client_host, &spec.name);
        let mut ctx = Ctx::new();
        client_agent.invoke(
            tp::CLIENT_PROTOCOLS,
            &mut ctx.bag,
            clock.now(),
            &[("procName", Value::str(&spec.name))],
        );

        let layout = self.hdfs.namenode.block_layout(&spec.input);
        let maps = layout.len();
        let map_out: Rc<RefCell<HashMap<usize, f64>>> = Rc::new(RefCell::new(HashMap::new()));

        // Map wave: allocate (data-local preferred), run, rejoin.
        let mut handles = Vec::new();
        for (offset, size, replicas) in layout {
            let container = self.yarn.allocate(&replicas).await;
            let branch = ctx.split();
            let mr = Rc::clone(self);
            let input = spec.input.clone();
            let map_out = Rc::clone(&map_out);
            let h = self.cluster.rt.spawn(async move {
                let ctx = mr
                    .map_task(branch, container.host, &input, offset, size)
                    .await;
                *map_out.borrow_mut().entry(container.host).or_insert(0.0) += size;
                // Release inside the task: a driver still allocating later
                // splits must be able to reuse this slot, or two concurrent
                // jobs deadlock the container pool.
                mr.yarn.release(container);
                ctx
            });
            handles.push(h);
        }
        for h in handles {
            let branch = h.await;
            ctx.join(branch);
        }

        // Shuffle + reduce wave.
        let sources: Vec<(usize, f64)> = {
            let mut v: Vec<(usize, f64)> = map_out.borrow().iter().map(|(k, v)| (*k, *v)).collect();
            v.sort_by_key(|(h, _)| *h);
            v
        };
        let mut handles = Vec::new();
        for r in 0..spec.reducers {
            let container = self.yarn.allocate(&[]).await;
            let branch = ctx.split();
            let mr = Rc::clone(self);
            let sources = sources.clone();
            let reducers = spec.reducers;
            let out_name = format!("{}/part-{r}", spec.name);
            let h = self.cluster.rt.spawn(async move {
                let out = mr
                    .reduce_task(branch, container.host, sources, reducers, &out_name)
                    .await;
                mr.yarn.release(container);
                out
            });
            handles.push(h);
        }
        for h in handles {
            let branch = h.await;
            ctx.join(branch);
        }

        client_agent.invoke(
            tp::JOB_COMPLETE,
            &mut ctx.bag,
            clock.now(),
            &[("id", Value::str(&spec.name))],
        );
        JobStats {
            duration: clock.now() - start,
            maps,
            reducers: spec.reducers,
        }
    }

    async fn map_task(
        &self,
        mut ctx: Ctx,
        host: usize,
        input: &str,
        offset: f64,
        size: f64,
    ) -> Ctx {
        let agent = self.task_agent(host, "MapTask");
        let dfs = self
            .hdfs
            .client(&self.cluster.hosts[host], &agent, "MapTask");
        dfs.read_at(&mut ctx, input, offset, size).await;
        self.cluster
            .clock
            .sleep((size / CPU_RATE * 1e9) as u64)
            .await;
        // Spill map output to local disk.
        self.local_io(&mut ctx, host, &agent, size, "Map", true)
            .await;
        ctx
    }

    async fn reduce_task(
        &self,
        mut ctx: Ctx,
        host: usize,
        sources: Vec<(usize, f64)>,
        reducers: usize,
        out_name: &str,
    ) -> Ctx {
        let agent = self.task_agent(host, "ReduceTask");
        let clock = self.cluster.clock.clone();
        let mut partition = 0.0;
        for (mh, bytes) in sources {
            let share = bytes / reducers as f64;
            partition += share;
            // Read the map output on the map host (shuffle service)...
            let src_agent = self.task_agent(mh, "MapTask");
            self.local_io(&mut ctx, mh, &src_agent, share, "Shuffle", false)
                .await;
            // ...move it over the network...
            let src = Rc::clone(&self.cluster.hosts[mh]);
            let dst = Rc::clone(&self.cluster.hosts[host]);
            let chunk = self.cluster.cfg.chunk;
            let mut remaining = share;
            while remaining > 0.0 {
                let c = remaining.min(chunk);
                remaining -= c;
                transfer(&clock, &src, &dst, c).await;
            }
            // ...and land it on the reducer's disk.
            self.local_io(&mut ctx, host, &agent, share, "Reduce", true)
                .await;
        }
        // Merge pass: read everything back, sort, and commit to HDFS.
        self.local_io(&mut ctx, host, &agent, partition, "Reduce", false)
            .await;
        clock.sleep((partition / CPU_RATE * 1e9) as u64).await;
        let dfs = self
            .hdfs
            .client(&self.cluster.hosts[host], &agent, "ReduceTask");
        dfs.write(&mut ctx, out_name, partition, 1).await;
        ctx
    }

    /// Chunked local disk IO with `FileInputStream` / `FileOutputStream`
    /// tracepoints (paper Figure 1c).
    async fn local_io(
        &self,
        ctx: &mut Ctx,
        host: usize,
        agent: &Arc<Agent>,
        bytes: f64,
        phase: &str,
        write: bool,
    ) {
        let h: &Rc<Host> = &self.cluster.hosts[host];
        let clock = &self.cluster.clock;
        let chunk = self.cluster.cfg.chunk;
        let mut remaining = bytes;
        while remaining > 0.0 {
            let c = remaining.min(chunk);
            remaining -= c;
            h.disk.acquire(c).await;
            if write {
                h.disk_write.add(c);
                agent.invoke(
                    tp::FILE_OUTPUT_STREAM,
                    &mut ctx.bag,
                    clock.now(),
                    &[("delta", Value::F64(c)), ("phase", Value::str(phase))],
                );
            } else {
                h.disk_read.add(c);
                agent.invoke(
                    tp::FILE_INPUT_STREAM,
                    &mut ctx.bag,
                    clock.now(),
                    &[("delta", Value::F64(c)), ("phase", Value::str(phase))],
                );
            }
        }
    }
}
