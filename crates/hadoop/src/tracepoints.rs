//! The tracepoint vocabulary of the simulated stack.
//!
//! Mirrors the tracepoints the paper's evaluation defines against the real
//! Hadoop stack (§2, §6): HDFS client/server protocols, DataNode metrics,
//! Java file-stream IO, HBase request lifecycle, and MapReduce job events.
//! Each constant names a location in the simulated systems' code where the
//! process's agent is invoked; queries refer to these names.

use pivot_core::Frontend;

/// Client-side entry of any of the stack's client protocols (the paper's
/// `ClientProtocols` union of `DataTransferProtocol`, `ClientService`, and
/// `ApplicationClientProtocol`). Exports `procName`.
pub const CLIENT_PROTOCOLS: &str = "ClientProtocols";

/// HDFS `DataNodeMetrics.incrBytesRead(int delta)` (paper Q1/Q2).
pub const DN_INCR_BYTES_READ: &str = "DataNodeMetrics.incrBytesRead";

/// HDFS `DataNodeMetrics.incrBytesWritten(int delta)`.
pub const DN_INCR_BYTES_WRITTEN: &str = "DataNodeMetrics.incrBytesWritten";

/// DataNode server-side data transfer protocol (paper Q3/Q6/Q7).
/// Exports `op` and `size`.
pub const DN_DATA_TRANSFER: &str = "DN.DataTransferProtocol";

/// DataNode per-operation timing summary. Exports `xferNanos`,
/// `blockedNanos`, `gcNanos` (the Figure 9b decomposition).
pub const DN_TRANSFER_TIMING: &str = "DN.Transfer";

/// NameNode `GetBlockLocations` (paper Q4/Q5/Q7). Exports `src` (file),
/// `replicas` (comma-joined ordered replica hosts), and `lockNanos` (time
/// queued on the namespace lock).
pub const NN_GET_BLOCK_LOCATIONS: &str = "NN.GetBlockLocations";

/// NameNode metadata client protocol (open/create/rename). Exports `op`
/// and `lockNanos`.
pub const NN_CLIENT_PROTOCOL: &str = "NN.ClientProtocol";

/// Stress-test client operation start (paper Q4–Q7). Exports `op`.
pub const STRESS_DO_NEXT_OP: &str = "StressTest.DoNextOp";

/// Java `FileInputStream` read (paper Figure 1c). Exports `delta`, `phase`.
pub const FILE_INPUT_STREAM: &str = "FileInputStream";

/// Java `FileOutputStream` write (paper Figure 1c). Exports `delta`,
/// `phase`.
pub const FILE_OUTPUT_STREAM: &str = "FileOutputStream";

/// HBase RegionServer receives a request (paper Q8). Exports `op`.
pub const RS_RECEIVE_REQUEST: &str = "RS.ReceiveRequest";

/// HBase RegionServer sends a response (paper Q8). Exports `op`,
/// `queueNanos`, `processNanos`, `gcNanos`.
pub const RS_SEND_RESPONSE: &str = "RS.SendResponse";

/// A stop-the-world GC pause observed by a request. Exports `gcNanos`.
pub const GC_PAUSE: &str = "GC.Pause";

/// MapReduce job completion (paper Q9). Exports `id`.
pub const JOB_COMPLETE: &str = "JobComplete";

/// Defines every tracepoint of the simulated stack against `frontend`.
pub fn define_all(frontend: &mut Frontend) {
    frontend.define(CLIENT_PROTOCOLS, ["procName"]);
    frontend.define(DN_INCR_BYTES_READ, ["delta"]);
    frontend.define(DN_INCR_BYTES_WRITTEN, ["delta"]);
    frontend.define(DN_DATA_TRANSFER, ["op", "size"]);
    frontend.define(DN_TRANSFER_TIMING, ["xferNanos", "blockedNanos", "gcNanos"]);
    frontend.define(NN_GET_BLOCK_LOCATIONS, ["src", "replicas", "lockNanos"]);
    frontend.define(NN_CLIENT_PROTOCOL, ["op", "lockNanos"]);
    frontend.define(STRESS_DO_NEXT_OP, ["op"]);
    frontend.define(FILE_INPUT_STREAM, ["delta", "phase"]);
    frontend.define(FILE_OUTPUT_STREAM, ["delta", "phase"]);
    frontend.define(RS_RECEIVE_REQUEST, ["op"]);
    frontend.define(
        RS_SEND_RESPONSE,
        ["op", "queueNanos", "processNanos", "gcNanos"],
    );
    frontend.define(GC_PAUSE, ["gcNanos"]);
    frontend.define(JOB_COMPLETE, ["id"]);
}
