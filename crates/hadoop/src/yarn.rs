//! Simulated YARN: a ResourceManager and per-host NodeManagers.

use std::cell::Cell;
use std::rc::Rc;
use std::sync::Arc;

use pivot_core::Agent;

use crate::cluster::{Cluster, Host};

/// A NodeManager process managing task slots on one host.
pub struct NodeManager {
    /// Its host.
    pub host: Rc<Host>,
    /// The NodeManager process's agent.
    pub agent: Arc<Agent>,
    /// Free container slots.
    pub free_slots: Cell<usize>,
}

/// The assembled YARN service.
pub struct Yarn {
    cluster: Rc<Cluster>,
    /// The ResourceManager's agent (runs on the master host).
    pub rm_agent: Arc<Agent>,
    /// One NodeManager per worker.
    pub nodemanagers: Vec<Rc<NodeManager>>,
    rr: Cell<usize>,
}

/// A granted container: a slot on a specific host, released on drop
/// bookkeeping via [`Yarn::release`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Container {
    /// Host index the container runs on.
    pub host: usize,
}

impl Yarn {
    /// Starts YARN with `slots` containers per NodeManager.
    pub fn start(cluster: &Rc<Cluster>, slots: usize) -> Rc<Yarn> {
        let rm_agent = cluster.new_agent(cluster.nn_host(), "ResourceManager");
        let nodemanagers = cluster
            .workers()
            .iter()
            .map(|h| {
                Rc::new(NodeManager {
                    host: Rc::clone(h),
                    agent: cluster.new_agent(h, "NodeManager"),
                    free_slots: Cell::new(slots),
                })
            })
            .collect();
        Rc::new(Yarn {
            cluster: Rc::clone(cluster),
            rm_agent,
            nodemanagers,
            rr: Cell::new(0),
        })
    }

    /// Allocates one container, preferring `preferred` hosts in order,
    /// falling back to round-robin; waits (polling the scheduler) when the
    /// cluster is full.
    pub async fn allocate(&self, preferred: &[usize]) -> Container {
        loop {
            for &p in preferred {
                if let Some(nm) = self.nodemanagers.get(p) {
                    if nm.free_slots.get() > 0 {
                        nm.free_slots.set(nm.free_slots.get() - 1);
                        return Container { host: p };
                    }
                }
            }
            let n = self.nodemanagers.len();
            let start = self.rr.get();
            for i in 0..n {
                let idx = (start + i) % n;
                let nm = &self.nodemanagers[idx];
                if nm.free_slots.get() > 0 {
                    nm.free_slots.set(nm.free_slots.get() - 1);
                    self.rr.set(idx + 1);
                    return Container { host: idx };
                }
            }
            // Cluster full: wait for the next scheduling heartbeat.
            self.cluster.clock.sleep(100_000_000).await;
        }
    }

    /// Returns a container's slot to its NodeManager.
    pub fn release(&self, c: Container) {
        let nm = &self.nodemanagers[c.host];
        nm.free_slots.set(nm.free_slots.get() + 1);
    }

    /// Total free slots (for tests).
    pub fn free_slots(&self) -> usize {
        self.nodemanagers.iter().map(|nm| nm.free_slots.get()).sum()
    }
}
