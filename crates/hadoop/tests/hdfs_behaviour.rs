//! Behavioural tests for the simulated HDFS: replica ordering (with and
//! without HDFS-6268), placement, the write pipeline, and NameNode lock
//! contention.

use std::rc::Rc;

use pivot_hadoop::cluster::{Cluster, ClusterConfig, MB};
use pivot_hadoop::ctx::Ctx;
use pivot_hadoop::hdfs::{Hdfs, BLOCK_SIZE};

fn cluster(bug: bool, seed: u64) -> Rc<Cluster> {
    Cluster::new(ClusterConfig {
        workers: 8,
        seed,
        replica_bug: bug,
        ..ClusterConfig::default()
    })
}

#[test]
fn bootstrap_places_blocks_with_replication() {
    let c = cluster(false, 1);
    let hdfs = Hdfs::start(&c);
    hdfs.namenode.bootstrap_file("f", 300.0 * MB, 3);
    let layout = hdfs.namenode.block_layout("f");
    assert_eq!(layout.len(), 3, "300 MB = 2 full blocks + 1 partial");
    assert_eq!(layout[0].1, BLOCK_SIZE);
    for (_, _, replicas) in &layout {
        assert_eq!(replicas.len(), 3);
        let mut r = replicas.clone();
        r.dedup();
        assert_eq!(r.len(), 3, "replicas must be distinct");
    }
    assert_eq!(hdfs.namenode.file_size("f"), Some(300.0 * MB));
}

#[test]
fn buggy_ordering_is_static_fixed_is_shuffled() {
    // With the bug, repeated lookups from a non-replica host always return
    // the same order; fixed, the order varies.
    let count_orders = |bug: bool| -> usize {
        let c = cluster(bug, 7);
        let hdfs = Hdfs::start(&c);
        hdfs.namenode.bootstrap_file("f", BLOCK_SIZE, 3);
        // Find a host that holds no replica.
        let replicas = &hdfs.namenode.block_layout("f")[0].2;
        let outsider = (0..8).find(|h| !replicas.contains(h)).expect("8 > 3");
        let clock = c.clock.clone();
        let nn = Rc::clone(&hdfs.namenode);
        let h = c.rt.spawn(async move {
            let mut orders = Vec::new();
            for _ in 0..20 {
                let mut ctx = Ctx::new();
                let lb = nn
                    .get_block_locations(&mut ctx, "f", 0.0, 1.0, outsider)
                    .await;
                orders.push(lb[0].order.clone());
                clock.sleep(1000).await;
            }
            orders
        });
        c.rt.run_for_secs(5.0);
        let orders = h.try_take().expect("lookups completed");
        let mut unique = orders;
        unique.sort();
        unique.dedup();
        unique.len()
    };
    assert_eq!(count_orders(true), 1, "bug: static global ordering");
    assert!(count_orders(false) > 1, "fixed: randomized ordering");
}

#[test]
fn local_replica_always_sorts_first() {
    let c = cluster(true, 3);
    let hdfs = Hdfs::start(&c);
    hdfs.namenode.bootstrap_file("f", BLOCK_SIZE, 3);
    let replicas = hdfs.namenode.block_layout("f")[0].2.clone();
    let local = replicas[1];
    let nn = Rc::clone(&hdfs.namenode);
    let h = c.rt.spawn(async move {
        let mut ctx = Ctx::new();
        nn.get_block_locations(&mut ctx, "f", 0.0, 1.0, local).await
    });
    c.rt.run_for_secs(1.0);
    let lb = h.try_take().expect("lookup completed");
    assert_eq!(lb[0].order[0], local);
}

#[test]
fn write_pipeline_lands_bytes_on_all_replicas() {
    let c = cluster(false, 4);
    let hdfs = Hdfs::start(&c);
    let agent = c.new_agent(&c.hosts[0], "writer");
    let dfs = hdfs.client(&c.hosts[0], &agent, "writer");
    let h = c.rt.spawn(async move {
        let mut ctx = Ctx::new();
        dfs.write(&mut ctx, "out", 16.0 * MB, 3).await;
    });
    c.rt.run_for_secs(60.0);
    assert!(h.is_done(), "write did not complete");
    let layout = hdfs.namenode.block_layout("out");
    assert_eq!(layout.len(), 1);
    // Writer is a worker: local-first placement.
    assert_eq!(layout[0].2[0], 0);
    // All three replicas wrote 16 MB to disk.
    let total_written: f64 = c.workers().iter().map(|h| h.disk_write.total()).sum();
    assert!(
        (total_written - 48.0 * MB).abs() < 1.0,
        "pipeline wrote {total_written}"
    );
}

#[test]
fn reads_move_bytes_through_disk_and_network() {
    let c = cluster(false, 5);
    let hdfs = Hdfs::start(&c);
    hdfs.namenode.bootstrap_file("f", BLOCK_SIZE, 3);
    // Put the client on a host without a replica to force network use.
    let replicas = hdfs.namenode.block_layout("f")[0].2.clone();
    let outsider = (0..8).find(|h| !replicas.contains(h)).expect("8 > 3");
    let agent = c.new_agent(&c.hosts[outsider], "reader");
    let dfs = hdfs.client(&c.hosts[outsider], &agent, "reader");
    let h = c.rt.spawn(async move {
        let mut ctx = Ctx::new();
        dfs.read_at(&mut ctx, "f", 0.0, 8.0 * MB).await;
    });
    c.rt.run_for_secs(30.0);
    assert!(h.is_done());
    let disk_total: f64 = c.workers().iter().map(|h| h.disk_read.total()).sum();
    assert!((disk_total - 8.0 * MB).abs() < 1.0);
    let rx = c.hosts[outsider].net_rx.total();
    assert!(rx >= 8.0 * MB, "client received only {rx} bytes");
}

#[test]
fn metadata_writes_contend_on_the_namespace_lock() {
    let c = cluster(false, 6);
    let hdfs = Hdfs::start(&c);
    let clock = c.clock.clone();

    // Baseline: open latency on an idle NameNode.
    let agent = c.new_agent(&c.hosts[0], "bench");
    let dfs = hdfs.client(&c.hosts[0], &agent, "bench");
    let baseline = c.rt.spawn({
        let clock = clock.clone();
        async move {
            let mut total = 0u64;
            for _ in 0..20 {
                let mut ctx = Ctx::new();
                let t0 = clock.now();
                dfs.metadata(&mut ctx, "open", false).await;
                total += clock.now() - t0;
            }
            total / 20
        }
    });
    c.rt.run_for_secs(10.0);
    let idle_ns = baseline.try_take().expect("baseline done");

    // Under a create flood, the same opens queue behind write locks.
    for i in 0..4 {
        let agent = c.new_agent(&c.hosts[i + 1], "flood");
        let dfs = hdfs.client(&c.hosts[i + 1], &agent, "flood");
        c.rt.spawn(async move {
            loop {
                let mut ctx = Ctx::new();
                dfs.metadata(&mut ctx, "create", true).await;
            }
        });
    }
    let agent = c.new_agent(&c.hosts[0], "bench2");
    let dfs = hdfs.client(&c.hosts[0], &agent, "bench2");
    let loaded = c.rt.spawn({
        async move {
            let mut total = 0u64;
            for _ in 0..20 {
                let mut ctx = Ctx::new();
                let t0 = clock.now();
                dfs.metadata(&mut ctx, "open", false).await;
                total += clock.now() - t0;
            }
            total / 20
        }
    });
    c.rt.run_for_secs(30.0);
    let loaded_ns = loaded.try_take().expect("loaded done");
    assert!(
        loaded_ns > idle_ns * 2,
        "write flood should slow reads: idle {idle_ns}ns loaded {loaded_ns}ns"
    );
}
