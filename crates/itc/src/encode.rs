//! Minimal binary encoding primitives shared by the ITC and baggage wire
//! formats.
//!
//! The format is deliberately simple: single tag bytes, LEB128 varints for
//! integers, and length-prefixed byte strings. It exists so that baggage
//! (de)serialization costs — measured in the paper's Figure 10 — are fully
//! attributable to code in this repository rather than to a third-party
//! serializer.

use std::fmt;

/// An append-only byte sink.
#[derive(Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Encoder {
        Encoder::default()
    }

    /// Creates an encoder with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Encoder {
        Encoder {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Appends a raw byte.
    pub fn put_u8(&mut self, b: u8) {
        self.buf.push(b);
    }

    /// Appends an unsigned LEB128 varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Appends a signed integer using zigzag encoding.
    pub fn put_varint_i64(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Appends an IEEE-754 double, little endian.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a length-prefixed byte slice.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_bytes(s.as_bytes());
    }

    /// Returns the number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder and returns the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Errors produced while decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the value was complete.
    Truncated,
    /// A tag byte had an unexpected value; carries the context and the tag.
    BadTag(&'static str, u8),
    /// A varint exceeded 64 bits.
    VarintOverflow,
    /// A byte string was not valid UTF-8 where a string was required.
    BadUtf8,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::BadTag(what, tag) => {
                write!(f, "bad tag {tag:#04x} while decoding {what}")
            }
            DecodeError::VarintOverflow => write!(f, "varint overflows u64"),
            DecodeError::BadUtf8 => write!(f, "invalid utf-8 in string"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over a byte slice.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Creates a decoder over `buf`.
    pub fn new(buf: &'a [u8]) -> Decoder<'a> {
        Decoder { buf, pos: 0 }
    }

    /// Returns `true` if all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    /// Returns the number of bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Reads an unsigned LEB128 varint.
    pub fn take_varint(&mut self) -> Result<u64, DecodeError> {
        let mut v: u64 = 0;
        let mut shift = 0u32;
        loop {
            let b = self.take_u8()?;
            if shift >= 64 {
                return Err(DecodeError::VarintOverflow);
            }
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    /// Reads a zigzag-encoded signed integer.
    pub fn take_varint_i64(&mut self) -> Result<i64, DecodeError> {
        let v = self.take_varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    /// Reads an IEEE-754 double.
    pub fn take_f64(&mut self) -> Result<f64, DecodeError> {
        if self.remaining() < 8 {
            return Err(DecodeError::Truncated);
        }
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.buf[self.pos..self.pos + 8]);
        self.pos += 8;
        Ok(f64::from_le_bytes(bytes))
    }

    /// Reads a length-prefixed byte slice.
    pub fn take_bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.take_varint()? as usize;
        if self.remaining() < len {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(out)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<&'a str, DecodeError> {
        std::str::from_utf8(self.take_bytes()?).map_err(|_| DecodeError::BadUtf8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        let values = [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX];
        let mut enc = Encoder::new();
        for v in values {
            enc.put_varint(v);
        }
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        for v in values {
            assert_eq!(dec.take_varint().unwrap(), v);
        }
        assert!(dec.is_empty());
    }

    #[test]
    fn signed_varint_round_trip() {
        let values = [0i64, -1, 1, i64::MIN, i64::MAX, -123456789];
        let mut enc = Encoder::new();
        for v in values {
            enc.put_varint_i64(v);
        }
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        for v in values {
            assert_eq!(dec.take_varint_i64().unwrap(), v);
        }
    }

    #[test]
    fn strings_and_floats() {
        let mut enc = Encoder::new();
        enc.put_str("hello");
        enc.put_f64(3.5);
        enc.put_str("");
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(dec.take_str().unwrap(), "hello");
        assert_eq!(dec.take_f64().unwrap(), 3.5);
        assert_eq!(dec.take_str().unwrap(), "");
    }

    #[test]
    fn truncated_input_errors() {
        let mut enc = Encoder::new();
        enc.put_str("hello");
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes[..3]);
        assert_eq!(dec.take_str().unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn small_varints_are_single_bytes() {
        let mut enc = Encoder::new();
        enc.put_varint(42);
        assert_eq!(enc.len(), 1);
    }
}
