//! ITC event trees.

use std::cmp::Ordering;
use std::fmt;

use crate::encode::{DecodeError, Decoder, Encoder};
use crate::id::Id;

/// An ITC event tree: a compact representation of how many events each
/// sub-interval of the identity space has witnessed.
///
/// Event trees are kept in *normal form*: a node whose children are equal
/// leaves collapses into a single leaf, and interior values are *lifted* so
/// that at least one child has a zero base.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Event {
    /// All positions in this sub-interval have witnessed `n` events.
    Leaf(u64),
    /// A base count plus per-half refinements.
    Node(u64, Box<Event>, Box<Event>),
}

impl Event {
    /// Returns the zero event tree.
    pub fn zero() -> Event {
        Event::Leaf(0)
    }

    /// Builds a normalized interior node.
    pub fn node(n: u64, left: Event, right: Event) -> Event {
        match (&left, &right) {
            (Event::Leaf(a), Event::Leaf(b)) if a == b => Event::Leaf(n + a),
            _ => {
                let m = left.base().min(right.base());
                if m > 0 {
                    Event::Node(n + m, Box::new(left.sink(m)), Box::new(right.sink(m)))
                } else {
                    Event::Node(n, Box::new(left), Box::new(right))
                }
            }
        }
    }

    /// Returns the base (root) value of the tree.
    fn base(&self) -> u64 {
        match self {
            Event::Leaf(n) | Event::Node(n, _, _) => *n,
        }
    }

    /// Adds `m` to the root of the tree (the *lift* operation).
    fn lift(&self, m: u64) -> Event {
        match self {
            Event::Leaf(n) => Event::Leaf(n + m),
            Event::Node(n, l, r) => Event::Node(n + m, l.clone(), r.clone()),
        }
    }

    /// Subtracts `m` from the root of the tree.
    ///
    /// # Panics
    ///
    /// Panics if `m` exceeds the root value; callers only sink by a computed
    /// minimum, so this indicates an internal logic error.
    fn sink(&self, m: u64) -> Event {
        match self {
            Event::Leaf(n) => Event::Leaf(n - m),
            Event::Node(n, l, r) => Event::Node(n - m, l.clone(), r.clone()),
        }
    }

    /// Returns the minimum event count witnessed anywhere.
    pub fn min(&self) -> u64 {
        match self {
            Event::Leaf(n) => *n,
            // Normal form guarantees one child has base 0, so min == n.
            Event::Node(n, _, _) => *n,
        }
    }

    /// Returns the maximum event count witnessed anywhere.
    pub fn max(&self) -> u64 {
        match self {
            Event::Leaf(n) => *n,
            Event::Node(n, l, r) => n + l.max().max(r.max()),
        }
    }

    /// Returns `true` if `self` is causally dominated by `other`
    /// (every position witnessed no more events in `self` than in `other`).
    pub fn leq(&self, other: &Event) -> bool {
        match (self, other) {
            (Event::Leaf(n1), e2) => *n1 <= e2.min(),
            (Event::Node(n1, l1, r1), Event::Leaf(n2)) => {
                *n1 <= *n2
                    && l1.lift(*n1).leq(&Event::Leaf(*n2))
                    && r1.lift(*n1).leq(&Event::Leaf(*n2))
            }
            (Event::Node(n1, l1, r1), Event::Node(n2, l2, r2)) => {
                *n1 <= *n2 && l1.lift(*n1).leq(&l2.lift(*n2)) && r1.lift(*n1).leq(&r2.lift(*n2))
            }
        }
    }

    /// Merges two event trees, taking the pointwise maximum (ITC *join*).
    pub fn join(&self, other: &Event) -> Event {
        match (self, other) {
            (Event::Leaf(n1), Event::Leaf(n2)) => Event::Leaf(*n1.max(n2)),
            // Expand the leaf into an equivalent raw node (bypassing the
            // normalizing constructor, which would collapse it right back).
            (Event::Leaf(n1), n @ Event::Node(..)) => {
                Event::Node(*n1, Box::new(Event::zero()), Box::new(Event::zero())).join(n)
            }
            (n @ Event::Node(..), Event::Leaf(n2)) => n.join(&Event::Node(
                *n2,
                Box::new(Event::zero()),
                Box::new(Event::zero()),
            )),
            (Event::Node(n1, l1, r1), Event::Node(n2, l2, r2)) => {
                if n1 > n2 {
                    return other.join(self);
                }
                let d = n2 - n1;
                Event::node(*n1, l1.join(&l2.lift(d)), r1.join(&r2.lift(d)))
            }
        }
    }

    /// Inflates this event tree by one event, as witnessed by identity `id`.
    ///
    /// First attempts the cheap *fill* (absorbing slack under fully-owned
    /// sub-intervals); if that changes nothing, performs the cost-minimizing
    /// *grow*.
    pub fn event(&self, id: &Id) -> Event {
        let filled = fill(id, self);
        if &filled != self {
            filled
        } else {
            grow(id, self).0
        }
    }

    /// Encodes this event tree into `enc`.
    pub fn encode(&self, enc: &mut Encoder) {
        match self {
            Event::Leaf(n) => {
                enc.put_u8(0);
                enc.put_varint(*n);
            }
            Event::Node(n, l, r) => {
                enc.put_u8(1);
                enc.put_varint(*n);
                l.encode(enc);
                r.encode(enc);
            }
        }
    }

    /// Decodes an event tree from `dec`, re-normalizing the result.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Event, DecodeError> {
        match dec.take_u8()? {
            0 => Ok(Event::Leaf(dec.take_varint()?)),
            1 => {
                let n = dec.take_varint()?;
                let l = Event::decode(dec)?;
                let r = Event::decode(dec)?;
                Ok(Event::node(n, l, r))
            }
            t => Err(DecodeError::BadTag("itc event", t)),
        }
    }
}

/// The ITC *fill* operation: raise sub-trees fully owned by `id` up to the
/// level of their surroundings.
fn fill(id: &Id, e: &Event) -> Event {
    match (id, e) {
        (Id::Zero, e) => e.clone(),
        (Id::One, e) => Event::Leaf(e.max()),
        (_, Event::Leaf(n)) => Event::Leaf(*n),
        (Id::Node(il, ir), Event::Node(n, el, er)) => match (il.as_ref(), ir.as_ref()) {
            (Id::One, _) => {
                let er2 = fill(ir, er);
                let el2 = Event::Leaf(el.max().max(er2.min()));
                Event::node(*n, el2, er2)
            }
            (_, Id::One) => {
                let el2 = fill(il, el);
                let er2 = Event::Leaf(er.max().max(el2.min()));
                Event::node(*n, el2, er2)
            }
            _ => Event::node(*n, fill(il, el), fill(ir, er)),
        },
    }
}

/// The ITC *grow* operation: add one event in the cheapest owned position.
///
/// Returns the new tree and a cost used to compare alternatives.
fn grow(id: &Id, e: &Event) -> (Event, u64) {
    const BIG: u64 = 1 << 24;
    match (id, e) {
        (Id::One, Event::Leaf(n)) => (Event::Leaf(n + 1), 0),
        (_, Event::Leaf(n)) => {
            let (e2, c) = grow(
                id,
                &Event::Node(*n, Box::new(Event::zero()), Box::new(Event::zero())),
            );
            (e2, c + BIG)
        }
        (Id::Node(il, ir), Event::Node(n, el, er)) => match (il.as_ref(), ir.as_ref()) {
            (Id::Zero, _) => {
                let (er2, c) = grow(ir, er);
                (Event::node(*n, el.as_ref().clone(), er2), c + 1)
            }
            (_, Id::Zero) => {
                let (el2, c) = grow(il, el);
                (Event::node(*n, el2, er.as_ref().clone()), c + 1)
            }
            _ => {
                let (el2, cl) = grow(il, el);
                let (er2, cr) = grow(ir, er);
                if cl < cr {
                    (Event::node(*n, el2, er.as_ref().clone()), cl + 1)
                } else {
                    (Event::node(*n, el.as_ref().clone(), er2), cr + 1)
                }
            }
        },
        // `event()` only calls `grow` after `fill` left the tree unchanged,
        // and `fill(One, _)` always collapses to a leaf — so a whole-interval
        // identity never reaches `grow` with a node. Handle it defensively by
        // raising everything to max+1.
        (Id::One, e) => (Event::Leaf(e.max() + 1), BIG),
        (Id::Zero, _) => unreachable!("grow called with anonymous id"),
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Event) -> Option<Ordering> {
        match (self.leq(other), other.leq(self)) {
            (true, true) => Some(Ordering::Equal),
            (true, false) => Some(Ordering::Less),
            (false, true) => Some(Ordering::Greater),
            (false, false) => None,
        }
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::Leaf(n) => write!(f, "{n}"),
            Event::Node(n, l, r) => write!(f, "({n},{l:?},{r:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_normalizes_equal_leaves() {
        assert_eq!(
            Event::node(2, Event::Leaf(3), Event::Leaf(3)),
            Event::Leaf(5)
        );
    }

    #[test]
    fn node_sinks_common_base() {
        let e = Event::node(1, Event::Leaf(2), Event::Leaf(4));
        match &e {
            Event::Node(n, l, r) => {
                assert_eq!(*n, 3);
                assert_eq!(**l, Event::Leaf(0));
                assert_eq!(**r, Event::Leaf(2));
            }
            _ => panic!("expected node"),
        }
    }

    #[test]
    fn seed_event_increments_leaf() {
        let e = Event::zero().event(&Id::One);
        assert_eq!(e, Event::Leaf(1));
    }

    #[test]
    fn leq_is_reflexive_and_ordered() {
        let a = Event::Leaf(1);
        let b = Event::node(1, Event::Leaf(0), Event::Leaf(2));
        assert!(a.leq(&a));
        assert!(a.leq(&b));
        assert!(!b.leq(&a));
    }

    #[test]
    fn join_takes_pointwise_max() {
        let a = Event::node(0, Event::Leaf(3), Event::Leaf(0));
        let b = Event::node(0, Event::Leaf(0), Event::Leaf(5));
        let j = a.join(&b);
        assert!(a.leq(&j) && b.leq(&j));
        assert_eq!(j, Event::node(0, Event::Leaf(3), Event::Leaf(5)));
    }

    #[test]
    fn fork_event_join_advances() {
        let (a, b) = Id::One.split();
        let mut ea = Event::zero();
        let eb = Event::zero();
        for _ in 0..3 {
            ea = ea.event(&a);
        }
        let eb2 = eb.event(&b);
        let j = ea.join(&eb2);
        assert!(ea.leq(&j) && eb2.leq(&j));
        assert_eq!(j.max(), 3);
    }

    #[test]
    fn event_monotone() {
        let (a, _) = Id::One.split();
        let e0 = Event::zero();
        let e1 = e0.event(&a);
        let e2 = e1.event(&a);
        assert!(e0.leq(&e1) && e1.leq(&e2));
        assert!(!e1.leq(&e0));
    }

    #[test]
    fn encode_round_trip() {
        let (a, b) = Id::One.split();
        let e = Event::zero()
            .event(&a)
            .event(&a)
            .join(&Event::zero().event(&b));
        let mut enc = Encoder::new();
        e.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(Event::decode(&mut dec).unwrap(), e);
    }
}
