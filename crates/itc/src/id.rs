//! ITC identity trees.

use std::fmt;

use crate::encode::{DecodeError, Decoder, Encoder};

/// An ITC identity: a binary tree describing which sub-intervals of the unit
/// interval this stamp owns.
///
/// Identities are kept in *normal form*: `Node(Zero, Zero)` collapses to
/// [`Id::Zero`] and `Node(One, One)` collapses to [`Id::One`]. All
/// constructors in this module preserve normal form.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Id {
    /// Owns nothing.
    Zero,
    /// Owns the whole interval.
    One,
    /// Owns the left sub-tree's share in the left half and the right
    /// sub-tree's share in the right half.
    Node(Box<Id>, Box<Id>),
}

/// Two identities passed to [`Id::sum`] own overlapping intervals.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct OverlapError;

impl fmt::Display for OverlapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("identities own overlapping intervals")
    }
}

impl std::error::Error for OverlapError {}

impl Id {
    /// Returns the seed identity that owns the entire interval.
    pub fn one() -> Id {
        Id::One
    }

    /// Returns the anonymous identity that owns nothing.
    pub fn zero() -> Id {
        Id::Zero
    }

    /// Builds a normalized interior node from two children.
    pub fn node(left: Id, right: Id) -> Id {
        match (&left, &right) {
            (Id::Zero, Id::Zero) => Id::Zero,
            (Id::One, Id::One) => Id::One,
            _ => Id::Node(Box::new(left), Box::new(right)),
        }
    }

    /// Returns `true` if this identity owns nothing (is anonymous).
    pub fn is_zero(&self) -> bool {
        matches!(self, Id::Zero)
    }

    /// Returns `true` if this identity owns the whole interval.
    pub fn is_whole(&self) -> bool {
        matches!(self, Id::One)
    }

    /// Splits this identity into two disjoint identities (ITC *fork*).
    ///
    /// The two returned identities are non-overlapping and together own
    /// exactly the interval owned by `self`.
    pub fn split(&self) -> (Id, Id) {
        match self {
            Id::Zero => (Id::Zero, Id::Zero),
            Id::One => (Id::node(Id::One, Id::Zero), Id::node(Id::Zero, Id::One)),
            Id::Node(l, r) => match (l.as_ref(), r.as_ref()) {
                (Id::Zero, r) => {
                    let (r1, r2) = r.split();
                    (Id::node(Id::Zero, r1), Id::node(Id::Zero, r2))
                }
                (l, Id::Zero) => {
                    let (l1, l2) = l.split();
                    (Id::node(l1, Id::Zero), Id::node(l2, Id::Zero))
                }
                (l, r) => (Id::node(l.clone(), Id::Zero), Id::node(Id::Zero, r.clone())),
            },
        }
    }

    /// Sums two disjoint identities (ITC *join*).
    ///
    /// # Errors
    ///
    /// Returns [`OverlapError`] if the identities overlap — summing
    /// overlapping identities would forge ownership and indicates a
    /// protocol violation.
    pub fn sum(&self, other: &Id) -> Result<Id, OverlapError> {
        match (self, other) {
            (Id::Zero, x) | (x, Id::Zero) => Ok(x.clone()),
            (Id::One, _) | (_, Id::One) => Err(OverlapError),
            (Id::Node(l1, r1), Id::Node(l2, r2)) => Ok(Id::node(l1.sum(l2)?, r1.sum(r2)?)),
        }
    }

    /// Returns `true` if the two identities own overlapping intervals.
    pub fn overlaps(&self, other: &Id) -> bool {
        match (self, other) {
            (Id::Zero, _) | (_, Id::Zero) => false,
            (Id::One, _) | (_, Id::One) => true,
            (Id::Node(l1, r1), Id::Node(l2, r2)) => l1.overlaps(l2) || r1.overlaps(r2),
        }
    }

    /// Returns the depth of the identity tree.
    pub fn depth(&self) -> usize {
        match self {
            Id::Zero | Id::One => 0,
            Id::Node(l, r) => 1 + l.depth().max(r.depth()),
        }
    }

    /// Encodes this identity into `enc`.
    pub fn encode(&self, enc: &mut Encoder) {
        match self {
            Id::Zero => enc.put_u8(0),
            Id::One => enc.put_u8(1),
            Id::Node(l, r) => {
                enc.put_u8(2);
                l.encode(enc);
                r.encode(enc);
            }
        }
    }

    /// Decodes an identity from `dec`.
    ///
    /// The result is re-normalized, so malformed input cannot produce a
    /// non-normal tree.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Id, DecodeError> {
        match dec.take_u8()? {
            0 => Ok(Id::Zero),
            1 => Ok(Id::One),
            2 => {
                let l = Id::decode(dec)?;
                let r = Id::decode(dec)?;
                Ok(Id::node(l, r))
            }
            t => Err(DecodeError::BadTag("itc id", t)),
        }
    }
}

impl fmt::Debug for Id {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Id::Zero => write!(f, "0"),
            Id::One => write!(f, "1"),
            Id::Node(l, r) => write!(f, "({l:?},{r:?})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_is_disjoint() {
        let (a, b) = Id::One.split();
        assert!(!a.overlaps(&b));
        assert_eq!(a.sum(&b).unwrap(), Id::One);
    }

    #[test]
    fn split_zero_stays_zero() {
        let (a, b) = Id::Zero.split();
        assert!(a.is_zero() && b.is_zero());
    }

    #[test]
    fn nested_splits_stay_disjoint() {
        let (a, b) = Id::One.split();
        let (a1, a2) = a.split();
        let (b1, b2) = b.split();
        let parts = [&a1, &a2, &b1, &b2];
        for (i, x) in parts.iter().enumerate() {
            for (j, y) in parts.iter().enumerate() {
                assert_eq!(x.overlaps(y), i == j, "{x:?} vs {y:?}");
            }
        }
        let whole = a1.sum(&a2).unwrap().sum(&b1.sum(&b2).unwrap()).unwrap();
        assert_eq!(whole, Id::One);
    }

    #[test]
    fn sum_overlapping_fails() {
        let (a, _) = Id::One.split();
        assert!(a.sum(&a).is_err());
        assert!(Id::One.sum(&Id::One).is_err());
    }

    #[test]
    fn node_normalizes() {
        assert_eq!(Id::node(Id::Zero, Id::Zero), Id::Zero);
        assert_eq!(Id::node(Id::One, Id::One), Id::One);
        assert!(matches!(Id::node(Id::One, Id::Zero), Id::Node(..)));
    }

    #[test]
    fn encode_round_trip() {
        let (a, b) = Id::One.split();
        let (a1, _) = a.split();
        for id in [Id::Zero, Id::One, a, b, a1] {
            let mut enc = Encoder::new();
            id.encode(&mut enc);
            let bytes = enc.finish();
            let mut dec = Decoder::new(&bytes);
            assert_eq!(Id::decode(&mut dec).unwrap(), id);
            assert!(dec.is_empty());
        }
    }
}
