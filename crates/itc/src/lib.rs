//! Interval tree clocks (ITC).
//!
//! An implementation of *Interval Tree Clocks: A Logical Clock for Dynamic
//! Systems* (Almeida, Baquero, Fonte — OPODIS 2008).
//!
//! Pivot Tracing (SOSP 2015, §5) uses interval tree clocks to version baggage
//! instances across branching executions: whenever an execution forks, the
//! active baggage instance's ITC identity is split into two globally unique,
//! non-overlapping identities; when branches rejoin, the identities are summed
//! back together. This crate provides the full ITC kernel — identity trees,
//! event trees, and stamps with the fork / event / join primitives — plus a
//! compact binary encoding used by the baggage wire format.
//!
//! # Examples
//!
//! ```
//! use pivot_itc::Stamp;
//!
//! let s = Stamp::seed();
//! let (mut a, mut b) = s.fork();
//! a.event();
//! b.event();
//! // Concurrent stamps are mutually unordered.
//! assert!(!a.leq(&b) && !b.leq(&a));
//! let joined = a.join(&b);
//! // The joined identity covers the whole interval again.
//! assert!(joined.id().is_whole());
//! ```

mod encode;
mod event;
mod id;
mod stamp;

pub use encode::{DecodeError, Decoder, Encoder};
pub use event::Event;
pub use id::{Id, OverlapError};
pub use stamp::Stamp;
