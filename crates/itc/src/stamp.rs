//! ITC stamps: an identity plus an event tree.

use std::fmt;

use crate::encode::{DecodeError, Decoder, Encoder};
use crate::event::Event;
use crate::id::Id;

/// An interval tree clock stamp: `(identity, event history)`.
///
/// Stamps support the three ITC kernel operations:
///
/// - [`Stamp::fork`] — split into two stamps with disjoint identities,
/// - [`Stamp::event`] — record a new event witnessed by this identity,
/// - [`Stamp::join`] — merge two stamps back together.
///
/// Pivot Tracing baggage uses stamps to identify versioned baggage instances
/// across branching executions (paper §5, "Branches and Versioning").
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Stamp {
    id: Id,
    event: Event,
}

impl Stamp {
    /// Returns the seed stamp `(1, 0)` owned by the request root.
    pub fn seed() -> Stamp {
        Stamp {
            id: Id::One,
            event: Event::zero(),
        }
    }

    /// Builds a stamp from parts.
    pub fn new(id: Id, event: Event) -> Stamp {
        Stamp { id, event }
    }

    /// Returns this stamp's identity tree.
    pub fn id(&self) -> &Id {
        &self.id
    }

    /// Returns this stamp's event tree.
    pub fn event_tree(&self) -> &Event {
        &self.event
    }

    /// Forks this stamp into two stamps with disjoint identities and the
    /// same event history.
    pub fn fork(&self) -> (Stamp, Stamp) {
        let (i1, i2) = self.id.split();
        (
            Stamp {
                id: i1,
                event: self.event.clone(),
            },
            Stamp {
                id: i2,
                event: self.event.clone(),
            },
        )
    }

    /// Returns an anonymous *peek* of this stamp: identity zero, same events.
    ///
    /// Peeked stamps can be shipped for read-only causality comparisons
    /// without consuming identity space.
    pub fn peek(&self) -> Stamp {
        Stamp {
            id: Id::Zero,
            event: self.event.clone(),
        }
    }

    /// Records one new event witnessed by this stamp's identity.
    ///
    /// # Panics
    ///
    /// Panics if the stamp is anonymous (identity zero) — anonymous stamps
    /// cannot witness events; this indicates misuse of [`Stamp::peek`].
    pub fn event(&mut self) {
        assert!(!self.id.is_zero(), "anonymous stamps cannot witness events");
        self.event = self.event.event(&self.id);
    }

    /// Joins this stamp with another, merging identities and event history.
    ///
    /// If the identities overlap (which only happens on protocol misuse),
    /// the overlap is resolved by keeping `self`'s identity — baggage join
    /// must be total, so we degrade gracefully rather than error.
    pub fn join(&self, other: &Stamp) -> Stamp {
        let id = self.id.sum(&other.id).unwrap_or_else(|_| self.id.clone());
        Stamp {
            id,
            event: self.event.join(&other.event),
        }
    }

    /// Returns `true` if this stamp causally precedes-or-equals `other`.
    pub fn leq(&self, other: &Stamp) -> bool {
        self.event.leq(&other.event)
    }

    /// Returns `true` if the two stamps are concurrent (mutually unordered).
    pub fn concurrent(&self, other: &Stamp) -> bool {
        !self.leq(other) && !other.leq(self)
    }

    /// Encodes this stamp into `enc`.
    pub fn encode(&self, enc: &mut Encoder) {
        self.id.encode(enc);
        self.event.encode(enc);
    }

    /// Decodes a stamp from `dec`.
    pub fn decode(dec: &mut Decoder<'_>) -> Result<Stamp, DecodeError> {
        let id = Id::decode(dec)?;
        let event = Event::decode(dec)?;
        Ok(Stamp { id, event })
    }
}

impl fmt::Debug for Stamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:?};{:?})", self.id, self.event)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_fork_join_round_trip() {
        let s = Stamp::seed();
        let (a, b) = s.fork();
        assert!(!a.id().overlaps(b.id()));
        let j = a.join(&b);
        assert!(j.id().is_whole());
    }

    #[test]
    fn events_establish_order() {
        let mut s = Stamp::seed();
        let before = s.clone();
        s.event();
        assert!(before.leq(&s));
        assert!(!s.leq(&before));
    }

    #[test]
    fn forked_events_are_concurrent() {
        let (mut a, mut b) = Stamp::seed().fork();
        a.event();
        b.event();
        assert!(a.concurrent(&b));
    }

    #[test]
    fn join_dominates_both() {
        let (mut a, mut b) = Stamp::seed().fork();
        a.event();
        b.event();
        b.event();
        let j = a.join(&b);
        assert!(a.leq(&j) && b.leq(&j));
    }

    #[test]
    fn peek_is_anonymous() {
        let mut s = Stamp::seed();
        s.event();
        let p = s.peek();
        assert!(p.id().is_zero());
        assert!(p.leq(&s) && s.leq(&p));
    }

    #[test]
    #[should_panic(expected = "anonymous")]
    fn anonymous_event_panics() {
        let mut p = Stamp::seed().peek();
        p.event();
    }

    #[test]
    fn encode_round_trip() {
        let (mut a, b) = Stamp::seed().fork();
        a.event();
        let j = a.join(&b);
        let mut enc = Encoder::new();
        j.encode(&mut enc);
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(Stamp::decode(&mut dec).unwrap(), j);
    }
}
