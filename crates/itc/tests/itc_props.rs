//! Property-based tests for the interval tree clock kernel.

use pivot_itc::{Decoder, Encoder, Event, Id, Stamp};
use proptest::prelude::*;

/// A random sequence of operations over a dynamic population of stamps.
#[derive(Debug, Clone)]
enum Op {
    /// Fork stamp `i`, appending both halves.
    Fork(usize),
    /// Record an event on stamp `i`.
    Event(usize),
    /// Join stamps `i` and `j` (replacing `i`, removing `j`).
    Join(usize, usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..8).prop_map(Op::Fork),
        (0usize..8).prop_map(Op::Event),
        ((0usize..8), (0usize..8)).prop_map(|(a, b)| Op::Join(a, b)),
    ]
}

/// Applies ops to a population, keeping it non-empty and indices in range.
fn run_ops(ops: &[Op]) -> Vec<Stamp> {
    let mut stamps = vec![Stamp::seed()];
    for op in ops {
        match *op {
            Op::Fork(i) => {
                let i = i % stamps.len();
                let (a, b) = stamps[i].fork();
                stamps[i] = a;
                stamps.push(b);
            }
            Op::Event(i) => {
                let i = i % stamps.len();
                stamps[i].event();
            }
            Op::Join(i, j) => {
                if stamps.len() < 2 {
                    continue;
                }
                let i = i % stamps.len();
                let mut j = j % stamps.len();
                if i == j {
                    j = (j + 1) % stamps.len();
                }
                let (lo, hi) = (i.min(j), i.max(j));
                let removed = stamps.remove(hi);
                stamps[lo] = stamps[lo].join(&removed);
            }
        }
    }
    stamps
}

proptest! {
    /// Identities in the live population are always pairwise disjoint.
    #[test]
    fn identities_stay_disjoint(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let stamps = run_ops(&ops);
        for (i, a) in stamps.iter().enumerate() {
            for (j, b) in stamps.iter().enumerate() {
                if i != j {
                    prop_assert!(
                        !a.id().overlaps(b.id()),
                        "{a:?} overlaps {b:?}"
                    );
                }
            }
        }
    }

    /// Joining all live stamps always recovers the whole-interval identity.
    #[test]
    fn joining_all_recovers_seed(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let stamps = run_ops(&ops);
        let mut acc = stamps[0].clone();
        for s in &stamps[1..] {
            acc = acc.join(s);
        }
        prop_assert!(acc.id().is_whole());
    }

    /// An event strictly advances a stamp, and join computes a least upper
    /// bound that dominates both inputs.
    #[test]
    fn event_advances_join_dominates(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let stamps = run_ops(&ops);
        for s in &stamps {
            let mut after = s.clone();
            after.event();
            prop_assert!(s.leq(&after));
            prop_assert!(!after.leq(s));
        }
        if stamps.len() >= 2 {
            let j = stamps[0].join(&stamps[1]);
            prop_assert!(stamps[0].leq(&j));
            prop_assert!(stamps[1].leq(&j));
        }
    }

    /// Stamps survive a serialization round trip unchanged.
    #[test]
    fn stamps_round_trip(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let stamps = run_ops(&ops);
        for s in &stamps {
            let mut enc = Encoder::new();
            s.encode(&mut enc);
            let bytes = enc.finish();
            let mut dec = Decoder::new(&bytes);
            let back = Stamp::decode(&mut dec).unwrap();
            prop_assert_eq!(&back, s);
            prop_assert!(dec.is_empty());
        }
    }

    /// `leq` on event trees is a partial order: reflexive, antisymmetric
    /// (up to normalization), and transitive across a join chain.
    #[test]
    fn leq_partial_order(ops in prop::collection::vec(op_strategy(), 0..40)) {
        let stamps = run_ops(&ops);
        for a in &stamps {
            prop_assert!(a.leq(a));
        }
        // a <= a.join(b) <= (a.join(b)).join(c): transitivity witness.
        if stamps.len() >= 3 {
            let ab = stamps[0].join(&stamps[1]);
            let abc = ab.join(&stamps[2]);
            prop_assert!(stamps[0].leq(&ab));
            prop_assert!(ab.leq(&abc));
            prop_assert!(stamps[0].leq(&abc));
        }
    }
}

#[test]
fn deep_fork_chain_remains_correct() {
    // Fork 64 times along one side, event each, then join everything back.
    let mut side = Vec::new();
    let mut cur = Stamp::seed();
    for _ in 0..64 {
        let (a, b) = cur.fork();
        cur = a;
        side.push(b);
    }
    cur.event();
    for s in &mut side {
        s.event();
    }
    let mut acc = cur;
    for s in side {
        acc = acc.join(&s);
    }
    assert!(acc.id().is_whole());
    assert!(Event::zero().leq(acc.event_tree()));
    assert!(acc.event_tree().max() >= 1);
}

#[test]
fn id_depth_grows_logarithmically_under_balanced_forks() {
    let mut stamps = vec![Stamp::seed()];
    for _ in 0..6 {
        let mut next = Vec::new();
        for s in &stamps {
            let (a, b) = s.fork();
            next.push(a);
            next.push(b);
        }
        stamps = next;
    }
    assert_eq!(stamps.len(), 64);
    for s in &stamps {
        assert!(s.id().depth() <= 7, "depth {}", s.id().depth());
    }
    let _ = Id::One; // silence unused import when features change
}
