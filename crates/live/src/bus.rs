//! The TCP message bus: real-socket transport for commands and reports.
//!
//! Reproduces the paper's Figure 2 topology on actual sockets: a central
//! pub/sub endpoint ([`TcpBusServer`]) owned by the frontend process, and
//! one [`LiveAgent`] per traced process that connects out, registers with
//! a `Hello`, applies incoming weave/unweave commands to its local
//! registry, and streams partial-result reports back on its own reporting
//! interval. [`LiveFrontend`] bundles a [`pivot_core::Frontend`] with the
//! server side so installing a query over TCP is one call.
//!
//! The server implements [`pivot_core::Bus`], making it interchangeable
//! with [`pivot_core::LocalBus`] and the simulated cluster.
//!
//! # Crash recovery (DESIGN.md §5e)
//!
//! Connections fail and processes die; the bus makes both *visible* and
//! *recoverable* instead of silently wrong:
//!
//! - **Orderly vs lost.** Both sides send [`Message::Goodbye`] before an
//!   intentional close. A socket that dies without one is a **lost**
//!   connection: the server counts it in [`TcpBusServer::peers_lost`], and
//!   the agent enters [`ConnStatus::Reconnecting`] instead of quietly
//!   exiting its reader thread.
//! - **Reconnect.** A [`LiveAgent`] retries with capped exponential
//!   backoff plus deterministic jitter ([`ReconnectPolicy`]); the agent's
//!   weave registry, aggregation buffers, and report sequence numbers all
//!   survive the reconnect, so nothing double-counts.
//! - **Epoch re-sync.** On every `Hello` the server answers with one
//!   [`Message::Sync`] frame carrying the full installed-query set tagged
//!   with the current install epoch; [`pivot_core::Agent::sync`]
//!   reconciles the registry in one step no matter how many commands were
//!   missed while disconnected.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use pivot_baggage::QueryId;
use pivot_core::frontend::InstallError;
use pivot_core::{
    Agent, Bus, Command, Frontend, ProcessInfo, QueryBudget, QueryHandle, QueryResults, Report,
    RetroReport, TracepointDef,
};
use pivot_query::CompiledCode;

use crate::frame::{read_frame, write_frame};
use crate::proto::{
    decode_message_versioned, encode_message, encode_message_v, Message, MIN_PROTO_VERSION,
    PROTO_VERSION,
};

/// Stamps a pre-encoded frame with the version negotiated for one peer.
///
/// Valid only for message kinds whose payload is identical across every
/// supported protocol version — commands, syncs and goodbyes, i.e.
/// everything the server broadcasts. Reports carry versioned constructs
/// and must go through [`encode_message_v`] instead.
fn stamp_version(payload: &mut [u8], peer_version: u8) {
    payload[0] = peer_version.clamp(MIN_PROTO_VERSION, PROTO_VERSION);
}

/// One connected agent, from the server's point of view.
struct Peer {
    writer: Arc<Mutex<TcpStream>>,
    /// Set once the peer's `Hello` (or `HelloRelay`) arrives.
    info: Arc<Mutex<Option<ProcessInfo>>>,
    /// Set if registration came via `HelloRelay`: the peer is a fan-in
    /// relay speaking for a subtree, not a leaf agent.
    relay: Arc<AtomicBool>,
    /// Highest protocol version seen from this peer (max-latched from the
    /// version byte of every frame it sends, starting at the floor).
    /// Frames sent back to the peer are stamped with it so a down-level
    /// agent never receives a frame it cannot decode.
    version: Arc<AtomicU8>,
}

struct BusInner {
    addr: SocketAddr,
    peers: Mutex<Vec<Peer>>,
    /// Reports received and not yet drained by the frontend.
    reports: Mutex<Vec<Report>>,
    /// Retroactive-flush reports (proto v7) received and not yet drained.
    retros: Mutex<Vec<RetroReport>>,
    /// Currently installed queries, synced to agents that join (or
    /// rejoin) late — mirrors the simulated cluster weaving installed
    /// queries into new processes.
    installed: Mutex<Vec<Arc<CompiledCode>>>,
    /// Overload budgets currently in force, re-shipped on every `Sync` so
    /// a rejoining agent recovers its governor configuration too.
    budgets: Mutex<Vec<(QueryId, QueryBudget)>>,
    /// Install epoch: bumped on every install/uninstall broadcast and
    /// stamped on each `Sync` frame, so agents know which snapshot of the
    /// query set they have converged to.
    epoch: AtomicU64,
    /// Peers that closed with a `Goodbye` (orderly).
    peers_closed: AtomicU64,
    /// Peers whose connection died without a `Goodbye` (crash, kill,
    /// network fault).
    peers_lost: AtomicU64,
    shutdown: AtomicBool,
}

/// The frontend side of the TCP bus (the paper's central pub/sub server).
pub struct TcpBusServer {
    inner: Arc<BusInner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl TcpBusServer {
    /// Binds a loopback listener on an ephemeral port and starts the
    /// accept loop.
    pub fn start() -> io::Result<TcpBusServer> {
        TcpBusServer::bind("127.0.0.1:0")
    }

    /// Binds `addr` and starts the accept loop.
    pub fn bind(addr: &str) -> io::Result<TcpBusServer> {
        let listener = TcpListener::bind(addr)?;
        let inner = Arc::new(BusInner {
            addr: listener.local_addr()?,
            peers: Mutex::new(Vec::new()),
            reports: Mutex::new(Vec::new()),
            retros: Mutex::new(Vec::new()),
            installed: Mutex::new(Vec::new()),
            budgets: Mutex::new(Vec::new()),
            epoch: AtomicU64::new(0),
            peers_closed: AtomicU64::new(0),
            peers_lost: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
        });
        let server = TcpBusServer {
            inner: Arc::clone(&inner),
            threads: Mutex::new(Vec::new()),
        };
        let accept_inner = Arc::clone(&inner);
        let handle = std::thread::spawn(move || accept_loop(&listener, &accept_inner));
        server.threads.lock().push(handle);
        Ok(server)
    }

    /// The address agents should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Number of leaf agents that have completed registration (relay
    /// peers are counted by [`TcpBusServer::relay_count`] instead).
    pub fn agent_count(&self) -> usize {
        self.inner
            .peers
            .lock()
            .iter()
            .filter(|p| p.info.lock().is_some() && !p.relay.load(Ordering::SeqCst))
            .count()
    }

    /// Number of fan-in relays that have completed registration (via
    /// `HelloRelay`).
    pub fn relay_count(&self) -> usize {
        self.inner
            .peers
            .lock()
            .iter()
            .filter(|p| p.info.lock().is_some() && p.relay.load(Ordering::SeqCst))
            .count()
    }

    /// Blocks until at least `n` relays have registered or `timeout`
    /// elapses; returns whether the target was reached.
    pub fn wait_for_relays(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.relay_count() < n {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Identities of the registered agents.
    pub fn agents(&self) -> Vec<ProcessInfo> {
        self.inner
            .peers
            .lock()
            .iter()
            .filter_map(|p| p.info.lock().clone())
            .collect()
    }

    /// Blocks until at least `n` agents have registered or `timeout`
    /// elapses; returns whether the target was reached.
    pub fn wait_for_agents(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.agent_count() < n {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// The current install epoch (see [`Message::Sync`]).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::SeqCst)
    }

    /// Peers that disconnected orderly (with a `Goodbye`).
    pub fn peers_closed(&self) -> u64 {
        self.inner.peers_closed.load(Ordering::SeqCst)
    }

    /// Peers whose connection died without a `Goodbye` — crashed or
    /// killed agents, severed links.
    pub fn peers_lost(&self) -> u64 {
        self.inner.peers_lost.load(Ordering::SeqCst)
    }

    /// Replaces the cached installed-query set and budgets wholesale and
    /// pushes one `Sync` frame to every connected peer, bumping the local
    /// epoch. This is how a relay's *downstream* server proxies an
    /// upstream `Sync` (connect or reconnect): whatever installs the relay
    /// missed while partitioned reach its whole subtree in one frame.
    /// Epochs are per-tier counters — the downstream epoch advances by
    /// one per visible change, it does not copy the upstream number.
    pub fn resync(&self, queries: Vec<Arc<CompiledCode>>, budgets: Vec<(QueryId, QueryBudget)>) {
        *self.inner.installed.lock() = queries.clone();
        *self.inner.budgets.lock() = budgets.clone();
        let epoch = self.inner.epoch.fetch_add(1, Ordering::SeqCst) + 1;
        let mut payload = encode_message(&Message::Sync {
            epoch,
            queries,
            budgets,
        });
        self.inner.peers.lock().retain(|peer| {
            stamp_version(&mut payload, peer.version.load(Ordering::SeqCst));
            write_frame(&mut *peer.writer.lock(), &payload).is_ok()
        });
    }

    /// Abruptly severs every live connection *without* a `Goodbye`, while
    /// the listener keeps accepting. From the agents' point of view this
    /// is indistinguishable from a network fault: their readers see EOF
    /// with no orderly-shutdown marker and enter reconnection. A chaos
    /// hook for recovery tests and benches.
    pub fn sever(&self) {
        for peer in self.inner.peers.lock().drain(..) {
            let _ = peer.writer.lock().shutdown(Shutdown::Both);
        }
    }

    /// Stops the accept loop and disconnects every agent (orderly: each
    /// peer is sent a `Goodbye` first, so agents mark the close as clean
    /// instead of entering reconnection).
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.inner.addr);
        let mut bye = encode_message(&Message::Goodbye);
        for peer in self.inner.peers.lock().drain(..) {
            stamp_version(&mut bye, peer.version.load(Ordering::SeqCst));
            let mut w = peer.writer.lock();
            let _ = write_frame(&mut *w, &bye);
            let _ = w.shutdown(Shutdown::Both);
        }
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpBusServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Bus for TcpBusServer {
    fn broadcast(&self, cmd: &Command) {
        match cmd {
            Command::Install(q) => self.inner.installed.lock().push(Arc::clone(q)),
            Command::Uninstall(id) => {
                self.inner.installed.lock().retain(|q| q.id != *id);
                self.inner.budgets.lock().retain(|(q, _)| q != id);
            }
            Command::SetBudget(id, budget) => {
                let mut budgets = self.inner.budgets.lock();
                match budgets.iter_mut().find(|(q, _)| q == id) {
                    Some(entry) => entry.1 = *budget,
                    None => budgets.push((*id, *budget)),
                }
            }
        }
        self.inner.epoch.fetch_add(1, Ordering::SeqCst);
        let mut payload = encode_message(&Message::Command(cmd.clone()));
        // Drop peers whose connection is gone; the write error is the
        // only signal a crashed agent leaves behind.
        self.inner.peers.lock().retain(|peer| {
            stamp_version(&mut payload, peer.version.load(Ordering::SeqCst));
            write_frame(&mut *peer.writer.lock(), &payload).is_ok()
        });
    }

    fn drain_reports(&self, _now: u64) -> Vec<Report> {
        std::mem::take(&mut *self.inner.reports.lock())
    }

    fn drain_retro(&self, _now: u64) -> Vec<RetroReport> {
        std::mem::take(&mut *self.inner.retros.lock())
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<BusInner>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_nodelay(true);
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        let peer = Peer {
            writer: Arc::new(Mutex::new(write_half)),
            info: Arc::new(Mutex::new(None)),
            relay: Arc::new(AtomicBool::new(false)),
            version: Arc::new(AtomicU8::new(MIN_PROTO_VERSION)),
        };
        let writer = Arc::clone(&peer.writer);
        let info = Arc::clone(&peer.info);
        let relay = Arc::clone(&peer.relay);
        let version = Arc::clone(&peer.version);
        let reader_inner = Arc::clone(inner);
        inner.peers.lock().push(peer);
        std::thread::spawn(move || {
            peer_reader(stream, &writer, &info, &relay, &version, &reader_inner);
        });
    }
}

/// Per-connection reader: registers the peer on `Hello` (answering with
/// an epoch-tagged `Sync` of the full installed-query set), collects its
/// reports, and exits on `Goodbye`, EOF, or a protocol violation (closing
/// the connection — malformed frames from live peers are a fault, not
/// something to silently skip). EOF without a preceding `Goodbye` is
/// tallied as a *lost* peer, not a clean close.
fn peer_reader(
    mut stream: TcpStream,
    writer: &Arc<Mutex<TcpStream>>,
    info: &Arc<Mutex<Option<ProcessInfo>>>,
    relay: &Arc<AtomicBool>,
    version: &Arc<AtomicU8>,
    inner: &Arc<BusInner>,
) {
    let mut orderly = false;
    while let Ok(payload) = read_frame(&mut stream) {
        let msg = decode_message_versioned(&payload).map(|(v, msg)| {
            // Every frame advertises the sender's version; max-latch it
            // so replies (and later broadcasts) speak the peer's dialect.
            version.fetch_max(v, Ordering::SeqCst);
            msg
        });
        match msg {
            Ok(msg @ (Message::Hello(_) | Message::HelloRelay(_))) => {
                let is_relay = matches!(msg, Message::HelloRelay(_));
                let (Message::Hello(process) | Message::HelloRelay(process)) = msg else {
                    unreachable!();
                };
                relay.store(is_relay, Ordering::SeqCst);
                *info.lock() = Some(process);
                // One Sync frame converges the newcomer (or the rejoiner)
                // to the exact installed set at the current epoch.
                let sync = {
                    let queries = inner.installed.lock().clone();
                    let budgets = inner.budgets.lock().clone();
                    Message::Sync {
                        epoch: inner.epoch.load(Ordering::SeqCst),
                        queries,
                        budgets,
                    }
                };
                let sync = encode_message_v(&sync, version.load(Ordering::SeqCst));
                if write_frame(&mut *writer.lock(), &sync).is_err() {
                    break;
                }
            }
            Ok(Message::Report(report)) => inner.reports.lock().push(report),
            Ok(Message::Retro(report)) => inner.retros.lock().push(report),
            Ok(Message::Goodbye) => {
                orderly = true;
                break;
            }
            Ok(Message::Command(_) | Message::Sync { .. }) | Err(_) => break,
        }
    }
    if !inner.shutdown.load(Ordering::SeqCst) {
        if orderly {
            inner.peers_closed.fetch_add(1, Ordering::SeqCst);
        } else {
            inner.peers_lost.fetch_add(1, Ordering::SeqCst);
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    let dead = Arc::as_ptr(writer);
    inner
        .peers
        .lock()
        .retain(|p| Arc::as_ptr(&p.writer) != dead);
}

/// Connection state of a [`LiveAgent`], distinguishing *orderly* closes
/// from *lost* connections. Historically the agent's reader treated any
/// closed socket as a clean shutdown and exited silently; a killed bus or
/// severed link now surfaces as `Reconnecting`/`Lost` instead.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConnStatus {
    /// Connected and registered.
    Connected,
    /// Connection lost; reconnection attempts in progress.
    Reconnecting,
    /// Closed on purpose: local shutdown, or the server said `Goodbye`.
    Closed,
    /// Connection lost for good (reconnection disabled or exhausted).
    /// An error status — tuples emitted in this state never reach the
    /// frontend.
    Lost,
}

impl ConnStatus {
    /// `true` for the error state ([`ConnStatus::Lost`]).
    pub fn is_error(self) -> bool {
        self == ConnStatus::Lost
    }
}

/// Reconnection behaviour of a [`LiveAgent`]: capped exponential backoff
/// with deterministic jitter (drawn from [`pivot_simrt::mix64`], keyed by
/// `jitter_seed ^ attempt` — never from wall time, so retry schedules are
/// reproducible given the seed).
#[derive(Clone, Copy, Debug)]
pub struct ReconnectPolicy {
    /// Attempts before giving up and going [`ConnStatus::Lost`].
    pub max_attempts: u32,
    /// First retry delay; doubles each attempt.
    pub base_delay: Duration,
    /// Upper bound on the exponential portion.
    pub max_delay: Duration,
    /// Seed for the deterministic jitter term.
    pub jitter_seed: u64,
}

impl ReconnectPolicy {
    /// A practical default: 10 attempts, 10 ms doubling to a 500 ms cap.
    pub fn new(jitter_seed: u64) -> ReconnectPolicy {
        ReconnectPolicy {
            max_attempts: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(500),
            jitter_seed,
        }
    }

    /// No reconnection: the first lost connection goes straight to
    /// [`ConnStatus::Lost`].
    pub fn disabled() -> ReconnectPolicy {
        ReconnectPolicy {
            max_attempts: 0,
            base_delay: Duration::ZERO,
            max_delay: Duration::ZERO,
            jitter_seed: 0,
        }
    }

    /// Delay before attempt `attempt` (0-based): `min(base · 2^attempt,
    /// max)` plus a deterministic jitter in `[0, base]`. Public so the
    /// relay tier's upstream client retries on the same schedule as a
    /// leaf agent.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << attempt.min(16))
            .min(self.max_delay);
        let spread = self.base_delay.as_nanos() as u64;
        let jitter = match spread {
            0 => 0,
            s => pivot_simrt::mix64(self.jitter_seed ^ u64::from(attempt)) % (s + 1),
        };
        exp + Duration::from_nanos(jitter)
    }
}

/// State shared by a [`LiveAgent`]'s handle and service threads.
struct LiveShared {
    agent: Arc<Agent>,
    info: ProcessInfo,
    addr: SocketAddr,
    /// The live write half; replaced in place on reconnect.
    writer: Mutex<TcpStream>,
    status: Mutex<ConnStatus>,
    /// Last install epoch observed in a `Sync` frame.
    epoch: AtomicU64,
    /// Successful reconnections.
    reconnects: AtomicU64,
    /// Highest protocol version seen from the server this connection
    /// (max-latched from received frames, reset to the floor on
    /// reconnect). Reports are encoded at this version, so encoded row
    /// blocks are transcoded down for a v5 server.
    peer_version: AtomicU8,
    stop: AtomicBool,
    policy: ReconnectPolicy,
}

impl LiveShared {
    fn set_status(&self, s: ConnStatus) {
        *self.status.lock() = s;
    }
}

/// A per-process agent connected to the TCP bus.
///
/// Owns the process's [`Agent`] (registry + local aggregation) plus two
/// service threads: a reader applying incoming weave/unweave commands
/// (and `Sync` re-syncs) and a reporter flushing partial results every
/// `report_interval` (the paper's default is one second; tests use much
/// shorter). If the connection dies without a `Goodbye`, the reader
/// reconnects per the [`ReconnectPolicy`]; the agent's registry, buffers,
/// and report sequence numbers survive, so recovery never double-counts.
pub struct LiveAgent {
    shared: Arc<LiveShared>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl LiveAgent {
    /// Connects to the bus at `addr`, registers `info`, and starts the
    /// reader and reporter threads, with reconnection enabled (jitter
    /// seeded from the process id).
    pub fn connect(
        addr: SocketAddr,
        info: ProcessInfo,
        report_interval: Duration,
    ) -> io::Result<LiveAgent> {
        let seed = info.procid;
        LiveAgent::connect_with(addr, info, report_interval, ReconnectPolicy::new(seed))
    }

    /// [`LiveAgent::connect`] with an explicit [`ReconnectPolicy`].
    pub fn connect_with(
        addr: SocketAddr,
        info: ProcessInfo,
        report_interval: Duration,
        policy: ReconnectPolicy,
    ) -> io::Result<LiveAgent> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let agent = Arc::new(Agent::new(info.clone()));
        let writer = stream.try_clone()?;
        let shared = Arc::new(LiveShared {
            agent,
            info,
            addr,
            writer: Mutex::new(writer),
            status: Mutex::new(ConnStatus::Connected),
            epoch: AtomicU64::new(0),
            reconnects: AtomicU64::new(0),
            peer_version: AtomicU8::new(MIN_PROTO_VERSION),
            stop: AtomicBool::new(false),
            policy,
        });
        write_frame(
            &mut *shared.writer.lock(),
            &encode_message(&Message::Hello(shared.info.clone())),
        )?;

        let mut threads = Vec::new();
        let reader_shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            reader_loop(stream, &reader_shared);
        }));

        let reporter_shared = Arc::clone(&shared);
        threads.push(std::thread::spawn(move || {
            // Interruptible sleep: shutdown() must not wait out a long
            // reporting interval.
            while !sleep_unless_stopped(report_interval, &reporter_shared.stop) {
                flush_if_connected(&reporter_shared);
            }
            // Final flush so short-lived processes still report.
            flush_if_connected(&reporter_shared);
        }));

        Ok(LiveAgent {
            shared,
            threads: Mutex::new(threads),
        })
    }

    /// The process-local agent: invoke tracepoints against it (usually
    /// via [`crate::tracepoint`]).
    pub fn agent(&self) -> &Arc<Agent> {
        &self.shared.agent
    }

    /// Current connection status. [`ConnStatus::Lost`] is an error: the
    /// agent is emitting into buffers nothing will ever drain to the
    /// frontend.
    pub fn status(&self) -> ConnStatus {
        *self.shared.status.lock()
    }

    /// The last install epoch observed in a `Sync` frame (0 before the
    /// first sync arrives).
    pub fn epoch(&self) -> u64 {
        self.shared.epoch.load(Ordering::SeqCst)
    }

    /// Successful reconnections so far.
    pub fn reconnects(&self) -> u64 {
        self.shared.reconnects.load(Ordering::SeqCst)
    }

    /// The protocol version max-latched from the server's frames on the
    /// *current* connection (reset to [`MIN_PROTO_VERSION`] on every
    /// reconnect, since a restarted server may speak an older dialect).
    pub fn negotiated_version(&self) -> u8 {
        self.shared.peer_version.load(Ordering::SeqCst)
    }

    /// Blocks until the status is [`ConnStatus::Connected`] and the
    /// observed epoch reaches `epoch`, or `timeout` elapses; returns
    /// whether the target was reached. The post-reconnect convergence
    /// barrier for tests and benches.
    pub fn wait_for_epoch(&self, epoch: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.status() == ConnStatus::Connected && self.epoch() >= epoch {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// Flushes partial results to the frontend immediately (when
    /// connected; otherwise tuples keep accumulating locally).
    pub fn flush_now(&self) {
        flush_if_connected(&self.shared);
    }

    /// Flushes once more, announces `Goodbye`, then disconnects and joins
    /// the service threads (orderly close).
    pub fn shutdown(&self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        if *self.shared.status.lock() == ConnStatus::Connected {
            flush_reports(&self.shared);
            let _ = write_frame(
                &mut *self.shared.writer.lock(),
                &encode_message(&Message::Goodbye),
            );
        }
        self.shared.set_status(ConnStatus::Closed);
        let _ = self.shared.writer.lock().shutdown(Shutdown::Both);
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }

    /// Kills the connection the way a crashing process would: no final
    /// flush, no `Goodbye`, socket torn down. Unflushed tuples are lost,
    /// the server tallies a *lost* peer, and this handle ends
    /// [`ConnStatus::Lost`]. A chaos hook for recovery tests and benches.
    pub fn abort(&self) {
        if self.shared.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        self.shared.set_status(ConnStatus::Lost);
        let _ = self.shared.writer.lock().shutdown(Shutdown::Both);
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for LiveAgent {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Why one read session ended.
enum SessionEnd {
    /// The server said `Goodbye`: orderly, do not reconnect.
    Orderly,
    /// EOF or protocol violation with no `Goodbye`: the connection is
    /// lost — exactly the case that used to masquerade as a clean exit.
    Lost,
}

/// Reads one connection until it ends; applies commands and `Sync`
/// re-syncs to the local agent along the way.
fn read_session(read: &mut TcpStream, shared: &LiveShared) -> SessionEnd {
    while let Ok(payload) = read_frame(read) {
        let msg = decode_message_versioned(&payload).map(|(v, msg)| {
            // The server's frames advertise its version; once a v6 frame
            // arrives, reports switch to the compact encoded-rows wire.
            shared.peer_version.fetch_max(v, Ordering::SeqCst);
            msg
        });
        match msg {
            Ok(Message::Command(cmd)) => shared.agent.apply(&cmd),
            Ok(Message::Sync {
                epoch,
                queries,
                budgets,
            }) => {
                shared.agent.sync(&queries);
                shared.agent.sync_budgets(&budgets);
                shared.epoch.store(epoch, Ordering::SeqCst);
            }
            Ok(Message::Goodbye) => return SessionEnd::Orderly,
            // Hello/HelloRelay/Report/Retro flow agent→server only;
            // receiving one here is a protocol violation, treated like a
            // corrupt frame.
            Ok(
                Message::Hello(_) | Message::HelloRelay(_) | Message::Report(_) | Message::Retro(_),
            )
            | Err(_) => return SessionEnd::Lost,
        }
    }
    SessionEnd::Lost
}

/// The reader thread: session loop with reconnection.
fn reader_loop(mut read: TcpStream, shared: &Arc<LiveShared>) {
    loop {
        let end = read_session(&mut read, shared);
        if shared.stop.load(Ordering::SeqCst) {
            // Local shutdown()/abort() already chose the final status.
            return;
        }
        if matches!(end, SessionEnd::Orderly) {
            shared.set_status(ConnStatus::Closed);
            return;
        }
        shared.set_status(ConnStatus::Reconnecting);
        match reconnect(shared) {
            Some(new_read) => {
                read = new_read;
                shared.reconnects.fetch_add(1, Ordering::SeqCst);
                shared.set_status(ConnStatus::Connected);
            }
            None => {
                if !shared.stop.load(Ordering::SeqCst) {
                    shared.set_status(ConnStatus::Lost);
                }
                return;
            }
        }
    }
}

/// Attempts to re-establish the connection per the policy. On success the
/// shared writer is replaced and a fresh `Hello` sent (the server answers
/// with a `Sync` that reconciles any missed installs).
fn reconnect(shared: &Arc<LiveShared>) -> Option<TcpStream> {
    for attempt in 0..shared.policy.max_attempts {
        if sleep_unless_stopped(shared.policy.backoff(attempt), &shared.stop) {
            return None;
        }
        let Ok(stream) = TcpStream::connect(shared.addr) else {
            continue;
        };
        if stream.set_nodelay(true).is_err() {
            continue;
        }
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        *shared.writer.lock() = write_half;
        // Negotiation is per-connection: a restarted server may speak an
        // older dialect than the previous incarnation.
        shared
            .peer_version
            .store(MIN_PROTO_VERSION, Ordering::SeqCst);
        let hello = encode_message(&Message::Hello(shared.info.clone()));
        if write_frame(&mut *shared.writer.lock(), &hello).is_ok() {
            return Some(stream);
        }
    }
    None
}

/// Sleeps `d` in small slices, returning `true` (and early) if `stop` is
/// raised — so shutdown never waits out a long backoff.
fn sleep_unless_stopped(d: Duration, stop: &AtomicBool) -> bool {
    let deadline = Instant::now() + d;
    while Instant::now() < deadline {
        if stop.load(Ordering::SeqCst) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2).min(deadline - Instant::now()));
    }
    stop.load(Ordering::SeqCst)
}

fn flush_if_connected(shared: &LiveShared) {
    // While disconnected, skip the flush entirely: tuples keep
    // accumulating in the agent's buffers (and seq numbers are not
    // consumed), so everything emitted during the outage is delivered
    // after recovery instead of being written into a dead socket.
    if *shared.status.lock() != ConnStatus::Connected {
        return;
    }
    flush_reports(shared);
}

fn flush_reports(shared: &LiveShared) {
    // Reports are the one message kind with versioned constructs, so they
    // are encoded at the server's negotiated version: encoded row blocks
    // go over the wire as-is to a v6 server and are transcoded to plain
    // rows for a v5 one.
    let peer_version = shared.peer_version.load(Ordering::SeqCst);
    for report in shared.agent.flush(crate::now_nanos()) {
        let payload = encode_message_v(&Message::Report(report), peer_version);
        if write_frame(&mut *shared.writer.lock(), &payload).is_err() {
            break;
        }
    }
    // Retro frames exist only at v7+ and are never down-encoded
    // (fail-loud skew policy); for a down-level server they stay in the
    // agent's bounded pending queue, which sheds its oldest under
    // pressure — same outage discipline as a severed link.
    if peer_version >= 7 {
        for retro in shared.agent.drain_retro() {
            let payload = encode_message_v(&Message::Retro(retro), peer_version);
            if write_frame(&mut *shared.writer.lock(), &payload).is_err() {
                break;
            }
        }
    }
}

/// A [`Frontend`] wired to a [`TcpBusServer`]: the live counterpart of
/// the simulated cluster's control plane. Queries installed here are
/// verified (PR-1 static analysis), compiled, and broadcast to every
/// connected process over TCP; results stream back continuously.
pub struct LiveFrontend {
    frontend: Frontend,
    bus: TcpBusServer,
}

impl LiveFrontend {
    /// Starts a frontend with a loopback bus on an ephemeral port.
    pub fn start() -> io::Result<LiveFrontend> {
        Ok(LiveFrontend {
            frontend: Frontend::new(),
            bus: TcpBusServer::start()?,
        })
    }

    /// The bus address agents connect to.
    pub fn addr(&self) -> SocketAddr {
        self.bus.addr()
    }

    /// The underlying bus.
    pub fn bus(&self) -> &TcpBusServer {
        &self.bus
    }

    /// Direct access to the frontend (tracepoint defs, verifier toggle).
    pub fn frontend_mut(&mut self) -> &mut Frontend {
        &mut self.frontend
    }

    /// Defines a tracepoint (the query vocabulary).
    pub fn define(&mut self, name: &str, exports: impl IntoIterator<Item = impl Into<String>>) {
        self.frontend.define(name, exports);
    }

    /// Defines a tracepoint from a full definition.
    pub fn define_tracepoint(&mut self, def: TracepointDef) {
        self.frontend.define_tracepoint(def);
    }

    /// Blocks until `n` agents registered (see
    /// [`TcpBusServer::wait_for_agents`]).
    pub fn wait_for_agents(&self, n: usize, timeout: Duration) -> bool {
        self.bus.wait_for_agents(n, timeout)
    }

    /// Installs a query: static verification, compilation, then broadcast
    /// of the weave command over TCP. A rejected query broadcasts
    /// nothing.
    pub fn install(&mut self, text: &str) -> Result<QueryHandle, InstallError> {
        let handle = self.frontend.install(text)?;
        self.broadcast_pending();
        Ok(handle)
    }

    /// Installs a query under a fixed name.
    pub fn install_named(&mut self, name: &str, text: &str) -> Result<QueryHandle, InstallError> {
        let handle = self.frontend.install_named(name, text)?;
        self.broadcast_pending();
        Ok(handle)
    }

    /// Uninstalls a query everywhere (agents unweave on receipt).
    pub fn uninstall(&mut self, handle: &QueryHandle) {
        self.frontend.uninstall(handle);
        self.broadcast_pending();
    }

    /// Pushes an overload budget for `handle` to every connected agent
    /// (and to agents that re-sync later, via the `Sync` budget list).
    pub fn set_budget(&mut self, handle: &QueryHandle, budget: QueryBudget) {
        self.frontend.set_budget(handle, budget);
        self.broadcast_pending();
    }

    /// Enables install-time pushing of statically-derived budgets (see
    /// [`Frontend::set_enforce_budgets`]).
    pub fn set_enforce_budgets(&mut self, on: bool) {
        self.frontend.set_enforce_budgets(on);
    }

    fn broadcast_pending(&mut self) {
        for cmd in self.frontend.drain_commands() {
            self.bus.broadcast(&cmd);
        }
    }

    /// Merges reports received since the last poll into the frontend.
    pub fn poll(&mut self) {
        self.bus.pump_into(crate::now_nanos(), &mut self.frontend);
    }

    /// Returns a query's accumulated results (polling first).
    pub fn results(&mut self, handle: &QueryHandle) -> &QueryResults {
        self.poll();
        self.frontend.results(handle)
    }

    /// Blocks until the query has at least `min_rows` result rows or
    /// `timeout` elapses; returns whether the target was reached.
    pub fn wait_for_rows(
        &mut self,
        handle: &QueryHandle,
        min_rows: usize,
        timeout: Duration,
    ) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            self.poll();
            if self.frontend.results(handle).len() >= min_rows {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Uninstall by query id, for tests churning many handles.
    pub fn uninstall_id(&mut self, id: QueryId, name: &str) {
        self.uninstall(&QueryHandle {
            id,
            name: name.to_owned(),
        });
    }
}
