//! The TCP message bus: real-socket transport for commands and reports.
//!
//! Reproduces the paper's Figure 2 topology on actual sockets: a central
//! pub/sub endpoint ([`TcpBusServer`]) owned by the frontend process, and
//! one [`LiveAgent`] per traced process that connects out, registers with
//! a `Hello`, applies incoming weave/unweave commands to its local
//! registry, and streams partial-result reports back on its own reporting
//! interval. [`LiveFrontend`] bundles a [`pivot_core::Frontend`] with the
//! server side so installing a query over TCP is one call.
//!
//! The server implements [`pivot_core::Bus`], making it interchangeable
//! with [`pivot_core::LocalBus`] and the simulated cluster.

use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use pivot_baggage::QueryId;
use pivot_core::frontend::InstallError;
use pivot_core::{
    Agent, Bus, Command, Frontend, ProcessInfo, QueryHandle, QueryResults, Report, TracepointDef,
};
use pivot_query::CompiledCode;

use crate::frame::{read_frame, write_frame};
use crate::proto::{decode_message, encode_message, Message};

/// One connected agent, from the server's point of view.
struct Peer {
    writer: Arc<Mutex<TcpStream>>,
    /// Set once the peer's `Hello` arrives.
    info: Arc<Mutex<Option<ProcessInfo>>>,
}

struct BusInner {
    addr: SocketAddr,
    peers: Mutex<Vec<Peer>>,
    /// Reports received and not yet drained by the frontend.
    reports: Mutex<Vec<Report>>,
    /// Currently installed queries, replayed to agents that join late
    /// (mirrors the simulated cluster weaving installed queries into new
    /// processes).
    installed: Mutex<Vec<Arc<CompiledCode>>>,
    shutdown: AtomicBool,
}

/// The frontend side of the TCP bus (the paper's central pub/sub server).
pub struct TcpBusServer {
    inner: Arc<BusInner>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl TcpBusServer {
    /// Binds a loopback listener on an ephemeral port and starts the
    /// accept loop.
    pub fn start() -> io::Result<TcpBusServer> {
        TcpBusServer::bind("127.0.0.1:0")
    }

    /// Binds `addr` and starts the accept loop.
    pub fn bind(addr: &str) -> io::Result<TcpBusServer> {
        let listener = TcpListener::bind(addr)?;
        let inner = Arc::new(BusInner {
            addr: listener.local_addr()?,
            peers: Mutex::new(Vec::new()),
            reports: Mutex::new(Vec::new()),
            installed: Mutex::new(Vec::new()),
            shutdown: AtomicBool::new(false),
        });
        let server = TcpBusServer {
            inner: Arc::clone(&inner),
            threads: Mutex::new(Vec::new()),
        };
        let accept_inner = Arc::clone(&inner);
        let handle = std::thread::spawn(move || accept_loop(&listener, &accept_inner));
        server.threads.lock().push(handle);
        Ok(server)
    }

    /// The address agents should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Number of agents that have completed registration.
    pub fn agent_count(&self) -> usize {
        self.inner
            .peers
            .lock()
            .iter()
            .filter(|p| p.info.lock().is_some())
            .count()
    }

    /// Identities of the registered agents.
    pub fn agents(&self) -> Vec<ProcessInfo> {
        self.inner
            .peers
            .lock()
            .iter()
            .filter_map(|p| p.info.lock().clone())
            .collect()
    }

    /// Blocks until at least `n` agents have registered or `timeout`
    /// elapses; returns whether the target was reached.
    pub fn wait_for_agents(&self, n: usize, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        while self.agent_count() < n {
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        true
    }

    /// Stops the accept loop and disconnects every agent.
    pub fn shutdown(&self) {
        if self.inner.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.inner.addr);
        for peer in self.inner.peers.lock().drain(..) {
            let _ = peer.writer.lock().shutdown(Shutdown::Both);
        }
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpBusServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl Bus for TcpBusServer {
    fn broadcast(&self, cmd: &Command) {
        match cmd {
            Command::Install(q) => self.inner.installed.lock().push(Arc::clone(q)),
            Command::Uninstall(id) => self.inner.installed.lock().retain(|q| q.id != *id),
        }
        let payload = encode_message(&Message::Command(cmd.clone()));
        // Drop peers whose connection is gone; the write error is the
        // only signal a crashed agent leaves behind.
        self.inner
            .peers
            .lock()
            .retain(|peer| write_frame(&mut *peer.writer.lock(), &payload).is_ok());
    }

    fn drain_reports(&self, _now: u64) -> Vec<Report> {
        std::mem::take(&mut *self.inner.reports.lock())
    }
}

fn accept_loop(listener: &TcpListener, inner: &Arc<BusInner>) {
    loop {
        let Ok((stream, _)) = listener.accept() else {
            break;
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_nodelay(true);
        let Ok(write_half) = stream.try_clone() else {
            continue;
        };
        let peer = Peer {
            writer: Arc::new(Mutex::new(write_half)),
            info: Arc::new(Mutex::new(None)),
        };
        let writer = Arc::clone(&peer.writer);
        let info = Arc::clone(&peer.info);
        let reader_inner = Arc::clone(inner);
        inner.peers.lock().push(peer);
        std::thread::spawn(move || peer_reader(stream, &writer, &info, &reader_inner));
    }
}

/// Per-connection reader: registers the peer on `Hello`, collects its
/// reports, and exits on EOF or a protocol violation (closing the
/// connection — malformed frames from live peers are a fault, not
/// something to silently skip).
fn peer_reader(
    mut stream: TcpStream,
    writer: &Arc<Mutex<TcpStream>>,
    info: &Arc<Mutex<Option<ProcessInfo>>>,
    inner: &Arc<BusInner>,
) {
    while let Ok(payload) = read_frame(&mut stream) {
        match decode_message(&payload) {
            Ok(Message::Hello(process)) => {
                *info.lock() = Some(process);
                // Weave the currently installed queries into the newcomer.
                let installed: Vec<Arc<CompiledCode>> = inner.installed.lock().clone();
                for q in installed {
                    let payload = encode_message(&Message::Command(Command::Install(q)));
                    if write_frame(&mut *writer.lock(), &payload).is_err() {
                        break;
                    }
                }
            }
            Ok(Message::Report(report)) => inner.reports.lock().push(report),
            Ok(Message::Command(_)) | Err(_) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
    let dead = Arc::as_ptr(writer);
    inner
        .peers
        .lock()
        .retain(|p| Arc::as_ptr(&p.writer) != dead);
}

/// A per-process agent connected to the TCP bus.
///
/// Owns the process's [`Agent`] (registry + local aggregation) plus two
/// service threads: a reader applying incoming weave/unweave commands and
/// a reporter flushing partial results every `report_interval` (the
/// paper's default is one second; tests use much shorter).
pub struct LiveAgent {
    agent: Arc<Agent>,
    writer: Arc<Mutex<TcpStream>>,
    stream: TcpStream,
    stop: Arc<AtomicBool>,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl LiveAgent {
    /// Connects to the bus at `addr`, registers `info`, and starts the
    /// reader and reporter threads.
    pub fn connect(
        addr: SocketAddr,
        info: ProcessInfo,
        report_interval: Duration,
    ) -> io::Result<LiveAgent> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let agent = Arc::new(Agent::new(info.clone()));
        let writer = Arc::new(Mutex::new(stream.try_clone()?));
        write_frame(&mut *writer.lock(), &encode_message(&Message::Hello(info)))?;

        let stop = Arc::new(AtomicBool::new(false));
        let mut threads = Vec::new();

        let mut read_half = stream.try_clone()?;
        let reader_agent = Arc::clone(&agent);
        threads.push(std::thread::spawn(move || {
            while let Ok(payload) = read_frame(&mut read_half) {
                match decode_message(&payload) {
                    Ok(Message::Command(cmd)) => reader_agent.apply(&cmd),
                    Ok(_) => {}
                    Err(_) => break,
                }
            }
        }));

        let reporter_agent = Arc::clone(&agent);
        let reporter_writer = Arc::clone(&writer);
        let reporter_stop = Arc::clone(&stop);
        threads.push(std::thread::spawn(move || {
            while !reporter_stop.load(Ordering::SeqCst) {
                std::thread::sleep(report_interval);
                flush_reports(&reporter_agent, &reporter_writer);
            }
            // Final flush so short-lived processes still report.
            flush_reports(&reporter_agent, &reporter_writer);
        }));

        Ok(LiveAgent {
            agent,
            writer,
            stream,
            stop,
            threads: Mutex::new(threads),
        })
    }

    /// The process-local agent: invoke tracepoints against it (usually
    /// via [`crate::tracepoint`]).
    pub fn agent(&self) -> &Arc<Agent> {
        &self.agent
    }

    /// Flushes partial results to the frontend immediately.
    pub fn flush_now(&self) {
        flush_reports(&self.agent, &self.writer);
    }

    /// Flushes once more, then disconnects and joins the service threads.
    pub fn shutdown(&self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        flush_reports(&self.agent, &self.writer);
        let _ = self.stream.shutdown(Shutdown::Both);
        for handle in self.threads.lock().drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for LiveAgent {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn flush_reports(agent: &Agent, writer: &Arc<Mutex<TcpStream>>) {
    for report in agent.flush(crate::now_nanos()) {
        let payload = encode_message(&Message::Report(report));
        if write_frame(&mut *writer.lock(), &payload).is_err() {
            break;
        }
    }
}

/// A [`Frontend`] wired to a [`TcpBusServer`]: the live counterpart of
/// the simulated cluster's control plane. Queries installed here are
/// verified (PR-1 static analysis), compiled, and broadcast to every
/// connected process over TCP; results stream back continuously.
pub struct LiveFrontend {
    frontend: Frontend,
    bus: TcpBusServer,
}

impl LiveFrontend {
    /// Starts a frontend with a loopback bus on an ephemeral port.
    pub fn start() -> io::Result<LiveFrontend> {
        Ok(LiveFrontend {
            frontend: Frontend::new(),
            bus: TcpBusServer::start()?,
        })
    }

    /// The bus address agents connect to.
    pub fn addr(&self) -> SocketAddr {
        self.bus.addr()
    }

    /// The underlying bus.
    pub fn bus(&self) -> &TcpBusServer {
        &self.bus
    }

    /// Direct access to the frontend (tracepoint defs, verifier toggle).
    pub fn frontend_mut(&mut self) -> &mut Frontend {
        &mut self.frontend
    }

    /// Defines a tracepoint (the query vocabulary).
    pub fn define(&mut self, name: &str, exports: impl IntoIterator<Item = impl Into<String>>) {
        self.frontend.define(name, exports);
    }

    /// Defines a tracepoint from a full definition.
    pub fn define_tracepoint(&mut self, def: TracepointDef) {
        self.frontend.define_tracepoint(def);
    }

    /// Blocks until `n` agents registered (see
    /// [`TcpBusServer::wait_for_agents`]).
    pub fn wait_for_agents(&self, n: usize, timeout: Duration) -> bool {
        self.bus.wait_for_agents(n, timeout)
    }

    /// Installs a query: static verification, compilation, then broadcast
    /// of the weave command over TCP. A rejected query broadcasts
    /// nothing.
    pub fn install(&mut self, text: &str) -> Result<QueryHandle, InstallError> {
        let handle = self.frontend.install(text)?;
        self.broadcast_pending();
        Ok(handle)
    }

    /// Installs a query under a fixed name.
    pub fn install_named(&mut self, name: &str, text: &str) -> Result<QueryHandle, InstallError> {
        let handle = self.frontend.install_named(name, text)?;
        self.broadcast_pending();
        Ok(handle)
    }

    /// Uninstalls a query everywhere (agents unweave on receipt).
    pub fn uninstall(&mut self, handle: &QueryHandle) {
        self.frontend.uninstall(handle);
        self.broadcast_pending();
    }

    fn broadcast_pending(&mut self) {
        for cmd in self.frontend.drain_commands() {
            self.bus.broadcast(&cmd);
        }
    }

    /// Merges reports received since the last poll into the frontend.
    pub fn poll(&mut self) {
        self.bus.pump_into(crate::now_nanos(), &mut self.frontend);
    }

    /// Returns a query's accumulated results (polling first).
    pub fn results(&mut self, handle: &QueryHandle) -> &QueryResults {
        self.poll();
        self.frontend.results(handle)
    }

    /// Blocks until the query has at least `min_rows` result rows or
    /// `timeout` elapses; returns whether the target was reached.
    pub fn wait_for_rows(
        &mut self,
        handle: &QueryHandle,
        min_rows: usize,
        timeout: Duration,
    ) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            self.poll();
            if self.frontend.results(handle).len() >= min_rows {
                return true;
            }
            if Instant::now() >= deadline {
                return false;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Uninstall by query id, for tests churning many handles.
    pub fn uninstall_id(&mut self, id: QueryId, name: &str) {
        self.uninstall(&QueryHandle {
            id,
            name: name.to_owned(),
        });
    }
}
