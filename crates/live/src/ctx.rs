//! Thread-local baggage propagation.
//!
//! The paper's Java prototype stores a request's baggage in a
//! thread-local and moves it explicitly at thread boundaries (§5). This
//! module is that mechanism for Rust threads: every OS thread carries one
//! current [`Baggage`]; request handlers [`attach`] the baggage that
//! arrived with a request and get an RAII [`BaggageScope`] that restores
//! the previous baggage when the handler finishes.
//!
//! Branch/merge points use [`branch`] (split the current baggage for work
//! handed to another thread) and [`merge`] (join baggage arriving from a
//! finished branch back in). The instrumented wrappers in
//! [`crate::thread`] call these so application code rarely does.

use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::Arc;

use pivot_baggage::Baggage;

thread_local! {
    static CURRENT: RefCell<Baggage> = RefCell::new(Baggage::new());
}

/// Runs `f` with mutable access to the current thread's baggage.
///
/// This is how live tracepoints reach the request context: advice packs
/// into and unpacks from whatever baggage is attached to the invoking
/// thread.
pub fn with_baggage<R>(f: impl FnOnce(&mut Baggage) -> R) -> R {
    CURRENT.with(|c| f(&mut c.borrow_mut()))
}

/// An RAII guard for an attached baggage (see [`attach`]).
///
/// Dropping the guard restores the thread's previous baggage, discarding
/// the scoped one; [`BaggageScope::detach`] restores the previous baggage
/// and hands the scoped one back (e.g. to serialize into a response).
#[must_use = "dropping the scope immediately would detach the baggage again"]
pub struct BaggageScope {
    prev: Option<Baggage>,
    /// Scopes pin a specific thread's state; keep them off other threads.
    _not_send: PhantomData<*const ()>,
}

/// Makes `bag` the current thread's baggage until the returned scope ends.
pub fn attach(bag: Baggage) -> BaggageScope {
    let prev = CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), bag));
    BaggageScope {
        prev: Some(prev),
        _not_send: PhantomData,
    }
}

impl BaggageScope {
    /// Ends the scope, returning the (possibly advice-mutated) baggage
    /// that was attached.
    pub fn detach(mut self) -> Baggage {
        let prev = self.prev.take().expect("scope detached once");
        CURRENT.with(|c| std::mem::replace(&mut *c.borrow_mut(), prev))
    }
}

impl Drop for BaggageScope {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}

/// Splits the current thread's baggage for a branching execution
/// (paper §5): tuples packed by the branch stay invisible to this thread
/// until the branch's baggage is [`merge`]d back.
pub fn branch() -> Baggage {
    with_baggage(Baggage::split)
}

/// Joins baggage from a finished branch into the current thread's.
pub fn merge(bag: Baggage) {
    with_baggage(|b| b.join(bag));
}

/// Serializes the current thread's baggage (for an outgoing RPC header).
pub fn snapshot_bytes() -> Arc<[u8]> {
    with_baggage(Baggage::to_bytes)
}

/// Replaces the current thread's baggage with the one returned in an RPC
/// response: the callee's execution is a causal extension of the
/// caller's, so its baggage supersedes the snapshot sent out.
pub fn adopt_bytes(bytes: &[u8]) {
    with_baggage(|b| *b = Baggage::from_bytes(bytes));
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_baggage::{PackMode, QueryId};
    use pivot_model::{Tuple, Value};

    const Q: QueryId = QueryId(1);

    fn t(v: i64) -> Tuple {
        Tuple::from_iter([Value::I64(v)])
    }

    #[test]
    fn attach_detach_restores_previous() {
        with_baggage(|b| b.pack(Q, &PackMode::All, [t(1)]));
        let mut req = Baggage::new();
        req.pack(Q, &PackMode::All, [t(2)]);
        let scope = attach(req);
        assert_eq!(with_baggage(|b| b.unpack(Q)), vec![t(2)]);
        let mut back = scope.detach();
        assert_eq!(back.unpack(Q), vec![t(2)]);
        // The thread's own baggage is intact underneath.
        assert_eq!(with_baggage(|b| b.unpack(Q)), vec![t(1)]);
        with_baggage(|b| b.clear_query(Q));
    }

    #[test]
    fn drop_discards_scoped_baggage() {
        {
            let mut req = Baggage::new();
            req.pack(Q, &PackMode::All, [t(9)]);
            let _scope = attach(req);
            assert_eq!(with_baggage(|b| b.tuple_count(Q)), 1);
        }
        assert_eq!(with_baggage(|b| b.tuple_count(Q)), 0);
    }

    #[test]
    fn branch_and_merge_round_trip() {
        let _scope = attach(Baggage::new());
        with_baggage(|b| b.pack(Q, &PackMode::All, [t(0)]));
        let mut side = branch();
        side.pack(Q, &PackMode::All, [t(1)]);
        // The branch's pack is invisible until merged.
        assert_eq!(with_baggage(|b| b.tuple_count(Q)), 1);
        merge(side);
        assert_eq!(with_baggage(|b| b.tuple_count(Q)), 2);
    }
}
