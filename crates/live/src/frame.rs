//! Length-prefixed framing over byte streams.
//!
//! Every bus and service message travels as `len: u32 (big-endian)`
//! followed by `len` payload bytes. Frames above [`MAX_FRAME`] are
//! rejected on both sides so a corrupt or malicious peer cannot make the
//! receiver allocate unboundedly.

use std::io::{self, IoSlice, Read, Write};

/// Upper bound on one frame's payload (16 MiB — far above any report).
pub const MAX_FRAME: usize = 16 << 20;

/// Writes a batch of length-prefixed frames with one vectored syscall
/// per `write_vectored` round, then flushes once. The relay tier's flush
/// path: a coalesced batch of re-originated reports goes out as a single
/// gather-write instead of `2 × batch` small writes.
///
/// Partial writes are handled by advancing the slice list; the on-wire
/// bytes are identical to calling [`write_frame`] per payload.
pub fn write_frames(w: &mut impl Write, payloads: &[Vec<u8>]) -> io::Result<()> {
    if payloads.is_empty() {
        return Ok(());
    }
    let mut headers = Vec::with_capacity(payloads.len());
    for p in payloads {
        if p.len() > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame of {} bytes exceeds MAX_FRAME", p.len()),
            ));
        }
        headers.push((p.len() as u32).to_be_bytes());
    }
    let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(payloads.len() * 2);
    for (h, p) in headers.iter().zip(payloads) {
        slices.push(IoSlice::new(h));
        slices.push(IoSlice::new(p));
    }
    let mut cursor: &mut [IoSlice<'_>] = &mut slices;
    while !cursor.is_empty() {
        let n = match w.write_vectored(cursor) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole frame batch",
                ))
            }
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        };
        IoSlice::advance_slices(&mut cursor, n);
    }
    w.flush()
}

/// Writes one length-prefixed frame and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// Returns `ErrorKind::UnexpectedEof` on a cleanly closed stream and
/// `ErrorKind::InvalidData` on an oversized length prefix.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_including_empty() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").expect("write empty");
        write_frame(&mut buf, b"hello").expect("write payload");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).expect("read empty"), b"");
        assert_eq!(read_frame(&mut r).expect("read payload"), b"hello");
        assert!(read_frame(&mut r).is_err(), "stream exhausted");
    }

    #[test]
    fn batched_writes_match_sequential_framing() {
        let payloads: Vec<Vec<u8>> = vec![b"".to_vec(), b"hello".to_vec(), vec![0xAB; 70_000]];
        let mut sequential = Vec::new();
        for p in &payloads {
            write_frame(&mut sequential, p).expect("write");
        }
        let mut batched = Vec::new();
        write_frames(&mut batched, &payloads).expect("vectored write");
        assert_eq!(sequential, batched);
        // A reader sees the identical frame stream.
        let mut r = &batched[..];
        for p in &payloads {
            assert_eq!(&read_frame(&mut r).expect("read"), p);
        }
        // Empty batch writes nothing.
        let mut empty = Vec::new();
        write_frames(&mut empty, &[]).expect("empty batch");
        assert!(empty.is_empty());
    }

    /// A writer that accepts a few bytes per call, forcing the vectored
    /// path through its partial-write advance loop.
    struct Trickle(Vec<u8>);

    impl Write for Trickle {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            let n = buf.len().min(3);
            self.0.extend_from_slice(&buf[..n]);
            Ok(n)
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn batched_writes_survive_partial_writes() {
        let payloads: Vec<Vec<u8>> = vec![b"abc".to_vec(), b"defghij".to_vec()];
        let mut trickle = Trickle(Vec::new());
        write_frames(&mut trickle, &payloads).expect("partial-write loop");
        let mut r = &trickle.0[..];
        assert_eq!(read_frame(&mut r).expect("first"), b"abc");
        assert_eq!(read_frame(&mut r).expect("second"), b"defghij");
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(b"xx");
        assert_eq!(
            read_frame(&mut &buf[..]).expect_err("oversized").kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn truncated_payload_is_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").expect("write");
        let cut = &buf[..buf.len() - 2];
        assert_eq!(
            read_frame(&mut &cut[..]).expect_err("truncated").kind(),
            io::ErrorKind::UnexpectedEof
        );
    }
}
