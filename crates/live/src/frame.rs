//! Length-prefixed framing over byte streams.
//!
//! Every bus and service message travels as `len: u32 (big-endian)`
//! followed by `len` payload bytes. Frames above [`MAX_FRAME`] are
//! rejected on both sides so a corrupt or malicious peer cannot make the
//! receiver allocate unboundedly.

use std::io::{self, Read, Write};

/// Upper bound on one frame's payload (16 MiB — far above any report).
pub const MAX_FRAME: usize = 16 << 20;

/// Writes one length-prefixed frame and flushes.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame of {} bytes exceeds MAX_FRAME", payload.len()),
        ));
    }
    w.write_all(&(payload.len() as u32).to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame.
///
/// Returns `ErrorKind::UnexpectedEof` on a cleanly closed stream and
/// `ErrorKind::InvalidData` on an oversized length prefix.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_including_empty() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").expect("write empty");
        write_frame(&mut buf, b"hello").expect("write payload");
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).expect("read empty"), b"");
        assert_eq!(read_frame(&mut r).expect("read payload"), b"hello");
        assert!(read_frame(&mut r).is_err(), "stream exhausted");
    }

    #[test]
    fn oversized_length_prefix_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_be_bytes());
        buf.extend_from_slice(b"xx");
        assert_eq!(
            read_frame(&mut &buf[..]).expect_err("oversized").kind(),
            io::ErrorKind::InvalidData
        );
    }

    #[test]
    fn truncated_payload_is_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").expect("write");
        let cut = &buf[..buf.len() - 2];
        assert_eq!(
            read_frame(&mut &cut[..]).expect_err("truncated").kind(),
            io::ErrorKind::UnexpectedEof
        );
    }
}
