//! The **live runtime**: Pivot Tracing on real OS threads and real sockets.
//!
//! Everything else in this workspace runs inside the single-threaded
//! deterministic simulator. This crate reproduces the paper's deployment
//! shape (Figure 2) on actual hardware, so the same machinery — registry
//! check, advice interpretation, baggage pack/serialize — is exercised and
//! measured against live traffic:
//!
//! - [`ctx`] — **thread-local baggage** with RAII scope guards. The
//!   paper's prototype stores baggage in a thread-local; the simulator
//!   threads an explicit `Ctx` instead. Here requests attach their baggage
//!   to the handling thread ([`ctx::attach`]) and tracepoints read it
//!   implicitly ([`tracepoint`]).
//! - [`thread`] — instrumented [`thread::spawn`] / [`thread::channel`]
//!   wrappers that [`split`](pivot_baggage::Baggage::split) baggage at
//!   real thread branch points and [`join`](pivot_baggage::Baggage::join)
//!   it at `JoinHandle::join` / channel-receive merge points.
//! - [`frame`] + [`proto`] — a length-prefixed TCP framing layer and a
//!   binary codec for the bus messages ([`Command`](pivot_core::Command) /
//!   [`Report`](pivot_core::Report), including full compiled queries), so
//!   weave commands and partial results cross real process boundaries.
//! - [`bus`] — the transport: [`bus::TcpBusServer`] (the frontend side of
//!   the paper's pub/sub server), [`bus::LiveAgent`] (a per-process agent
//!   with reader + reporter threads), and [`bus::LiveFrontend`] (frontend
//!   and TCP bus glued together). All implement / drive the
//!   [`pivot_core::Bus`] trait shared with `LocalBus` and the simulator.
//! - [`service`] — a multi-threaded sharded KV demo service with real
//!   tracepoints, a client pool, and baggage carried in request headers,
//!   so the paper's Q1/Q2-style queries can be installed against live
//!   load.
//!
//! The overhead benchmark in `crates/bench` builds on this crate and
//! emits `BENCH_live.json` (the wall-clock analog of the paper's
//! Table 5).

pub mod bus;
pub mod ctx;
pub mod frame;
pub mod proto;
pub mod service;
pub mod thread;

pub use bus::{ConnStatus, LiveAgent, LiveFrontend, ReconnectPolicy, TcpBusServer};
pub use ctx::{attach, with_baggage, BaggageScope};

use pivot_core::Agent;
use pivot_model::Value;

/// Wall-clock nanoseconds since the Unix epoch — the live substitute for
/// the simulator's virtual `Clock::now` (`pivot-simrt`).
pub fn now_nanos() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

/// Invokes `name` on `agent` against the **current thread's** baggage.
///
/// This is the live tracepoint call: instrumented code does not thread a
/// `Ctx` through its call chain (as the simulated systems do) — the
/// request's baggage was attached to the thread by [`ctx::attach`] and any
/// woven advice packs into / unpacks from it in place.
///
/// When no query is woven anywhere in the process this returns after a
/// single atomic load, before touching the wall clock or the thread-local
/// — the paper's requirement that inactive tracepoints cost (near)
/// nothing on the hot path (Table 5's "unwoven" row).
pub fn tracepoint(agent: &Agent, name: &str, exports: &[(&str, Value)]) {
    if agent.registry().is_idle() {
        return;
    }
    ctx::with_baggage(|bag| agent.invoke(name, bag, now_nanos(), exports));
}
