//! Binary codec for the bus protocol.
//!
//! The TCP bus carries five message kinds between live agents and the
//! frontend: a `Hello` registering the agent's process identity, the
//! frontend's weave/unweave [`Command`]s, the agents' partial-result
//! [`Report`]s, the server's [`Message::Sync`] (the full installed-query
//! set, version-tagged with the install epoch, sent on every Hello so a
//! restarted agent converges in one frame), and [`Message::Goodbye`] (the
//! orderly-shutdown marker that lets the other side distinguish a clean
//! close from a lost connection). Every payload starts with a protocol
//! **version byte**
//! ([`PROTO_VERSION`]); peers speaking a different version are rejected
//! with a decode error instead of misinterpreting bytes.
//!
//! `Install` ships the query's **lowered bytecode** ([`CompiledCode`]) —
//! flat register instructions, constant pool, pre-resolved column indices —
//! not the advice-op `Expr` trees. Agents therefore execute exactly the
//! artifact the frontend verified, and the decoder runs
//! [`AdviceByteCode::validate`] on every received program so a hostile or
//! corrupted peer can never make the VM index out of bounds. The only
//! expression trees still on the wire live in the [`OutputSpec`] (display
//! metadata and aggregate identities for the frontend's result layout).
//!
//! Everything is encoded with the same LEB128 encoder the baggage wire
//! format uses, so one decoder discipline covers the whole attack surface:
//! malformed input returns [`DecodeError`], never panics.

use std::sync::Arc;

use pivot_baggage::{PackMode, QueryId};
use pivot_core::{
    Command, ProcessInfo, QueryBudget, Report, ReportRows, RetroEvent, RetroReport, ThrottleReason,
    ThrottleStats, Throttled, TriggerKind,
};
use pivot_itc::{DecodeError, Decoder, Encoder};
use pivot_model::{
    codec, AggFunc, AggState, BinOp, EncodedBlock, Expr, GroupKey, Sym, Tuple, UnOp,
};
use pivot_query::advice::ColumnRef;
use pivot_query::bytecode::{EInst, ExprProg, Inst, PoolRange};
use pivot_query::{AdviceByteCode, CompiledCode, OutputSpec, TemporalFilter};

/// Wire-protocol version. Bumped to 2 when `Install` switched from
/// advice-op trees to lowered bytecode; to 3 when `Report` grew the
/// loss-accounting envelope (procid, incarnation, seq, tuple counters)
/// and the `Sync`/`Goodbye` messages were added for crash recovery; to 4
/// when the overload governor added `SetBudget`, budget lists on `Sync`,
/// and the shed/truncation/throttle fields of the `Report` envelope; to 5
/// when the relay tier added `HelloRelay` (a registration that marks the
/// peer as a fan-in relay rather than a leaf agent); to 6 when reports
/// gained the columnar-block row encoding
/// ([`pivot_core::ReportRows::RawEncoded`], rows tag 2); to 7 when
/// retroactive tracing added the [`Message::Retro`] frame (tag 8) and the
/// `Trigger` bytecode instruction (inst tag 5).
pub const PROTO_VERSION: u8 = 7;

/// Oldest protocol version this build still speaks. Versions 6 and 7 are
/// pure extensions of 5 (new tags; no existing construct changed shape),
/// so v5 frames decode unchanged and a sender can down-encode any
/// retro-free message to v5. The v7 constructs are deliberately *not*
/// down-encoded: a `Trigger`-carrying install stamped v6-or-lower and a
/// `Retro` frame below v7 are both rejected loudly at decode, so mixed
/// versions fail fast instead of silently losing hindsight semantics
/// (senders gate on the peer's latched version and simply hold retro
/// traffic for down-level peers).
///
/// Negotiation: every frame's leading version byte doubles as an
/// advertisement. A receiver starts each peer at `MIN_PROTO_VERSION` and
/// max-latches the versions it sees from that peer; everything it sends
/// back goes at `min(PROTO_VERSION, latched peer version)`. A v6 client's
/// `Hello` (sent at v6) upgrades a v6 server immediately, while a v5
/// client is answered — and spoken to forever — in v5, with
/// [`ReportRows::RawEncoded`] transcoded down. Down-level *servers*
/// require the usual upgrade order (servers before leaves): they reject
/// an up-level registration loudly, exactly like any other skew.
pub const MIN_PROTO_VERSION: u8 = 5;

/// Maximum expression nesting the decoder accepts. Honest queries stay in
/// single digits; the cap keeps a hostile peer from overflowing the stack.
const MAX_EXPR_DEPTH: usize = 128;

/// One bus message.
#[derive(Clone, Debug)]
pub enum Message {
    /// Agent → frontend: registration with the agent's process identity.
    Hello(ProcessInfo),
    /// Frontend → agent: weave or unweave a query.
    Command(Command),
    /// Agent → frontend: partial results for one interval.
    Report(Report),
    /// Frontend → agent: the complete installed-query set at install epoch
    /// `epoch`. Sent in response to every `Hello`, so an agent that missed
    /// any number of install/uninstall commands (crash, restart, partition)
    /// reconciles its weave registry in a single frame.
    Sync {
        /// The frontend's install epoch when this snapshot was taken.
        epoch: u64,
        /// Every currently installed query's lowered bytecode.
        queries: Vec<Arc<CompiledCode>>,
        /// The overload budgets currently in force, so a re-syncing agent
        /// recovers its governor configuration along with its weave set.
        budgets: Vec<(QueryId, QueryBudget)>,
    },
    /// Orderly shutdown: the sender is closing this connection on purpose.
    /// A socket that closes *without* a preceding `Goodbye` is a lost
    /// connection and must be surfaced as a fault, not a clean exit.
    Goodbye,
    /// Relay → upstream: registration of a fan-in relay (`crates/relay`).
    /// Handled like [`Message::Hello`] — the upstream answers with a
    /// `Sync` — but the peer is counted as a relay, not a leaf agent, so
    /// topology-aware servers can report tier shape.
    HelloRelay(ProcessInfo),
    /// Agent → frontend (possibly through relays, which forward it
    /// opaquely): a retroactive hindsight flush (v7+ only; see
    /// [`pivot_core::RetroReport`]).
    Retro(RetroReport),
}

/// Encodes one message to bytes (the payload of one frame) at the current
/// protocol version.
pub fn encode_message(msg: &Message) -> Vec<u8> {
    encode_message_v(msg, PROTO_VERSION)
}

/// Encodes one message at `version` (clamped to the supported range).
///
/// Senders pass the peer's negotiated version so an up-level process can
/// keep talking to a down-level one: the only versioned construct,
/// [`ReportRows::RawEncoded`], is transcoded to plain raw rows when the
/// frame must be v5.
pub fn encode_message_v(msg: &Message, version: u8) -> Vec<u8> {
    let version = version.clamp(MIN_PROTO_VERSION, PROTO_VERSION);
    let mut enc = Encoder::with_capacity(128);
    enc.put_u8(version);
    match msg {
        Message::Hello(info) => {
            enc.put_u8(0);
            enc.put_str(&info.host);
            enc.put_varint(info.procid);
            enc.put_str(&info.procname);
        }
        Message::Command(Command::Install(code)) => {
            enc.put_u8(1);
            encode_code(code, &mut enc, version);
        }
        Message::Command(Command::Uninstall(id)) => {
            enc.put_u8(2);
            enc.put_varint(id.0);
        }
        Message::Report(report) => {
            enc.put_u8(3);
            encode_report(report, &mut enc, version);
        }
        Message::Sync {
            epoch,
            queries,
            budgets,
        } => {
            enc.put_u8(4);
            enc.put_varint(*epoch);
            enc.put_varint(queries.len() as u64);
            for code in queries {
                encode_code(code, &mut enc, version);
            }
            enc.put_varint(budgets.len() as u64);
            for (id, budget) in budgets {
                enc.put_varint(id.0);
                encode_budget(budget, &mut enc);
            }
        }
        Message::Goodbye => enc.put_u8(5),
        Message::Command(Command::SetBudget(id, budget)) => {
            enc.put_u8(6);
            enc.put_varint(id.0);
            encode_budget(budget, &mut enc);
        }
        Message::HelloRelay(info) => {
            enc.put_u8(7);
            enc.put_str(&info.host);
            enc.put_varint(info.procid);
            enc.put_str(&info.procname);
        }
        Message::Retro(report) => {
            // v7-only: the frame still carries the (clamped) version byte
            // it was asked for, and a receiver below v7 rejects tag 8 —
            // callers gate on the peer's latched version so this only
            // happens under skew, where loud rejection is the contract.
            enc.put_u8(8);
            encode_retro(report, &mut enc);
        }
    }
    enc.finish()
}

/// Decodes one message; trailing garbage, version mismatches, and bytecode
/// that fails validation are all rejected.
pub fn decode_message(bytes: &[u8]) -> Result<Message, DecodeError> {
    decode_message_versioned(bytes).map(|(_, msg)| msg)
}

/// Like [`decode_message`], but also returns the frame's version byte so
/// the receiver can max-latch its record of the peer's protocol level.
pub fn decode_message_versioned(bytes: &[u8]) -> Result<(u8, Message), DecodeError> {
    let mut dec = Decoder::new(bytes);
    let version = dec.take_u8()?;
    if !(MIN_PROTO_VERSION..=PROTO_VERSION).contains(&version) {
        return Err(DecodeError::BadTag("protocol version", version));
    }
    let msg = match dec.take_u8()? {
        0 => Message::Hello(ProcessInfo {
            host: dec.take_str()?.to_owned(),
            procid: dec.take_varint()?,
            procname: dec.take_str()?.to_owned(),
        }),
        1 => Message::Command(Command::Install(Arc::new(decode_code(&mut dec, version)?))),
        2 => Message::Command(Command::Uninstall(QueryId(dec.take_varint()?))),
        3 => Message::Report(decode_report(&mut dec, version)?),
        4 => {
            let epoch = dec.take_varint()?;
            let n = dec.take_varint()? as usize;
            let mut queries = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                // Each embedded program passes the same validation as a
                // standalone Install: a hostile Sync is no more powerful.
                queries.push(Arc::new(decode_code(&mut dec, version)?));
            }
            let n = dec.take_varint()? as usize;
            let mut budgets = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                let id = QueryId(dec.take_varint()?);
                budgets.push((id, decode_budget(&mut dec)?));
            }
            Message::Sync {
                epoch,
                queries,
                budgets,
            }
        }
        5 => Message::Goodbye,
        6 => {
            let id = QueryId(dec.take_varint()?);
            Message::Command(Command::SetBudget(id, decode_budget(&mut dec)?))
        }
        7 => Message::HelloRelay(ProcessInfo {
            host: dec.take_str()?.to_owned(),
            procid: dec.take_varint()?,
            procname: dec.take_str()?.to_owned(),
        }),
        8 if version >= 7 => Message::Retro(decode_retro(&mut dec)?),
        t => return Err(DecodeError::BadTag("message", t)),
    };
    if !dec.is_empty() {
        return Err(DecodeError::BadTag("message trailing bytes", 0));
    }
    Ok((version, msg))
}

// ---------------------------------------------------------------------------
// Compiled bytecode
// ---------------------------------------------------------------------------

fn encode_code(code: &CompiledCode, enc: &mut Encoder, version: u8) {
    enc.put_varint(code.id.0);
    enc.put_str(&code.name);
    encode_output_spec(&code.output, enc);
    enc.put_varint(code.programs.len() as u64);
    for program in &code.programs {
        encode_bytecode(program, enc, version);
    }
}

fn decode_code(dec: &mut Decoder<'_>, version: u8) -> Result<CompiledCode, DecodeError> {
    let id = QueryId(dec.take_varint()?);
    let name = dec.take_str()?.to_owned();
    let output = Arc::new(decode_output_spec(dec)?);
    output.warm();
    let n = dec.take_varint()? as usize;
    let mut programs = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let code = decode_bytecode(dec, &output, version)?;
        // Reject anything the VM could not execute safely. Validation at
        // the trust boundary is what lets the VM index registers, pools,
        // and skips unchecked on the hot path.
        if code.validate().is_err() {
            return Err(DecodeError::BadTag("bytecode validation", 0));
        }
        programs.push(Arc::new(code));
    }
    Ok(CompiledCode {
        id,
        name,
        programs,
        output,
    })
}

/// The wire format assumes the canonical [`CompiledCode::lower`] shape in
/// which every `Emit`'s spec *is* the query's output spec, so the spec is
/// encoded once at the top level and rehydrated (Arc-shared) on decode.
fn encode_bytecode(code: &AdviceByteCode, enc: &mut Encoder, version: u8) {
    encode_strs(&code.tracepoints, enc);
    enc.put_varint(u64::from(code.num_regs));
    enc.put_varint(code.consts.len() as u64);
    for v in &code.consts {
        codec::encode_value(v, enc);
    }
    enc.put_varint(code.names.len() as u64);
    for s in &code.names {
        enc.put_str(s.as_str());
    }
    enc.put_varint(code.einsts.len() as u64);
    for e in &code.einsts {
        encode_einst(e, enc);
    }
    enc.put_varint(code.exprs.len() as u64);
    for p in &code.exprs {
        enc.put_varint(u64::from(p.start));
        enc.put_varint(u64::from(p.len));
        enc.put_varint(u64::from(p.result));
    }
    enc.put_varint(code.insts.len() as u64);
    for inst in &code.insts {
        encode_inst(inst, enc, version);
    }
}

fn decode_bytecode(
    dec: &mut Decoder<'_>,
    output: &Arc<OutputSpec>,
    version: u8,
) -> Result<AdviceByteCode, DecodeError> {
    let tracepoints = decode_strs(dec)?;
    let num_regs = take_u16(dec)?;
    let n = dec.take_varint()? as usize;
    let mut consts = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        consts.push(codec::decode_value(dec)?);
    }
    let n = dec.take_varint()? as usize;
    let mut names: Vec<Sym> = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        names.push(Sym::from(dec.take_str()?));
    }
    let n = dec.take_varint()? as usize;
    let mut einsts = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        einsts.push(decode_einst(dec)?);
    }
    let n = dec.take_varint()? as usize;
    let mut exprs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        exprs.push(ExprProg {
            start: take_u32(dec)?,
            len: take_u32(dec)?,
            result: take_u16(dec)?,
        });
    }
    let n = dec.take_varint()? as usize;
    let mut insts = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        insts.push(decode_inst(dec, output, version)?);
    }
    Ok(AdviceByteCode {
        tracepoints,
        insts,
        einsts,
        exprs,
        consts,
        names,
        num_regs,
    })
}

fn encode_einst(e: &EInst, enc: &mut Encoder) {
    match e {
        EInst::Load { dst, col } => {
            enc.put_u8(0);
            enc.put_varint(u64::from(*dst));
            enc.put_varint(u64::from(*col));
        }
        EInst::Const { dst, idx } => {
            enc.put_u8(1);
            enc.put_varint(u64::from(*dst));
            enc.put_varint(u64::from(*idx));
        }
        EInst::Unary { dst, op, src } => {
            enc.put_u8(2);
            enc.put_varint(u64::from(*dst));
            enc.put_u8(un_op_tag(*op));
            enc.put_varint(u64::from(*src));
        }
        EInst::Binary { dst, op, lhs, rhs } => {
            enc.put_u8(3);
            enc.put_varint(u64::from(*dst));
            enc.put_u8(bin_op_tag(*op));
            enc.put_varint(u64::from(*lhs));
            enc.put_varint(u64::from(*rhs));
        }
        EInst::CoerceBool { dst, src } => {
            enc.put_u8(4);
            enc.put_varint(u64::from(*dst));
            enc.put_varint(u64::from(*src));
        }
        EInst::SkipIfBool { src, when, skip } => {
            enc.put_u8(5);
            enc.put_varint(u64::from(*src));
            enc.put_u8(u8::from(*when));
            enc.put_varint(u64::from(*skip));
        }
        EInst::Fail => enc.put_u8(6),
    }
}

fn decode_einst(dec: &mut Decoder<'_>) -> Result<EInst, DecodeError> {
    Ok(match dec.take_u8()? {
        0 => EInst::Load {
            dst: take_u16(dec)?,
            col: take_u16(dec)?,
        },
        1 => EInst::Const {
            dst: take_u16(dec)?,
            idx: take_u16(dec)?,
        },
        2 => EInst::Unary {
            dst: take_u16(dec)?,
            op: decode_un_op(dec.take_u8()?)?,
            src: take_u16(dec)?,
        },
        3 => EInst::Binary {
            dst: take_u16(dec)?,
            op: decode_bin_op(dec.take_u8()?)?,
            lhs: take_u16(dec)?,
            rhs: take_u16(dec)?,
        },
        4 => EInst::CoerceBool {
            dst: take_u16(dec)?,
            src: take_u16(dec)?,
        },
        5 => EInst::SkipIfBool {
            src: take_u16(dec)?,
            when: match dec.take_u8()? {
                0 => false,
                1 => true,
                t => return Err(DecodeError::BadTag("skip flag", t)),
            },
            skip: take_u16(dec)?,
        },
        6 => EInst::Fail,
        t => return Err(DecodeError::BadTag("expr inst", t)),
    })
}

fn encode_inst(inst: &Inst, enc: &mut Encoder, _version: u8) {
    match inst {
        Inst::Observe { names } => {
            enc.put_u8(0);
            encode_range(*names, enc);
        }
        Inst::Unpack {
            slot,
            width,
            temporal,
        } => {
            enc.put_u8(1);
            enc.put_varint(slot.0);
            enc.put_varint(u64::from(*width));
            encode_opt_filter(temporal, enc);
        }
        Inst::Filter { pred } => {
            enc.put_u8(2);
            enc.put_varint(u64::from(*pred));
        }
        Inst::Pack {
            slot,
            mode,
            pre,
            exprs,
        } => {
            enc.put_u8(3);
            enc.put_varint(slot.0);
            encode_pack_mode(mode, enc);
            encode_range(*pre, enc);
            encode_range(*exprs, enc);
        }
        Inst::Emit {
            query,
            spec: _, // canonical form: always the top-level output spec
            pre,
            keys,
            aggs,
        } => {
            enc.put_u8(4);
            enc.put_varint(query.0);
            encode_range(*pre, enc);
            encode_range(*keys, enc);
            encode_range(*aggs, enc);
        }
        Inst::Trigger { query, pred } => {
            // A v7 construct. It is encoded regardless of the frame's
            // stamped version — the *decoder* rejects it below v7 — so a
            // Trigger-carrying install can never silently lose its
            // trigger semantics on a down-level link; it fails loudly
            // instead and the operator upgrades the stragglers.
            enc.put_u8(5);
            enc.put_varint(query.0);
            match pred {
                None => enc.put_u8(0),
                Some(p) => {
                    enc.put_u8(1);
                    enc.put_varint(u64::from(*p));
                }
            }
        }
    }
}

fn decode_inst(
    dec: &mut Decoder<'_>,
    output: &Arc<OutputSpec>,
    version: u8,
) -> Result<Inst, DecodeError> {
    Ok(match dec.take_u8()? {
        0 => Inst::Observe {
            names: decode_range(dec)?,
        },
        1 => Inst::Unpack {
            slot: QueryId(dec.take_varint()?),
            width: take_u16(dec)?,
            temporal: decode_opt_filter(dec)?,
        },
        2 => Inst::Filter {
            pred: take_u32(dec)?,
        },
        3 => Inst::Pack {
            slot: QueryId(dec.take_varint()?),
            mode: decode_pack_mode(dec)?,
            pre: decode_range(dec)?,
            exprs: decode_range(dec)?,
        },
        4 => Inst::Emit {
            query: QueryId(dec.take_varint()?),
            spec: Arc::clone(output),
            pre: decode_range(dec)?,
            keys: decode_range(dec)?,
            aggs: decode_range(dec)?,
        },
        5 if version >= 7 => Inst::Trigger {
            query: QueryId(dec.take_varint()?),
            pred: match dec.take_u8()? {
                0 => None,
                1 => Some(take_u32(dec)?),
                t => return Err(DecodeError::BadTag("trigger pred flag", t)),
            },
        },
        t => return Err(DecodeError::BadTag("bytecode inst", t)),
    })
}

// ---------------------------------------------------------------------------
// Retro reports (v7+)
// ---------------------------------------------------------------------------

fn trigger_kind_tag(k: TriggerKind) -> u8 {
    match k {
        TriggerKind::Advice => 0,
        TriggerKind::Breaker => 1,
        TriggerKind::LatencyOutlier => 2,
        TriggerKind::Fault => 3,
    }
}

fn decode_trigger_kind(t: u8) -> Result<TriggerKind, DecodeError> {
    Ok(match t {
        0 => TriggerKind::Advice,
        1 => TriggerKind::Breaker,
        2 => TriggerKind::LatencyOutlier,
        3 => TriggerKind::Fault,
        t => return Err(DecodeError::BadTag("trigger kind", t)),
    })
}

fn encode_retro(r: &RetroReport, enc: &mut Encoder) {
    enc.put_str(&r.host);
    enc.put_varint(r.procid);
    enc.put_str(&r.procname);
    enc.put_varint(r.incarnation);
    enc.put_varint(r.time);
    enc.put_varint(r.seq);
    enc.put_varint(r.query.0);
    enc.put_u8(trigger_kind_tag(r.kind));
    enc.put_varint(r.request);
    enc.put_varint(r.recorded_cum);
    enc.put_varint(r.sampled_out_cum);
    enc.put_varint(r.shed_cum);
    enc.put_varint(r.events.len() as u64);
    for ev in &r.events {
        codec::encode_value(&ev.tracepoint, enc);
        enc.put_varint(ev.time);
        enc.put_varint(ev.request);
        enc.put_varint(ev.names.len() as u64);
        for n in ev.names.iter() {
            enc.put_str(n.as_str());
        }
        // Invariant upheld at recording: names and values are
        // position-matched, so one length serves both.
        debug_assert_eq!(ev.names.len(), ev.values.len());
        for v in &ev.values {
            codec::encode_value(v, enc);
        }
    }
}

fn decode_retro(dec: &mut Decoder<'_>) -> Result<RetroReport, DecodeError> {
    let host = dec.take_str()?.to_owned();
    let procid = dec.take_varint()?;
    let procname = dec.take_str()?.to_owned();
    let incarnation = dec.take_varint()?;
    let time = dec.take_varint()?;
    let seq = dec.take_varint()?;
    let query = QueryId(dec.take_varint()?);
    let kind = decode_trigger_kind(dec.take_u8()?)?;
    let request = dec.take_varint()?;
    let recorded_cum = dec.take_varint()?;
    let sampled_out_cum = dec.take_varint()?;
    let shed_cum = dec.take_varint()?;
    let n = dec.take_varint()? as usize;
    let mut events = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        let tracepoint = codec::decode_value(dec)?;
        let time = dec.take_varint()?;
        let request = dec.take_varint()?;
        let w = dec.take_varint()? as usize;
        let mut names = Vec::with_capacity(w.min(64));
        for _ in 0..w {
            names.push(Sym::from(dec.take_str()?));
        }
        let mut values = Vec::with_capacity(w.min(64));
        for _ in 0..w {
            values.push(codec::decode_value(dec)?);
        }
        events.push(RetroEvent {
            tracepoint,
            time,
            request,
            names: Arc::new(names),
            values,
        });
    }
    Ok(RetroReport {
        host,
        procid,
        procname,
        incarnation,
        time,
        seq,
        query,
        kind,
        request,
        events,
        recorded_cum,
        sampled_out_cum,
        shed_cum,
    })
}

fn encode_range(r: PoolRange, enc: &mut Encoder) {
    enc.put_varint(u64::from(r.0));
    enc.put_varint(u64::from(r.1));
}

fn decode_range(dec: &mut Decoder<'_>) -> Result<PoolRange, DecodeError> {
    Ok((take_u32(dec)?, take_u32(dec)?))
}

fn take_u16(dec: &mut Decoder<'_>) -> Result<u16, DecodeError> {
    u16::try_from(dec.take_varint()?).map_err(|_| DecodeError::BadTag("u16 overflow", 0))
}

fn take_u32(dec: &mut Decoder<'_>) -> Result<u32, DecodeError> {
    u32::try_from(dec.take_varint()?).map_err(|_| DecodeError::BadTag("u32 overflow", 0))
}

// ---------------------------------------------------------------------------
// Output spec (frontend-side result metadata)
// ---------------------------------------------------------------------------

fn encode_output_spec(spec: &OutputSpec, enc: &mut Encoder) {
    enc.put_varint(spec.key_exprs.len() as u64);
    for e in &spec.key_exprs {
        encode_expr(e, enc);
    }
    encode_strs(&spec.key_names, enc);
    enc.put_varint(spec.aggs.len() as u64);
    for (f, e) in &spec.aggs {
        enc.put_u8(agg_func_tag(*f));
        encode_expr(e, enc);
    }
    encode_strs(&spec.agg_names, enc);
    enc.put_varint(spec.columns.len() as u64);
    for c in &spec.columns {
        match c {
            ColumnRef::Key(i) => {
                enc.put_u8(0);
                enc.put_varint(*i as u64);
            }
            ColumnRef::Agg(i) => {
                enc.put_u8(1);
                enc.put_varint(*i as u64);
            }
        }
    }
    enc.put_u8(u8::from(spec.streaming));
}

fn decode_output_spec(dec: &mut Decoder<'_>) -> Result<OutputSpec, DecodeError> {
    let n = dec.take_varint()? as usize;
    let mut key_exprs = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        key_exprs.push(decode_expr(dec, 0)?);
    }
    let key_names = decode_strs(dec)?;
    let n = dec.take_varint()? as usize;
    let mut aggs = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let f = decode_agg_func(dec.take_u8()?)?;
        aggs.push((f, decode_expr(dec, 0)?));
    }
    let agg_names = decode_strs(dec)?;
    let n = dec.take_varint()? as usize;
    let mut columns = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let tag = dec.take_u8()?;
        let idx = dec.take_varint()? as usize;
        columns.push(match tag {
            0 => ColumnRef::Key(idx),
            1 => ColumnRef::Agg(idx),
            t => return Err(DecodeError::BadTag("column ref", t)),
        });
    }
    let streaming = match dec.take_u8()? {
        0 => false,
        1 => true,
        t => return Err(DecodeError::BadTag("streaming flag", t)),
    };
    // Column refs index into the key/agg name lists (e.g. when building
    // display names); reject dangling refs at the trust boundary so the
    // spec can be used without bounds anxiety.
    for c in &columns {
        let ok = match c {
            ColumnRef::Key(i) => *i < key_names.len() && *i < key_exprs.len(),
            ColumnRef::Agg(i) => *i < agg_names.len() && *i < aggs.len(),
        };
        if !ok {
            return Err(DecodeError::BadTag("column ref range", 0));
        }
    }
    Ok(OutputSpec {
        key_exprs,
        key_names,
        aggs,
        agg_names,
        columns,
        streaming,
        ..OutputSpec::default()
    })
}

fn encode_expr(e: &Expr, enc: &mut Encoder) {
    match e {
        Expr::Field(name) => {
            enc.put_u8(0);
            enc.put_str(name);
        }
        Expr::Lit(v) => {
            enc.put_u8(1);
            codec::encode_value(v, enc);
        }
        Expr::Unary(op, inner) => {
            enc.put_u8(2);
            enc.put_u8(un_op_tag(*op));
            encode_expr(inner, enc);
        }
        Expr::Binary(op, l, r) => {
            enc.put_u8(3);
            enc.put_u8(bin_op_tag(*op));
            encode_expr(l, enc);
            encode_expr(r, enc);
        }
    }
}

fn decode_expr(dec: &mut Decoder<'_>, depth: usize) -> Result<Expr, DecodeError> {
    if depth > MAX_EXPR_DEPTH {
        return Err(DecodeError::BadTag("expr depth", 0));
    }
    Ok(match dec.take_u8()? {
        0 => Expr::Field(dec.take_str()?.to_owned()),
        1 => Expr::Lit(codec::decode_value(dec)?),
        2 => {
            let op = decode_un_op(dec.take_u8()?)?;
            Expr::Unary(op, Box::new(decode_expr(dec, depth + 1)?))
        }
        3 => {
            let op = decode_bin_op(dec.take_u8()?)?;
            let l = decode_expr(dec, depth + 1)?;
            let r = decode_expr(dec, depth + 1)?;
            Expr::Binary(op, Box::new(l), Box::new(r))
        }
        t => return Err(DecodeError::BadTag("expr", t)),
    })
}

fn encode_pack_mode(mode: &PackMode, enc: &mut Encoder) {
    match mode {
        PackMode::All => enc.put_u8(0),
        PackMode::First(n) => {
            enc.put_u8(1);
            enc.put_varint(*n as u64);
        }
        PackMode::Recent(n) => {
            enc.put_u8(2);
            enc.put_varint(*n as u64);
        }
        PackMode::GroupAgg { key_len, aggs } => {
            enc.put_u8(3);
            enc.put_varint(*key_len as u64);
            enc.put_varint(aggs.len() as u64);
            for f in aggs {
                enc.put_u8(agg_func_tag(*f));
            }
        }
    }
}

fn decode_pack_mode(dec: &mut Decoder<'_>) -> Result<PackMode, DecodeError> {
    Ok(match dec.take_u8()? {
        0 => PackMode::All,
        1 => PackMode::First(dec.take_varint()? as usize),
        2 => PackMode::Recent(dec.take_varint()? as usize),
        3 => {
            let key_len = dec.take_varint()? as usize;
            let n = dec.take_varint()? as usize;
            let mut aggs = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                aggs.push(decode_agg_func(dec.take_u8()?)?);
            }
            PackMode::GroupAgg { key_len, aggs }
        }
        t => return Err(DecodeError::BadTag("pack mode", t)),
    })
}

fn encode_opt_filter(f: &Option<TemporalFilter>, enc: &mut Encoder) {
    match f {
        None => enc.put_u8(0),
        Some(TemporalFilter::First(n)) => {
            enc.put_u8(1);
            enc.put_varint(*n as u64);
        }
        Some(TemporalFilter::MostRecent(n)) => {
            enc.put_u8(2);
            enc.put_varint(*n as u64);
        }
    }
}

fn decode_opt_filter(dec: &mut Decoder<'_>) -> Result<Option<TemporalFilter>, DecodeError> {
    Ok(match dec.take_u8()? {
        0 => None,
        1 => Some(TemporalFilter::First(dec.take_varint()? as usize)),
        2 => Some(TemporalFilter::MostRecent(dec.take_varint()? as usize)),
        t => return Err(DecodeError::BadTag("temporal filter", t)),
    })
}

fn encode_budget(b: &QueryBudget, enc: &mut Encoder) {
    enc.put_varint(b.tuples_per_window);
    enc.put_varint(b.ops_per_window);
    enc.put_varint(b.bytes_per_window);
    enc.put_varint(b.window_ns);
    enc.put_varint(u64::from(b.backoff_base_windows));
    enc.put_varint(u64::from(b.max_backoff_doublings));
}

fn decode_budget(dec: &mut Decoder<'_>) -> Result<QueryBudget, DecodeError> {
    Ok(QueryBudget {
        tuples_per_window: dec.take_varint()?,
        ops_per_window: dec.take_varint()?,
        bytes_per_window: dec.take_varint()?,
        window_ns: dec.take_varint()?,
        backoff_base_windows: take_u32(dec)?,
        max_backoff_doublings: take_u32(dec)?,
    })
}

fn encode_report(r: &Report, enc: &mut Encoder, version: u8) {
    enc.put_varint(r.query.0);
    enc.put_str(&r.host);
    enc.put_varint(r.procid);
    enc.put_str(&r.procname);
    enc.put_varint(r.incarnation);
    enc.put_varint(r.time);
    enc.put_varint(r.seq);
    enc.put_varint(r.tuples);
    enc.put_varint(r.emitted_cum);
    enc.put_varint(r.shed_cum);
    enc.put_varint(r.truncated_cum);
    match &r.throttled {
        None => enc.put_u8(0),
        Some(t) => {
            enc.put_u8(1);
            enc.put_varint(t.query.0);
            enc.put_u8(t.reason.tag());
            enc.put_varint(t.stats.tuples);
            enc.put_varint(t.stats.ops);
            enc.put_varint(t.stats.bytes);
            enc.put_varint(u64::from(t.stats.trips));
        }
    }
    match &r.rows {
        ReportRows::Raw(rows) => {
            enc.put_u8(0);
            enc.put_varint(rows.len() as u64);
            for t in rows {
                codec::encode_tuple(t, enc);
            }
        }
        ReportRows::Grouped(groups) => {
            enc.put_u8(1);
            enc.put_varint(groups.len() as u64);
            for (key, states) in groups {
                codec::encode_tuple(&key.0, enc);
                enc.put_varint(states.len() as u64);
                for s in states {
                    s.encode(enc);
                }
            }
        }
        ReportRows::RawEncoded(blocks) if version >= 6 => {
            // The blocks' compressed bytes go on the wire as-is — this is
            // the zero-copy path relays exercise on every re-origination.
            enc.put_u8(2);
            enc.put_varint(blocks.len() as u64);
            for b in blocks {
                b.write_wire(enc);
            }
        }
        ReportRows::RawEncoded(blocks) => {
            // Down-level peer: transcode to the v5 plain-rows form. A
            // block that fails to decode came from a corrupt upstream and
            // contributes no rows (its tuples stay accounted by the
            // envelope, exactly as on the frontend's decode path).
            let mut rows: Vec<Tuple> = Vec::new();
            for b in blocks {
                let before = rows.len();
                if b.decode_into(&mut rows).is_err() {
                    rows.truncate(before);
                }
            }
            enc.put_u8(0);
            enc.put_varint(rows.len() as u64);
            for t in &rows {
                codec::encode_tuple(t, enc);
            }
        }
    }
}

fn decode_report(dec: &mut Decoder<'_>, version: u8) -> Result<Report, DecodeError> {
    let query = QueryId(dec.take_varint()?);
    let host = dec.take_str()?.to_owned();
    let procid = dec.take_varint()?;
    let procname = dec.take_str()?.to_owned();
    let incarnation = dec.take_varint()?;
    let time = dec.take_varint()?;
    let seq = dec.take_varint()?;
    let tuples = dec.take_varint()?;
    let emitted_cum = dec.take_varint()?;
    let shed_cum = dec.take_varint()?;
    let truncated_cum = dec.take_varint()?;
    let throttled = match dec.take_u8()? {
        0 => None,
        1 => {
            let t_query = QueryId(dec.take_varint()?);
            let tag = dec.take_u8()?;
            let reason =
                ThrottleReason::from_tag(tag).ok_or(DecodeError::BadTag("throttle reason", tag))?;
            Some(Throttled {
                query: t_query,
                reason,
                stats: ThrottleStats {
                    tuples: dec.take_varint()?,
                    ops: dec.take_varint()?,
                    bytes: dec.take_varint()?,
                    trips: take_u32(dec)?,
                },
            })
        }
        t => return Err(DecodeError::BadTag("throttle flag", t)),
    };
    let rows = match dec.take_u8()? {
        0 => {
            let n = dec.take_varint()? as usize;
            let mut rows: Vec<Tuple> = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                rows.push(codec::decode_tuple(dec)?);
            }
            ReportRows::Raw(rows)
        }
        1 => {
            let n = dec.take_varint()? as usize;
            let mut groups: Vec<(GroupKey, Vec<AggState>)> = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let key = GroupKey(codec::decode_tuple(dec)?);
                let m = dec.take_varint()? as usize;
                let mut states = Vec::with_capacity(m.min(64));
                for _ in 0..m {
                    states.push(AggState::decode(dec)?);
                }
                groups.push((key, states));
            }
            ReportRows::Grouped(groups)
        }
        // Columnar blocks are a v6 construct; a v5 frame carrying tag 2
        // is malformed, not merely old.
        2 if version >= 6 => {
            let n = dec.take_varint()? as usize;
            let mut blocks = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                // `read_wire` validates the row-count header (which the
                // receiver trusts for loss accounting) but keeps the
                // payload opaque — relays forward it without a per-value
                // parse; the frontend validates when it decodes.
                blocks.push(EncodedBlock::read_wire(dec)?);
            }
            ReportRows::RawEncoded(blocks)
        }
        t => return Err(DecodeError::BadTag("report rows", t)),
    };
    Ok(Report {
        query,
        host,
        procid,
        procname,
        incarnation,
        time,
        seq,
        tuples,
        emitted_cum,
        shed_cum,
        truncated_cum,
        throttled,
        rows,
    })
}

fn encode_strs(strs: &[String], enc: &mut Encoder) {
    enc.put_varint(strs.len() as u64);
    for s in strs {
        enc.put_str(s);
    }
}

fn decode_strs(dec: &mut Decoder<'_>) -> Result<Vec<String>, DecodeError> {
    let n = dec.take_varint()? as usize;
    let mut out = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        out.push(dec.take_str()?.to_owned());
    }
    Ok(out)
}

fn agg_func_tag(f: AggFunc) -> u8 {
    match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Average => 4,
    }
}

fn decode_agg_func(tag: u8) -> Result<AggFunc, DecodeError> {
    Ok(match tag {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Min,
        3 => AggFunc::Max,
        4 => AggFunc::Average,
        t => return Err(DecodeError::BadTag("agg func", t)),
    })
}

fn bin_op_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
    }
}

fn decode_bin_op(tag: u8) -> Result<BinOp, DecodeError> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        t => return Err(DecodeError::BadTag("bin op", t)),
    })
}

fn un_op_tag(op: UnOp) -> u8 {
    match op {
        UnOp::Neg => 0,
        UnOp::Not => 1,
    }
}

fn decode_un_op(tag: u8) -> Result<UnOp, DecodeError> {
    Ok(match tag {
        0 => UnOp::Neg,
        1 => UnOp::Not,
        t => return Err(DecodeError::BadTag("un op", t)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_core::Frontend;
    use pivot_model::Value;

    fn q2_code() -> Arc<CompiledCode> {
        let mut fe = Frontend::new();
        fe.define("ClientProtocols", ["procName"]);
        fe.define("DataNodeMetrics.incrBytesRead", ["delta"]);
        let handle = fe
            .install(
                "From incr In DataNodeMetrics.incrBytesRead
                 Join cl In First(ClientProtocols) On cl -> incr
                 Where incr.delta > 0 && incr.delta != 13
                 GroupBy cl.procName
                 Select cl.procName, SUM(incr.delta), COUNT, AVERAGE(incr.delta)",
            )
            .expect("q2 installs");
        fe.code(&handle).expect("bytecode available")
    }

    #[test]
    fn install_command_round_trips_real_bytecode() {
        let code = q2_code();
        let bytes = encode_message(&Message::Command(Command::Install(Arc::clone(&code))));
        let back = decode_message(&bytes).expect("decodes");
        let Message::Command(Command::Install(decoded)) = back else {
            panic!("wrong message kind");
        };
        assert_eq!(*decoded, *code);
        // Decoded programs share the top-level output spec by pointer, as
        // the canonical lowered form does.
        for p in &decoded.programs {
            for inst in &p.insts {
                if let Inst::Emit { spec, .. } = inst {
                    assert!(Arc::ptr_eq(spec, &decoded.output));
                }
            }
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let code = q2_code();
        let mut bytes = encode_message(&Message::Command(Command::Install(code)));
        assert_eq!(bytes[0], PROTO_VERSION);
        bytes[0] = PROTO_VERSION + 1;
        assert!(matches!(
            decode_message(&bytes),
            Err(DecodeError::BadTag("protocol version", _))
        ));
    }

    #[test]
    fn invalid_bytecode_is_rejected_at_decode() {
        // A frame that parses but whose program references register 9 with
        // a 1-register file: validation at the trust boundary must reject
        // it before it can reach a VM.
        let bad = AdviceByteCode {
            tracepoints: vec!["tp".into()],
            insts: vec![Inst::Filter { pred: 0 }],
            einsts: vec![EInst::Load { dst: 9, col: 0 }],
            exprs: vec![ExprProg {
                start: 0,
                len: 1,
                result: 9,
            }],
            consts: vec![],
            names: vec![],
            num_regs: 1,
        };
        assert!(bad.validate().is_err());
        let code = CompiledCode {
            id: QueryId(9),
            name: "bad".into(),
            programs: vec![Arc::new(bad)],
            output: Arc::new(OutputSpec::default()),
        };
        let bytes = encode_message(&Message::Command(Command::Install(Arc::new(code))));
        assert!(matches!(
            decode_message(&bytes),
            Err(DecodeError::BadTag("bytecode validation", 0))
        ));
    }

    #[test]
    fn uninstall_and_hello_round_trip() {
        for msg in [
            Message::Command(Command::Uninstall(QueryId(77))),
            Message::Hello(ProcessInfo {
                host: "host-B".into(),
                procid: 12,
                procname: "kvnode".into(),
            }),
            Message::HelloRelay(ProcessInfo {
                host: "rack-7".into(),
                procid: 1,
                procname: "pivot-relay".into(),
            }),
        ] {
            let bytes = encode_message(&msg);
            let back = decode_message(&bytes).expect("decodes");
            match (&msg, &back) {
                (
                    Message::Command(Command::Uninstall(a)),
                    Message::Command(Command::Uninstall(b)),
                ) => assert_eq!(a, b),
                (Message::Hello(a), Message::Hello(b)) => assert_eq!(a, b),
                (Message::HelloRelay(a), Message::HelloRelay(b)) => assert_eq!(a, b),
                other => panic!("mismatched kinds: {other:?}"),
            }
        }
    }

    #[test]
    fn hello_and_hello_relay_are_distinct_frames() {
        // A relay registration must never be mistaken for a leaf agent's:
        // the tiers are counted separately and version skew between them
        // is caught by the version byte, not the registration kind.
        let info = ProcessInfo {
            host: "rack-7".into(),
            procid: 1,
            procname: "pivot-relay".into(),
        };
        let agent = encode_message(&Message::Hello(info.clone()));
        let relay = encode_message(&Message::HelloRelay(info));
        assert_ne!(agent, relay);
        assert!(matches!(
            decode_message(&relay).expect("decodes"),
            Message::HelloRelay(_)
        ));
    }

    #[test]
    fn reports_round_trip_raw_and_grouped() {
        let raw = Report {
            query: QueryId(5),
            host: "host-A".into(),
            procid: 31,
            procname: "kvnode".into(),
            incarnation: 4,
            time: 123_456_789,
            seq: 17,
            tuples: 2,
            emitted_cum: 2_000_001,
            shed_cum: 40,
            truncated_cum: 7,
            throttled: Some(Throttled {
                query: QueryId(5),
                reason: ThrottleReason::Bytes,
                stats: ThrottleStats {
                    tuples: 100,
                    ops: 6_400,
                    bytes: 1_200,
                    trips: 3,
                },
            }),
            rows: ReportRows::Raw(vec![
                Tuple::from_iter([Value::str("x"), Value::I64(-4)]),
                Tuple::empty(),
            ]),
        };
        let grouped = Report {
            query: QueryId(6),
            host: "host-A".into(),
            procid: u64::MAX,
            procname: "kvnode".into(),
            incarnation: 1,
            time: 1,
            seq: 0,
            tuples: 1,
            emitted_cum: 1,
            shed_cum: 0,
            truncated_cum: 0,
            throttled: None,
            rows: ReportRows::Grouped(vec![(
                GroupKey(Tuple::from_iter([Value::str("client-1")])),
                vec![AggFunc::Sum.init(), AggFunc::Count.init()],
            )]),
        };
        for report in [raw, grouped] {
            let bytes = encode_message(&Message::Report(report.clone()));
            let Message::Report(back) = decode_message(&bytes).expect("decodes") else {
                panic!("wrong kind");
            };
            assert_eq!(back.query, report.query);
            assert_eq!(back.host, report.host);
            assert_eq!(back.procid, report.procid);
            assert_eq!(back.incarnation, report.incarnation);
            assert_eq!(back.time, report.time);
            assert_eq!(back.seq, report.seq);
            assert_eq!(back.tuples, report.tuples);
            assert_eq!(back.emitted_cum, report.emitted_cum);
            assert_eq!(back.shed_cum, report.shed_cum);
            assert_eq!(back.truncated_cum, report.truncated_cum);
            assert_eq!(back.throttled, report.throttled);
            assert_eq!(back.rows.len(), report.rows.len());
        }
    }

    #[test]
    fn set_budget_round_trips() {
        let budget = QueryBudget {
            tuples_per_window: 10_240,
            ops_per_window: 655_360,
            bytes_per_window: 122_880,
            window_ns: 1_000_000_000,
            backoff_base_windows: 2,
            max_backoff_doublings: 5,
        };
        let bytes = encode_message(&Message::Command(Command::SetBudget(QueryId(3), budget)));
        let Message::Command(Command::SetBudget(id, back)) =
            decode_message(&bytes).expect("decodes")
        else {
            panic!("wrong kind");
        };
        assert_eq!(id, QueryId(3));
        assert_eq!(back, budget);
        // Unlimited budgets survive the varint codec (u64::MAX rates).
        let bytes = encode_message(&Message::Command(Command::SetBudget(
            QueryId(4),
            QueryBudget::unlimited(),
        )));
        let Message::Command(Command::SetBudget(_, back)) =
            decode_message(&bytes).expect("decodes")
        else {
            panic!("wrong kind");
        };
        assert!(back.is_unlimited());
    }

    #[test]
    fn sync_and_goodbye_round_trip() {
        let code = q2_code();
        let budget = QueryBudget::from_static_bound(Some(96));
        let msg = Message::Sync {
            epoch: 42,
            queries: vec![Arc::clone(&code), code],
            budgets: vec![(QueryId(1), budget)],
        };
        let bytes = encode_message(&msg);
        let Message::Sync {
            epoch,
            queries,
            budgets,
        } = decode_message(&bytes).expect("decodes")
        else {
            panic!("wrong kind");
        };
        assert_eq!(epoch, 42);
        assert_eq!(queries.len(), 2);
        assert_eq!(*queries[0], *queries[1]);
        assert_eq!(budgets, vec![(QueryId(1), budget)]);

        let bytes = encode_message(&Message::Goodbye);
        assert!(matches!(decode_message(&bytes), Ok(Message::Goodbye)));
        // Goodbye carries nothing: trailing bytes are an error.
        let mut padded = encode_message(&Message::Goodbye);
        padded.push(0);
        assert!(decode_message(&padded).is_err());
    }

    #[test]
    fn sync_with_invalid_bytecode_is_rejected() {
        // A Sync frame is just as much a trust boundary as an Install:
        // splice a validation-failing program into an otherwise valid
        // Sync payload and the decoder must reject the whole frame.
        let bad = AdviceByteCode {
            tracepoints: vec!["tp".into()],
            insts: vec![Inst::Filter { pred: 0 }],
            einsts: vec![EInst::Load { dst: 9, col: 0 }],
            exprs: vec![ExprProg {
                start: 0,
                len: 1,
                result: 9,
            }],
            consts: vec![],
            names: vec![],
            num_regs: 1,
        };
        let msg = Message::Sync {
            epoch: 1,
            queries: vec![
                q2_code(),
                Arc::new(CompiledCode {
                    id: QueryId(9),
                    name: "bad".into(),
                    programs: vec![Arc::new(bad)],
                    output: Arc::new(OutputSpec::default()),
                }),
            ],
            budgets: vec![],
        };
        let bytes = encode_message(&msg);
        assert!(matches!(
            decode_message(&bytes),
            Err(DecodeError::BadTag("bytecode validation", 0))
        ));
    }

    /// Every adversarial pass runs over each frame kind on the wire,
    /// including the crash-recovery frames (v3 Report envelope, Sync,
    /// Goodbye).
    fn all_frames() -> Vec<Vec<u8>> {
        let code = q2_code();
        vec![
            encode_message(&Message::Command(Command::Install(Arc::clone(&code)))),
            encode_message(&Message::Command(Command::Uninstall(QueryId(3)))),
            encode_message(&Message::Hello(ProcessInfo {
                host: "host-C".into(),
                procid: 8,
                procname: "kvnode".into(),
            })),
            encode_message(&Message::Report(Report {
                query: QueryId(5),
                host: "host-A".into(),
                procid: 31,
                procname: "kvnode".into(),
                incarnation: 2,
                time: 9,
                seq: 3,
                tuples: 5,
                emitted_cum: 11,
                shed_cum: 1,
                truncated_cum: 2,
                throttled: Some(Throttled {
                    query: QueryId(5),
                    reason: ThrottleReason::Tuples,
                    stats: ThrottleStats {
                        tuples: 9,
                        ops: 81,
                        bytes: 108,
                        trips: 1,
                    },
                }),
                rows: ReportRows::Grouped(vec![(
                    GroupKey(Tuple::from_iter([Value::str("k")])),
                    vec![AggFunc::Count.init()],
                )]),
            })),
            encode_message(&Message::Sync {
                epoch: 7,
                queries: vec![code],
                budgets: vec![(QueryId(1), QueryBudget::from_static_bound(Some(60)))],
            }),
            encode_message(&Message::Goodbye),
            encode_message(&Message::Command(Command::SetBudget(
                QueryId(2),
                QueryBudget::from_static_bound(Some(48)),
            ))),
            encode_message(&Message::HelloRelay(ProcessInfo {
                host: "rack-7".into(),
                procid: 1,
                procname: "pivot-relay".into(),
            })),
            // A relay-re-originated report: relay identity in the envelope,
            // raw rows coalesced from several agents in the body.
            encode_message(&Message::Report(Report {
                query: QueryId(5),
                host: "rack-7".into(),
                procid: 1,
                procname: "pivot-relay".into(),
                incarnation: 3,
                time: 10,
                seq: 0,
                tuples: 3,
                emitted_cum: 3,
                shed_cum: 0,
                truncated_cum: 0,
                throttled: None,
                rows: ReportRows::Raw(vec![
                    Tuple::from_iter([Value::str("a"), Value::I64(1)]),
                    Tuple::from_iter([Value::str("b"), Value::I64(2)]),
                    Tuple::from_iter([Value::str("c"), Value::I64(3)]),
                ]),
            })),
            // A v6 batched flush: raw rows pre-encoded as columnar blocks.
            encode_message(&Message::Report(encoded_rows_report())),
            // v7 constructs: a hindsight flush and a Trigger-carrying
            // install, so the truncation and skew sweeps cover them.
            encode_message(&Message::Retro(retro_frame())),
            encode_message(&Message::Command(Command::Install(trigger_code()))),
        ]
    }

    /// A compiled query whose advice carries a `Trigger` op (v7-only
    /// bytecode inst tag 5).
    fn trigger_code() -> Arc<CompiledCode> {
        let mut fe = Frontend::new();
        fe.define("DataNodeMetrics.incrBytesRead", ["delta"]);
        let handle = fe
            .install(
                "From incr In DataNodeMetrics.incrBytesRead \
                 Where incr.delta > 90 Trigger Select incr.delta",
            )
            .expect("trigger query installs");
        fe.code(&handle).expect("bytecode available")
    }

    /// A hindsight flush shaped like a real agent's: two ring events
    /// sharing one interned name layout, plus the retro loss envelope.
    fn retro_frame() -> pivot_core::RetroReport {
        let names = Arc::new(vec![Sym::from("op"), Sym::from("bytes")]);
        pivot_core::RetroReport {
            host: "host-A".into(),
            procid: 31,
            procname: "kvnode".into(),
            incarnation: 2,
            time: 99,
            seq: 4,
            query: QueryId(5),
            kind: pivot_core::TriggerKind::Advice,
            request: 17,
            events: (0..2)
                .map(|i| RetroEvent {
                    tracepoint: Value::str("KvShard.execute"),
                    time: 90 + i,
                    request: 17,
                    names: Arc::clone(&names),
                    values: vec![Value::str("put"), Value::U64(512 + i)],
                })
                .collect(),
            recorded_cum: 40,
            sampled_out_cum: 6,
            shed_cum: 1,
        }
    }

    /// A streaming report whose rows are already in the v6 columnar block
    /// encoding, shaped like a batched agent flush.
    fn encoded_rows_report() -> Report {
        let rows: Vec<Tuple> = (0..64)
            .map(|i| Tuple::from_iter([Value::str("GET"), Value::U64(i), Value::U64(512)]))
            .collect();
        Report {
            query: QueryId(5),
            host: "host-B".into(),
            procid: 12,
            procname: "kvnode".into(),
            incarnation: 1,
            time: 20,
            seq: 4,
            tuples: 64,
            emitted_cum: 64,
            shed_cum: 0,
            truncated_cum: 0,
            throttled: None,
            rows: ReportRows::RawEncoded(vec![EncodedBlock::encode(&rows)]),
        }
    }

    #[test]
    fn every_frame_kind_rejects_version_skew() {
        // The version gate accepts the negotiation window
        // [MIN_PROTO_VERSION, PROTO_VERSION] and refuses everything else
        // — a v4 peer or a from-the-future v7 one fails loudly on every
        // frame kind instead of misparsing. In-window versions must never
        // produce a *version* error (content-level checks, like the
        // v6-only rows tag inside a v5 frame, still apply).
        for bytes in all_frames() {
            for ok in [MIN_PROTO_VERSION, PROTO_VERSION] {
                let mut mutated = bytes.clone();
                mutated[0] = ok;
                assert!(!matches!(
                    decode_message(&mutated),
                    Err(DecodeError::BadTag("protocol version", _))
                ));
            }
            for skew in [MIN_PROTO_VERSION - 1, PROTO_VERSION + 1, 0, 0xFF] {
                let mut mutated = bytes.clone();
                mutated[0] = skew;
                assert!(matches!(
                    decode_message(&mutated),
                    Err(DecodeError::BadTag("protocol version", _))
                ));
            }
        }
    }

    #[test]
    fn encoded_rows_round_trip_v6() {
        let report = encoded_rows_report();
        let bytes = encode_message(&Message::Report(report.clone()));
        let (version, Message::Report(back)) = decode_message_versioned(&bytes).expect("decodes")
        else {
            panic!("wrong kind");
        };
        assert_eq!(version, PROTO_VERSION);
        assert_eq!(back.rows.len(), 64);
        let (ReportRows::RawEncoded(sent), ReportRows::RawEncoded(got)) =
            (&report.rows, &back.rows)
        else {
            panic!("expected encoded rows");
        };
        // The wire carries the block bytes untouched (the relay
        // re-origination path forwards without re-encoding), and the
        // frontend-side materialization recovers the original tuples.
        assert_eq!(sent, got);
        let rows = got[0].decode().expect("block decodes");
        assert_eq!(rows.len(), 64);
        assert_eq!(rows[63].get(1), &Value::U64(63));
    }

    #[test]
    fn v5_peer_negotiation_transcodes_encoded_rows() {
        // Sending the same report at v5 (a down-level peer) transcodes
        // the blocks back to plain rows: nothing is lost, the old decoder
        // sees a frame it fully understands.
        let report = encoded_rows_report();
        let bytes = encode_message_v(&Message::Report(report), MIN_PROTO_VERSION);
        assert_eq!(bytes[0], MIN_PROTO_VERSION);
        let (version, Message::Report(back)) = decode_message_versioned(&bytes).expect("decodes")
        else {
            panic!("wrong kind");
        };
        assert_eq!(version, MIN_PROTO_VERSION);
        let ReportRows::Raw(rows) = &back.rows else {
            panic!("expected transcoded raw rows");
        };
        assert_eq!(rows.len(), 64);
        assert_eq!(rows[7].get(1), &Value::U64(7));

        // Out-of-window requests clamp instead of producing frames no
        // peer could speak.
        let hello = Message::Hello(ProcessInfo {
            host: "h".into(),
            procid: 1,
            procname: "p".into(),
        });
        assert_eq!(encode_message_v(&hello, 0)[0], MIN_PROTO_VERSION);
        assert_eq!(encode_message_v(&hello, 0xFF)[0], PROTO_VERSION);
    }

    #[test]
    fn v5_frame_with_block_tag_is_rejected() {
        // Tag 2 rows exist only from v6 on; a frame claiming v5 while
        // carrying them is malformed, not merely old.
        let mut bytes = encode_message(&Message::Report(encoded_rows_report()));
        assert_eq!(bytes[0], PROTO_VERSION);
        bytes[0] = 5;
        assert!(matches!(
            decode_message(&bytes),
            Err(DecodeError::BadTag("report rows", 2))
        ));
    }

    #[test]
    fn retro_report_round_trips() {
        let report = retro_frame();
        let bytes = encode_message(&Message::Retro(report.clone()));
        let (version, Message::Retro(back)) = decode_message_versioned(&bytes).expect("decodes")
        else {
            panic!("wrong kind");
        };
        assert_eq!(version, PROTO_VERSION);
        assert_eq!(back, report);
    }

    #[test]
    fn v6_frame_with_retro_tag_is_rejected() {
        // The Retro frame exists only from v7 on. Senders gate on the
        // peer's latched version, so a v6-stamped retro frame only occurs
        // under skew — where the contract is loud rejection, never a
        // silent drop or misparse.
        let mut bytes = encode_message(&Message::Retro(retro_frame()));
        assert_eq!(bytes[0], PROTO_VERSION);
        bytes[0] = 6;
        assert!(matches!(
            decode_message(&bytes),
            Err(DecodeError::BadTag("message", 8))
        ));
    }

    #[test]
    fn v6_frame_with_trigger_inst_is_rejected() {
        // A Trigger-carrying install is encoded at face value whatever
        // the stamped version (never silently stripped); a peer that
        // decodes it while claiming v6 must reject the inst tag, so
        // trigger semantics cannot silently vanish on a down-level link.
        let code = trigger_code();
        assert!(
            code.programs.iter().any(|p| p.triggers()),
            "the fixture query lowers to a Trigger op"
        );
        let mut bytes = encode_message(&Message::Command(Command::Install(code)));
        assert_eq!(bytes[0], PROTO_VERSION);
        bytes[0] = 6;
        assert!(matches!(
            decode_message(&bytes),
            Err(DecodeError::BadTag("bytecode inst", 5))
        ));
    }

    #[test]
    fn corrupt_block_payload_fails_at_materialization_not_wire() {
        // The wire decoder validates only the block header (row count);
        // the payload stays opaque so relays can forward without parsing.
        // Corruption inside the payload must therefore pass the wire and
        // fail gracefully — error, never panic — when the frontend
        // materializes. Sweep every payload byte with a bit flip.
        let rows: Vec<Tuple> = (0..48)
            .map(|i| Tuple::from_iter([Value::U64(i), Value::str("op")]))
            .collect();
        let block = EncodedBlock::encode(&rows);
        let mut enc = Encoder::new();
        block.write_wire(&mut enc);
        let wire = enc.finish();
        for pos in 0..wire.len() {
            let mut mutated = wire.clone();
            mutated[pos] ^= 0x40;
            let mut dec = Decoder::new(&mutated);
            let Ok(back) = EncodedBlock::read_wire(&mut dec) else {
                continue; // header corruption caught at the wire
            };
            // Materialization either errors or yields some rows; a
            // corrupt RLE run must never read past the payload.
            let _ = back.decode();
        }
    }

    #[test]
    fn truncations_error_not_panic() {
        for bytes in all_frames() {
            for cut in 0..bytes.len() {
                assert!(
                    decode_message(&bytes[..cut]).is_err(),
                    "cut at {cut} of {} decoded",
                    bytes.len()
                );
            }
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        for bytes in all_frames() {
            for pos in 0..bytes.len() {
                let mut mutated = bytes.clone();
                mutated[pos] ^= 0x55;
                // Must not panic; decoding may fail or (rarely) produce a
                // different-but-valid message. If it decodes, the bytecode
                // inside already passed validation.
                let _ = decode_message(&mutated);
            }
        }
    }

    #[test]
    fn deep_expression_nesting_is_bounded() {
        let mut enc = Encoder::new();
        // A chain of unary-neg tags with no terminal: the depth guard must
        // reject before the stack does.
        for _ in 0..100_000 {
            enc.put_u8(2); // Expr::Unary
            enc.put_u8(0); // Neg
        }
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert!(decode_expr(&mut dec, 0).is_err());
    }
}
