//! Binary codec for the bus protocol.
//!
//! The TCP bus carries three message kinds between live agents and the
//! frontend: a `Hello` registering the agent's process identity, the
//! frontend's weave/unweave [`Command`]s (including the **full compiled
//! query** — advice programs, expression trees, pack modes, output spec),
//! and the agents' partial-result [`Report`]s. Everything is encoded with
//! the same LEB128 encoder the baggage wire format uses, so one decoder
//! discipline covers the whole attack surface: malformed input returns
//! [`DecodeError`], never panics.

use std::sync::Arc;

use pivot_baggage::{PackMode, QueryId};
use pivot_core::{Command, ProcessInfo, Report, ReportRows};
use pivot_itc::{DecodeError, Decoder, Encoder};
use pivot_model::{codec, AggFunc, AggState, BinOp, Expr, GroupKey, Schema, Tuple, UnOp};
use pivot_query::advice::ColumnRef;
use pivot_query::{AdviceOp, AdviceProgram, CompiledQuery, OutputSpec, TemporalFilter};

/// Maximum expression nesting the decoder accepts. Honest queries stay in
/// single digits; the cap keeps a hostile peer from overflowing the stack.
const MAX_EXPR_DEPTH: usize = 128;

/// One bus message.
#[derive(Clone, Debug)]
pub enum Message {
    /// Agent → frontend: registration with the agent's process identity.
    Hello(ProcessInfo),
    /// Frontend → agent: weave or unweave a query.
    Command(Command),
    /// Agent → frontend: partial results for one interval.
    Report(Report),
}

/// Encodes one message to bytes (the payload of one frame).
pub fn encode_message(msg: &Message) -> Vec<u8> {
    let mut enc = Encoder::with_capacity(128);
    match msg {
        Message::Hello(info) => {
            enc.put_u8(0);
            enc.put_str(&info.host);
            enc.put_varint(info.procid);
            enc.put_str(&info.procname);
        }
        Message::Command(Command::Install(compiled)) => {
            enc.put_u8(1);
            encode_compiled(compiled, &mut enc);
        }
        Message::Command(Command::Uninstall(id)) => {
            enc.put_u8(2);
            enc.put_varint(id.0);
        }
        Message::Report(report) => {
            enc.put_u8(3);
            encode_report(report, &mut enc);
        }
    }
    enc.finish()
}

/// Decodes one message; trailing garbage is rejected.
pub fn decode_message(bytes: &[u8]) -> Result<Message, DecodeError> {
    let mut dec = Decoder::new(bytes);
    let msg = match dec.take_u8()? {
        0 => Message::Hello(ProcessInfo {
            host: dec.take_str()?.to_owned(),
            procid: dec.take_varint()?,
            procname: dec.take_str()?.to_owned(),
        }),
        1 => Message::Command(Command::Install(Arc::new(decode_compiled(&mut dec)?))),
        2 => Message::Command(Command::Uninstall(QueryId(dec.take_varint()?))),
        3 => Message::Report(decode_report(&mut dec)?),
        t => return Err(DecodeError::BadTag("message", t)),
    };
    if !dec.is_empty() {
        return Err(DecodeError::BadTag("message trailing bytes", 0));
    }
    Ok(msg)
}

fn encode_compiled(q: &CompiledQuery, enc: &mut Encoder) {
    enc.put_varint(q.id.0);
    enc.put_str(&q.name);
    enc.put_str(&q.text);
    enc.put_varint(q.advice.len() as u64);
    for program in &q.advice {
        encode_program(program, enc);
    }
    encode_output_spec(&q.output, enc);
}

fn decode_compiled(dec: &mut Decoder<'_>) -> Result<CompiledQuery, DecodeError> {
    let id = QueryId(dec.take_varint()?);
    let name = dec.take_str()?.to_owned();
    let text = dec.take_str()?.to_owned();
    let n = dec.take_varint()? as usize;
    let mut advice = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        advice.push(decode_program(dec)?);
    }
    let output = decode_output_spec(dec)?;
    Ok(CompiledQuery {
        id,
        name,
        text,
        advice,
        output,
    })
}

fn encode_program(p: &AdviceProgram, enc: &mut Encoder) {
    encode_strs(&p.tracepoints, enc);
    enc.put_varint(p.ops.len() as u64);
    for op in &p.ops {
        encode_op(op, enc);
    }
}

fn decode_program(dec: &mut Decoder<'_>) -> Result<AdviceProgram, DecodeError> {
    let tracepoints = decode_strs(dec)?;
    let n = dec.take_varint()? as usize;
    let mut ops = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        ops.push(decode_op(dec)?);
    }
    Ok(AdviceProgram { tracepoints, ops })
}

fn encode_op(op: &AdviceOp, enc: &mut Encoder) {
    match op {
        AdviceOp::Observe { alias, fields } => {
            enc.put_u8(0);
            enc.put_str(alias);
            encode_strs(fields, enc);
        }
        AdviceOp::Unpack {
            slot,
            schema,
            post_filter,
        } => {
            enc.put_u8(1);
            enc.put_varint(slot.0);
            encode_schema(schema, enc);
            encode_opt_filter(post_filter, enc);
        }
        AdviceOp::Filter { pred } => {
            enc.put_u8(2);
            encode_expr(pred, enc);
        }
        AdviceOp::Pack {
            slot,
            mode,
            exprs,
            names,
        } => {
            enc.put_u8(3);
            enc.put_varint(slot.0);
            encode_pack_mode(mode, enc);
            enc.put_varint(exprs.len() as u64);
            for e in exprs {
                encode_expr(e, enc);
            }
            encode_strs(names, enc);
        }
        AdviceOp::Emit { query, spec } => {
            enc.put_u8(4);
            enc.put_varint(query.0);
            encode_output_spec(spec, enc);
        }
    }
}

fn decode_op(dec: &mut Decoder<'_>) -> Result<AdviceOp, DecodeError> {
    Ok(match dec.take_u8()? {
        0 => AdviceOp::Observe {
            alias: dec.take_str()?.to_owned(),
            fields: decode_strs(dec)?,
        },
        1 => AdviceOp::Unpack {
            slot: QueryId(dec.take_varint()?),
            schema: decode_schema(dec)?,
            post_filter: decode_opt_filter(dec)?,
        },
        2 => AdviceOp::Filter {
            pred: decode_expr(dec, 0)?,
        },
        3 => {
            let slot = QueryId(dec.take_varint()?);
            let mode = decode_pack_mode(dec)?;
            let n = dec.take_varint()? as usize;
            let mut exprs = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                exprs.push(decode_expr(dec, 0)?);
            }
            let names = decode_strs(dec)?;
            AdviceOp::Pack {
                slot,
                mode,
                exprs,
                names,
            }
        }
        4 => AdviceOp::Emit {
            query: QueryId(dec.take_varint()?),
            spec: decode_output_spec(dec)?,
        },
        t => return Err(DecodeError::BadTag("advice op", t)),
    })
}

fn encode_output_spec(spec: &OutputSpec, enc: &mut Encoder) {
    enc.put_varint(spec.key_exprs.len() as u64);
    for e in &spec.key_exprs {
        encode_expr(e, enc);
    }
    encode_strs(&spec.key_names, enc);
    enc.put_varint(spec.aggs.len() as u64);
    for (f, e) in &spec.aggs {
        enc.put_u8(agg_func_tag(*f));
        encode_expr(e, enc);
    }
    encode_strs(&spec.agg_names, enc);
    enc.put_varint(spec.columns.len() as u64);
    for c in &spec.columns {
        match c {
            ColumnRef::Key(i) => {
                enc.put_u8(0);
                enc.put_varint(*i as u64);
            }
            ColumnRef::Agg(i) => {
                enc.put_u8(1);
                enc.put_varint(*i as u64);
            }
        }
    }
    enc.put_u8(u8::from(spec.streaming));
}

fn decode_output_spec(dec: &mut Decoder<'_>) -> Result<OutputSpec, DecodeError> {
    let n = dec.take_varint()? as usize;
    let mut key_exprs = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        key_exprs.push(decode_expr(dec, 0)?);
    }
    let key_names = decode_strs(dec)?;
    let n = dec.take_varint()? as usize;
    let mut aggs = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let f = decode_agg_func(dec.take_u8()?)?;
        aggs.push((f, decode_expr(dec, 0)?));
    }
    let agg_names = decode_strs(dec)?;
    let n = dec.take_varint()? as usize;
    let mut columns = Vec::with_capacity(n.min(64));
    for _ in 0..n {
        let tag = dec.take_u8()?;
        let idx = dec.take_varint()? as usize;
        columns.push(match tag {
            0 => ColumnRef::Key(idx),
            1 => ColumnRef::Agg(idx),
            t => return Err(DecodeError::BadTag("column ref", t)),
        });
    }
    let streaming = match dec.take_u8()? {
        0 => false,
        1 => true,
        t => return Err(DecodeError::BadTag("streaming flag", t)),
    };
    Ok(OutputSpec {
        key_exprs,
        key_names,
        aggs,
        agg_names,
        columns,
        streaming,
    })
}

fn encode_expr(e: &Expr, enc: &mut Encoder) {
    match e {
        Expr::Field(name) => {
            enc.put_u8(0);
            enc.put_str(name);
        }
        Expr::Lit(v) => {
            enc.put_u8(1);
            codec::encode_value(v, enc);
        }
        Expr::Unary(op, inner) => {
            enc.put_u8(2);
            enc.put_u8(un_op_tag(*op));
            encode_expr(inner, enc);
        }
        Expr::Binary(op, l, r) => {
            enc.put_u8(3);
            enc.put_u8(bin_op_tag(*op));
            encode_expr(l, enc);
            encode_expr(r, enc);
        }
    }
}

fn decode_expr(dec: &mut Decoder<'_>, depth: usize) -> Result<Expr, DecodeError> {
    if depth > MAX_EXPR_DEPTH {
        return Err(DecodeError::BadTag("expr depth", 0));
    }
    Ok(match dec.take_u8()? {
        0 => Expr::Field(dec.take_str()?.to_owned()),
        1 => Expr::Lit(codec::decode_value(dec)?),
        2 => {
            let op = decode_un_op(dec.take_u8()?)?;
            Expr::Unary(op, Box::new(decode_expr(dec, depth + 1)?))
        }
        3 => {
            let op = decode_bin_op(dec.take_u8()?)?;
            let l = decode_expr(dec, depth + 1)?;
            let r = decode_expr(dec, depth + 1)?;
            Expr::Binary(op, Box::new(l), Box::new(r))
        }
        t => return Err(DecodeError::BadTag("expr", t)),
    })
}

fn encode_pack_mode(mode: &PackMode, enc: &mut Encoder) {
    match mode {
        PackMode::All => enc.put_u8(0),
        PackMode::First(n) => {
            enc.put_u8(1);
            enc.put_varint(*n as u64);
        }
        PackMode::Recent(n) => {
            enc.put_u8(2);
            enc.put_varint(*n as u64);
        }
        PackMode::GroupAgg { key_len, aggs } => {
            enc.put_u8(3);
            enc.put_varint(*key_len as u64);
            enc.put_varint(aggs.len() as u64);
            for f in aggs {
                enc.put_u8(agg_func_tag(*f));
            }
        }
    }
}

fn decode_pack_mode(dec: &mut Decoder<'_>) -> Result<PackMode, DecodeError> {
    Ok(match dec.take_u8()? {
        0 => PackMode::All,
        1 => PackMode::First(dec.take_varint()? as usize),
        2 => PackMode::Recent(dec.take_varint()? as usize),
        3 => {
            let key_len = dec.take_varint()? as usize;
            let n = dec.take_varint()? as usize;
            let mut aggs = Vec::with_capacity(n.min(64));
            for _ in 0..n {
                aggs.push(decode_agg_func(dec.take_u8()?)?);
            }
            PackMode::GroupAgg { key_len, aggs }
        }
        t => return Err(DecodeError::BadTag("pack mode", t)),
    })
}

fn encode_opt_filter(f: &Option<TemporalFilter>, enc: &mut Encoder) {
    match f {
        None => enc.put_u8(0),
        Some(TemporalFilter::First(n)) => {
            enc.put_u8(1);
            enc.put_varint(*n as u64);
        }
        Some(TemporalFilter::MostRecent(n)) => {
            enc.put_u8(2);
            enc.put_varint(*n as u64);
        }
    }
}

fn decode_opt_filter(dec: &mut Decoder<'_>) -> Result<Option<TemporalFilter>, DecodeError> {
    Ok(match dec.take_u8()? {
        0 => None,
        1 => Some(TemporalFilter::First(dec.take_varint()? as usize)),
        2 => Some(TemporalFilter::MostRecent(dec.take_varint()? as usize)),
        t => return Err(DecodeError::BadTag("temporal filter", t)),
    })
}

fn encode_report(r: &Report, enc: &mut Encoder) {
    enc.put_varint(r.query.0);
    enc.put_str(&r.host);
    enc.put_str(&r.procname);
    enc.put_varint(r.time);
    match &r.rows {
        ReportRows::Raw(rows) => {
            enc.put_u8(0);
            enc.put_varint(rows.len() as u64);
            for t in rows {
                codec::encode_tuple(t, enc);
            }
        }
        ReportRows::Grouped(groups) => {
            enc.put_u8(1);
            enc.put_varint(groups.len() as u64);
            for (key, states) in groups {
                codec::encode_tuple(&key.0, enc);
                enc.put_varint(states.len() as u64);
                for s in states {
                    s.encode(enc);
                }
            }
        }
    }
}

fn decode_report(dec: &mut Decoder<'_>) -> Result<Report, DecodeError> {
    let query = QueryId(dec.take_varint()?);
    let host = dec.take_str()?.to_owned();
    let procname = dec.take_str()?.to_owned();
    let time = dec.take_varint()?;
    let rows = match dec.take_u8()? {
        0 => {
            let n = dec.take_varint()? as usize;
            let mut rows: Vec<Tuple> = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                rows.push(codec::decode_tuple(dec)?);
            }
            ReportRows::Raw(rows)
        }
        1 => {
            let n = dec.take_varint()? as usize;
            let mut groups: Vec<(GroupKey, Vec<AggState>)> = Vec::with_capacity(n.min(4096));
            for _ in 0..n {
                let key = GroupKey(codec::decode_tuple(dec)?);
                let m = dec.take_varint()? as usize;
                let mut states = Vec::with_capacity(m.min(64));
                for _ in 0..m {
                    states.push(AggState::decode(dec)?);
                }
                groups.push((key, states));
            }
            ReportRows::Grouped(groups)
        }
        t => return Err(DecodeError::BadTag("report rows", t)),
    };
    Ok(Report {
        query,
        host,
        procname,
        time,
        rows,
    })
}

fn encode_strs(strs: &[String], enc: &mut Encoder) {
    enc.put_varint(strs.len() as u64);
    for s in strs {
        enc.put_str(s);
    }
}

fn decode_strs(dec: &mut Decoder<'_>) -> Result<Vec<String>, DecodeError> {
    let n = dec.take_varint()? as usize;
    let mut out = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        out.push(dec.take_str()?.to_owned());
    }
    Ok(out)
}

fn encode_schema(s: &Schema, enc: &mut Encoder) {
    enc.put_varint(s.len() as u64);
    for f in s.fields() {
        enc.put_str(f);
    }
}

fn decode_schema(dec: &mut Decoder<'_>) -> Result<Schema, DecodeError> {
    let n = dec.take_varint()? as usize;
    let mut fields = Vec::with_capacity(n.min(256));
    for _ in 0..n {
        fields.push(dec.take_str()?.to_owned());
    }
    Ok(Schema::new(fields))
}

fn agg_func_tag(f: AggFunc) -> u8 {
    match f {
        AggFunc::Count => 0,
        AggFunc::Sum => 1,
        AggFunc::Min => 2,
        AggFunc::Max => 3,
        AggFunc::Average => 4,
    }
}

fn decode_agg_func(tag: u8) -> Result<AggFunc, DecodeError> {
    Ok(match tag {
        0 => AggFunc::Count,
        1 => AggFunc::Sum,
        2 => AggFunc::Min,
        3 => AggFunc::Max,
        4 => AggFunc::Average,
        t => return Err(DecodeError::BadTag("agg func", t)),
    })
}

fn bin_op_tag(op: BinOp) -> u8 {
    match op {
        BinOp::Add => 0,
        BinOp::Sub => 1,
        BinOp::Mul => 2,
        BinOp::Div => 3,
        BinOp::Mod => 4,
        BinOp::Eq => 5,
        BinOp::Ne => 6,
        BinOp::Lt => 7,
        BinOp::Le => 8,
        BinOp::Gt => 9,
        BinOp::Ge => 10,
        BinOp::And => 11,
        BinOp::Or => 12,
    }
}

fn decode_bin_op(tag: u8) -> Result<BinOp, DecodeError> {
    Ok(match tag {
        0 => BinOp::Add,
        1 => BinOp::Sub,
        2 => BinOp::Mul,
        3 => BinOp::Div,
        4 => BinOp::Mod,
        5 => BinOp::Eq,
        6 => BinOp::Ne,
        7 => BinOp::Lt,
        8 => BinOp::Le,
        9 => BinOp::Gt,
        10 => BinOp::Ge,
        11 => BinOp::And,
        12 => BinOp::Or,
        t => return Err(DecodeError::BadTag("bin op", t)),
    })
}

fn un_op_tag(op: UnOp) -> u8 {
    match op {
        UnOp::Neg => 0,
        UnOp::Not => 1,
    }
}

fn decode_un_op(tag: u8) -> Result<UnOp, DecodeError> {
    Ok(match tag {
        0 => UnOp::Neg,
        1 => UnOp::Not,
        t => return Err(DecodeError::BadTag("un op", t)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pivot_core::Frontend;
    use pivot_model::Value;

    fn q2_compiled() -> Arc<CompiledQuery> {
        let mut fe = Frontend::new();
        fe.define("ClientProtocols", ["procName"]);
        fe.define("DataNodeMetrics.incrBytesRead", ["delta"]);
        let handle = fe
            .install(
                "From incr In DataNodeMetrics.incrBytesRead
                 Join cl In First(ClientProtocols) On cl -> incr
                 Where incr.delta > 0 && incr.delta != 13
                 GroupBy cl.procName
                 Select cl.procName, SUM(incr.delta), COUNT, AVERAGE(incr.delta)",
            )
            .expect("q2 installs");
        fe.compiled(&handle).expect("compiled available")
    }

    #[test]
    fn install_command_round_trips_a_real_query() {
        let compiled = q2_compiled();
        let bytes = encode_message(&Message::Command(Command::Install(Arc::clone(&compiled))));
        let back = decode_message(&bytes).expect("decodes");
        let Message::Command(Command::Install(decoded)) = back else {
            panic!("wrong message kind");
        };
        assert_eq!(*decoded, *compiled);
    }

    #[test]
    fn uninstall_and_hello_round_trip() {
        for msg in [
            Message::Command(Command::Uninstall(QueryId(77))),
            Message::Hello(ProcessInfo {
                host: "host-B".into(),
                procid: 12,
                procname: "kvnode".into(),
            }),
        ] {
            let bytes = encode_message(&msg);
            let back = decode_message(&bytes).expect("decodes");
            match (&msg, &back) {
                (
                    Message::Command(Command::Uninstall(a)),
                    Message::Command(Command::Uninstall(b)),
                ) => assert_eq!(a, b),
                (Message::Hello(a), Message::Hello(b)) => assert_eq!(a, b),
                other => panic!("mismatched kinds: {other:?}"),
            }
        }
    }

    #[test]
    fn reports_round_trip_raw_and_grouped() {
        let raw = Report {
            query: QueryId(5),
            host: "host-A".into(),
            procname: "kvnode".into(),
            time: 123_456_789,
            rows: ReportRows::Raw(vec![
                Tuple::from_iter([Value::str("x"), Value::I64(-4)]),
                Tuple::empty(),
            ]),
        };
        let grouped = Report {
            query: QueryId(6),
            host: "host-A".into(),
            procname: "kvnode".into(),
            time: 1,
            rows: ReportRows::Grouped(vec![(
                GroupKey(Tuple::from_iter([Value::str("client-1")])),
                vec![AggFunc::Sum.init(), AggFunc::Count.init()],
            )]),
        };
        for report in [raw, grouped] {
            let bytes = encode_message(&Message::Report(report.clone()));
            let Message::Report(back) = decode_message(&bytes).expect("decodes") else {
                panic!("wrong kind");
            };
            assert_eq!(back.query, report.query);
            assert_eq!(back.host, report.host);
            assert_eq!(back.time, report.time);
            assert_eq!(back.rows.len(), report.rows.len());
        }
    }

    #[test]
    fn truncations_error_not_panic() {
        let compiled = q2_compiled();
        let bytes = encode_message(&Message::Command(Command::Install(compiled)));
        for cut in 0..bytes.len() {
            assert!(
                decode_message(&bytes[..cut]).is_err(),
                "cut at {cut} of {} decoded",
                bytes.len()
            );
        }
    }

    #[test]
    fn bit_flips_never_panic() {
        let compiled = q2_compiled();
        let bytes = encode_message(&Message::Command(Command::Install(compiled)));
        for pos in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0x55;
            let _ = decode_message(&mutated);
        }
    }

    #[test]
    fn deep_expression_nesting_is_bounded() {
        let mut enc = Encoder::new();
        // A chain of unary-neg tags with no terminal: the depth guard must
        // reject before the stack does.
        for _ in 0..100_000 {
            enc.put_u8(2); // Expr::Unary
            enc.put_u8(0); // Neg
        }
        let bytes = enc.finish();
        let mut dec = Decoder::new(&bytes);
        assert!(decode_expr(&mut dec, 0).is_err());
    }
}
